// cpi2ctl: offline forensics over archived incident logs.
//
// The operator-side counterpart of the paper's Dremel queries (section 5):
// given an incident archive written by SaveIncidents (see
// examples/forensics), answer the questions job owners actually ask.
//
// Usage:
//   cpi2ctl top <archive.tsv> [victim_job] [k]
//       The most aggressive antagonist jobs (optionally for one victim).
//   cpi2ctl select <archive.tsv> [--job=J] [--machine=M] [--capped-only]
//                  [--min-corr=C] [--limit=N]
//       Raw incidents matching the filters, one summary line each.
//   cpi2ctl stats <archive.tsv>
//       Aggregate counts: incidents, caps, victims, antagonists.
//   cpi2ctl demo <archive.tsv>
//       Writes a small synthetic archive to play with.

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "core/cpi2.h"

namespace {

using namespace cpi2;  // NOLINT: example brevity

int Usage() {
  std::fprintf(stderr,
               "usage: cpi2ctl top <archive> [victim_job] [k]\n"
               "       cpi2ctl select <archive> [--job=J] [--machine=M] [--capped-only]\n"
               "                      [--min-corr=C] [--limit=N]\n"
               "       cpi2ctl stats <archive>\n"
               "       cpi2ctl demo <archive>\n");
  return 2;
}

int RunTop(const IncidentLog& log, int argc, char** argv) {
  const std::string victim_job = argc > 3 ? argv[3] : "";
  const int k = argc > 4 ? std::atoi(argv[4]) : 10;
  const auto top = log.TopAntagonists(victim_job, 0, 0, k);
  std::printf("%-24s %9s %7s %9s %9s\n", "antagonist job", "incidents", "capped", "max corr",
              "mean corr");
  for (const auto& stats : top) {
    std::printf("%-24s %9d %7d %9.2f %9.2f\n", stats.jobname.c_str(), stats.incidents,
                stats.times_capped, stats.max_correlation, stats.mean_correlation);
  }
  return 0;
}

int RunSelect(const IncidentLog& log, int argc, char** argv) {
  IncidentLog::Query query;
  int limit = 20;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--job=", 0) == 0) {
      query.victim_job = arg.substr(6);
    } else if (arg.rfind("--machine=", 0) == 0) {
      query.machine = arg.substr(10);
    } else if (arg == "--capped-only") {
      query.capped_only = true;
    } else if (arg.rfind("--min-corr=", 0) == 0) {
      query.min_top_correlation = std::atof(arg.substr(11).c_str());
    } else if (arg.rfind("--limit=", 0) == 0) {
      limit = std::atoi(arg.substr(8).c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  const auto rows = log.Select(query);
  std::printf("%zu incidents match\n", rows.size());
  int printed = 0;
  for (const Incident* incident : rows) {
    if (printed++ >= limit) {
      std::printf("... (%zu more; raise --limit)\n", rows.size() - static_cast<size_t>(limit));
      break;
    }
    std::printf("t=%-8lld %-8s %s\n", static_cast<long long>(incident->timestamp / kMicrosPerMinute),
                incident->machine.c_str(), incident->Summary().c_str());
  }
  return 0;
}

int RunStats(const IncidentLog& log) {
  int caps = 0;
  std::set<std::string> victims;
  std::set<std::string> machines;
  std::map<std::string, int> antagonists;
  for (const Incident& incident : log.incidents()) {
    caps += incident.action == IncidentAction::kHardCap ? 1 : 0;
    victims.insert(incident.victim_job);
    machines.insert(incident.machine);
    if (!incident.suspects.empty()) {
      ++antagonists[incident.suspects.front().jobname];
    }
  }
  std::printf("incidents:        %zu\n", log.size());
  std::printf("hard-caps:        %d\n", caps);
  std::printf("victim jobs:      %zu\n", victims.size());
  std::printf("machines:         %zu\n", machines.size());
  std::printf("antagonist jobs:  %zu\n", antagonists.size());
  return 0;
}

int RunDemo(const std::string& path) {
  IncidentLog log;
  for (int i = 0; i < 12; ++i) {
    Incident incident;
    incident.timestamp = i * 7 * kMicrosPerMinute;
    incident.machine = "m000" + std::to_string(i % 3);
    incident.victim_job = i % 4 == 0 ? "ads-serving" : "websearch";
    incident.victim_task = incident.victim_job + "." + std::to_string(i);
    incident.victim_cpi = 3.0 + 0.2 * i;
    incident.cpi_threshold = 2.2;
    incident.spec_mean = 1.8;
    incident.spec_stddev = 0.2;
    Suspect suspect;
    suspect.jobname = i % 3 == 0 ? "video-processing" : "mapreduce";
    suspect.task = suspect.jobname + ".7";
    suspect.workload_class = WorkloadClass::kBatch;
    suspect.priority = JobPriority::kBestEffort;
    suspect.correlation = 0.35 + 0.03 * (i % 5);
    incident.suspects.push_back(suspect);
    if (i % 2 == 0) {
      incident.action = IncidentAction::kHardCap;
      incident.action_target = suspect.task;
      incident.cap_level = 0.01;
    }
    log.Add(incident);
  }
  const Status status = SaveIncidents(path, log);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu demo incidents to %s\n", log.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "demo") {
    return RunDemo(path);
  }
  const auto loaded = LoadIncidents(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  if (command == "top") {
    return RunTop(*loaded, argc, argv);
  }
  if (command == "select") {
    return RunSelect(*loaded, argc, argv);
  }
  if (command == "stats") {
    return RunStats(*loaded);
  }
  return Usage();
}
