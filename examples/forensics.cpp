// forensics: the paper's "Dremel query" use case (section 5).
//
// Runs a cluster long enough to accumulate incidents, then answers the
// canonical operator questions: which jobs are the most aggressive
// antagonists for my job in this time window? Which incidents led to caps?
// Finally it feeds the answer back into the scheduler as an
// avoid-co-location constraint — the paper's future-work loop closed.
//
// Usage: forensics [minutes] [seed]

#include <cstdio>
#include <cstdlib>

#include "harness/cluster_harness.h"
#include "util/string_util.h"
#include "workload/profiles.h"

namespace {

using namespace cpi2;  // NOLINT: example brevity

int Run(int minutes, uint64_t seed) {
  ClusterHarness::Options options;
  options.cluster.seed = seed;
  options.params.min_tasks_for_spec = 5;
  options.params.min_samples_per_task = 5;
  ClusterHarness harness(options);
  const int kMachines = 10;
  harness.cluster().AddMachines(ReferencePlatform(), kMachines);
  harness.cluster().BuildScheduler();

  for (int m = 0; m < kMachines; ++m) {
    Machine* machine = harness.cluster().machine(static_cast<size_t>(m));
    (void)machine->AddTask(StrFormat("websearch-leaf.%d", m), WebSearchLeafSpec());
    (void)machine->AddTask(StrFormat("bigtable-tablet.%d", m), BigtableTabletSpec());
  }
  harness.WireAgents();
  harness.PrimeSpecs(12 * kMicrosPerMinute);

  // A rotating cast of antagonists visits different machines.
  for (int m = 0; m < kMachines; ++m) {
    TaskSpec antagonist = (m % 3 == 0)   ? VideoProcessingSpec()
                          : (m % 3 == 1) ? StreamingScanSpec()
                                         : CacheThrasherSpec(0.7);
    (void)harness.cluster().machine(static_cast<size_t>(m))->AddTask(
        StrFormat("%s.%d", antagonist.job_name.c_str(), m), antagonist);
  }
  harness.RunFor(minutes * kMicrosPerMinute);

  const IncidentLog& log = harness.incidents();
  std::printf("collected %zu incidents over %d minutes\n\n", log.size(), minutes);

  // Query 1: most aggressive antagonists for the web-search job.
  std::printf("top antagonists for job 'websearch-leaf':\n");
  std::printf("  %-20s %9s %7s %9s %9s\n", "antagonist job", "incidents", "capped",
              "max corr", "mean corr");
  const auto top = log.TopAntagonists("websearch-leaf", 0, 0, 5);
  for (const auto& stats : top) {
    std::printf("  %-20s %9d %7d %9.2f %9.2f\n", stats.jobname.c_str(), stats.incidents,
                stats.times_capped, stats.max_correlation, stats.mean_correlation);
  }

  // Query 2: incidents that resulted in caps, in a time window.
  IncidentLog::Query query;
  query.victim_job = "websearch-leaf";
  query.capped_only = true;
  query.begin = 15 * kMicrosPerMinute;
  const auto capped = log.Select(query);
  std::printf("\nincidents with enforcement after t=15min: %zu\n", capped.size());
  for (size_t i = 0; i < capped.size() && i < 5; ++i) {
    std::printf("  %s\n", capped[i]->Summary().c_str());
  }

  // Query 3: persist the log (offline analysis) and reload it — every query
  // works identically on the reloaded data.
  const std::string archive = "/tmp/cpi2_incidents.tsv";
  if (const Status saved = SaveIncidents(archive, log); saved.ok()) {
    const auto reloaded = LoadIncidents(archive);
    std::printf("\narchived %zu incidents to %s (reload check: %s)\n", log.size(),
                archive.c_str(),
                reloaded.ok() && reloaded->size() == log.size() ? "ok" : "MISMATCH");
  }

  // Close the loop automatically: PlacementAdvisor mines the log for repeat
  // offenders and the scheduler learns to keep them away (paper section 9).
  PlacementAdvisor advisor(PlacementAdvisor::Options{});
  const auto advice = advisor.Advise(log, harness.now());
  for (const auto& item : advice) {
    harness.cluster().scheduler().AddAntagonistConstraint(item.victim_job,
                                                          item.antagonist_job);
    std::printf("scheduler constraint added: %s avoids %s (%d incidents, max corr %.2f)\n",
                item.victim_job.c_str(), item.antagonist_job.c_str(), item.incidents,
                item.max_correlation);
  }
  return log.size() > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int minutes = argc > 1 ? std::atoi(argv[1]) : 40;
  const uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 11;
  return Run(minutes, seed);
}
