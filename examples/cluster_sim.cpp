// cluster_sim: run CPI2 over a simulated shared cluster, with and without
// enforcement, and compare what happens to a victimized latency-sensitive
// job.
//
// Usage: cluster_sim [machines] [minutes] [seed]
//   defaults:        12         45        7

#include <cstdio>
#include <cstdlib>

#include "harness/cluster_harness.h"
#include "stats/summary.h"
#include "stats/streaming.h"
#include "util/string_util.h"
#include "workload/profiles.h"

namespace {

using namespace cpi2;  // NOLINT: example brevity

struct RunResult {
  double victim_mean_cpi = 0.0;
  double victim_p95_latency_ms = 0.0;
  int incidents = 0;
  int caps = 0;
};

RunResult RunOnce(bool enforcement, int machines, int minutes, uint64_t seed) {
  ClusterHarness::Options options;
  options.cluster.seed = seed;
  options.params.min_tasks_for_spec = 5;
  options.params.min_samples_per_task = 5;
  options.params.enforcement_enabled = enforcement;
  ClusterHarness harness(options);
  harness.cluster().AddMachines(ReferencePlatform(), machines);
  harness.cluster().BuildScheduler();

  // The victim job: one web-search leaf per machine.
  for (int m = 0; m < machines; ++m) {
    (void)harness.cluster().machine(static_cast<size_t>(m))->AddTask(
        StrFormat("websearch-leaf.%d", m), WebSearchLeafSpec());
  }
  // Background co-tenants.
  for (int m = 0; m < machines; ++m) {
    for (int f = 0; f < 3; ++f) {
      TaskSpec filler = FillerServiceSpec(0.25 + 0.1 * f);
      filler.job_name = StrFormat("svc-%d", f);
      (void)harness.cluster().machine(static_cast<size_t>(m))->AddTask(
          StrFormat("svc-%d.%d", f, m), filler);
    }
  }
  harness.WireAgents();
  harness.PrimeSpecs(12 * kMicrosPerMinute);

  // Antagonists land on a third of the machines.
  for (int m = 0; m < machines; m += 3) {
    (void)harness.cluster().machine(static_cast<size_t>(m))->AddTask(
        StrFormat("video-processing.%d", m), VideoProcessingSpec());
  }

  // Observe the victim job for the remaining time.
  StreamingStats cpi;
  std::vector<double> latencies;
  harness.cluster().AddTickListener([&](MicroTime) {
    for (int m = 0; m < machines; ++m) {
      const Task* task = harness.cluster().machine(static_cast<size_t>(m))->FindTask(
          StrFormat("websearch-leaf.%d", m));
      if (task != nullptr) {
        cpi.Add(task->last_cpi());
        latencies.push_back(task->last_latency_ms());
      }
    }
  });
  harness.RunFor(minutes * kMicrosPerMinute);

  RunResult result;
  result.victim_mean_cpi = cpi.mean();
  EmpiricalDistribution latency_dist(std::move(latencies));
  result.victim_p95_latency_ms = latency_dist.Percentile(0.95);
  result.incidents = static_cast<int>(harness.incidents().size());
  for (const Incident& incident : harness.incidents().incidents()) {
    if (incident.action == IncidentAction::kHardCap) {
      ++result.caps;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int machines = argc > 1 ? std::atoi(argv[1]) : 12;
  const int minutes = argc > 2 ? std::atoi(argv[2]) : 45;
  const uint64_t seed = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 7;

  std::printf("simulating %d machines for %d minutes (seed %llu)...\n", machines, minutes,
              static_cast<unsigned long long>(seed));
  const RunResult off = RunOnce(/*enforcement=*/false, machines, minutes, seed);
  const RunResult on = RunOnce(/*enforcement=*/true, machines, minutes, seed);

  std::printf("\n%-34s %14s %14s\n", "", "CPI2 off", "CPI2 on");
  std::printf("%-34s %14.2f %14.2f\n", "victim job mean CPI", off.victim_mean_cpi,
              on.victim_mean_cpi);
  std::printf("%-34s %12.1fms %12.1fms\n", "victim job p95 latency",
              off.victim_p95_latency_ms, on.victim_p95_latency_ms);
  std::printf("%-34s %14d %14d\n", "incidents reported", off.incidents, on.incidents);
  std::printf("%-34s %14d %14d\n", "hard-caps applied", off.caps, on.caps);
  std::printf("\nvictim mean CPI reduced to %.0f%% of the unprotected run\n",
              100.0 * on.victim_mean_cpi / off.victim_mean_cpi);
  return 0;
}
