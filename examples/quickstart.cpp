// Quickstart: the whole CPI2 API in one file, against fake backends.
//
//   1. Feed per-task CPI samples into a SpecBuilder and build a CPI spec.
//   2. Score incoming samples with the OutlierDetector.
//   3. When a task turns anomalous, rank co-resident suspects with the
//      antagonist correlation.
//   4. Apply the enforcement policy (CPU hard-capping) to the culprit.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/cpi2.h"

namespace {

using namespace cpi2;  // NOLINT: example brevity

int Run() {
  Cpi2Params params;             // Table 2 defaults
  params.min_tasks_for_spec = 3;  // small demo data set
  params.min_samples_per_task = 4;

  // --- 1. learn normal behaviour -----------------------------------------
  SpecBuilder builder(params);
  // Three tasks of "websearch" hum along at CPI ~1.8 +/- 0.1 for 8 minutes.
  for (int minute = 0; minute < 8; ++minute) {
    for (int task = 0; task < 3; ++task) {
      CpiSample sample;
      sample.jobname = "websearch";
      sample.platforminfo = "xeon-2.6GHz";
      sample.task = "websearch." + std::to_string(task);
      sample.timestamp = minute * kMicrosPerMinute;
      sample.cpu_usage = 0.6;
      sample.cpi = 1.8 + 0.1 * ((minute + task) % 3 - 1);
      builder.AddSample(sample);
    }
  }
  const auto specs = builder.BuildSpecs();
  if (specs.empty()) {
    std::printf("no spec built — not enough data\n");
    return 1;
  }
  const CpiSpec spec = specs.front();
  std::printf("spec: %s on %s — CPI %.2f +/- %.2f (%lld samples)\n", spec.jobname.c_str(),
              spec.platforminfo.c_str(), spec.cpi_mean, spec.cpi_stddev,
              static_cast<long long>(spec.num_samples));

  // --- 2. detect an anomaly ------------------------------------------------
  OutlierDetector detector(params);
  TimeSeries victim_cpi;   // the detector's inputs also feed correlation
  TimeSeries guilty_usage; // co-resident batch task: busy exactly when it hurts
  TimeSeries innocent_usage;

  bool anomaly = false;
  double threshold = 0.0;
  for (int minute = 8; minute < 16; ++minute) {
    const MicroTime now = minute * kMicrosPerMinute;
    const bool under_attack = minute >= 12;
    CpiSample sample;
    sample.jobname = "websearch";
    sample.task = "websearch.0";
    sample.timestamp = now;
    sample.cpu_usage = 0.6;
    sample.cpi = under_attack ? 3.1 : 1.8;  // interference doubles the CPI
    victim_cpi.Append(now, sample.cpi);
    guilty_usage.Append(now, under_attack ? 2.5 : 0.0);
    innocent_usage.Append(now, 0.8);  // steady the whole time

    // Detector state is keyed by a dense per-incarnation key (an Agent mints
    // one per AddTask); here there is one task, so key 0.
    const auto result = detector.Observe(/*key=*/0, sample, spec);
    threshold = result.threshold;
    if (result.anomaly) {
      anomaly = true;
      std::printf("minute %d: ANOMALY — cpi %.2f > threshold %.2f (3 violations in 5 min)\n",
                  minute, sample.cpi, result.threshold);
      break;
    }
    if (result.outlier) {
      std::printf("minute %d: outlier flagged (cpi %.2f > %.2f)\n", minute, sample.cpi,
                  result.threshold);
    }
  }
  if (!anomaly) {
    std::printf("no anomaly detected\n");
    return 1;
  }

  // --- 3. identify the antagonist -----------------------------------------
  AntagonistIdentifier identifier(params);
  std::vector<AntagonistIdentifier::SuspectInput> suspects;
  suspects.push_back({"mapreduce.7", "mapreduce", WorkloadClass::kBatch,
                      JobPriority::kBestEffort, &guilty_usage});
  suspects.push_back({"frontend.2", "frontend", WorkloadClass::kLatencySensitive,
                      JobPriority::kProduction, &innocent_usage});
  const auto ranked =
      identifier.Analyze(victim_cpi, threshold, suspects, 15 * kMicrosPerMinute);
  for (const Suspect& suspect : ranked) {
    std::printf("suspect %-14s (%-17s) correlation %+0.2f\n", suspect.task.c_str(),
                WorkloadClassName(suspect.workload_class), suspect.correlation);
  }

  // --- 4. enforce -----------------------------------------------------------
  FakeCpuController controller;  // swap in FsCpuController("/sys/fs/cgroup") on a real host
  EnforcementPolicy enforcement(params, &controller);
  const auto decision = enforcement.OnIncident(WorkloadClass::kLatencySensitive, ranked,
                                               15 * kMicrosPerMinute);
  switch (decision.action) {
    case IncidentAction::kHardCap:
      std::printf("ACTION: hard-capped %s to %.2f CPU-sec/sec for 5 minutes (%s)\n",
                  decision.target.c_str(), decision.cap_level, decision.reason.c_str());
      break;
    default:
      std::printf("no action: %s\n", decision.reason.c_str());
      break;
  }
  return decision.action == IncidentAction::kHardCap ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
