// daemon: a real-host CPI2 agent skeleton.
//
// Wires the Agent to the real backends — perf_event counters in counting
// mode and cgroup-v2 CPU bandwidth capping — and samples the given pids or
// cgroups on the paper's 10s-per-minute duty cycle. Where the host denies
// perf or cgroup access (common in containers), it degrades gracefully and
// explains what is missing rather than crashing. Run without arguments to
// monitor this process itself as a demo.
//
// Usage:
//   daemon                         # monitor self (pid mode), demo spec
//   daemon <pid> [pid...]          # monitor the given process trees
//   daemon --cgroup-root /sys/fs/cgroup <group> [group...]
//
// Stop with Ctrl-C.

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cgroup/fs_cpu_controller.h"
#include "core/cpi2.h"
#include "perf/perf_event_source.h"

namespace {

using namespace cpi2;  // NOLINT: example brevity

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Run(int argc, char** argv) {
  std::string cgroup_root;
  std::vector<std::string> containers;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cgroup-root") == 0 && i + 1 < argc) {
      cgroup_root = argv[++i];
    } else {
      containers.emplace_back(argv[i]);
    }
  }
  const bool demo_mode = containers.empty();
  if (demo_mode) {
    containers.push_back(std::to_string(getpid()));
    std::printf("no targets given: monitoring this process (pid %d) as a demo\n", getpid());
  }

  if (!PerfEventCounterSource::SupportedOnThisHost()) {
    std::printf(
        "perf_event_open is unavailable here (no hardware PMU or "
        "perf_event_paranoid too strict).\n"
        "On a real host, run as root or set kernel.perf_event_paranoid <= 1.\n"
        "The CPI2 library still works against the simulator backends; see "
        "examples/cluster_sim.\n");
    return 0;
  }

  PerfEventCounterSource::Options source_options;
  source_options.cgroup_root = cgroup_root;
  PerfEventCounterSource source(source_options);

  // Capping needs a writable cgroup hierarchy; fall back to a fake so the
  // monitoring path still demonstrates end to end.
  FsCpuController fs_controller(cgroup_root.empty() ? "/sys/fs/cgroup" : cgroup_root);
  FakeCpuController fake_controller;
  CpuController* controller = &fake_controller;
  if (!cgroup_root.empty()) {
    controller = &fs_controller;
  } else {
    std::printf("pid mode: hard-capping disabled (needs --cgroup-root); using a dry-run "
                "controller\n");
  }

  Cpi2Params params;
  Agent::Options agent_options;
  agent_options.params = params;
  char hostname[256] = "localhost";
  (void)gethostname(hostname, sizeof(hostname));
  agent_options.machine_name = hostname;
  agent_options.platforminfo = "host-cpu";

  Agent agent(agent_options, &source, controller);
  agent.SetSampleCallback([](const CpiSample& sample) {
    std::printf("[%s] task=%s cpi=%.3f usage=%.3f CPU-s/s\n", sample.machine.c_str(),
                sample.task.c_str(), sample.cpi, sample.cpu_usage);
    std::fflush(stdout);
  });
  agent.SetIncidentCallback([](const Incident& incident) {
    std::printf("INCIDENT: %s\n", incident.Summary().c_str());
  });

  const MicroTime start = RealClock::Get()->NowMicros();
  for (const std::string& container : containers) {
    const Status status = source.Attach(container);
    if (!status.ok()) {
      std::printf("cannot attach %s: %s\n", container.c_str(), status.ToString().c_str());
      continue;
    }
    TaskMeta meta;
    meta.task = container;
    meta.jobname = "monitored";
    meta.workload_class = WorkloadClass::kLatencySensitive;
    agent.AddTask(meta, start);
    std::printf("attached counters to %s\n", container.c_str());
  }

  // Demo spec so the detector has a prediction. A real deployment receives
  // specs from the cluster aggregator instead.
  if (demo_mode) {
    CpiSpec spec;
    spec.jobname = "monitored";
    spec.platforminfo = "host-cpu";
    spec.num_samples = 1000;
    spec.cpi_mean = 1.0;
    spec.cpi_stddev = 0.3;
    agent.UpdateSpec(spec);
  }

  std::signal(SIGINT, HandleSignal);
  std::printf("sampling 10s per minute; Ctrl-C to stop\n");
  // In demo mode, burn a little CPU so there is something to measure, and
  // stop after ~90 s so scripted runs terminate.
  const bool bounded = demo_mode;
  volatile double sink = 0.0;
  while (!g_stop.load()) {
    const MicroTime now = RealClock::Get()->NowMicros();
    agent.Tick(now);
    if (bounded) {
      for (int i = 0; i < 20000000; ++i) {
        sink += static_cast<double>(i) * 1e-9;
      }
      if (now - start > 90 * kMicrosPerSecond) {
        break;
      }
    } else {
      sleep(1);
    }
  }
  std::printf("samples processed: %lld\n",
              static_cast<long long>(agent.samples_processed()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
