file(REMOVE_RECURSE
  "CMakeFiles/cpi2ctl.dir/cpi2ctl.cpp.o"
  "CMakeFiles/cpi2ctl.dir/cpi2ctl.cpp.o.d"
  "cpi2ctl"
  "cpi2ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
