# Empty dependencies file for cpi2ctl.
# This may be replaced when dependencies are built.
