# Empty dependencies file for daemon.
# This may be replaced when dependencies are built.
