file(REMOVE_RECURSE
  "CMakeFiles/daemon.dir/daemon.cpp.o"
  "CMakeFiles/daemon.dir/daemon.cpp.o.d"
  "daemon"
  "daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
