
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_throttle_test.cc" "tests/CMakeFiles/core_test.dir/core/adaptive_throttle_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/adaptive_throttle_test.cc.o.d"
  "/root/repo/tests/core/agent_test.cc" "tests/CMakeFiles/core_test.dir/core/agent_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/agent_test.cc.o.d"
  "/root/repo/tests/core/aggregator_test.cc" "tests/CMakeFiles/core_test.dir/core/aggregator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/aggregator_test.cc.o.d"
  "/root/repo/tests/core/antagonist_identifier_test.cc" "tests/CMakeFiles/core_test.dir/core/antagonist_identifier_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/antagonist_identifier_test.cc.o.d"
  "/root/repo/tests/core/correlation_test.cc" "tests/CMakeFiles/core_test.dir/core/correlation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/correlation_test.cc.o.d"
  "/root/repo/tests/core/enforcement_test.cc" "tests/CMakeFiles/core_test.dir/core/enforcement_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/enforcement_test.cc.o.d"
  "/root/repo/tests/core/escalation_test.cc" "tests/CMakeFiles/core_test.dir/core/escalation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/escalation_test.cc.o.d"
  "/root/repo/tests/core/incident_log_io_test.cc" "tests/CMakeFiles/core_test.dir/core/incident_log_io_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/incident_log_io_test.cc.o.d"
  "/root/repo/tests/core/incident_log_test.cc" "tests/CMakeFiles/core_test.dir/core/incident_log_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/incident_log_test.cc.o.d"
  "/root/repo/tests/core/outlier_detector_test.cc" "tests/CMakeFiles/core_test.dir/core/outlier_detector_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/outlier_detector_test.cc.o.d"
  "/root/repo/tests/core/params_test.cc" "tests/CMakeFiles/core_test.dir/core/params_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/params_test.cc.o.d"
  "/root/repo/tests/core/placement_advisor_test.cc" "tests/CMakeFiles/core_test.dir/core/placement_advisor_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/placement_advisor_test.cc.o.d"
  "/root/repo/tests/core/spec_builder_test.cc" "tests/CMakeFiles/core_test.dir/core/spec_builder_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/spec_builder_test.cc.o.d"
  "/root/repo/tests/core/spec_store_test.cc" "tests/CMakeFiles/core_test.dir/core/spec_store_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/spec_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/cpi2_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/cpi2_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cpi2_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cpi2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpi2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cpi2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/cpi2_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/cpi2_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cpi2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
