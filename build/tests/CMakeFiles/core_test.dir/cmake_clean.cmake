file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/adaptive_throttle_test.cc.o"
  "CMakeFiles/core_test.dir/core/adaptive_throttle_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/agent_test.cc.o"
  "CMakeFiles/core_test.dir/core/agent_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/aggregator_test.cc.o"
  "CMakeFiles/core_test.dir/core/aggregator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/antagonist_identifier_test.cc.o"
  "CMakeFiles/core_test.dir/core/antagonist_identifier_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/correlation_test.cc.o"
  "CMakeFiles/core_test.dir/core/correlation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/enforcement_test.cc.o"
  "CMakeFiles/core_test.dir/core/enforcement_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/escalation_test.cc.o"
  "CMakeFiles/core_test.dir/core/escalation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/incident_log_io_test.cc.o"
  "CMakeFiles/core_test.dir/core/incident_log_io_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/incident_log_test.cc.o"
  "CMakeFiles/core_test.dir/core/incident_log_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/outlier_detector_test.cc.o"
  "CMakeFiles/core_test.dir/core/outlier_detector_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/params_test.cc.o"
  "CMakeFiles/core_test.dir/core/params_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/placement_advisor_test.cc.o"
  "CMakeFiles/core_test.dir/core/placement_advisor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/spec_builder_test.cc.o"
  "CMakeFiles/core_test.dir/core/spec_builder_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/spec_store_test.cc.o"
  "CMakeFiles/core_test.dir/core/spec_store_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
