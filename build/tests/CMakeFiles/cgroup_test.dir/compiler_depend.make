# Empty compiler generated dependencies file for cgroup_test.
# This may be replaced when dependencies are built.
