file(REMOVE_RECURSE
  "CMakeFiles/cgroup_test.dir/cgroup/cpu_controller_test.cc.o"
  "CMakeFiles/cgroup_test.dir/cgroup/cpu_controller_test.cc.o.d"
  "cgroup_test"
  "cgroup_test.pdb"
  "cgroup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
