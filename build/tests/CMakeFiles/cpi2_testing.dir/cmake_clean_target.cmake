file(REMOVE_RECURSE
  "libcpi2_testing.a"
)
