file(REMOVE_RECURSE
  "CMakeFiles/cpi2_testing.dir/testing/scenario.cc.o"
  "CMakeFiles/cpi2_testing.dir/testing/scenario.cc.o.d"
  "libcpi2_testing.a"
  "libcpi2_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
