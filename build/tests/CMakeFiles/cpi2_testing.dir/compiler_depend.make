# Empty compiler generated dependencies file for cpi2_testing.
# This may be replaced when dependencies are built.
