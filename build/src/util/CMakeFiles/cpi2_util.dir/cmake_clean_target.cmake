file(REMOVE_RECURSE
  "libcpi2_util.a"
)
