file(REMOVE_RECURSE
  "CMakeFiles/cpi2_util.dir/clock.cc.o"
  "CMakeFiles/cpi2_util.dir/clock.cc.o.d"
  "CMakeFiles/cpi2_util.dir/logging.cc.o"
  "CMakeFiles/cpi2_util.dir/logging.cc.o.d"
  "CMakeFiles/cpi2_util.dir/rng.cc.o"
  "CMakeFiles/cpi2_util.dir/rng.cc.o.d"
  "CMakeFiles/cpi2_util.dir/status.cc.o"
  "CMakeFiles/cpi2_util.dir/status.cc.o.d"
  "CMakeFiles/cpi2_util.dir/string_util.cc.o"
  "CMakeFiles/cpi2_util.dir/string_util.cc.o.d"
  "CMakeFiles/cpi2_util.dir/time_series.cc.o"
  "CMakeFiles/cpi2_util.dir/time_series.cc.o.d"
  "libcpi2_util.a"
  "libcpi2_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
