# Empty dependencies file for cpi2_util.
# This may be replaced when dependencies are built.
