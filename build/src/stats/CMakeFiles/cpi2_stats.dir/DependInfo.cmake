
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/cpi2_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/cpi2_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/distribution.cc" "src/stats/CMakeFiles/cpi2_stats.dir/distribution.cc.o" "gcc" "src/stats/CMakeFiles/cpi2_stats.dir/distribution.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/cpi2_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/cpi2_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/ks_test.cc" "src/stats/CMakeFiles/cpi2_stats.dir/ks_test.cc.o" "gcc" "src/stats/CMakeFiles/cpi2_stats.dir/ks_test.cc.o.d"
  "/root/repo/src/stats/streaming.cc" "src/stats/CMakeFiles/cpi2_stats.dir/streaming.cc.o" "gcc" "src/stats/CMakeFiles/cpi2_stats.dir/streaming.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/stats/CMakeFiles/cpi2_stats.dir/summary.cc.o" "gcc" "src/stats/CMakeFiles/cpi2_stats.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpi2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
