# Empty compiler generated dependencies file for cpi2_stats.
# This may be replaced when dependencies are built.
