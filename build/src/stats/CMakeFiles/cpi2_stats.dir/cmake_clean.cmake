file(REMOVE_RECURSE
  "CMakeFiles/cpi2_stats.dir/correlation.cc.o"
  "CMakeFiles/cpi2_stats.dir/correlation.cc.o.d"
  "CMakeFiles/cpi2_stats.dir/distribution.cc.o"
  "CMakeFiles/cpi2_stats.dir/distribution.cc.o.d"
  "CMakeFiles/cpi2_stats.dir/histogram.cc.o"
  "CMakeFiles/cpi2_stats.dir/histogram.cc.o.d"
  "CMakeFiles/cpi2_stats.dir/ks_test.cc.o"
  "CMakeFiles/cpi2_stats.dir/ks_test.cc.o.d"
  "CMakeFiles/cpi2_stats.dir/streaming.cc.o"
  "CMakeFiles/cpi2_stats.dir/streaming.cc.o.d"
  "CMakeFiles/cpi2_stats.dir/summary.cc.o"
  "CMakeFiles/cpi2_stats.dir/summary.cc.o.d"
  "libcpi2_stats.a"
  "libcpi2_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
