file(REMOVE_RECURSE
  "libcpi2_stats.a"
)
