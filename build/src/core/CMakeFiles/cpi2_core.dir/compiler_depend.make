# Empty compiler generated dependencies file for cpi2_core.
# This may be replaced when dependencies are built.
