file(REMOVE_RECURSE
  "libcpi2_core.a"
)
