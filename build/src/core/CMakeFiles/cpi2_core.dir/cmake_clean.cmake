file(REMOVE_RECURSE
  "CMakeFiles/cpi2_core.dir/adaptive_throttle.cc.o"
  "CMakeFiles/cpi2_core.dir/adaptive_throttle.cc.o.d"
  "CMakeFiles/cpi2_core.dir/agent.cc.o"
  "CMakeFiles/cpi2_core.dir/agent.cc.o.d"
  "CMakeFiles/cpi2_core.dir/aggregator.cc.o"
  "CMakeFiles/cpi2_core.dir/aggregator.cc.o.d"
  "CMakeFiles/cpi2_core.dir/antagonist_identifier.cc.o"
  "CMakeFiles/cpi2_core.dir/antagonist_identifier.cc.o.d"
  "CMakeFiles/cpi2_core.dir/correlation.cc.o"
  "CMakeFiles/cpi2_core.dir/correlation.cc.o.d"
  "CMakeFiles/cpi2_core.dir/enforcement.cc.o"
  "CMakeFiles/cpi2_core.dir/enforcement.cc.o.d"
  "CMakeFiles/cpi2_core.dir/incident.cc.o"
  "CMakeFiles/cpi2_core.dir/incident.cc.o.d"
  "CMakeFiles/cpi2_core.dir/incident_log.cc.o"
  "CMakeFiles/cpi2_core.dir/incident_log.cc.o.d"
  "CMakeFiles/cpi2_core.dir/incident_log_io.cc.o"
  "CMakeFiles/cpi2_core.dir/incident_log_io.cc.o.d"
  "CMakeFiles/cpi2_core.dir/outlier_detector.cc.o"
  "CMakeFiles/cpi2_core.dir/outlier_detector.cc.o.d"
  "CMakeFiles/cpi2_core.dir/params.cc.o"
  "CMakeFiles/cpi2_core.dir/params.cc.o.d"
  "CMakeFiles/cpi2_core.dir/placement_advisor.cc.o"
  "CMakeFiles/cpi2_core.dir/placement_advisor.cc.o.d"
  "CMakeFiles/cpi2_core.dir/spec_builder.cc.o"
  "CMakeFiles/cpi2_core.dir/spec_builder.cc.o.d"
  "CMakeFiles/cpi2_core.dir/spec_store.cc.o"
  "CMakeFiles/cpi2_core.dir/spec_store.cc.o.d"
  "CMakeFiles/cpi2_core.dir/types.cc.o"
  "CMakeFiles/cpi2_core.dir/types.cc.o.d"
  "libcpi2_core.a"
  "libcpi2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
