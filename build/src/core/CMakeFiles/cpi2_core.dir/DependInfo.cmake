
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_throttle.cc" "src/core/CMakeFiles/cpi2_core.dir/adaptive_throttle.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/adaptive_throttle.cc.o.d"
  "/root/repo/src/core/agent.cc" "src/core/CMakeFiles/cpi2_core.dir/agent.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/agent.cc.o.d"
  "/root/repo/src/core/aggregator.cc" "src/core/CMakeFiles/cpi2_core.dir/aggregator.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/aggregator.cc.o.d"
  "/root/repo/src/core/antagonist_identifier.cc" "src/core/CMakeFiles/cpi2_core.dir/antagonist_identifier.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/antagonist_identifier.cc.o.d"
  "/root/repo/src/core/correlation.cc" "src/core/CMakeFiles/cpi2_core.dir/correlation.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/correlation.cc.o.d"
  "/root/repo/src/core/enforcement.cc" "src/core/CMakeFiles/cpi2_core.dir/enforcement.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/enforcement.cc.o.d"
  "/root/repo/src/core/incident.cc" "src/core/CMakeFiles/cpi2_core.dir/incident.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/incident.cc.o.d"
  "/root/repo/src/core/incident_log.cc" "src/core/CMakeFiles/cpi2_core.dir/incident_log.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/incident_log.cc.o.d"
  "/root/repo/src/core/incident_log_io.cc" "src/core/CMakeFiles/cpi2_core.dir/incident_log_io.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/incident_log_io.cc.o.d"
  "/root/repo/src/core/outlier_detector.cc" "src/core/CMakeFiles/cpi2_core.dir/outlier_detector.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/outlier_detector.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/cpi2_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/params.cc.o.d"
  "/root/repo/src/core/placement_advisor.cc" "src/core/CMakeFiles/cpi2_core.dir/placement_advisor.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/placement_advisor.cc.o.d"
  "/root/repo/src/core/spec_builder.cc" "src/core/CMakeFiles/cpi2_core.dir/spec_builder.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/spec_builder.cc.o.d"
  "/root/repo/src/core/spec_store.cc" "src/core/CMakeFiles/cpi2_core.dir/spec_store.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/spec_store.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/cpi2_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/cpi2_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpi2_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cpi2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/cpi2_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/cpi2_cgroup.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
