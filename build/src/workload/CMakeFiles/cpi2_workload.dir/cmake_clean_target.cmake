file(REMOVE_RECURSE
  "libcpi2_workload.a"
)
