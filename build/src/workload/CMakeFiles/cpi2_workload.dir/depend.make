# Empty dependencies file for cpi2_workload.
# This may be replaced when dependencies are built.
