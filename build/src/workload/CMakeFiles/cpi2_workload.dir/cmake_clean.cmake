file(REMOVE_RECURSE
  "CMakeFiles/cpi2_workload.dir/cluster_builder.cc.o"
  "CMakeFiles/cpi2_workload.dir/cluster_builder.cc.o.d"
  "CMakeFiles/cpi2_workload.dir/mapreduce.cc.o"
  "CMakeFiles/cpi2_workload.dir/mapreduce.cc.o.d"
  "CMakeFiles/cpi2_workload.dir/profiles.cc.o"
  "CMakeFiles/cpi2_workload.dir/profiles.cc.o.d"
  "CMakeFiles/cpi2_workload.dir/search_service.cc.o"
  "CMakeFiles/cpi2_workload.dir/search_service.cc.o.d"
  "libcpi2_workload.a"
  "libcpi2_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
