file(REMOVE_RECURSE
  "libcpi2_harness.a"
)
