file(REMOVE_RECURSE
  "CMakeFiles/cpi2_harness.dir/cluster_harness.cc.o"
  "CMakeFiles/cpi2_harness.dir/cluster_harness.cc.o.d"
  "libcpi2_harness.a"
  "libcpi2_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
