# Empty compiler generated dependencies file for cpi2_harness.
# This may be replaced when dependencies are built.
