# Empty compiler generated dependencies file for cpi2_sim.
# This may be replaced when dependencies are built.
