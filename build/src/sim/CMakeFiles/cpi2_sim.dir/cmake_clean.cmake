file(REMOVE_RECURSE
  "CMakeFiles/cpi2_sim.dir/cluster.cc.o"
  "CMakeFiles/cpi2_sim.dir/cluster.cc.o.d"
  "CMakeFiles/cpi2_sim.dir/interference.cc.o"
  "CMakeFiles/cpi2_sim.dir/interference.cc.o.d"
  "CMakeFiles/cpi2_sim.dir/machine.cc.o"
  "CMakeFiles/cpi2_sim.dir/machine.cc.o.d"
  "CMakeFiles/cpi2_sim.dir/platform.cc.o"
  "CMakeFiles/cpi2_sim.dir/platform.cc.o.d"
  "CMakeFiles/cpi2_sim.dir/scheduler.cc.o"
  "CMakeFiles/cpi2_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/cpi2_sim.dir/task.cc.o"
  "CMakeFiles/cpi2_sim.dir/task.cc.o.d"
  "CMakeFiles/cpi2_sim.dir/trace.cc.o"
  "CMakeFiles/cpi2_sim.dir/trace.cc.o.d"
  "libcpi2_sim.a"
  "libcpi2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
