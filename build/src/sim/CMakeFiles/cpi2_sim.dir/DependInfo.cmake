
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/cpi2_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/cpi2_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/interference.cc" "src/sim/CMakeFiles/cpi2_sim.dir/interference.cc.o" "gcc" "src/sim/CMakeFiles/cpi2_sim.dir/interference.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/cpi2_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/cpi2_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/platform.cc" "src/sim/CMakeFiles/cpi2_sim.dir/platform.cc.o" "gcc" "src/sim/CMakeFiles/cpi2_sim.dir/platform.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/cpi2_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/cpi2_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/task.cc" "src/sim/CMakeFiles/cpi2_sim.dir/task.cc.o" "gcc" "src/sim/CMakeFiles/cpi2_sim.dir/task.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/cpi2_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/cpi2_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpi2_util.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/cpi2_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/cpi2_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpi2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cpi2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
