file(REMOVE_RECURSE
  "libcpi2_sim.a"
)
