file(REMOVE_RECURSE
  "libcpi2_cgroup.a"
)
