file(REMOVE_RECURSE
  "CMakeFiles/cpi2_cgroup.dir/fs_cpu_controller.cc.o"
  "CMakeFiles/cpi2_cgroup.dir/fs_cpu_controller.cc.o.d"
  "libcpi2_cgroup.a"
  "libcpi2_cgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_cgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
