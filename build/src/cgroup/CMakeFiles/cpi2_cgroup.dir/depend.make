# Empty dependencies file for cpi2_cgroup.
# This may be replaced when dependencies are built.
