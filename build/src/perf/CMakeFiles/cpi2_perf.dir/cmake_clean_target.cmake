file(REMOVE_RECURSE
  "libcpi2_perf.a"
)
