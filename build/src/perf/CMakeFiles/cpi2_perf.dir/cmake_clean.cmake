file(REMOVE_RECURSE
  "CMakeFiles/cpi2_perf.dir/counters.cc.o"
  "CMakeFiles/cpi2_perf.dir/counters.cc.o.d"
  "CMakeFiles/cpi2_perf.dir/perf_event_source.cc.o"
  "CMakeFiles/cpi2_perf.dir/perf_event_source.cc.o.d"
  "CMakeFiles/cpi2_perf.dir/sampler.cc.o"
  "CMakeFiles/cpi2_perf.dir/sampler.cc.o.d"
  "libcpi2_perf.a"
  "libcpi2_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
