# Empty compiler generated dependencies file for cpi2_perf.
# This may be replaced when dependencies are built.
