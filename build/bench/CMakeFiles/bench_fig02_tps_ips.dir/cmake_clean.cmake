file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_tps_ips.dir/bench_fig02_tps_ips.cc.o"
  "CMakeFiles/bench_fig02_tps_ips.dir/bench_fig02_tps_ips.cc.o.d"
  "bench_fig02_tps_ips"
  "bench_fig02_tps_ips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_tps_ips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
