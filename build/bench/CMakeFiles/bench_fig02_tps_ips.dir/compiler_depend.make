# Empty compiler generated dependencies file for bench_fig02_tps_ips.
# This may be replaced when dependencies are built.
