# Empty dependencies file for bench_fig16_production_benefit.
# This may be replaced when dependencies are built.
