file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_production_benefit.dir/bench_fig16_production_benefit.cc.o"
  "CMakeFiles/bench_fig16_production_benefit.dir/bench_fig16_production_benefit.cc.o.d"
  "bench_fig16_production_benefit"
  "bench_fig16_production_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_production_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
