file(REMOVE_RECURSE
  "CMakeFiles/bench_case1_suspects.dir/bench_case1_suspects.cc.o"
  "CMakeFiles/bench_case1_suspects.dir/bench_case1_suspects.cc.o.d"
  "bench_case1_suspects"
  "bench_case1_suspects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case1_suspects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
