# Empty dependencies file for bench_case1_suspects.
# This may be replaced when dependencies are built.
