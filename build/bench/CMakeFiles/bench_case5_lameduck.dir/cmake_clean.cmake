file(REMOVE_RECURSE
  "CMakeFiles/bench_case5_lameduck.dir/bench_case5_lameduck.cc.o"
  "CMakeFiles/bench_case5_lameduck.dir/bench_case5_lameduck.cc.o.d"
  "bench_case5_lameduck"
  "bench_case5_lameduck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case5_lameduck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
