# Empty compiler generated dependencies file for bench_case5_lameduck.
# This may be replaced when dependencies are built.
