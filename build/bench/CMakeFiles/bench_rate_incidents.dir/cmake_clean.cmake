file(REMOVE_RECURSE
  "CMakeFiles/bench_rate_incidents.dir/bench_rate_incidents.cc.o"
  "CMakeFiles/bench_rate_incidents.dir/bench_rate_incidents.cc.o.d"
  "bench_rate_incidents"
  "bench_rate_incidents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_incidents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
