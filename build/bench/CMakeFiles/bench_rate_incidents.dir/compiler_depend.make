# Empty compiler generated dependencies file for bench_rate_incidents.
# This may be replaced when dependencies are built.
