
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rate_incidents.cc" "bench/CMakeFiles/bench_rate_incidents.dir/bench_rate_incidents.cc.o" "gcc" "bench/CMakeFiles/bench_rate_incidents.dir/bench_rate_incidents.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/cpi2_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/cpi2_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/cpi2_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cpi2_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cpi2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpi2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cpi2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/cpi2_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/cpi2_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cpi2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
