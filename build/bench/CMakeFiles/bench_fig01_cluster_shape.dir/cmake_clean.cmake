file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_cluster_shape.dir/bench_fig01_cluster_shape.cc.o"
  "CMakeFiles/bench_fig01_cluster_shape.dir/bench_fig01_cluster_shape.cc.o.d"
  "bench_fig01_cluster_shape"
  "bench_fig01_cluster_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_cluster_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
