# Empty compiler generated dependencies file for bench_fig07_gev_fit.
# This may be replaced when dependencies are built.
