file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_gev_fit.dir/bench_fig07_gev_fit.cc.o"
  "CMakeFiles/bench_fig07_gev_fit.dir/bench_fig07_gev_fit.cc.o.d"
  "bench_fig07_gev_fit"
  "bench_fig07_gev_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_gev_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
