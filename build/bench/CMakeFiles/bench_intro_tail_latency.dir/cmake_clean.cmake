file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_tail_latency.dir/bench_intro_tail_latency.cc.o"
  "CMakeFiles/bench_intro_tail_latency.dir/bench_intro_tail_latency.cc.o.d"
  "bench_intro_tail_latency"
  "bench_intro_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
