# Empty dependencies file for bench_fig05_diurnal.
# This may be replaced when dependencies are built.
