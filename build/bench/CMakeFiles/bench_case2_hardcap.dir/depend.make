# Empty dependencies file for bench_case2_hardcap.
# This may be replaced when dependencies are built.
