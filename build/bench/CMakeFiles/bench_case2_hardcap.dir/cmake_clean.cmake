file(REMOVE_RECURSE
  "CMakeFiles/bench_case2_hardcap.dir/bench_case2_hardcap.cc.o"
  "CMakeFiles/bench_case2_hardcap.dir/bench_case2_hardcap.cc.o.d"
  "bench_case2_hardcap"
  "bench_case2_hardcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case2_hardcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
