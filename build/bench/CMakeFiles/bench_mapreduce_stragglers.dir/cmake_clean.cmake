file(REMOVE_RECURSE
  "CMakeFiles/bench_mapreduce_stragglers.dir/bench_mapreduce_stragglers.cc.o"
  "CMakeFiles/bench_mapreduce_stragglers.dir/bench_mapreduce_stragglers.cc.o.d"
  "bench_mapreduce_stragglers"
  "bench_mapreduce_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapreduce_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
