# Empty compiler generated dependencies file for bench_mapreduce_stragglers.
# This may be replaced when dependencies are built.
