# Empty dependencies file for bench_ablation_adaptive_cap.
# This may be replaced when dependencies are built.
