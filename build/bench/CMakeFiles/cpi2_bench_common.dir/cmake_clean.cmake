file(REMOVE_RECURSE
  "CMakeFiles/cpi2_bench_common.dir/common/case_study.cc.o"
  "CMakeFiles/cpi2_bench_common.dir/common/case_study.cc.o.d"
  "CMakeFiles/cpi2_bench_common.dir/common/report.cc.o"
  "CMakeFiles/cpi2_bench_common.dir/common/report.cc.o.d"
  "CMakeFiles/cpi2_bench_common.dir/common/trials.cc.o"
  "CMakeFiles/cpi2_bench_common.dir/common/trials.cc.o.d"
  "libcpi2_bench_common.a"
  "libcpi2_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi2_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
