file(REMOVE_RECURSE
  "libcpi2_bench_common.a"
)
