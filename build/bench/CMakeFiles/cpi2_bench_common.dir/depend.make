# Empty dependencies file for cpi2_bench_common.
# This may be replaced when dependencies are built.
