file(REMOVE_RECURSE
  "CMakeFiles/bench_case4_residual.dir/bench_case4_residual.cc.o"
  "CMakeFiles/bench_case4_residual.dir/bench_case4_residual.cc.o.d"
  "bench_case4_residual"
  "bench_case4_residual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case4_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
