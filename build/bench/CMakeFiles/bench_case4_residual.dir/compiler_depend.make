# Empty compiler generated dependencies file for bench_case4_residual.
# This may be replaced when dependencies are built.
