file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_load_vs_antagonism.dir/bench_fig14_load_vs_antagonism.cc.o"
  "CMakeFiles/bench_fig14_load_vs_antagonism.dir/bench_fig14_load_vs_antagonism.cc.o.d"
  "bench_fig14_load_vs_antagonism"
  "bench_fig14_load_vs_antagonism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_load_vs_antagonism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
