# Empty dependencies file for bench_fig14_load_vs_antagonism.
# This may be replaced when dependencies are built.
