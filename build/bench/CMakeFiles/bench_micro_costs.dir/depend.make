# Empty dependencies file for bench_micro_costs.
# This may be replaced when dependencies are built.
