file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_costs.dir/bench_micro_costs.cc.o"
  "CMakeFiles/bench_micro_costs.dir/bench_micro_costs.cc.o.d"
  "bench_micro_costs"
  "bench_micro_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
