file(REMOVE_RECURSE
  "CMakeFiles/bench_case6_selfexit.dir/bench_case6_selfexit.cc.o"
  "CMakeFiles/bench_case6_selfexit.dir/bench_case6_selfexit.cc.o.d"
  "bench_case6_selfexit"
  "bench_case6_selfexit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case6_selfexit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
