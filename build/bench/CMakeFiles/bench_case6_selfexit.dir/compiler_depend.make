# Empty compiler generated dependencies file for bench_case6_selfexit.
# This may be replaced when dependencies are built.
