file(REMOVE_RECURSE
  "CMakeFiles/bench_case3_false_alarm.dir/bench_case3_false_alarm.cc.o"
  "CMakeFiles/bench_case3_false_alarm.dir/bench_case3_false_alarm.cc.o.d"
  "bench_case3_false_alarm"
  "bench_case3_false_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case3_false_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
