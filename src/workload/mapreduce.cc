#include "workload/mapreduce.h"

#include <algorithm>

#include "util/string_util.h"
#include "workload/profiles.h"

namespace cpi2 {
namespace {

// Finds a task anywhere in the cluster.
const Task* FindAnywhere(Cluster& cluster, const std::string& name) {
  for (Machine* machine : cluster.machines()) {
    const Task* task = machine->FindTask(name);
    if (task != nullptr) {
      return task;
    }
  }
  return nullptr;
}

}  // namespace

MapReduceJob::MapReduceJob(Cluster* cluster, MapReduceOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  if (options_.worker.job_name.empty()) {
    options_.worker = MapReduceWorkerSpec();
  }
  options_.worker.job_name = options_.name;
  shards_.resize(static_cast<size_t>(options_.shards));
}

Status MapReduceJob::Submit() {
  start_time_ = cluster_->now();
  std::vector<std::string> placed;
  for (int i = 0; i < options_.shards; ++i) {
    const std::string task_name = StrFormat("%s.%d", options_.name.c_str(), i);
    const Status status = cluster_->scheduler().PlaceTask(task_name, options_.worker);
    if (!status.ok()) {
      for (const std::string& name : placed) {
        (void)cluster_->scheduler().EvictTask(name);
      }
      return status;
    }
    placed.push_back(task_name);
    shards_[static_cast<size_t>(i)].replicas = {task_name};
  }
  return Status::Ok();
}

double MapReduceJob::Progress(const std::string& task_name) const {
  const Task* task = FindAnywhere(*cluster_, task_name);
  return task != nullptr ? static_cast<double>(task->instructions()) : 0.0;
}

void MapReduceJob::FinishShard(Shard& shard) {
  for (const std::string& replica : shard.replicas) {
    const Task* task = FindAnywhere(*cluster_, replica);
    if (task != nullptr) {
      finished_cpu_seconds_ += task->cpu_seconds();
    }
    (void)cluster_->scheduler().EvictTask(replica);
  }
  shard.replicas.clear();
  shard.done = true;
  ++shards_done_;
}

void MapReduceJob::OnTick(MicroTime now) {
  if (Done() || start_time_ < 0) {
    return;
  }

  // Harvest progress and retire finished shards. The straggler comparison
  // uses every shard's progress (finished shards count at full work), so a
  // lone laggard still reads as slow after its peers complete.
  std::vector<double> all_progress;
  all_progress.reserve(shards_.size());
  for (Shard& shard : shards_) {
    if (shard.done) {
      all_progress.push_back(options_.instructions_per_shard);
      continue;
    }
    for (const std::string& replica : shard.replicas) {
      shard.best_progress = std::max(shard.best_progress, Progress(replica));
    }
    if (shard.best_progress >= options_.instructions_per_shard) {
      FinishShard(shard);
      if (Done()) {
        completion_time_ = now;
        return;
      }
      all_progress.push_back(options_.instructions_per_shard);
      continue;
    }
    all_progress.push_back(shard.best_progress);
  }

  // Speculative execution: back up shards that have fallen far behind the
  // median shard.
  if (!options_.speculative_execution || all_progress.empty() ||
      now - start_time_ < options_.speculation_grace) {
    return;
  }
  std::nth_element(all_progress.begin(),
                   all_progress.begin() + static_cast<long>(all_progress.size() / 2),
                   all_progress.end());
  const double median = all_progress[all_progress.size() / 2];
  if (median <= 0.0) {
    return;
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (shard.done || shard.backup_launched || shard.best_progress <= 0.0) {
      continue;
    }
    if (median / shard.best_progress < options_.straggler_factor) {
      continue;
    }
    const std::string backup = StrFormat("%s.%zu.backup", options_.name.c_str(), i);
    if (cluster_->scheduler().PlaceTask(backup, options_.worker).ok()) {
      shard.replicas.push_back(backup);
      shard.backup_launched = true;
      ++backups_launched_;
    }
  }
}

double MapReduceJob::total_cpu_seconds() const {
  double total = finished_cpu_seconds_;
  for (const Shard& shard : shards_) {
    for (const std::string& replica : shard.replicas) {
      const Task* task = FindAnywhere(*cluster_, replica);
      if (task != nullptr) {
        total += task->cpu_seconds();
      }
    }
  }
  return total;
}

}  // namespace cpi2
