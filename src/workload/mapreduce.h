// A MapReduce-style batch framework with speculative execution.
//
// Section 2 of the paper: "a typical MapReduce job doesn't finish until all
// its processing has been completed, so slow shards will delay the delivery
// of results. Although identifying laggards and starting up replacements
// for them in a timely fashion often improves performance, it typically
// does so at the cost of additional resources ... Better would be to
// eliminate the original slowdown."
//
// MapReduceJob is a tick-driven master: it places one worker task per shard
// through the cluster scheduler, tracks shard progress by the instructions
// its workers retire, optionally launches backup replicas for stragglers
// (Dean & Ghemawat's speculative execution), and records completion time
// and total CPU spent. bench_mapreduce_stragglers uses it to quantify the
// paper's argument: CPI2 removes the slowdown itself, beating speculation
// on both completion time and wasted resources.

#ifndef CPI2_WORKLOAD_MAPREDUCE_H_
#define CPI2_WORKLOAD_MAPREDUCE_H_

#include <string>
#include <vector>

#include "sim/cluster.h"

namespace cpi2 {

struct MapReduceOptions {
  std::string name = "mapreduce";
  int shards = 16;
  // A shard is complete once its worker has retired this many instructions.
  double instructions_per_shard = 6e11;  // ~5 min of one busy core
  // Worker task template; job_name is overwritten per job.
  TaskSpec worker;

  // Speculative execution: when a shard's projected finish exceeds
  // straggler_factor x the median shard's, launch one backup replica.
  bool speculative_execution = false;
  double straggler_factor = 1.5;
  // Don't judge stragglers before this much of the job has run.
  MicroTime speculation_grace = 3 * kMicrosPerMinute;
};

class MapReduceJob {
 public:
  MapReduceJob(Cluster* cluster, MapReduceOptions options);

  // Places one worker per shard via the scheduler. All-or-nothing.
  Status Submit();

  // Advances the master: harvest progress, retire finished shards (their
  // tasks are evicted to free resources), launch backups for stragglers.
  // Call from a cluster tick listener.
  void OnTick(MicroTime now);

  bool Done() const { return shards_done_ == static_cast<int>(shards_.size()); }
  // Time of the last shard's completion (only valid once Done()).
  MicroTime completion_time() const { return completion_time_; }
  int shards_done() const { return shards_done_; }
  int backups_launched() const { return backups_launched_; }
  // Total CPU consumed by all replicas, including redundant backup work.
  double total_cpu_seconds() const;

 private:
  struct Shard {
    // Replica task names still running (primary first).
    std::vector<std::string> replicas;
    double best_progress = 0.0;  // instructions retired by the best replica
    bool done = false;
    bool backup_launched = false;
  };

  // Instructions retired by `task_name`, 0 if it no longer exists.
  double Progress(const std::string& task_name) const;
  void FinishShard(Shard& shard);

  Cluster* cluster_;
  MapReduceOptions options_;
  std::vector<Shard> shards_;
  MicroTime start_time_ = -1;
  MicroTime completion_time_ = -1;
  int shards_done_ = 0;
  int backups_launched_ = 0;
  // CPU-seconds banked from already-evicted replicas.
  double finished_cpu_seconds_ = 0.0;
};

}  // namespace cpi2

#endif  // CPI2_WORKLOAD_MAPREDUCE_H_
