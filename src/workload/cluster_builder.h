// Builds representative clusters with the statistical shape of Figure 1.
//
// Section 2 of the paper: jobs with many tasks are the norm (96% of tasks
// in jobs of >= 10 tasks, 87% in jobs of >= 100), ~7% of jobs run at
// production priority using ~30% of CPU, and the median machine hosts tens
// of tasks with up to thousands of threads. The builder synthesizes a job
// mix with those properties and submits it through the normal scheduler, so
// per-machine task counts emerge from placement rather than being scripted.

#ifndef CPI2_WORKLOAD_CLUSTER_BUILDER_H_
#define CPI2_WORKLOAD_CLUSTER_BUILDER_H_

#include <string>
#include <vector>

#include "sim/cluster.h"
#include "util/rng.h"

namespace cpi2 {

struct ClusterMixOptions {
  int machines = 200;
  // Target mean tasks per machine (drives how many jobs are generated).
  double mean_tasks_per_machine = 20.0;
  // Fraction of generated jobs at production priority (paper: ~7%).
  double production_job_fraction = 0.07;
  // Fraction of tasks that are latency-sensitive services.
  double latency_sensitive_fraction = 0.5;
  uint64_t seed = 1;
};

// Adds machines (mixing the two reference platforms) and submits a
// representative job mix. Returns the names of the submitted jobs.
std::vector<std::string> BuildRepresentativeCluster(Cluster* cluster,
                                                    const ClusterMixOptions& options);

// Draws a job size from a heavy-tailed distribution matching the paper's
// job-size statistics (exposed for tests).
int SampleJobSize(Rng& rng);

}  // namespace cpi2

#endif  // CPI2_WORKLOAD_CLUSTER_BUILDER_H_
