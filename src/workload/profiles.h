// Gallery of workload profiles used across the experiments.
//
// Each function returns a TaskSpec modelled on a job that appears in the
// paper: the web-search tiers of Figures 3-5, the representative
// latency-sensitive jobs of Table 1, and the antagonists from the case
// studies of section 6 (video processing, scientific simulation, a
// replayer batch job with lame-duck behaviour, a MapReduce worker that
// self-terminates under capping). Parameters are chosen so the simulated
// magnitudes land near the paper's reported numbers.

#ifndef CPI2_WORKLOAD_PROFILES_H_
#define CPI2_WORKLOAD_PROFILES_H_

#include "sim/task.h"

namespace cpi2 {

// --- web-search tiers (Figures 3, 4, 5, 7) --------------------------------
// Leaf: compute-bound scorer; latency tracks CPI closely (corr ~0.97).
TaskSpec WebSearchLeafSpec();
// Intermediate mixer: some fan-out waiting, still CPI-correlated.
TaskSpec WebSearchIntermediateSpec();
// Root: latency dominated by waiting on children; CPI barely matters.
TaskSpec WebSearchRootSpec();

// --- Table 1's representative latency-sensitive jobs ----------------------
TaskSpec TableJobASpec();  // CPI 0.88 +/- 0.09
TaskSpec TableJobBSpec();  // CPI 1.36 +/- 0.26
TaskSpec TableJobCSpec();  // CPI 2.03 +/- 0.20

// --- batch jobs ------------------------------------------------------------
// Large MapReduce-style batch worker reporting transactions (Figure 2).
TaskSpec BatchAnalyticsSpec();
// MapReduce worker that gives up under repeated capping (case 6).
TaskSpec MapReduceWorkerSpec();
// Replayer batch job with lame-duck mode under capping (case 5).
TaskSpec ReplayerBatchSpec();

// --- antagonists from the case studies -------------------------------------
// Video processing: the case-1 culprit. Heavy cache + bandwidth abuser.
TaskSpec VideoProcessingSpec();
// Scientific simulation: the only throttleable suspect in case 4.
TaskSpec ScientificSimulationSpec();
// Synthetic cache thrasher with tunable aggressiveness in [0, 1].
TaskSpec CacheThrasherSpec(double aggressiveness);
// Streaming scan: saturates memory bandwidth, little cache reuse.
TaskSpec StreamingScanSpec();
// Spinner: burns CPU in registers; high usage but harmless (an "innocent
// bystander" that tests false-positive behaviour).
TaskSpec SpinnerSpec();

// --- latency-sensitive co-tenants (case-1 suspect table) -------------------
TaskSpec ContentDigitizingSpec();
TaskSpec ImageFrontendSpec();
TaskSpec BigtableTabletSpec();
TaskSpec StorageServerSpec();

// Front-end web service with self-inflicted bimodal CPU usage (case 3).
TaskSpec BimodalFrontendSpec();

// Small latency-sensitive filler service with the given CPU appetite,
// used to populate machines with realistic co-tenants.
TaskSpec FillerServiceSpec(double cpu_demand);
// Small batch filler.
TaskSpec FillerBatchSpec(double cpu_demand);

}  // namespace cpi2

#endif  // CPI2_WORKLOAD_PROFILES_H_
