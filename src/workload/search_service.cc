#include "workload/search_service.h"

#include <algorithm>

#include "util/string_util.h"
#include "workload/profiles.h"

namespace cpi2 {
namespace {

// Finds a task anywhere in the cluster (tasks may have been placed directly
// or through the scheduler).
const Task* FindAnywhere(Cluster& cluster, const std::string& name) {
  for (Machine* machine : cluster.machines()) {
    const Task* task = machine->FindTask(name);
    if (task != nullptr) {
      return task;
    }
  }
  return nullptr;
}

}  // namespace

StatusOr<SearchService> DeploySearchService(Cluster* cluster,
                                            const SearchServiceOptions& options) {
  if (options.leaves <= 0 || options.intermediates <= 0 ||
      options.leaves < options.intermediates) {
    return InvalidArgumentError("need at least one leaf per intermediate");
  }
  SearchService service;
  service.options = options;
  Scheduler& scheduler = cluster->scheduler();

  // The tiers' own CPU latency models stay, but the fan-out parts of their
  // latency are computed by EvaluateQuery, so strip the io fraction.
  TaskSpec leaf = WebSearchLeafSpec();
  leaf.latency_io_fraction = 0.05;
  TaskSpec intermediate = WebSearchIntermediateSpec();
  intermediate.latency_io_fraction = 0.05;
  intermediate.base_latency_ms = 10.0;  // own mixing cost only
  TaskSpec root = WebSearchRootSpec();
  root.latency_io_fraction = 0.05;
  root.base_latency_ms = 8.0;  // own assembly cost only

  JobSpec leaves;
  leaves.name = leaf.job_name;
  leaves.task_count = options.leaves;
  leaves.task = leaf;
  if (const Status status = scheduler.SubmitJob(leaves); !status.ok()) {
    return status;
  }
  JobSpec intermediates;
  intermediates.name = intermediate.job_name;
  intermediates.task_count = options.intermediates;
  intermediates.task = intermediate;
  if (const Status status = scheduler.SubmitJob(intermediates); !status.ok()) {
    return status;
  }
  JobSpec roots;
  roots.name = root.job_name;
  roots.task_count = 1;
  roots.task = root;
  if (const Status status = scheduler.SubmitJob(roots); !status.ok()) {
    return status;
  }

  for (int i = 0; i < options.leaves; ++i) {
    service.leaf_tasks.push_back(StrFormat("%s.%d", leaf.job_name.c_str(), i));
  }
  for (int i = 0; i < options.intermediates; ++i) {
    service.intermediate_tasks.push_back(StrFormat("%s.%d", intermediate.job_name.c_str(), i));
  }
  service.root_task = StrFormat("%s.0", root.job_name.c_str());
  return service;
}

QueryOutcome EvaluateQuery(Cluster& cluster, const SearchService& service) {
  QueryOutcome outcome;
  const int fanout = static_cast<int>(service.intermediate_tasks.size());
  std::vector<double> intermediate_wait(static_cast<size_t>(fanout), 0.0);

  // Leaves: late replies are discarded rather than waited for.
  for (size_t i = 0; i < service.leaf_tasks.size(); ++i) {
    const Task* leaf = FindAnywhere(cluster, service.leaf_tasks[i]);
    if (leaf == nullptr) {
      ++outcome.discarded_leaves;  // dead leaf: no reply at all
      continue;
    }
    const double latency = leaf->last_latency_ms();
    const size_t parent = i % static_cast<size_t>(fanout);
    if (latency > service.options.discard_deadline_ms) {
      ++outcome.discarded_leaves;
      intermediate_wait[parent] =
          std::max(intermediate_wait[parent], service.options.discard_deadline_ms);
    } else {
      intermediate_wait[parent] = std::max(intermediate_wait[parent], latency);
    }
  }
  outcome.result_quality =
      service.leaf_tasks.empty()
          ? 0.0
          : 1.0 - static_cast<double>(outcome.discarded_leaves) /
                      static_cast<double>(service.leaf_tasks.size());

  // Intermediates add their own mixing cost on top of their slowest leaf.
  double slowest_branch = 0.0;
  for (size_t i = 0; i < service.intermediate_tasks.size(); ++i) {
    const Task* intermediate = FindAnywhere(cluster, service.intermediate_tasks[i]);
    const double own = intermediate != nullptr ? intermediate->last_latency_ms() : 0.0;
    slowest_branch = std::max(slowest_branch, own + intermediate_wait[i]);
  }

  const Task* root = FindAnywhere(cluster, service.root_task);
  const double root_own = root != nullptr ? root->last_latency_ms() : 0.0;
  outcome.latency_ms = root_own + slowest_branch;
  return outcome;
}

}  // namespace cpi2
