// Multi-tier web-search service with true query fan-out.
//
// Section 2 of the paper: "A typical web-search query involves thousands of
// machines working in parallel ... replies from leaves that take too long
// to arrive are simply discarded, lowering the quality of the search
// result." The per-task latency models in sim/task.h treat the fan-out wait
// as noise; SearchService couples the tiers for real: a query's end-to-end
// latency is the root's own compute plus the slowest intermediate, each of
// which waits on the slowest of its leaves (up to the discard deadline).
// One interfered leaf drags the whole query — which is exactly why CPI2's
// per-leaf protection matters to user-visible latency.

#ifndef CPI2_WORKLOAD_SEARCH_SERVICE_H_
#define CPI2_WORKLOAD_SEARCH_SERVICE_H_

#include <string>
#include <vector>

#include "sim/cluster.h"

namespace cpi2 {

struct SearchServiceOptions {
  int leaves = 12;
  int intermediates = 3;  // leaves are partitioned evenly among these
  // Replies arriving after the deadline are discarded (quality loss), so a
  // query's latency is bounded by it.
  double discard_deadline_ms = 200.0;
};

// Handles to the deployed tasks.
struct SearchService {
  SearchServiceOptions options;
  std::string root_task;
  std::vector<std::string> intermediate_tasks;
  std::vector<std::string> leaf_tasks;  // leaf i belongs to intermediate i % intermediates
};

// Deploys root/intermediate/leaf tasks through the cluster's scheduler.
// Returns an error if placement fails.
StatusOr<SearchService> DeploySearchService(Cluster* cluster,
                                            const SearchServiceOptions& options);

// One end-to-end query outcome at the current simulation instant.
struct QueryOutcome {
  double latency_ms = 0.0;
  // Leaves whose reply missed the deadline and was discarded.
  int discarded_leaves = 0;
  // Fraction of the corpus that contributed to the result, in (0, 1].
  double result_quality = 1.0;
};

// Evaluates a query against the tasks' current per-tier latencies:
//   leaf wait      = min(leaf latency, deadline)  [late replies discarded]
//   intermediate i = own latency + max over its leaves' waits
//   end to end     = root latency + max over intermediates
QueryOutcome EvaluateQuery(Cluster& cluster, const SearchService& service);

}  // namespace cpi2

#endif  // CPI2_WORKLOAD_SEARCH_SERVICE_H_
