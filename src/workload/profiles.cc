#include "workload/profiles.h"

#include <algorithm>

namespace cpi2 {

TaskSpec WebSearchLeafSpec() {
  TaskSpec spec;
  spec.job_name = "websearch-leaf";
  spec.sched_class = WorkloadClass::kLatencySensitive;
  spec.priority = JobPriority::kProduction;
  spec.cpu_request = 1.2;
  spec.base_cpu_demand = 0.6;
  spec.demand_cv = 0.08;
  spec.diurnal = {0.25, 14 * kMicrosPerHour};
  spec.base_cpi = 1.8;  // Figure 7: mean 1.8.
  spec.cpi_noise_cv = 0.05;
  spec.cache_mb = 4.0;
  spec.memory_intensity = 0.4;
  spec.contention_sensitivity = 0.8;  // Scoring is cache-hungry.
  spec.instr_per_txn = 1e7;
  spec.base_latency_ms = 40.0;  // Intro: 40 ms normal leaf latency.
  spec.latency_io_fraction = 0.08;
  spec.base_threads = 24;
  return spec;
}

TaskSpec WebSearchIntermediateSpec() {
  TaskSpec spec = WebSearchLeafSpec();
  spec.job_name = "websearch-intermediate";
  spec.base_cpu_demand = 0.4;
  spec.base_cpi = 1.4;
  spec.cache_mb = 3.0;
  spec.contention_sensitivity = 0.6;
  spec.base_latency_ms = 80.0;
  spec.latency_io_fraction = 0.35;  // Waits on leaves part of the time.
  return spec;
}

TaskSpec WebSearchRootSpec() {
  TaskSpec spec = WebSearchLeafSpec();
  spec.job_name = "websearch-root";
  spec.base_cpu_demand = 0.25;
  spec.base_cpi = 1.2;
  spec.cache_mb = 2.0;
  spec.contention_sensitivity = 0.5;
  spec.base_latency_ms = 120.0;
  // Figure 4(c): root latency is "largely determined by the response time
  // of other nodes, not the root node itself" — and straggling children
  // make those waits noisy.
  spec.latency_io_fraction = 0.95;
  spec.latency_io_noise_cv = 0.5;
  return spec;
}

TaskSpec TableJobASpec() {
  TaskSpec spec;
  spec.job_name = "table-job-a";
  spec.sched_class = WorkloadClass::kLatencySensitive;
  spec.priority = JobPriority::kProduction;
  spec.cpu_request = 0.8;
  spec.base_cpu_demand = 0.5;
  spec.base_cpi = 0.88;
  spec.cpi_noise_cv = 0.07;  // Table 1: 0.88 +/- 0.09.
  spec.cache_mb = 1.5;
  spec.memory_intensity = 0.15;
  spec.contention_sensitivity = 0.3;
  spec.base_latency_ms = 20.0;
  return spec;
}

TaskSpec TableJobBSpec() {
  TaskSpec spec = TableJobASpec();
  spec.job_name = "table-job-b";
  spec.base_cpi = 1.36;
  spec.cpi_noise_cv = 0.15;  // Table 1: 1.36 +/- 0.26.
  spec.cache_mb = 3.0;
  spec.memory_intensity = 0.35;
  spec.contention_sensitivity = 0.6;
  return spec;
}

TaskSpec TableJobCSpec() {
  TaskSpec spec = TableJobASpec();
  spec.job_name = "table-job-c";
  spec.base_cpi = 2.03;
  spec.cpi_noise_cv = 0.08;  // Table 1: 2.03 +/- 0.20.
  spec.cache_mb = 5.0;
  spec.memory_intensity = 0.5;
  spec.contention_sensitivity = 0.5;
  return spec;
}

TaskSpec BatchAnalyticsSpec() {
  TaskSpec spec;
  spec.job_name = "batch-analytics";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kNonProduction;
  spec.cpu_request = 1.0;
  spec.base_cpu_demand = 1.1;
  spec.demand_cv = 0.12;
  // Input-data phases move throughput over tens of minutes (Figure 2 shows
  // ~1x-1.8x swings of 10-minute means over two hours).
  spec.demand_walk_sigma = 0.08;
  spec.demand_walk_revert = 0.03;
  spec.base_cpi = 1.36;
  spec.cpi_noise_cv = 0.06;
  spec.cache_mb = 3.0;
  spec.memory_intensity = 0.45;
  spec.contention_sensitivity = 0.5;
  spec.instr_per_txn = 5e7;
  spec.base_threads = 8;
  return spec;
}

TaskSpec MapReduceWorkerSpec() {
  TaskSpec spec;
  spec.job_name = "mapreduce-worker";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kBestEffort;
  spec.cpu_request = 0.5;
  spec.base_cpu_demand = 1.5;
  spec.demand_cv = 0.25;
  spec.base_cpi = 1.3;
  spec.cache_mb = 3.0;
  spec.memory_intensity = 0.5;
  spec.contention_sensitivity = 0.3;
  spec.instr_per_txn = 5e7;
  spec.cap_behavior = CapBehavior::kSelfTerminate;
  spec.base_threads = 4;
  return spec;
}

TaskSpec ReplayerBatchSpec() {
  TaskSpec spec;
  spec.job_name = "replayer-batch";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kBestEffort;
  spec.cpu_request = 0.3;
  spec.base_cpu_demand = 0.65;
  spec.demand_cv = 0.15;
  spec.base_cpi = 1.1;
  spec.cache_mb = 7.0;
  spec.memory_intensity = 0.55;
  spec.contention_sensitivity = 0.2;
  spec.cap_behavior = CapBehavior::kLameDuck;
  spec.base_threads = 8;  // Case 5: ~8 threads normally, ~80 when capped.
  spec.lame_duck_duration = 40 * kMicrosPerMinute;
  return spec;
}

TaskSpec VideoProcessingSpec() {
  TaskSpec spec;
  spec.job_name = "video-processing";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kBestEffort;
  spec.cpu_request = 1.0;
  spec.base_cpu_demand = 5.5;  // Case 1: antagonist CPU usage swings up to ~7.
  spec.demand_cv = 0.35;
  spec.base_cpi = 0.9;
  spec.cache_mb = 18.0;  // Exceeds the 12 MB L3: maximal pollution.
  spec.memory_intensity = 0.9;
  spec.contention_sensitivity = 0.05;
  spec.base_threads = 16;
  return spec;
}

TaskSpec ScientificSimulationSpec() {
  TaskSpec spec;
  spec.job_name = "scientific-simulation";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kNonProduction;
  spec.cpu_request = 1.0;
  spec.base_cpu_demand = 1.6;
  spec.demand_cv = 0.2;
  spec.base_cpi = 1.5;
  spec.cache_mb = 8.0;
  spec.memory_intensity = 0.6;
  spec.contention_sensitivity = 0.2;
  spec.base_threads = 8;
  return spec;
}

TaskSpec CacheThrasherSpec(double aggressiveness) {
  const double a = std::clamp(aggressiveness, 0.0, 1.0);
  TaskSpec spec;
  spec.job_name = "cache-thrasher";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kBestEffort;
  spec.cpu_request = 0.5;
  // Aggressiveness mostly buys cache/bus abuse, not raw CPU: a thrasher's
  // damage is disproportionate to its CPU usage (that asymmetry is why
  // Figure 14 finds antagonism uncorrelated with machine load).
  spec.base_cpu_demand = 1.2 + 2.0 * a;
  spec.demand_cv = 0.2;
  spec.base_cpi = 1.0 + a;
  spec.cache_mb = 4.0 + 20.0 * a;
  spec.memory_intensity = 0.35 + 0.65 * a;
  spec.contention_sensitivity = 0.1;
  return spec;
}

TaskSpec StreamingScanSpec() {
  TaskSpec spec;
  spec.job_name = "streaming-scan";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kBestEffort;
  spec.cpu_request = 0.5;
  spec.base_cpu_demand = 2.0;
  spec.demand_cv = 0.15;
  spec.base_cpi = 2.2;
  spec.cache_mb = 14.0;
  spec.memory_intensity = 1.0;
  spec.contention_sensitivity = 0.05;
  return spec;
}

TaskSpec SpinnerSpec() {
  TaskSpec spec;
  spec.job_name = "spinner";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kBestEffort;
  spec.cpu_request = 1.0;
  spec.base_cpu_demand = 3.0;
  spec.demand_cv = 0.1;
  spec.base_cpi = 0.5;   // Register-resident arithmetic.
  spec.cache_mb = 0.2;   // Touches almost no cache...
  spec.memory_intensity = 0.02;
  spec.contention_sensitivity = 0.05;
  return spec;
}

TaskSpec ContentDigitizingSpec() {
  TaskSpec spec;
  spec.job_name = "content-digitizing";
  spec.sched_class = WorkloadClass::kLatencySensitive;
  spec.priority = JobPriority::kNonProduction;
  spec.cpu_request = 1.0;
  spec.base_cpu_demand = 0.9;
  spec.demand_cv = 0.2;
  spec.base_cpi = 1.5;
  spec.cache_mb = 5.0;
  spec.memory_intensity = 0.5;
  spec.contention_sensitivity = 0.4;
  spec.base_latency_ms = 60.0;
  return spec;
}

TaskSpec ImageFrontendSpec() {
  TaskSpec spec;
  spec.job_name = "image-frontend";
  spec.sched_class = WorkloadClass::kLatencySensitive;
  spec.priority = JobPriority::kProduction;
  spec.cpu_request = 0.8;
  spec.base_cpu_demand = 0.5;
  spec.demand_cv = 0.2;
  spec.base_cpi = 1.3;
  spec.cache_mb = 4.0;
  spec.memory_intensity = 0.4;
  spec.contention_sensitivity = 0.5;
  spec.base_latency_ms = 50.0;
  return spec;
}

TaskSpec BigtableTabletSpec() {
  TaskSpec spec;
  spec.job_name = "bigtable-tablet";
  spec.sched_class = WorkloadClass::kLatencySensitive;
  spec.priority = JobPriority::kProduction;
  spec.cpu_request = 1.0;
  spec.base_cpu_demand = 0.6;
  spec.demand_cv = 0.3;
  spec.base_cpi = 1.6;
  spec.cache_mb = 6.0;
  spec.memory_intensity = 0.55;
  spec.contention_sensitivity = 0.6;
  spec.base_latency_ms = 10.0;
  spec.latency_io_fraction = 0.4;
  return spec;
}

TaskSpec StorageServerSpec() {
  TaskSpec spec;
  spec.job_name = "storage-server";
  spec.sched_class = WorkloadClass::kLatencySensitive;
  spec.priority = JobPriority::kProduction;
  spec.cpu_request = 0.6;
  spec.base_cpu_demand = 0.4;
  spec.demand_cv = 0.35;
  spec.base_cpi = 1.1;
  spec.cache_mb = 2.0;
  spec.memory_intensity = 0.3;
  spec.contention_sensitivity = 0.3;
  spec.base_latency_ms = 15.0;
  spec.latency_io_fraction = 0.7;
  return spec;
}

TaskSpec BimodalFrontendSpec() {
  TaskSpec spec;
  spec.job_name = "bimodal-frontend";
  spec.sched_class = WorkloadClass::kLatencySensitive;
  spec.priority = JobPriority::kProduction;
  spec.cpu_request = 0.5;
  // Case 3: CPU usage alternates between ~0.3 and near zero; CPI swings
  // from ~3 to ~10 entirely self-inflicted.
  spec.base_cpu_demand = 0.32;
  spec.alt_cpu_demand = 0.04;
  spec.mode_half_period = 8 * kMicrosPerMinute;
  spec.demand_cv = 0.15;
  spec.base_cpi = 3.0;
  // A noisy front-end: its spec is wide, which (together with the usage
  // floor) is why nothing correlates with its self-inflicted swings.
  spec.cpi_noise_cv = 0.22;
  spec.cpi_task_cv = 0.12;
  spec.idle_cpi_inflation = 2.6;
  spec.cache_mb = 2.0;
  spec.memory_intensity = 0.3;
  spec.contention_sensitivity = 0.4;
  spec.base_latency_ms = 30.0;
  return spec;
}

TaskSpec FillerServiceSpec(double cpu_demand) {
  TaskSpec spec;
  spec.job_name = "filler-service";
  spec.sched_class = WorkloadClass::kLatencySensitive;
  spec.priority = JobPriority::kNonProduction;
  spec.cpu_request = cpu_demand * 1.3;
  spec.base_cpu_demand = cpu_demand;
  spec.demand_cv = 0.2;
  spec.diurnal = {0.25, 14 * kMicrosPerHour};
  spec.base_cpi = 1.2;
  spec.cpi_noise_cv = 0.06;
  spec.cache_mb = 2.0;
  spec.memory_intensity = 0.25;
  spec.contention_sensitivity = 0.4;
  spec.base_latency_ms = 25.0;
  spec.base_threads = 12;
  return spec;
}

TaskSpec FillerBatchSpec(double cpu_demand) {
  TaskSpec spec;
  spec.job_name = "filler-batch";
  spec.sched_class = WorkloadClass::kBatch;
  spec.priority = JobPriority::kNonProduction;
  spec.cpu_request = cpu_demand * 0.8;  // Batch requests are overcommitted.
  spec.base_cpu_demand = cpu_demand;
  spec.demand_cv = 0.3;
  spec.base_cpi = 1.4;
  spec.cpi_noise_cv = 0.08;
  spec.cache_mb = 3.0;
  spec.memory_intensity = 0.35;
  spec.contention_sensitivity = 0.3;
  spec.base_threads = 6;
  return spec;
}

}  // namespace cpi2
