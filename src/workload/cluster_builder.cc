#include "workload/cluster_builder.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"
#include "workload/profiles.h"

namespace cpi2 {

int SampleJobSize(Rng& rng) {
  // Mixture tuned to the paper's statistics: 96% of tasks in jobs >= 10
  // tasks, 87% in jobs >= 100. Mostly mid-size jobs with a heavy tail.
  const double u = rng.NextDouble();
  if (u < 0.30) {
    return static_cast<int>(rng.UniformInt(1, 9));  // Many tiny jobs, few tasks total.
  }
  if (u < 0.75) {
    return static_cast<int>(rng.UniformInt(10, 99));
  }
  // Pareto tail from 100 tasks up, truncated.
  const int size = static_cast<int>(rng.Pareto(100.0, 1.2));
  return std::min(size, 3000);
}

std::vector<std::string> BuildRepresentativeCluster(Cluster* cluster,
                                                    const ClusterMixOptions& options) {
  Rng rng(options.seed);

  const int newer = options.machines * 2 / 3;
  cluster->AddMachines(ReferencePlatform(), newer);
  cluster->AddMachines(OlderPlatform(), options.machines - newer);
  cluster->BuildScheduler();

  const auto target_tasks =
      static_cast<int64_t>(options.mean_tasks_per_machine * options.machines);
  std::vector<std::string> jobs;
  int64_t placed_tasks = 0;
  int job_index = 0;
  while (placed_tasks < target_tasks) {
    const int size = SampleJobSize(rng);
    const bool latency_sensitive = rng.Bernoulli(options.latency_sensitive_fraction);
    const bool production = rng.Bernoulli(options.production_job_fraction);

    JobSpec job;
    job.task_count = size;
    if (latency_sensitive) {
      job.task = FillerServiceSpec(rng.Uniform(0.05, 0.5));
      job.task.base_threads = static_cast<int>(rng.UniformInt(8, 320));
    } else {
      job.task = FillerBatchSpec(rng.Uniform(0.1, 0.8));
      job.task.base_threads = static_cast<int>(rng.UniformInt(2, 40));
    }
    job.task.priority = production ? JobPriority::kProduction
                                   : (rng.Bernoulli(0.3) ? JobPriority::kBestEffort
                                                         : JobPriority::kNonProduction);
    // Vary the microarchitectural character across jobs.
    job.task.base_cpi *= rng.Uniform(0.7, 1.5);
    job.task.cache_mb *= rng.Uniform(0.5, 2.5);
    job.task.memory_intensity =
        std::clamp(job.task.memory_intensity * rng.Uniform(0.5, 2.0), 0.0, 1.0);
    job.name = StrFormat("%s-%03d", latency_sensitive ? "svc" : "batch", job_index++);

    const Status status = cluster->scheduler().SubmitJob(job);
    if (status.ok()) {
      jobs.push_back(job.name);
      placed_tasks += size;
    } else if (size > 200) {
      // Big jobs may simply not fit near the end; try smaller ones.
      continue;
    } else {
      // Cluster is full.
      break;
    }
  }
  CPI2_LOG(INFO) << "built cluster: " << options.machines << " machines, " << jobs.size()
                 << " jobs, " << placed_tasks << " tasks";
  return jobs;
}

}  // namespace cpi2
