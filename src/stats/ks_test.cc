#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>

namespace cpi2 {

double KsStatistic(const std::vector<double>& data, const Distribution& model) {
  if (data.empty()) {
    return 1.0;
  }
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f = model.Cdf(sorted[i]);
    const double ecdf_before = static_cast<double>(i) / n;
    const double ecdf_after = static_cast<double>(i + 1) / n;
    d = std::max(d, std::fabs(f - ecdf_before));
    d = std::max(d, std::fabs(f - ecdf_after));
  }
  return d;
}

}  // namespace cpi2
