#include "stats/streaming.h"

#include <cmath>

namespace cpi2 {

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(count_) * static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::coefficient_of_variation() const {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

}  // namespace cpi2
