// Fixed-width histogram over a bounded range, with overflow/underflow bins.
//
// Backs the CPI-distribution plot of Figure 7 and the sample-percentage rows
// the paper reports there.

#ifndef CPI2_STATS_HISTOGRAM_H_
#define CPI2_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cpi2 {

class Histogram {
 public:
  // Bins [lo, hi) into `bins` equal-width buckets. Samples outside the range
  // land in dedicated underflow/overflow counters.
  Histogram(double lo, double hi, int bins);

  void Add(double x);

  int64_t total() const { return total_; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int bins() const { return static_cast<int>(counts_.size()); }

  // Center x of bin `i`.
  double BinCenter(int i) const;
  // Count and fraction of total in bin `i`.
  int64_t BinCount(int i) const { return counts_[static_cast<size_t>(i)]; }
  double BinFraction(int i) const;

  // (bin center, fraction) rows for plotting; skips empty edge bins.
  std::vector<std::pair<double, double>> Rows() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_STATS_HISTOGRAM_H_
