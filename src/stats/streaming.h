// Streaming (single-pass) moment accumulation using Welford's algorithm.
//
// The spec builder aggregates tens of thousands of CPI samples per job per
// day; it must do so in O(1) memory per job x platform without numerical
// blow-up. Welford's update is the standard numerically-stable choice.

#ifndef CPI2_STATS_STREAMING_H_
#define CPI2_STATS_STREAMING_H_

#include <cstdint>
#include <limits>

namespace cpi2 {

class StreamingStats {
 public:
  StreamingStats() = default;

  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
    sum_ += x;
  }

  // Merges another accumulator (Chan et al. parallel formula).
  void Merge(const StreamingStats& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;

  // Population variance (n denominator).
  double population_variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  // Coefficient of variation: stddev / mean (0 if mean is 0).
  double coefficient_of_variation() const;

  void Reset() { *this = StreamingStats(); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cpi2

#endif  // CPI2_STATS_STREAMING_H_
