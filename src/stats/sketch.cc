#include "stats/sketch.h"

#include <cmath>
#include <cstring>

namespace cpi2 {

int64_t CpiSketch::Quantize(double value) {
  if (std::isnan(value)) {
    return 0;
  }
  const double scaled = value * kQuantScale;
  if (scaled >= static_cast<double>(kQuantClamp)) {
    return kQuantClamp;
  }
  if (scaled <= -static_cast<double>(kQuantClamp)) {
    return -kQuantClamp;
  }
  return std::llround(scaled);
}

int CpiSketch::BucketOf(double cpi) {
  if (!(cpi > 0.0) || std::isnan(cpi)) {
    return -1;  // non-positive (or NaN) cpi is degenerate: underflow
  }
  if (std::isinf(cpi)) {
    return kNumBuckets;
  }
  uint64_t bits;
  std::memcpy(&bits, &cpi, sizeof(bits));
  const int raw_exponent = static_cast<int>((bits >> 52) & 0x7ff);
  if (raw_exponent == 0) {
    return -1;  // subnormal: far below the bottom edge
  }
  // cpi = 1.mantissa * 2^octave with octave = e - 1023, so cpi lies in
  // [2^octave, 2^(octave+1)). Sub-bucket from the top two mantissa bits.
  const int octave = raw_exponent - 1023;
  if (octave < kMinOctave) {
    return -1;
  }
  if (octave >= kMinOctave + kNumOctaves) {
    return kNumBuckets;
  }
  const int sub = static_cast<int>((bits >> 50) & 0x3);
  return (octave - kMinOctave) * kBucketsPerOctave + sub;
}

double CpiSketch::BucketLowerEdge(int i) {
  const int octave = kMinOctave + i / kBucketsPerOctave;
  const int sub = i % kBucketsPerOctave;
  return std::ldexp(1.0 + static_cast<double>(sub) / kBucketsPerOctave, octave);
}

void CpiSketch::Add(double cpi, double usage) {
  ++state_.count;
  const int64_t cpi_q = Quantize(cpi);
  state_.cpi_sum_q += cpi_q;
  state_.cpi_sq_sum_q +=
      static_cast<unsigned __int128>(static_cast<__int128>(cpi_q) * cpi_q);
  state_.usage_sum_q += Quantize(usage);
  const int bucket = BucketOf(cpi);
  if (bucket < 0) {
    ++state_.underflow;
  } else if (bucket >= kNumBuckets) {
    ++state_.overflow;
  } else {
    ++state_.buckets[static_cast<size_t>(bucket)];
  }
}

void CpiSketch::Merge(const CpiSketch& other) {
  state_.count += other.state_.count;
  state_.cpi_sum_q += other.state_.cpi_sum_q;
  state_.cpi_sq_sum_q += other.state_.cpi_sq_sum_q;
  state_.usage_sum_q += other.state_.usage_sum_q;
  state_.underflow += other.state_.underflow;
  state_.overflow += other.state_.overflow;
  for (int i = 0; i < kNumBuckets; ++i) {
    state_.buckets[static_cast<size_t>(i)] += other.state_.buckets[static_cast<size_t>(i)];
  }
}

double CpiSketch::cpi_mean() const {
  if (state_.count == 0) {
    return 0.0;
  }
  return (static_cast<double>(state_.cpi_sum_q) / static_cast<double>(state_.count)) *
         kInvQuantScale;
}

double CpiSketch::cpi_m2() const {
  if (state_.count < 2) {
    return 0.0;
  }
  const double sum = static_cast<double>(state_.cpi_sum_q);
  const double sum_sq = static_cast<double>(state_.cpi_sq_sum_q);
  const double n = static_cast<double>(state_.count);
  const double m2_q = sum_sq - (sum / n) * sum;
  return (m2_q > 0.0 ? m2_q : 0.0) * (kInvQuantScale * kInvQuantScale);
}

double CpiSketch::cpi_variance() const {
  return state_.count > 1 ? cpi_m2() / static_cast<double>(state_.count - 1) : 0.0;
}

double CpiSketch::usage_mean() const {
  if (state_.count == 0) {
    return 0.0;
  }
  return (static_cast<double>(state_.usage_sum_q) / static_cast<double>(state_.count)) *
         kInvQuantScale;
}

double CpiSketch::ApproxQuantile(double q) const {
  if (state_.count == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(state_.count - 1)) + 1;
  uint64_t seen = state_.underflow;
  if (rank <= seen) {
    return BucketLowerEdge(0);
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += state_.buckets[static_cast<size_t>(i)];
    if (rank <= seen) {
      const double lo = BucketLowerEdge(i);
      const double hi =
          i + 1 < kNumBuckets ? BucketLowerEdge(i + 1) : 2.0 * BucketLowerEdge(i);
      return std::sqrt(lo * hi);
    }
  }
  return BucketLowerEdge(kNumBuckets - 1);  // overflow: top edge
}

bool CpiSketch::operator==(const CpiSketch& other) const {
  return state_.count == other.state_.count &&
         state_.cpi_sum_q == other.state_.cpi_sum_q &&
         state_.cpi_sq_sum_q == other.state_.cpi_sq_sum_q &&
         state_.usage_sum_q == other.state_.usage_sum_q &&
         state_.underflow == other.state_.underflow &&
         state_.overflow == other.state_.overflow && state_.buckets == other.state_.buckets;
}

}  // namespace cpi2
