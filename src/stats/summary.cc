#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "stats/streaming.h"

namespace cpi2 {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
  StreamingStats stats;
  for (double x : sorted_) {
    stats.Add(x);
  }
  mean_ = stats.mean();
  stddev_ = stats.stddev();
}

double EmpiricalDistribution::min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }

double EmpiricalDistribution::max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

double EmpiricalDistribution::Percentile(double p) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  if (p <= 0.0) {
    return sorted_.front();
  }
  if (p >= 1.0) {
    return sorted_.back();
  }
  const double index = p * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(index));
  const size_t hi = static_cast<size_t>(std::ceil(index));
  const double frac = index - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double EmpiricalDistribution::Cdf(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> EmpiricalDistribution::CdfCurve(int steps) const {
  std::vector<std::pair<double, double>> curve;
  if (sorted_.empty() || steps < 2) {
    return curve;
  }
  const double lo = min();
  const double hi = max();
  curve.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps - 1);
    curve.emplace_back(x, Cdf(x));
  }
  return curve;
}

}  // namespace cpi2
