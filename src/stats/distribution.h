// Parametric distributions used to model CPI data.
//
// Section 4.1 / Figure 7 of the paper fits the measured CPI distribution of
// a web-search job against normal, log-normal, Gamma and generalized
// extreme value (GEV) families and finds GEV fits best. We implement all
// four (pdf/cdf/quantile/sampling plus a fitting procedure) so the Figure 7
// harness can reproduce that comparison, and so the outlier detector's
// 2-sigma threshold can be related to tail probabilities.

#ifndef CPI2_STATS_DISTRIBUTION_H_
#define CPI2_STATS_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cpi2 {

// Common interface over the distribution families.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual std::string name() const = 0;
  virtual double Pdf(double x) const = 0;
  virtual double Cdf(double x) const = 0;
  // Inverse CDF; p must lie in (0, 1).
  virtual double Quantile(double p) const = 0;
  // Draws one variate.
  virtual double Sample(Rng& rng) const = 0;

  // Sum of log Pdf over `data` (more positive is a better fit).
  double LogLikelihood(const std::vector<double>& data) const;

  // Human-readable parameter summary, e.g. "GEV(1.73, 0.133, -0.053)".
  virtual std::string ToString() const = 0;
};

// N(mean, stddev^2).
class NormalDistribution : public Distribution {
 public:
  NormalDistribution(double mean, double stddev);

  std::string name() const override { return "normal"; }
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  // Maximum-likelihood fit (sample mean / stddev).
  static NormalDistribution Fit(const std::vector<double>& data);

 private:
  double mean_;
  double stddev_;
};

// exp(N(mu, sigma^2)); support x > 0.
class LogNormalDistribution : public Distribution {
 public:
  LogNormalDistribution(double mu, double sigma);

  std::string name() const override { return "log-normal"; }
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;

  // MLE on the logs of the data (non-positive samples are skipped).
  static LogNormalDistribution Fit(const std::vector<double>& data);

 private:
  double mu_;
  double sigma_;
};

// Gamma(shape k, scale theta); support x > 0.
class GammaDistribution : public Distribution {
 public:
  GammaDistribution(double shape, double scale);

  std::string name() const override { return "gamma"; }
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

  // Method-of-moments fit.
  static GammaDistribution Fit(const std::vector<double>& data);

 private:
  double shape_;
  double scale_;
};

// Generalized extreme value, location mu, scale sigma > 0, shape xi.
// Cdf(x) = exp(-t(x)) with t = (1 + xi (x-mu)/sigma)^(-1/xi) (xi != 0)
//                          or exp(-(x-mu)/sigma)            (xi == 0).
// The paper reports GEV(1.73, 0.133, -0.0534) as the best fit to Figure 7.
class GevDistribution : public Distribution {
 public:
  GevDistribution(double location, double scale, double shape);

  std::string name() const override { return "GEV"; }
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng& rng) const override;
  std::string ToString() const override;

  double location() const { return location_; }
  double scale() const { return scale_; }
  double shape() const { return shape_; }

  // L-moment (probability-weighted-moment) fit, after Hosking (1985).
  // Robust and closed-form, the standard estimator for GEV in practice.
  static GevDistribution Fit(const std::vector<double>& data);

 private:
  double location_;
  double scale_;
  double shape_;
};

// Standard normal CDF and its inverse (Acklam's rational approximation,
// relative error < 1.15e-9), exposed for reuse by tests and thresholds.
double StandardNormalCdf(double z);
double StandardNormalQuantile(double p);

// Regularized lower incomplete gamma P(a, x); backs the Gamma CDF.
double RegularizedGammaP(double a, double x);

}  // namespace cpi2

#endif  // CPI2_STATS_DISTRIBUTION_H_
