// Pearson correlation and ordinary least squares.
//
// Pearson correlation quantifies the CPI-vs-application-metric agreement in
// Figures 2-4 (the paper reports coefficients of 0.97 for TPS/IPS and
// latency/CPI). OLS backs the L3-miss-vs-CPI analysis of Figure 15(c).
// Note: this is NOT the paper's antagonist-correlation score, which is an
// asymmetric accumulation defined in core/correlation.h.

#ifndef CPI2_STATS_CORRELATION_H_
#define CPI2_STATS_CORRELATION_H_

#include <cstddef>
#include <vector>

namespace cpi2 {

// Pearson product-moment correlation of two equal-length vectors.
// Returns 0 when fewer than 2 points or either series is constant.
double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b);

struct OlsFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;         // Pearson correlation of x and y.
  double r_squared = 0.0;
  size_t n = 0;
};

// Least-squares fit of y = slope * x + intercept.
OlsFit FitOls(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace cpi2

#endif  // CPI2_STATS_CORRELATION_H_
