#include "stats/correlation.h"

#include <cmath>

namespace cpi2 {

double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  if (n < 2) {
    return 0.0;
  }
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

OlsFit FitOls(const std::vector<double>& x, const std::vector<double>& y) {
  OlsFit fit;
  const size_t n = x.size() < y.size() ? x.size() : y.size();
  fit.n = n;
  if (n < 2) {
    return fit;
  }
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  if (syy > 0.0) {
    fit.r = sxy / std::sqrt(sxx * syy);
    fit.r_squared = fit.r * fit.r;
  }
  return fit;
}

}  // namespace cpi2
