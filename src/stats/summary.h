// Empirical distribution summaries: percentiles and CDFs.
//
// Used by the figure harnesses (CDF plots in Figures 1, 14, 16) and by the
// distribution-fitting comparison in Figure 7.

#ifndef CPI2_STATS_SUMMARY_H_
#define CPI2_STATS_SUMMARY_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace cpi2 {

// An immutable empirical distribution over a sorted copy of the input.
class EmpiricalDistribution {
 public:
  explicit EmpiricalDistribution(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }
  size_t size() const { return sorted_.size(); }

  double min() const;
  double max() const;
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  // Linear-interpolated percentile, p in [0, 1].
  double Percentile(double p) const;

  // Empirical CDF: fraction of samples <= x.
  double Cdf(double x) const;

  // Sorted samples (ascending) for plotting and KS tests.
  const std::vector<double>& sorted() const { return sorted_; }

  // Evaluates the CDF at `steps` evenly spaced x positions across the data
  // range; returns (x, F(x)) rows suitable for plotting.
  std::vector<std::pair<double, double>> CdfCurve(int steps) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
};

}  // namespace cpi2

#endif  // CPI2_STATS_SUMMARY_H_
