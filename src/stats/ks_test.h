// One-sample Kolmogorov-Smirnov goodness-of-fit statistic.
//
// Figure 7's harness fits four distribution families to the same CPI data
// and picks the best; KS distance is the comparison criterion.

#ifndef CPI2_STATS_KS_TEST_H_
#define CPI2_STATS_KS_TEST_H_

#include <vector>

#include "stats/distribution.h"

namespace cpi2 {

// Maximum absolute distance between the empirical CDF of `data` and the
// model CDF. `data` need not be sorted. Returns 1.0 for empty data.
double KsStatistic(const std::vector<double>& data, const Distribution& model);

}  // namespace cpi2

#endif  // CPI2_STATS_KS_TEST_H_
