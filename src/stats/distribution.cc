#include "stats/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "stats/streaming.h"
#include "util/string_util.h"

namespace cpi2 {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kSqrt2Pi = 2.5066282746310002;

// Generic quantile by bisection on a monotone CDF, for families without a
// closed-form inverse (Gamma). `lo`/`hi` must bracket the quantile.
template <typename CdfFn>
double BisectQuantile(CdfFn cdf, double p, double lo, double hi) {
  for (int i = 0; i < 200 && hi - lo > 1e-12 * (1.0 + std::fabs(hi)); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double Distribution::LogLikelihood(const std::vector<double>& data) const {
  double total = 0.0;
  for (double x : data) {
    const double p = Pdf(x);
    total += p > 0.0 ? std::log(p) : -745.0;  // log(DBL_MIN) floor for zero density.
  }
  return total;
}

double StandardNormalCdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

double StandardNormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q;
  double r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) {
    return 0.0;
  }
  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) {
        break;
      }
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a, x) = 1 - P(a, x) (Lentz's method).
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) {
      d = tiny;
    }
    c = b + an / c;
    if (std::fabs(c) < tiny) {
      c = tiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) {
      break;
    }
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

// ---------------------------------------------------------------------------
// Normal

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  assert(stddev > 0.0);
}

double NormalDistribution::Pdf(double x) const {
  const double z = (x - mean_) / stddev_;
  return std::exp(-0.5 * z * z) / (stddev_ * kSqrt2Pi);
}

double NormalDistribution::Cdf(double x) const {
  return StandardNormalCdf((x - mean_) / stddev_);
}

double NormalDistribution::Quantile(double p) const {
  return mean_ + stddev_ * StandardNormalQuantile(p);
}

double NormalDistribution::Sample(Rng& rng) const { return rng.Normal(mean_, stddev_); }

std::string NormalDistribution::ToString() const {
  return StrFormat("Normal(%.4g, %.4g)", mean_, stddev_);
}

NormalDistribution NormalDistribution::Fit(const std::vector<double>& data) {
  StreamingStats stats;
  for (double x : data) {
    stats.Add(x);
  }
  const double sd = stats.stddev();
  return NormalDistribution(stats.mean(), sd > 0.0 ? sd : 1e-9);
}

// ---------------------------------------------------------------------------
// Log-normal

LogNormalDistribution::LogNormalDistribution(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  assert(sigma > 0.0);
}

double LogNormalDistribution::Pdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * kSqrt2Pi);
}

double LogNormalDistribution::Cdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  return StandardNormalCdf((std::log(x) - mu_) / sigma_);
}

double LogNormalDistribution::Quantile(double p) const {
  return std::exp(mu_ + sigma_ * StandardNormalQuantile(p));
}

double LogNormalDistribution::Sample(Rng& rng) const { return rng.LogNormal(mu_, sigma_); }

std::string LogNormalDistribution::ToString() const {
  return StrFormat("LogNormal(%.4g, %.4g)", mu_, sigma_);
}

LogNormalDistribution LogNormalDistribution::Fit(const std::vector<double>& data) {
  StreamingStats stats;
  for (double x : data) {
    if (x > 0.0) {
      stats.Add(std::log(x));
    }
  }
  const double sd = stats.stddev();
  return LogNormalDistribution(stats.mean(), sd > 0.0 ? sd : 1e-9);
}

// ---------------------------------------------------------------------------
// Gamma

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  assert(shape > 0.0 && scale > 0.0);
}

double GammaDistribution::Pdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  return std::exp((shape_ - 1.0) * std::log(x) - x / scale_ - std::lgamma(shape_) -
                  shape_ * std::log(scale_));
}

double GammaDistribution::Cdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  return RegularizedGammaP(shape_, x / scale_);
}

double GammaDistribution::Quantile(double p) const {
  assert(p > 0.0 && p < 1.0);
  // Bracket then bisect; mean + 20 sd always brackets for practical p.
  const double mean = shape_ * scale_;
  const double sd = std::sqrt(shape_) * scale_;
  double hi = mean + 20.0 * sd;
  while (Cdf(hi) < p) {
    hi *= 2.0;
  }
  return BisectQuantile([this](double x) { return Cdf(x); }, p, 0.0, hi);
}

double GammaDistribution::Sample(Rng& rng) const {
  // Marsaglia-Tsang for shape >= 1; boost for shape < 1.
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(rng.NextDouble(), 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.StandardNormal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return boost * d * v * scale_;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

std::string GammaDistribution::ToString() const {
  return StrFormat("Gamma(k=%.4g, theta=%.4g)", shape_, scale_);
}

GammaDistribution GammaDistribution::Fit(const std::vector<double>& data) {
  StreamingStats stats;
  for (double x : data) {
    stats.Add(x);
  }
  const double mean = stats.mean();
  const double var = stats.variance();
  if (mean <= 0.0 || var <= 0.0) {
    return GammaDistribution(1.0, 1.0);
  }
  return GammaDistribution(mean * mean / var, var / mean);
}

// ---------------------------------------------------------------------------
// GEV

GevDistribution::GevDistribution(double location, double scale, double shape)
    : location_(location), scale_(scale), shape_(shape) {
  assert(scale > 0.0);
}

double GevDistribution::Pdf(double x) const {
  const double s = (x - location_) / scale_;
  if (std::fabs(shape_) < 1e-12) {
    const double t = std::exp(-s);
    return (t * std::exp(-t)) / scale_;
  }
  const double base = 1.0 + shape_ * s;
  if (base <= 0.0) {
    return 0.0;
  }
  const double t = std::pow(base, -1.0 / shape_);
  return std::pow(t, shape_ + 1.0) * std::exp(-t) / scale_;
}

double GevDistribution::Cdf(double x) const {
  const double s = (x - location_) / scale_;
  if (std::fabs(shape_) < 1e-12) {
    return std::exp(-std::exp(-s));
  }
  const double base = 1.0 + shape_ * s;
  if (base <= 0.0) {
    // Outside the support: below it for xi > 0, above it for xi < 0.
    return shape_ > 0.0 ? 0.0 : 1.0;
  }
  return std::exp(-std::pow(base, -1.0 / shape_));
}

double GevDistribution::Quantile(double p) const {
  assert(p > 0.0 && p < 1.0);
  const double log_term = -std::log(p);
  if (std::fabs(shape_) < 1e-12) {
    return location_ - scale_ * std::log(log_term);
  }
  return location_ + scale_ * (std::pow(log_term, -shape_) - 1.0) / shape_;
}

double GevDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  while (u <= 0.0 || u >= 1.0) {
    u = rng.NextDouble();
  }
  return Quantile(u);
}

std::string GevDistribution::ToString() const {
  return StrFormat("GEV(%.4g, %.4g, %.4g)", location_, scale_, shape_);
}

GevDistribution GevDistribution::Fit(const std::vector<double>& data) {
  // Probability-weighted moments (Hosking 1985). Uses his convention
  // F(x) = exp(-(1 - k (x - xi)/alpha)^(1/k)); our shape is -k.
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  if (n < 10) {
    return GevDistribution(0.0, 1.0, 0.0);
  }
  double b0 = 0.0;
  double b1 = 0.0;
  double b2 = 0.0;
  const double dn = static_cast<double>(n);
  for (size_t j = 0; j < n; ++j) {
    const double x = sorted[j];
    const double j1 = static_cast<double>(j);  // zero-based rank
    b0 += x;
    b1 += x * j1 / (dn - 1.0);
    b2 += x * j1 * (j1 - 1.0) / ((dn - 1.0) * (dn - 2.0));
  }
  b0 /= dn;
  b1 /= dn;
  b2 /= dn;
  const double l1 = b0;
  const double l2 = 2.0 * b1 - b0;
  const double l3 = 6.0 * b2 - 6.0 * b1 + b0;
  if (l2 <= 0.0) {
    return GevDistribution(l1, 1e-9, 0.0);
  }
  const double t3 = l3 / l2;
  const double c = 2.0 / (3.0 + t3) - std::log(2.0) / std::log(3.0);
  const double k = 7.8590 * c + 2.9554 * c * c;
  if (std::fabs(k) < 1e-9) {
    // Gumbel limit.
    const double alpha = l2 / std::log(2.0);
    const double xi = l1 - 0.5772156649015329 * alpha;
    return GevDistribution(xi, alpha, 0.0);
  }
  const double gamma_1k = std::tgamma(1.0 + k);
  const double alpha = l2 * k / ((1.0 - std::pow(2.0, -k)) * gamma_1k);
  const double xi = l1 - alpha * (1.0 - gamma_1k) / k;
  return GevDistribution(xi, alpha > 0.0 ? alpha : 1e-9, -k);
}

}  // namespace cpi2
