#include "stats/histogram.h"

#include <cassert>

namespace cpi2 {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  assert(bins > 0 && hi > lo);
  counts_.assign(static_cast<size_t>(bins), 0);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<size_t>((x - lo_) / width_);
  ++counts_[bin < counts_.size() ? bin : counts_.size() - 1];
}

double Histogram::BinCenter(int i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::BinFraction(int i) const {
  return total_ > 0
             ? static_cast<double>(counts_[static_cast<size_t>(i)]) / static_cast<double>(total_)
             : 0.0;
}

std::vector<std::pair<double, double>> Histogram::Rows() const {
  std::vector<std::pair<double, double>> rows;
  int first = 0;
  int last = bins() - 1;
  while (first <= last && counts_[static_cast<size_t>(first)] == 0) {
    ++first;
  }
  while (last >= first && counts_[static_cast<size_t>(last)] == 0) {
    --last;
  }
  for (int i = first; i <= last; ++i) {
    rows.emplace_back(BinCenter(i), BinFraction(i));
  }
  return rows;
}

}  // namespace cpi2
