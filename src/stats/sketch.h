// Mergeable CPI sketch: the unit of state that crosses the cell → global
// aggregation tier boundary (DESIGN.md §16).
//
// The flat SpecBuilder accumulates doubles with Welford's update, which is
// numerically excellent but NOT associative: merging per-cell partials in a
// different tree shape (or splitting the stream across a different cell
// count) would perturb the last bits, and the determinism harness compares
// observables bit for bit. The sketch therefore keeps every accumulator in
// the integers, where addition is exactly associative and commutative:
//
//   - count                      uint64
//   - sum of quantized cpi       int128  (cpi rounded to multiples of 2^-20)
//   - sum of squared quantized   uint128
//   - sum of quantized usage     int128
//   - fixed log-scale histogram  uint64 per bucket (4 buckets per octave
//                                covering cpi in [2^-4, 2^12), plus
//                                underflow/overflow)
//
// Two sketches fed the same sample multiset — in any order, through any
// partition into cells, merged in any tree shape — hold identical bits, so
// their wire encodings (CPI2SKT1, wire/sketch_codec.h) are byte-identical.
// The price is quantization: means/variances derived from the sketch agree
// with the exact single-pass math to ~2^-20 relative, not to the last bit.
// tests/stats/sketch_merge_test.cc holds both halves of that contract.

#ifndef CPI2_STATS_SKETCH_H_
#define CPI2_STATS_SKETCH_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace cpi2 {

class CpiSketch {
 public:
  // Quantization step for cpi/usage values: 2^-20 (~1e-6). Exact powers of
  // two keep the double<->fixed-point conversions exact scalings.
  static constexpr int kQuantBits = 20;
  static constexpr double kQuantScale = 1048576.0;  // 2^20
  static constexpr double kInvQuantScale = 1.0 / kQuantScale;
  // Quantized magnitudes clamp at 2^40 (value magnitude ~2^20, far beyond
  // max_plausible_cpi), bounding every 128-bit sum away from overflow for
  // any realistic sample count (2^80-sample headroom).
  static constexpr int64_t kQuantClamp = int64_t{1} << 40;

  // Log-scale CPI histogram: 4 buckets per octave, 16 octaves covering
  // [2^-4, 2^12). Values outside land in underflow/overflow.
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kMinOctave = -4;  // lowest edge 2^-4
  static constexpr int kNumOctaves = 16;
  static constexpr int kNumBuckets = kBucketsPerOctave * kNumOctaves;

  // The raw integer state: the unit of wire encoding and the object of the
  // bit-identity guarantee. 128-bit sums are gcc/clang builtins; the wire
  // codec splits them into two 64-bit varints.
  struct RawState {
    uint64_t count = 0;
    __int128 cpi_sum_q = 0;
    unsigned __int128 cpi_sq_sum_q = 0;
    __int128 usage_sum_q = 0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    std::array<uint64_t, kNumBuckets> buckets{};
  };

  CpiSketch() = default;

  // Rounds a value to the nearest quantum (ties away from zero, llround
  // semantics), clamped to +/-kQuantClamp quanta.
  static int64_t Quantize(double value);

  // Histogram bucket index for a cpi value, or -1 for underflow (including
  // non-positive values) and kNumBuckets for overflow. Pure bit inspection
  // of the double — no FP arithmetic, so it is trivially deterministic.
  static int BucketOf(double cpi);

  void Add(double cpi, double usage);

  // Associative, commutative, integer-exact merge: (a ⊔ b) ⊔ c and
  // a ⊔ (b ⊔ c) are bit-identical for any operand grouping or order.
  void Merge(const CpiSketch& other);

  uint64_t count() const { return state_.count; }
  bool empty() const { return state_.count == 0; }

  // Derived moments. Each is one fixed expression over the integer state, so
  // identical state always yields identical doubles.
  double cpi_mean() const;
  // Sum of squared deviations from the mean (the Welford "m2" analogue),
  // reconstructed exactly from the integer sums — the integer domain has no
  // cancellation error, the only loss is the final double conversion.
  double cpi_m2() const;
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double cpi_variance() const;
  double usage_mean() const;

  uint64_t bucket(int i) const { return state_.buckets[static_cast<size_t>(i)]; }
  uint64_t underflow() const { return state_.underflow; }
  uint64_t overflow() const { return state_.overflow; }

  // Approximate quantile (q in [0, 1]) from the log histogram: the geometric
  // midpoint of the bucket holding the q-th sample. Underflow resolves to
  // the bottom edge, overflow to the top edge.
  double ApproxQuantile(double q) const;

  // Lower edge of bucket i: 2^(kMinOctave + i/4) * (1 + (i%4)/4), i.e. the
  // value whose bucket index is exactly i.
  static double BucketLowerEdge(int i);

  const RawState& raw() const { return state_; }
  void set_raw(const RawState& raw) { state_ = raw; }

  bool operator==(const CpiSketch& other) const;
  bool operator!=(const CpiSketch& other) const { return !(*this == other); }

  void Reset() { state_ = RawState(); }

 private:
  RawState state_;
};

}  // namespace cpi2

#endif  // CPI2_STATS_SKETCH_H_
