// Feedback-driven adaptive throttling (paper §6.2/§9, future work).
//
// The paper's fixed caps are "rather crude": 0.01 CPU-s/s starves an
// antagonist completely even when far milder throttling would restore the
// victim. "We hope to introduce a feedback-driven policy that dynamically
// adjusts the amount of throttling to keep the victim CPI degradation just
// below an acceptable threshold."
//
// AdaptiveThrottler implements that policy as an MIMD (multiplicative
// increase, multiplicative decrease) controller: while the victim's CPI sits
// above target_degradation x spec mean, the antagonist's cap tightens; once
// the victim is healthy, the cap relaxes, handing CPU back to the
// antagonist. The bench_ablation_adaptive_cap harness quantifies the payoff:
// comparable victim protection at a fraction of the antagonist's lost work.

#ifndef CPI2_CORE_ADAPTIVE_THROTTLE_H_
#define CPI2_CORE_ADAPTIVE_THROTTLE_H_

#include <map>
#include <string>

#include "cgroup/cpu_controller.h"
#include "util/clock.h"
#include "util/status.h"

namespace cpi2 {

class AdaptiveThrottler {
 public:
  struct Options {
    // Starting cap when throttling begins (CPU-sec/sec).
    double initial_cap = 0.5;
    // Cap bounds. min_cap mirrors the paper's harshest fixed cap.
    double min_cap = 0.01;
    double max_cap = 4.0;
    // Keep victim CPI at or below target_degradation x spec mean.
    double target_degradation = 1.2;
    // Multiplicative steps. Tightening is faster than loosening so a
    // suffering victim recovers promptly (same asymmetry as TCP).
    double tighten_factor = 0.5;
    double loosen_factor = 1.3;
    // Minimum time between adjustments (one CPI sample's worth).
    MicroTime adjust_interval = kMicrosPerMinute;
    // When the cap has been fully relaxed (>= max_cap) and the victim has
    // stayed healthy this long, throttling ends by itself.
    MicroTime release_after_healthy = 5 * kMicrosPerMinute;
  };

  AdaptiveThrottler(const Options& options, CpuController* controller);

  // Starts throttling `antagonist` at the initial cap.
  Status Begin(const std::string& antagonist, MicroTime now);

  // Feeds one victim observation; adjusts the antagonist's cap when due.
  // Returns the cap now in force (0 if this antagonist is not throttled).
  double ObserveVictim(const std::string& antagonist, double victim_cpi, double spec_cpi_mean,
                       MicroTime now);

  // Stops throttling and removes the cap.
  Status End(const std::string& antagonist);

  bool IsThrottling(const std::string& antagonist) const {
    return sessions_.count(antagonist) > 0;
  }
  // Current cap, or nullopt when not throttling.
  std::optional<double> CurrentCap(const std::string& antagonist) const;

  int64_t adjustments_made() const { return adjustments_made_; }

 private:
  struct Session {
    double cap = 0.0;
    MicroTime last_adjust = 0;
    MicroTime healthy_since = -1;  // -1: currently unhealthy or unknown
    bool at_max = false;
  };

  Options options_;
  CpuController* controller_;
  std::map<std::string, Session> sessions_;
  int64_t adjustments_made_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_ADAPTIVE_THROTTLE_H_
