#include "core/incident_log_io.h"

#include <sstream>

#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "wire/framing.h"
#include "wire/incident_codec.h"

namespace cpi2 {
namespace {

constexpr char kHeader[] = "cpi2-incidents-v1";

// Text-format field separators: '\t' between columns, ';' between suspects,
// ',' inside one suspect. Rather than escaping, names containing any
// separator are rejected at save time (task/job names never contain them in
// practice). The binary format has no separators and accepts any name.
bool SafeName(const std::string& name) {
  return name.find_first_of("\t\n;,") == std::string::npos;
}

std::string EncodeSuspects(const std::vector<Suspect>& suspects) {
  std::vector<std::string> parts;
  parts.reserve(suspects.size());
  for (const Suspect& suspect : suspects) {
    parts.push_back(StrFormat("%s,%s,%d,%d,%.9g", suspect.task.c_str(),
                              suspect.jobname.c_str(),
                              static_cast<int>(suspect.workload_class),
                              static_cast<int>(suspect.priority), suspect.correlation));
  }
  return Join(parts, ";");
}

StatusOr<std::vector<Suspect>> DecodeSuspects(const std::string& text) {
  std::vector<Suspect> suspects;
  if (text.empty()) {
    return suspects;
  }
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ';')) {
    std::istringstream fields(item);
    Suspect suspect;
    std::string class_text;
    std::string priority_text;
    std::string correlation_text;
    if (!std::getline(fields, suspect.task, ',') ||
        !std::getline(fields, suspect.jobname, ',') ||
        !std::getline(fields, class_text, ',') ||
        !std::getline(fields, priority_text, ',') ||
        !std::getline(fields, correlation_text)) {
      return InvalidArgumentError("malformed suspect record: " + item);
    }
    suspect.workload_class = static_cast<WorkloadClass>(std::atoi(class_text.c_str()));
    suspect.priority = static_cast<JobPriority>(std::atoi(priority_text.c_str()));
    suspect.correlation = std::atof(correlation_text.c_str());
    suspects.push_back(std::move(suspect));
  }
  return suspects;
}

Status EncodeIncidentsText(const IncidentLog& log, std::string* out) {
  for (const Incident& incident : log.incidents()) {
    if (!SafeName(incident.victim_task) || !SafeName(incident.victim_job) ||
        !SafeName(incident.machine) || !SafeName(incident.action_target)) {
      return InvalidArgumentError("incident names must not contain separators");
    }
    for (const Suspect& suspect : incident.suspects) {
      if (!SafeName(suspect.task) || !SafeName(suspect.jobname)) {
        return InvalidArgumentError("suspect names must not contain separators");
      }
    }
  }
  out->clear();
  out->append(kHeader);
  out->push_back('\n');
  for (const Incident& incident : log.incidents()) {
    std::string note = incident.note;
    for (char& c : note) {
      if (c == '\t' || c == '\n') {
        c = ' ';
      }
    }
    *out += StrFormat(
        "%lld\t%s\t%s\t%s\t%s\t%d\t%.9g\t%.9g\t%.9g\t%.9g\t%d\t%s\t%.9g\t%s\t%s\n",
        static_cast<long long>(incident.timestamp), incident.machine.c_str(),
        incident.victim_task.c_str(), incident.victim_job.c_str(),
        incident.platforminfo.c_str(), static_cast<int>(incident.victim_class),
        incident.victim_cpi, incident.cpi_threshold, incident.spec_mean,
        incident.spec_stddev, static_cast<int>(incident.action),
        incident.action_target.c_str(), incident.cap_level, note.c_str(),
        EncodeSuspects(incident.suspects).c_str());
  }
  return Status::Ok();
}

StatusOr<IncidentLog> LoadIncidentsText(const std::string& path, const std::string& contents,
                                        IncidentLoadStats* stats) {
  std::istringstream file(contents);
  std::string line;
  if (!std::getline(file, line) || line != kHeader) {
    return InvalidArgumentError(path + ": missing or wrong header");
  }
  const auto skip = [&](int line_number, const std::string& reason) {
    CPI2_LOG(WARNING) << path << ":" << line_number << ": " << reason << "; skipping line";
    if (stats != nullptr) {
      ++stats->records_skipped;
      stats->skipped.push_back(StrFormat("%s:%d: %s", path.c_str(), line_number, reason.c_str()));
    }
  };
  IncidentLog log;
  int line_number = 1;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream in(line);
    std::vector<std::string> fields;
    std::string field;
    while (std::getline(in, field, '\t')) {
      fields.push_back(field);
    }
    if (fields.size() == 14) {
      // A trailing empty suspects column is dropped by the splitter.
      fields.emplace_back();
    }
    if (fields.size() != 15) {
      // Truncated or torn line (e.g. a crash mid-append): skip it rather
      // than discarding every intact incident in the file.
      skip(line_number,
           StrFormat("expected 15 fields, got %zu", fields.size()));
      continue;
    }
    Incident incident;
    incident.timestamp = std::strtoll(fields[0].c_str(), nullptr, 10);
    incident.machine = fields[1];
    incident.victim_task = fields[2];
    incident.victim_job = fields[3];
    incident.platforminfo = fields[4];
    incident.victim_class = static_cast<WorkloadClass>(std::atoi(fields[5].c_str()));
    incident.victim_cpi = std::atof(fields[6].c_str());
    incident.cpi_threshold = std::atof(fields[7].c_str());
    incident.spec_mean = std::atof(fields[8].c_str());
    incident.spec_stddev = std::atof(fields[9].c_str());
    incident.action = static_cast<IncidentAction>(std::atoi(fields[10].c_str()));
    incident.action_target = fields[11];
    incident.cap_level = std::atof(fields[12].c_str());
    incident.note = fields[13];
    auto suspects = DecodeSuspects(fields[14]);
    if (!suspects.ok()) {
      skip(line_number, suspects.status().message());
      continue;
    }
    incident.suspects = std::move(*suspects);
    log.Add(incident);
  }
  return log;
}

StatusOr<IncidentLog> LoadIncidentsBinary(const std::string& path, const std::string& contents,
                                          IncidentLoadStats* stats) {
  std::vector<Incident> incidents;
  IncidentDecodeStats decode_stats;
  const Status status = DecodeIncidentFile(contents, &incidents, &decode_stats);
  if (!status.ok()) {
    return InvalidArgumentError(path + ": " + status.message());
  }
  for (const std::string& reason : decode_stats.skip_reasons) {
    CPI2_LOG(WARNING) << path << ": " << reason << "; skipping record";
    if (stats != nullptr) {
      stats->skipped.push_back(path + ": " + reason);
    }
  }
  if (stats != nullptr) {
    stats->records_skipped += decode_stats.records_skipped;
  }
  IncidentLog log;
  for (const Incident& incident : incidents) {
    log.Add(incident);
  }
  return log;
}

}  // namespace

Status SaveIncidents(const std::string& path, const IncidentLog& log,
                     IncidentFileFormat format) {
  std::string contents;
  if (format == IncidentFileFormat::kText) {
    const Status encoded = EncodeIncidentsText(log, &contents);
    if (!encoded.ok()) {
      return encoded;
    }
  } else {
    EncodeIncidentFile(log.incidents(), &contents);
  }
  return AtomicWriteFile(path, contents);
}

StatusOr<IncidentLog> LoadIncidentsWithStats(const std::string& path,
                                             IncidentLoadStats* stats) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    return contents.status();
  }
  if (HasWireMagic(*contents, kIncidentFileMagic)) {
    return LoadIncidentsBinary(path, *contents, stats);
  }
  return LoadIncidentsText(path, *contents, stats);
}

StatusOr<IncidentLog> LoadIncidents(const std::string& path, int64_t* lines_skipped) {
  IncidentLoadStats stats;
  StatusOr<IncidentLog> loaded = LoadIncidentsWithStats(path, &stats);
  if (lines_skipped != nullptr) {
    *lines_skipped = stats.records_skipped;
  }
  return loaded;
}

}  // namespace cpi2
