#include "core/incident.h"

#include "util/string_util.h"

namespace cpi2 {

std::string Incident::Summary() const {
  std::string action_text;
  switch (action) {
    case IncidentAction::kNone:
      action_text = "no action";
      break;
    case IncidentAction::kHardCap:
      action_text = StrFormat("hard-capped %s to %.2f CPU-s/s", action_target.c_str(), cap_level);
      break;
    case IncidentAction::kAlreadyCapped:
      action_text = "best suspect already capped";
      break;
  }
  const double top = suspects.empty() ? 0.0 : suspects.front().correlation;
  return StrFormat("victim %s (job %s) cpi=%.2f thr=%.2f suspects=%zu top-corr=%.2f; %s",
                   victim_task.c_str(), victim_job.c_str(), victim_cpi, cpi_threshold,
                   suspects.size(), top, action_text.c_str());
}

}  // namespace cpi2
