// Antagonist identification (section 4.2).
//
// When a victim task turns anomalous, the identifier cross-correlates the
// victim's CPI time series with the CPU-usage series of every co-resident
// suspect over a 10-minute window, using the paper's passive correlation
// score (core/correlation.h). Analyses are rate-limited to one per second
// per machine so that the detector itself never becomes the antagonist.

#ifndef CPI2_CORE_ANTAGONIST_IDENTIFIER_H_
#define CPI2_CORE_ANTAGONIST_IDENTIFIER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/correlation.h"
#include "core/incident.h"
#include "core/params.h"
#include "util/time_series.h"

namespace cpi2 {

class AntagonistIdentifier {
 public:
  explicit AntagonistIdentifier(const Cpi2Params& params) : params_(params) {}

  struct SuspectInput {
    std::string task;
    std::string jobname;
    WorkloadClass workload_class = WorkloadClass::kBatch;
    JobPriority priority = JobPriority::kNonProduction;
    // Suspect's CPU-usage samples (CPU-sec/sec, once a minute).
    const TimeSeries* usage = nullptr;
  };

  // One row of a persistent suspect table (DESIGN.md §17): the interned twin
  // of SuspectInput. Names are pointers into the owner's stable storage (the
  // agent's task-registry nodes), the series pointer is cached once at
  // registration — building an analysis input costs zero string copies and
  // zero allocations. Rows must be kept sorted by ascending *task; the
  // ranked output's tie-break leans on that.
  struct SuspectRow {
    const std::string* task = nullptr;
    const std::string* jobname = nullptr;
    WorkloadClass workload_class = WorkloadClass::kBatch;
    JobPriority priority = JobPriority::kNonProduction;
    const TimeSeries* usage = nullptr;
  };

  // One entry of a batched analysis result: a reference into the suspect
  // table plus the score. Stays interned — the caller materializes Suspect
  // strings only when an incident is actually built.
  struct RankedRef {
    uint32_t row = 0;
    double correlation = 0.0;
  };

  // Rate limiting: may an analysis run at `now`?
  bool Allowed(MicroTime now) const {
    return last_analysis_ < 0 || now - last_analysis_ >= params_.analysis_interval;
  }

  // Correlates every suspect against the victim's CPI over
  // [now - correlation_window, now]. Returns ALL suspects with at least one
  // aligned sample, ranked by correlation (highest first, ties broken by
  // ascending task id so the ranking is input-order independent); the caller
  // applies the naming threshold. Records the analysis for rate-limiting.
  //
  // Cost: O(|victim| + |suspect|) per suspect via the fused merge-join
  // correlation, with no per-suspect heap work beyond the returned records;
  // params.legacy_correlation_path selects the bit-identical reference path.
  std::vector<Suspect> Analyze(const TimeSeries& victim_cpi, double cpi_threshold,
                               const std::vector<SuspectInput>& suspects, MicroTime now);

  // The batched engine: scores every row of `rows` except `skip_row`
  // (pass kNoSkip to score all) against the victim in ONE victim-major sweep
  // (BatchedAntagonistCorrelation), ranking the results into *ranked —
  // capacity reused, entries ordered exactly as Analyze orders its Suspects
  // (correlation descending, ties by ascending task id; since rows are
  // name-sorted the tie-break is an integer compare). Suspects with no
  // aligned samples or a null series are skipped, as in Analyze. Records the
  // analysis for rate-limiting. An anomaly storm calls this once per victim
  // against the same rows and scratch: zero allocations at steady state.
  static constexpr size_t kNoSkip = static_cast<size_t>(-1);
  void AnalyzeBatched(const TimeSeries& victim_cpi, double cpi_threshold,
                      const std::vector<SuspectRow>& rows, size_t skip_row, MicroTime now,
                      std::vector<RankedRef>* ranked);

  int64_t analyses_run() const { return analyses_run_; }

 private:
  Cpi2Params params_;
  MicroTime last_analysis_ = -1;
  int64_t analyses_run_ = 0;
  // Batched-path scratch, reused across analyses (and across the victims of
  // one storm): the kernel's SoA columns plus the usage-pointer view the
  // kernel consumes (skip_row's slot is nulled instead of compacting, so row
  // indices and kernel indices coincide).
  BatchedCorrelationScratch batch_scratch_;
  std::vector<const TimeSeries*> batch_usages_;
  // Ranking scratch: one branchless sort key per scoring suspect —
  // sign-flipped correlation bits (descending double order) over the row
  // index (ascending tie-break). See AnalyzeBatched for the encoding
  // argument.
  std::vector<unsigned __int128> rank_keys_;
};

}  // namespace cpi2

#endif  // CPI2_CORE_ANTAGONIST_IDENTIFIER_H_
