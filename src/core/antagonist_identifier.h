// Antagonist identification (section 4.2).
//
// When a victim task turns anomalous, the identifier cross-correlates the
// victim's CPI time series with the CPU-usage series of every co-resident
// suspect over a 10-minute window, using the paper's passive correlation
// score (core/correlation.h). Analyses are rate-limited to one per second
// per machine so that the detector itself never becomes the antagonist.

#ifndef CPI2_CORE_ANTAGONIST_IDENTIFIER_H_
#define CPI2_CORE_ANTAGONIST_IDENTIFIER_H_

#include <string>
#include <vector>

#include "core/incident.h"
#include "core/params.h"
#include "util/time_series.h"

namespace cpi2 {

class AntagonistIdentifier {
 public:
  explicit AntagonistIdentifier(const Cpi2Params& params) : params_(params) {}

  struct SuspectInput {
    std::string task;
    std::string jobname;
    WorkloadClass workload_class = WorkloadClass::kBatch;
    JobPriority priority = JobPriority::kNonProduction;
    // Suspect's CPU-usage samples (CPU-sec/sec, once a minute).
    const TimeSeries* usage = nullptr;
  };

  // Rate limiting: may an analysis run at `now`?
  bool Allowed(MicroTime now) const {
    return last_analysis_ < 0 || now - last_analysis_ >= params_.analysis_interval;
  }

  // Correlates every suspect against the victim's CPI over
  // [now - correlation_window, now]. Returns ALL suspects with at least one
  // aligned sample, ranked by correlation (highest first, ties broken by
  // ascending task id so the ranking is input-order independent); the caller
  // applies the naming threshold. Records the analysis for rate-limiting.
  //
  // Cost: O(|victim| + |suspect|) per suspect via the fused merge-join
  // correlation, with no per-suspect heap work beyond the returned records;
  // params.legacy_correlation_path selects the bit-identical reference path.
  std::vector<Suspect> Analyze(const TimeSeries& victim_cpi, double cpi_threshold,
                               const std::vector<SuspectInput>& suspects, MicroTime now);

  int64_t analyses_run() const { return analyses_run_; }

 private:
  Cpi2Params params_;
  MicroTime last_analysis_ = -1;
  int64_t analyses_run_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_ANTAGONIST_IDENTIFIER_H_
