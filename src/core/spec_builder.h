// CPI spec aggregation (section 3.1, "CPI data aggregation").
//
// Accumulates CpiSamples per job x platform, and on each build interval
// produces CpiSpecs (mean, stddev, usage mean) for every key that meets the
// eligibility rules (>= 5 tasks and >= 100 samples per task). Earlier days'
// statistics persist with age-weighting: each build multiplies the retained
// history's effective sample count by history_weight (~0.9) before merging
// the fresh day, so long-running jobs converge and behaviour drift decays.
//
// Hot-path layout: every sample's (jobname, platforminfo, task) strings
// intern to dense uint32 ids, and all state keys on a packed uint64 of the
// two ids. The state itself is sharded by key hash (params.spec_shards):
// ingest routes each sample to its key's shard on the calling thread, and
// the per-shard work — applying a staged batch, decaying/merging history at
// build time — runs shard-by-shard, in parallel when a ThreadPool is handed
// in. Samples for one key always land in one shard in arrival order and the
// per-key arithmetic is unchanged, so specs are bit-identical for any shard
// count and any thread count. Names reappear solely at the boundaries: spec
// build-out, GetSpec, and checkpoint snapshots, all of which emit in
// (jobname, platforminfo) order exactly as the old string-keyed maps did, so
// downstream ordering (spec push-out, fault-plane draws, checkpoint blobs)
// is unchanged. Ids never leave the process; checkpoints serialize names,
// and a restore may re-intern them to different ids (and thus different
// shards) with no observable difference.

#ifndef CPI2_CORE_SPEC_BUILDER_H_
#define CPI2_CORE_SPEC_BUILDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/params.h"
#include "core/types.h"
#include "stats/streaming.h"
#include "util/interner.h"
#include "util/thread_pool.h"

namespace cpi2 {

class SpecBuilder {
 public:
  explicit SpecBuilder(const Cpi2Params& params);

  // Feeds one sample into the current accumulation window immediately.
  // Serial-phase only (interns names). Flushes any staged batch first so
  // arrival order is preserved when callers mix the two ingest paths.
  void AddSample(const CpiSample& sample);

  // Batched ingest fast path: interns and routes the sample to its shard's
  // pending queue (serial phase, no accumulation work), to be applied by the
  // next FlushStaged/BuildSpecs. Counts toward samples_seen() immediately.
  void StageSample(const CpiSample& sample);

  // Applies every staged sample to its shard's accumulation window —
  // per-shard in parallel on `pool` (nullptr = serial). Shards only touch
  // their own state and each shard applies its queue in arrival order, so
  // the result is bit-identical to the serial path.
  void FlushStaged(ThreadPool* pool);

  // Closes the current window: merges it into the age-weighted history and
  // returns the specs of every eligible job x platform, in (jobname,
  // platforminfo) order. Keys that fail the eligibility rules are retained
  // in history but produce no spec. Per-shard work runs on `pool` when
  // given; the output order (and therefore spec push order) is the legacy
  // string-sorted order regardless.
  std::vector<CpiSpec> BuildSpecs(ThreadPool* pool = nullptr);

  // The spec from the most recent build, if that key was eligible.
  std::optional<CpiSpec> GetSpec(const std::string& jobname,
                                 const std::string& platforminfo) const;

  // Pre-seeds history for a job (e.g. from a previous run's stored spec), so
  // repeated jobs do not start from scratch.
  void SeedHistory(const CpiSpec& spec);

  int64_t samples_seen() const { return samples_seen_; }

  // --- checkpoint/restore (degraded-mode hardening) -------------------------
  // Exact snapshot of one key's age-weighted moment history. Unlike
  // SeedHistory (which round-trips through a CpiSpec and re-merges), these
  // entries restore the weighted moments bit-for-bit, so a restored builder
  // produces the same specs the crashed one would have. Snapshots translate
  // interned ids back to names (boundary translation) and emit entries in
  // (jobname, platforminfo) order.
  struct HistoryEntry {
    JobPlatformKey key;
    double count = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    double usage_mean = 0.0;
  };
  std::vector<HistoryEntry> SnapshotHistory() const;
  std::vector<CpiSpec> SnapshotLatestSpecs() const;
  // Replaces history, latest specs, and the sample counter with the snapshot
  // contents. The in-progress accumulation window (staged or applied) is
  // cleared: a restore resumes from the last checkpointed build, losing only
  // the samples that arrived after the checkpoint was taken.
  void RestoreSnapshot(const std::vector<HistoryEntry>& history,
                       const std::vector<CpiSpec>& latest_specs, int64_t samples_seen);

  // --- per-shard checkpoint surface ----------------------------------------
  // The checkpoint writer serializes shard by shard and caches each shard's
  // blob keyed on its version, so steady-state checkpoints between builds
  // re-serialize nothing. Versions start at 1 and bump whenever the shard's
  // durable state (history / latest specs) changes.
  size_t shard_count() const { return shards_.size(); }
  uint64_t shard_version(size_t shard) const { return shards_[shard].version; }
  // Shard-local snapshots, name-sorted within the shard. Concatenating all
  // shards yields the same record multiset as the global snapshots above.
  std::vector<HistoryEntry> SnapshotShardHistory(size_t shard) const;
  std::vector<CpiSpec> SnapshotShardLatestSpecs(size_t shard) const;

 private:
  // Packed (jobname id, platforminfo id) map key.
  using IdKey = uint64_t;
  static constexpr IdKey MakeKey(uint32_t job, uint32_t platform) {
    return (static_cast<IdKey>(job) << 32) | platform;
  }
  static constexpr uint32_t JobOf(IdKey key) { return static_cast<uint32_t>(key >> 32); }
  static constexpr uint32_t PlatformOf(IdKey key) { return static_cast<uint32_t>(key); }

  // Weighted moment history: an (effective_count, mean, m2) triple that can
  // be decayed and merged.
  struct MomentHistory {
    double count = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    double usage_mean = 0.0;

    void Decay(double weight);
    void Merge(double other_count, double other_mean, double other_m2, double other_usage);
    double Variance() const { return count > 1.0 ? m2 / (count - 1.0) : 0.0; }
  };

  struct Accumulation {
    StreamingStats cpi;
    StreamingStats usage;
    std::unordered_map<uint32_t, int64_t> samples_per_task;  // interned task ids
  };

  // One routed, interned sample waiting in a shard's staging queue.
  struct StagedSample {
    IdKey key = 0;
    uint32_t task = 0;
    bool has_task = false;
    double cpi = 0.0;
    double usage = 0.0;
  };

  // One hash-shard of the builder state. Only its owning worker touches it
  // during a parallel flush/build; the staging queue is filled in the serial
  // ingest phase.
  struct Shard {
    std::unordered_map<IdKey, Accumulation> current;
    std::unordered_map<IdKey, MomentHistory> history;
    std::unordered_map<IdKey, CpiSpec> latest_specs;
    std::vector<StagedSample> staged;
    std::vector<IdKey> built_keys;  // build scratch: this shard's eligible keys
    uint64_t version = 1;           // durable-state version, for blob caching
  };

  size_t ShardOf(IdKey key) const {
    uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h % shards_.size());
  }

  // Interns, routes, and stages one sample; returns its shard index.
  size_t Route(const CpiSample& sample);
  void ApplyStaged(Shard& shard);
  // Decay + merge + spec build-out for one shard; fills shard.built_keys.
  void BuildShard(Shard& shard);

  bool Eligible(const Accumulation& accumulation) const;

  // True when `a` orders before `b` by the interned (jobname, platforminfo)
  // strings — the legacy string-keyed map order.
  bool NameOrderLess(IdKey a, IdKey b) const;
  // The map's keys sorted by NameOrderLess (boundary-only cost).
  template <typename Map>
  std::vector<IdKey> SortedKeys(const Map& map) const;
  // All shards' keys of one map member, globally name-sorted.
  template <typename Map>
  std::vector<IdKey> SortedKeysAllShards(Map Shard::* member) const;

  Cpi2Params params_;
  // Jobnames, platforms, and task names share one id space.
  StringInterner names_;
  // Samples arrive in per-machine batch runs: the platform repeats for a
  // whole batch and jobs cluster, so Route() memoizes both lookups.
  // Platform is near-constant per agent (one-entry memo); jobs and tasks
  // rotate through a machine's working set, so they get the direct-mapped
  // cache instead.
  InternCache job_memo_, task_memo_;
  InternMemo platform_memo_;
  std::vector<Shard> shards_;
  size_t staged_total_ = 0;
  int64_t samples_seen_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_SPEC_BUILDER_H_
