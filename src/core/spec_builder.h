// CPI spec aggregation (section 3.1, "CPI data aggregation").
//
// Accumulates CpiSamples per job x platform, and on each build interval
// produces CpiSpecs (mean, stddev, usage mean) for every key that meets the
// eligibility rules (>= 5 tasks and >= 100 samples per task). Earlier days'
// statistics persist with age-weighting: each build multiplies the retained
// history's effective sample count by history_weight (~0.9) before merging
// the fresh day, so long-running jobs converge and behaviour drift decays.
//
// Hot-path layout: every sample's (jobname, platforminfo, task) strings
// intern to dense uint32 ids, and the accumulation/history/latest-spec maps
// key on a packed uint64 of the two ids. AddSample therefore does no string
// copies and no string comparisons — identity only. Names reappear solely
// at the boundaries: spec build-out, GetSpec, and checkpoint snapshots,
// all of which emit in (jobname, platforminfo) order exactly as the old
// string-keyed maps did, so downstream ordering (spec push-out, fault-plane
// draws, checkpoint blobs) is unchanged. Ids never leave the process;
// checkpoints serialize names, and a restore may re-intern them to
// different ids with no observable difference.

#ifndef CPI2_CORE_SPEC_BUILDER_H_
#define CPI2_CORE_SPEC_BUILDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/params.h"
#include "core/types.h"
#include "stats/streaming.h"
#include "util/interner.h"

namespace cpi2 {

class SpecBuilder {
 public:
  explicit SpecBuilder(const Cpi2Params& params) : params_(params) {}

  // Feeds one sample into the current accumulation window.
  void AddSample(const CpiSample& sample);

  // Closes the current window: merges it into the age-weighted history and
  // returns the specs of every eligible job x platform, in (jobname,
  // platforminfo) order. Keys that fail the eligibility rules are retained
  // in history but produce no spec.
  std::vector<CpiSpec> BuildSpecs();

  // The spec from the most recent build, if that key was eligible.
  std::optional<CpiSpec> GetSpec(const std::string& jobname,
                                 const std::string& platforminfo) const;

  // Pre-seeds history for a job (e.g. from a previous run's stored spec), so
  // repeated jobs do not start from scratch.
  void SeedHistory(const CpiSpec& spec);

  int64_t samples_seen() const { return samples_seen_; }

  // --- checkpoint/restore (degraded-mode hardening) -------------------------
  // Exact snapshot of one key's age-weighted moment history. Unlike
  // SeedHistory (which round-trips through a CpiSpec and re-merges), these
  // entries restore the weighted moments bit-for-bit, so a restored builder
  // produces the same specs the crashed one would have. Snapshots translate
  // interned ids back to names (boundary translation) and emit entries in
  // (jobname, platforminfo) order.
  struct HistoryEntry {
    JobPlatformKey key;
    double count = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    double usage_mean = 0.0;
  };
  std::vector<HistoryEntry> SnapshotHistory() const;
  std::vector<CpiSpec> SnapshotLatestSpecs() const;
  // Replaces history, latest specs, and the sample counter with the snapshot
  // contents. The in-progress accumulation window is cleared: a restore
  // resumes from the last checkpointed build, losing only the samples that
  // arrived after the checkpoint was taken.
  void RestoreSnapshot(const std::vector<HistoryEntry>& history,
                       const std::vector<CpiSpec>& latest_specs, int64_t samples_seen);

 private:
  // Packed (jobname id, platforminfo id) map key.
  using IdKey = uint64_t;
  static constexpr IdKey MakeKey(uint32_t job, uint32_t platform) {
    return (static_cast<IdKey>(job) << 32) | platform;
  }
  static constexpr uint32_t JobOf(IdKey key) { return static_cast<uint32_t>(key >> 32); }
  static constexpr uint32_t PlatformOf(IdKey key) { return static_cast<uint32_t>(key); }

  // Weighted moment history: an (effective_count, mean, m2) triple that can
  // be decayed and merged.
  struct MomentHistory {
    double count = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    double usage_mean = 0.0;

    void Decay(double weight);
    void Merge(double other_count, double other_mean, double other_m2, double other_usage);
    double Variance() const { return count > 1.0 ? m2 / (count - 1.0) : 0.0; }
  };

  struct Accumulation {
    StreamingStats cpi;
    StreamingStats usage;
    std::unordered_map<uint32_t, int64_t> samples_per_task;  // interned task ids
  };

  bool Eligible(const Accumulation& accumulation) const;

  // True when `a` orders before `b` by the interned (jobname, platforminfo)
  // strings — the legacy string-keyed map order.
  bool NameOrderLess(IdKey a, IdKey b) const;
  // The map's keys sorted by NameOrderLess (boundary-only cost).
  template <typename Map>
  std::vector<IdKey> SortedKeys(const Map& map) const;

  Cpi2Params params_;
  // Jobnames, platforms, and task names share one id space.
  StringInterner names_;
  std::unordered_map<IdKey, Accumulation> current_;
  std::unordered_map<IdKey, MomentHistory> history_;
  std::unordered_map<IdKey, CpiSpec> latest_specs_;
  int64_t samples_seen_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_SPEC_BUILDER_H_
