// Antagonist-aware placement advice (paper §5/§9, future work).
//
// "Job owners ... can use this information to ask the cluster scheduler to
// avoid co-locating their job and these antagonists in the future. Although
// we don't do this today, the data could be used to ... automatically
// populate the scheduler's list of cross-job interference patterns."
//
// PlacementAdvisor mines the incident log for repeat offenders: antagonist
// jobs that were the top suspect (above the naming correlation) for the
// same victim job several times inside a window. The advice feeds directly
// into Scheduler::AddAntagonistConstraint; examples/forensics and
// bench_ablation_placement close the loop.

#ifndef CPI2_CORE_PLACEMENT_ADVISOR_H_
#define CPI2_CORE_PLACEMENT_ADVISOR_H_

#include <string>
#include <vector>

#include "core/incident_log.h"

namespace cpi2 {

class PlacementAdvisor {
 public:
  struct Options {
    // An antagonist must be the confident top suspect this many times...
    int min_incidents = 3;
    // ...with at least this correlation each time...
    double min_correlation = 0.35;
    // ...within this much history (0 = all history).
    MicroTime window = 24 * kMicrosPerHour;
  };

  struct Advice {
    std::string victim_job;
    std::string antagonist_job;
    int incidents = 0;
    double max_correlation = 0.0;
  };

  explicit PlacementAdvisor(const Options& options) : options_(options) {}

  // Returns one Advice per (victim, antagonist) pair that crossed the
  // repeat-offender bar, strongest first.
  std::vector<Advice> Advise(const IncidentLog& log, MicroTime now) const;

 private:
  Options options_;
};

}  // namespace cpi2

#endif  // CPI2_CORE_PLACEMENT_ADVISOR_H_
