#include "core/aggregator.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace cpi2 {
namespace {

constexpr char kCheckpointHeader[] = "cpi2-aggregator-ckpt-v1";

}  // namespace

void Aggregator::AddSample(const CpiSample& sample) {
  if (params_.sample_dedup_window > 0 && !sample.machine.empty()) {
    if (sample.timestamp > dedup_watermark_) {
      dedup_watermark_ = sample.timestamp;
      // Prune entries older than the window; timestamps only move forward,
      // so the set stays bounded by window x arrival rate.
      const MicroTime cutoff = dedup_watermark_ - params_.sample_dedup_window;
      recent_samples_.erase(recent_samples_.begin(),
                            recent_samples_.lower_bound(SampleKey{cutoff, 0, 0}));
    }
    if (!recent_samples_
             .insert(SampleKey{sample.timestamp, dedup_ids_.Intern(sample.machine),
                               dedup_ids_.Intern(sample.task)})
             .second) {
      ++duplicates_dropped_;
      return;
    }
  }
  builder_.AddSample(sample);
}

void Aggregator::Tick(MicroTime now) {
  if (last_build_ < 0) {
    // First tick: start the clock; the first build lands one interval later.
    last_build_ = now;
    return;
  }
  if (now - last_build_ >= params_.spec_update_interval) {
    ForceBuild(now);
  }
}

std::vector<CpiSpec> Aggregator::ForceBuild(MicroTime now) {
  last_build_ = now;
  ++builds_completed_;
  std::vector<CpiSpec> specs = builder_.BuildSpecs();
  if (callback_) {
    for (const CpiSpec& spec : specs) {
      callback_(spec);
    }
  }
  return specs;
}

std::string Aggregator::Checkpoint() const {
  // Line-oriented records: M = metadata, H = one history entry, S = one
  // latest spec. %.17g round-trips doubles exactly, which the
  // restore-equals-crashed-state guarantee depends on.
  std::string out = std::string(kCheckpointHeader) + "\n";
  out += StrFormat("M\t%lld\t%lld\t%lld\n", static_cast<long long>(last_build_),
                   static_cast<long long>(builds_completed_),
                   static_cast<long long>(builder_.samples_seen()));
  for (const SpecBuilder::HistoryEntry& entry : builder_.SnapshotHistory()) {
    out += StrFormat("H\t%s\t%s\t%.17g\t%.17g\t%.17g\t%.17g\n", entry.key.jobname.c_str(),
                     entry.key.platforminfo.c_str(), entry.count, entry.mean, entry.m2,
                     entry.usage_mean);
  }
  for (const CpiSpec& spec : builder_.SnapshotLatestSpecs()) {
    out += StrFormat("S\t%s\t%s\t%lld\t%.17g\t%.17g\t%.17g\n", spec.jobname.c_str(),
                     spec.platforminfo.c_str(), static_cast<long long>(spec.num_samples),
                     spec.cpu_usage_mean, spec.cpi_mean, spec.cpi_stddev);
  }
  return out;
}

Status Aggregator::Restore(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointHeader) {
    return InvalidArgumentError("aggregator checkpoint: missing or wrong header");
  }
  bool have_meta = false;
  MicroTime last_build = -1;
  int64_t builds_completed = 0;
  int64_t samples_seen = 0;
  std::vector<SpecBuilder::HistoryEntry> history;
  std::vector<CpiSpec> latest_specs;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields_in(line);
    std::vector<std::string> fields;
    std::string field;
    while (std::getline(fields_in, field, '\t')) {
      fields.push_back(field);
    }
    const auto malformed = [&] {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint line %d: malformed record", line_number));
    };
    if (fields[0] == "M") {
      if (fields.size() != 4) {
        return malformed();
      }
      last_build = std::strtoll(fields[1].c_str(), nullptr, 10);
      builds_completed = std::strtoll(fields[2].c_str(), nullptr, 10);
      samples_seen = std::strtoll(fields[3].c_str(), nullptr, 10);
      have_meta = true;
    } else if (fields[0] == "H") {
      if (fields.size() != 7) {
        return malformed();
      }
      SpecBuilder::HistoryEntry entry;
      entry.key.jobname = fields[1];
      entry.key.platforminfo = fields[2];
      entry.count = std::atof(fields[3].c_str());
      entry.mean = std::atof(fields[4].c_str());
      entry.m2 = std::atof(fields[5].c_str());
      entry.usage_mean = std::atof(fields[6].c_str());
      history.push_back(std::move(entry));
    } else if (fields[0] == "S") {
      if (fields.size() != 7) {
        return malformed();
      }
      CpiSpec spec;
      spec.jobname = fields[1];
      spec.platforminfo = fields[2];
      spec.num_samples = std::strtoll(fields[3].c_str(), nullptr, 10);
      spec.cpu_usage_mean = std::atof(fields[4].c_str());
      spec.cpi_mean = std::atof(fields[5].c_str());
      spec.cpi_stddev = std::atof(fields[6].c_str());
      latest_specs.push_back(std::move(spec));
    } else {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint line %d: unknown record '%s'", line_number,
                    fields[0].c_str()));
    }
  }
  if (!have_meta) {
    return InvalidArgumentError("aggregator checkpoint: missing metadata record");
  }
  builder_.RestoreSnapshot(history, latest_specs, samples_seen);
  last_build_ = last_build;
  builds_completed_ = builds_completed;
  recent_samples_.clear();
  dedup_watermark_ = 0;
  return Status::Ok();
}

Status Aggregator::SaveCheckpoint(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError("open " + path + " for write: " + std::strerror(errno));
  }
  const std::string blob = Checkpoint();
  std::fwrite(blob.data(), 1, blob.size(), file);
  if (std::fclose(file) != 0) {
    return InternalError("close " + path + " failed");
  }
  return Status::Ok();
}

Status Aggregator::LoadCheckpoint(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return Restore(buffer.str());
}

}  // namespace cpi2
