#include "core/aggregator.h"

namespace cpi2 {

void Aggregator::Tick(MicroTime now) {
  if (last_build_ < 0) {
    // First tick: start the clock; the first build lands one interval later.
    last_build_ = now;
    return;
  }
  if (now - last_build_ >= params_.spec_update_interval) {
    ForceBuild(now);
  }
}

std::vector<CpiSpec> Aggregator::ForceBuild(MicroTime now) {
  last_build_ = now;
  ++builds_completed_;
  std::vector<CpiSpec> specs = builder_.BuildSpecs();
  if (callback_) {
    for (const CpiSpec& spec : specs) {
      callback_(spec);
    }
  }
  return specs;
}

}  // namespace cpi2
