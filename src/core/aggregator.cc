#include "core/aggregator.h"

#include <sstream>
#include <unordered_map>

#include "util/file_util.h"
#include "util/string_util.h"
#include "wire/framing.h"

namespace cpi2 {
namespace {

// v2 adds the dedup state (W/D records) and per-shard record interleaving;
// v1 blobs (global H-then-S order, no dedup records) still load.
constexpr char kCheckpointHeaderV1[] = "cpi2-aggregator-ckpt-v1";
constexpr char kCheckpointHeaderV2[] = "cpi2-aggregator-ckpt-v2";
// v3 is the binary encoding: same logical records, framed with per-record
// CRCs (wire/framing.h), doubles as raw bits instead of %.17g. Restoring a
// v3 blob and restoring the equivalent v2 text yield bit-identical state.
constexpr char kCheckpointMagicV3[] = "CPAGCKP3";

// Record tags shared by the v2 text and v3 binary encodings: M = metadata,
// W = dedup watermark, D = dedup window entries, H = history entries,
// S = latest specs.
constexpr uint8_t kMetaTag = 'M';
constexpr uint8_t kWatermarkTag = 'W';
constexpr uint8_t kDedupTag = 'D';
constexpr uint8_t kHistoryTag = 'H';
constexpr uint8_t kSpecTag = 'S';

// Dedup records accumulate into a buffer and flush to the sink in chunks,
// so a large window never materializes as one giant string.
constexpr size_t kSinkChunkBytes = 64 * 1024;
// Dedup entries per framed binary 'D' record.
constexpr size_t kDedupEntriesPerRecord = 2048;

// Checkpoint state as parsed from either encoding, before any of it is
// applied (parse-all-then-apply keeps a failed restore side-effect free).
struct ParsedCheckpoint {
  bool have_meta = false;
  MicroTime last_build = -1;
  int64_t builds_completed = 0;
  int64_t samples_seen = 0;
  MicroTime watermark = 0;
  struct DedupEntry {
    MicroTime timestamp = 0;
    std::string machine;
    std::string task;
  };
  std::vector<DedupEntry> dedup_entries;
  std::vector<SpecBuilder::HistoryEntry> history;
  std::vector<CpiSpec> latest_specs;
};

Status ParseTextCheckpoint(const std::string& checkpoint, ParsedCheckpoint* parsed) {
  std::istringstream in(checkpoint);
  std::string line;
  if (!std::getline(in, line) ||
      (line != kCheckpointHeaderV1 && line != kCheckpointHeaderV2)) {
    return InvalidArgumentError("aggregator checkpoint: missing or wrong header");
  }
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields_in(line);
    std::vector<std::string> fields;
    std::string field;
    while (std::getline(fields_in, field, '\t')) {
      fields.push_back(field);
    }
    const auto malformed = [&] {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint line %d: malformed record", line_number));
    };
    // Strict numeric parsing: a corrupted field must fail the restore with
    // the offending line, never silently come back as zero.
    const auto bad_number = [&](const std::string& value) {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint line %d: bad numeric field '%s'", line_number,
                    value.c_str()));
    };
    const auto parse_int = [&](const std::string& value, int64_t* out, Status* error) {
      if (!ParseInt64(value, out)) {
        *error = bad_number(value);
        return false;
      }
      return true;
    };
    const auto parse_double = [&](const std::string& value, double* out, Status* error) {
      if (!ParseDouble(value, out)) {
        *error = bad_number(value);
        return false;
      }
      return true;
    };
    Status error = Status::Ok();
    if (fields[0] == "M") {
      if (fields.size() != 4) {
        return malformed();
      }
      if (!parse_int(fields[1], &parsed->last_build, &error) ||
          !parse_int(fields[2], &parsed->builds_completed, &error) ||
          !parse_int(fields[3], &parsed->samples_seen, &error)) {
        return error;
      }
      parsed->have_meta = true;
    } else if (fields[0] == "W") {
      if (fields.size() != 2) {
        return malformed();
      }
      if (!parse_int(fields[1], &parsed->watermark, &error)) {
        return error;
      }
    } else if (fields[0] == "D") {
      if (fields.size() != 4) {
        return malformed();
      }
      ParsedCheckpoint::DedupEntry entry;
      if (!parse_int(fields[1], &entry.timestamp, &error)) {
        return error;
      }
      entry.machine = fields[2];
      entry.task = fields[3];
      parsed->dedup_entries.push_back(std::move(entry));
    } else if (fields[0] == "H") {
      if (fields.size() != 7) {
        return malformed();
      }
      SpecBuilder::HistoryEntry entry;
      entry.key.jobname = fields[1];
      entry.key.platforminfo = fields[2];
      if (!parse_double(fields[3], &entry.count, &error) ||
          !parse_double(fields[4], &entry.mean, &error) ||
          !parse_double(fields[5], &entry.m2, &error) ||
          !parse_double(fields[6], &entry.usage_mean, &error)) {
        return error;
      }
      parsed->history.push_back(std::move(entry));
    } else if (fields[0] == "S") {
      if (fields.size() != 7) {
        return malformed();
      }
      CpiSpec spec;
      spec.jobname = fields[1];
      spec.platforminfo = fields[2];
      if (!parse_int(fields[3], &spec.num_samples, &error) ||
          !parse_double(fields[4], &spec.cpu_usage_mean, &error) ||
          !parse_double(fields[5], &spec.cpi_mean, &error) ||
          !parse_double(fields[6], &spec.cpi_stddev, &error)) {
        return error;
      }
      parsed->latest_specs.push_back(std::move(spec));
    } else {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint line %d: unknown record '%s'", line_number,
                    fields[0].c_str()));
    }
  }
  return Status::Ok();
}

// A checkpoint is all-or-nothing (a half-restored aggregator is worse than
// none), so unlike the incident loader any damaged record rejects the blob —
// naming the record that was damaged.
Status ParseBinaryCheckpoint(std::string_view checkpoint, ParsedCheckpoint* parsed) {
  WireReader reader(checkpoint.substr(kWireMagicSize));
  int record_number = 0;
  std::string_view payload;
  while (true) {
    ++record_number;
    const FrameResult frame = ReadFramedRecord(reader, &payload);
    if (frame == FrameResult::kEnd) {
      return Status::Ok();
    }
    const auto damaged = [&](const char* what) {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint record %d: %s", record_number, what));
    };
    if (frame == FrameResult::kCorrupt) {
      return damaged("bad CRC");
    }
    if (frame == FrameResult::kTruncated) {
      return damaged("truncated");
    }
    WireReader record(payload);
    const uint8_t tag = record.GetByte();
    switch (tag) {
      case kMetaTag:
        parsed->last_build = record.GetZigzag();
        parsed->builds_completed = static_cast<int64_t>(record.GetVarint());
        parsed->samples_seen = static_cast<int64_t>(record.GetVarint());
        parsed->have_meta = true;
        break;
      case kWatermarkTag:
        parsed->watermark = record.GetZigzag();
        break;
      case kDedupTag: {
        const uint64_t name_count = record.GetVarint();
        if (record.failed() || name_count > record.remaining()) {
          return damaged("malformed dedup dictionary");
        }
        std::vector<std::string_view> names(static_cast<size_t>(name_count));
        for (auto& name : names) {
          name = record.GetString();
        }
        const uint64_t entry_count = record.GetVarint();
        if (record.failed() || entry_count > record.remaining()) {
          return damaged("malformed dedup entries");
        }
        MicroTime prev = 0;
        for (uint64_t i = 0; i < entry_count; ++i) {
          ParsedCheckpoint::DedupEntry entry;
          const uint64_t machine_idx = record.GetVarint();
          const uint64_t task_idx = record.GetVarint();
          entry.timestamp = prev + record.GetZigzag();
          prev = entry.timestamp;
          if (record.failed() || machine_idx >= names.size() || task_idx >= names.size()) {
            return damaged("malformed dedup entries");
          }
          entry.machine.assign(names[static_cast<size_t>(machine_idx)]);
          entry.task.assign(names[static_cast<size_t>(task_idx)]);
          parsed->dedup_entries.push_back(std::move(entry));
        }
        break;
      }
      case kHistoryTag: {
        const uint64_t entry_count = record.GetVarint();
        if (record.failed() || entry_count > record.remaining()) {
          return damaged("malformed history entries");
        }
        for (uint64_t i = 0; i < entry_count; ++i) {
          SpecBuilder::HistoryEntry entry;
          entry.key.jobname.assign(record.GetString());
          entry.key.platforminfo.assign(record.GetString());
          entry.count = record.GetDouble();
          entry.mean = record.GetDouble();
          entry.m2 = record.GetDouble();
          entry.usage_mean = record.GetDouble();
          if (record.failed()) {
            return damaged("malformed history entries");
          }
          parsed->history.push_back(std::move(entry));
        }
        break;
      }
      case kSpecTag: {
        const uint64_t spec_count = record.GetVarint();
        if (record.failed() || spec_count > record.remaining()) {
          return damaged("malformed spec entries");
        }
        for (uint64_t i = 0; i < spec_count; ++i) {
          CpiSpec spec;
          spec.jobname.assign(record.GetString());
          spec.platforminfo.assign(record.GetString());
          spec.num_samples = static_cast<int64_t>(record.GetVarint());
          spec.cpu_usage_mean = record.GetDouble();
          spec.cpi_mean = record.GetDouble();
          spec.cpi_stddev = record.GetDouble();
          if (record.failed()) {
            return damaged("malformed spec entries");
          }
          parsed->latest_specs.push_back(std::move(spec));
        }
        break;
      }
      default:
        return damaged("unknown record tag");
    }
    if (record.failed()) {
      return damaged("record underran its payload");
    }
  }
}

}  // namespace

void Aggregator::AddSample(const CpiSample& sample) {
  if (params_.sample_dedup_window > 0 && !sample.machine.empty()) {
    if (sample.timestamp > dedup_watermark_) {
      dedup_watermark_ = sample.timestamp;
      // Prune entries older than the window; timestamps only move forward,
      // so the set stays bounded by window x arrival rate.
      recent_samples_.PruneOlderThan(dedup_watermark_ - params_.sample_dedup_window);
    }
    if (!recent_samples_.Insert(sample.timestamp,
                                machine_memo_.Intern(dedup_ids_, sample.machine),
                                task_memo_.Intern(dedup_ids_, sample.task))) {
      ++duplicates_dropped_;
      return;
    }
  }
  builder_.StageSample(sample);
}

void Aggregator::Tick(MicroTime now) {
  // Apply the tick's staged batch across the builder shards (in parallel
  // when a pool is attached) before any build can close the window.
  builder_.FlushStaged(pool_);
  if (last_build_ < 0) {
    // First tick: start the clock; the first build lands one interval later.
    last_build_ = now;
    return;
  }
  if (now - last_build_ >= params_.spec_update_interval) {
    ForceBuild(now);
  }
}

std::vector<CpiSpec> Aggregator::ForceBuild(MicroTime now) {
  last_build_ = now;
  ++builds_completed_;
  std::vector<CpiSpec> specs = builder_.BuildSpecs(pool_);
  if (callback_) {
    for (const CpiSpec& spec : specs) {
      callback_(spec);
    }
  }
  return specs;
}

void Aggregator::WriteCheckpointText(const CheckpointSink& sink) const {
  // Line-oriented records: M = metadata, W = dedup watermark, D = one dedup
  // window entry, H = one history entry, S = one latest spec. %.17g
  // round-trips doubles exactly, which the restore-equals-crashed-state
  // guarantee depends on.
  std::string buffer = std::string(kCheckpointHeaderV2) + "\n";
  buffer += StrFormat("M\t%lld\t%lld\t%lld\n", static_cast<long long>(last_build_),
                      static_cast<long long>(builds_completed_),
                      static_cast<long long>(builder_.samples_seen()));
  buffer += StrFormat("W\t%lld\n", static_cast<long long>(dedup_watermark_));
  for (const DedupWindow::Entry& key : recent_samples_.SortedEntries()) {
    buffer += StrFormat("D\t%lld\t%s\t%s\n", static_cast<long long>(key.timestamp),
                        dedup_ids_.NameOf(key.machine).c_str(),
                        dedup_ids_.NameOf(key.task).c_str());
    if (buffer.size() >= kSinkChunkBytes) {
      sink(buffer);
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    sink(buffer);
  }

  // Spec state, shard by shard. A shard whose durable state hasn't changed
  // since the last checkpoint replays its cached serialization, so
  // steady-state checkpoints between builds don't re-render every job.
  const size_t shards = builder_.shard_count();
  shard_blob_cache_.resize(shards);
  shard_blob_version_.resize(shards, 0);
  for (size_t shard = 0; shard < shards; ++shard) {
    const uint64_t version = builder_.shard_version(shard);
    if (shard_blob_version_[shard] != version) {
      std::string& blob = shard_blob_cache_[shard];
      blob.clear();
      for (const SpecBuilder::HistoryEntry& entry : builder_.SnapshotShardHistory(shard)) {
        blob += StrFormat("H\t%s\t%s\t%.17g\t%.17g\t%.17g\t%.17g\n",
                          entry.key.jobname.c_str(), entry.key.platforminfo.c_str(),
                          entry.count, entry.mean, entry.m2, entry.usage_mean);
      }
      for (const CpiSpec& spec : builder_.SnapshotShardLatestSpecs(shard)) {
        blob += StrFormat("S\t%s\t%s\t%lld\t%.17g\t%.17g\t%.17g\n", spec.jobname.c_str(),
                          spec.platforminfo.c_str(), static_cast<long long>(spec.num_samples),
                          spec.cpu_usage_mean, spec.cpi_mean, spec.cpi_stddev);
      }
      shard_blob_version_[shard] = version;
    }
    if (!shard_blob_cache_[shard].empty()) {
      sink(shard_blob_cache_[shard]);
    }
  }
}

void Aggregator::WriteCheckpointBinary(const CheckpointSink& sink) const {
  std::string buffer;
  AppendWireMagic(&buffer, kCheckpointMagicV3);
  std::string payload;
  const auto frame_out = [&] {
    AppendFramedRecord(&buffer, payload);
    payload.clear();
    if (buffer.size() >= kSinkChunkBytes) {
      sink(buffer);
      buffer.clear();
    }
  };

  WireWriter meta(&payload);
  meta.PutByte(kMetaTag);
  meta.PutZigzag(last_build_);
  meta.PutVarint(static_cast<uint64_t>(builds_completed_));
  meta.PutVarint(static_cast<uint64_t>(builder_.samples_seen()));
  frame_out();

  WireWriter watermark(&payload);
  watermark.PutByte(kWatermarkTag);
  watermark.PutZigzag(dedup_watermark_);
  frame_out();

  // Dedup window, chunked into framed records of bounded size; each record
  // carries its own machine/task-name dictionary and timestamp delta chain,
  // so records stay independently decodable.
  const std::vector<DedupWindow::Entry> dedup_entries = recent_samples_.SortedEntries();
  auto dedup_it = dedup_entries.begin();
  while (dedup_it != dedup_entries.end()) {
    std::unordered_map<uint32_t, uint32_t> local_ids;  // interner id -> record idx
    std::string names_buf;
    std::string entries_buf;
    WireWriter names(&names_buf);
    WireWriter entries(&entries_buf);
    const auto local_index = [&](uint32_t interned) {
      const auto [it, inserted] =
          local_ids.try_emplace(interned, static_cast<uint32_t>(local_ids.size()));
      if (inserted) {
        names.PutString(dedup_ids_.NameOf(interned));
      }
      return it->second;
    };
    size_t count = 0;
    MicroTime prev = 0;
    for (; dedup_it != dedup_entries.end() && count < kDedupEntriesPerRecord;
         ++dedup_it, ++count) {
      entries.PutVarint(local_index(dedup_it->machine));
      entries.PutVarint(local_index(dedup_it->task));
      entries.PutZigzag(dedup_it->timestamp - prev);
      prev = dedup_it->timestamp;
    }
    WireWriter record(&payload);
    record.PutByte(kDedupTag);
    record.PutVarint(local_ids.size());
    payload.append(names_buf);
    record.PutVarint(count);
    payload.append(entries_buf);
    frame_out();
  }
  if (!buffer.empty()) {
    sink(buffer);
    buffer.clear();
  }

  // Spec state, shard by shard, with the same version-keyed blob cache as
  // the text writer: one framed H record and one framed S record per shard.
  const size_t shards = builder_.shard_count();
  shard_blob_cache_.resize(shards);
  shard_blob_version_.resize(shards, 0);
  for (size_t shard = 0; shard < shards; ++shard) {
    const uint64_t version = builder_.shard_version(shard);
    if (shard_blob_version_[shard] != version) {
      std::string& blob = shard_blob_cache_[shard];
      blob.clear();
      const std::vector<SpecBuilder::HistoryEntry> history =
          builder_.SnapshotShardHistory(shard);
      const std::vector<CpiSpec> specs = builder_.SnapshotShardLatestSpecs(shard);
      if (!history.empty()) {
        WireWriter record(&payload);
        record.PutByte(kHistoryTag);
        record.PutVarint(history.size());
        for (const SpecBuilder::HistoryEntry& entry : history) {
          record.PutString(entry.key.jobname);
          record.PutString(entry.key.platforminfo);
          record.PutDouble(entry.count);
          record.PutDouble(entry.mean);
          record.PutDouble(entry.m2);
          record.PutDouble(entry.usage_mean);
        }
        AppendFramedRecord(&blob, payload);
        payload.clear();
      }
      if (!specs.empty()) {
        WireWriter record(&payload);
        record.PutByte(kSpecTag);
        record.PutVarint(specs.size());
        for (const CpiSpec& spec : specs) {
          record.PutString(spec.jobname);
          record.PutString(spec.platforminfo);
          record.PutVarint(static_cast<uint64_t>(spec.num_samples));
          record.PutDouble(spec.cpu_usage_mean);
          record.PutDouble(spec.cpi_mean);
          record.PutDouble(spec.cpi_stddev);
        }
        AppendFramedRecord(&blob, payload);
        payload.clear();
      }
      shard_blob_version_[shard] = version;
    }
    if (!shard_blob_cache_[shard].empty()) {
      sink(shard_blob_cache_[shard]);
    }
  }
}

void Aggregator::WriteCheckpoint(const CheckpointSink& sink) const {
  if (params_.legacy_wire_path) {
    WriteCheckpointText(sink);
  } else {
    WriteCheckpointBinary(sink);
  }
}

std::string Aggregator::Checkpoint() const {
  std::string out;
  WriteCheckpoint([&out](std::string_view chunk) { out.append(chunk); });
  return out;
}

Status Aggregator::Restore(const std::string& checkpoint) {
  // Auto-detect the encoding: binary blobs open with the v3 magic, text
  // blobs with a version header line. A restored aggregator's state is
  // bit-identical either way.
  ParsedCheckpoint parsed;
  const Status status = HasWireMagic(checkpoint, kCheckpointMagicV3)
                            ? ParseBinaryCheckpoint(checkpoint, &parsed)
                            : ParseTextCheckpoint(checkpoint, &parsed);
  if (!status.ok()) {
    return status;
  }
  if (!parsed.have_meta) {
    return InvalidArgumentError("aggregator checkpoint: missing metadata record");
  }
  builder_.RestoreSnapshot(parsed.history, parsed.latest_specs, parsed.samples_seen);
  last_build_ = parsed.last_build;
  builds_completed_ = parsed.builds_completed;
  // Dedup state comes back from the checkpoint (v1 blobs carry none, so a
  // v1 restore degrades to the old re-accept-after-crash behaviour).
  recent_samples_.Clear();
  dedup_watermark_ = parsed.watermark;
  for (const ParsedCheckpoint::DedupEntry& entry : parsed.dedup_entries) {
    recent_samples_.Insert(entry.timestamp, dedup_ids_.Intern(entry.machine),
                           dedup_ids_.Intern(entry.task));
  }
  return Status::Ok();
}

Status Aggregator::SaveCheckpoint(const std::string& path) const {
  // Materialize then write atomically: a crash mid-save must never replace
  // the previous good checkpoint with a torn one.
  return AtomicWriteFile(path, Checkpoint());
}

Status Aggregator::LoadCheckpoint(const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    return contents.status();
  }
  return Restore(*contents);
}

}  // namespace cpi2
