#include "core/aggregator.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace cpi2 {
namespace {

// v2 adds the dedup state (W/D records) and per-shard record interleaving;
// v1 blobs (global H-then-S order, no dedup records) still load.
constexpr char kCheckpointHeaderV1[] = "cpi2-aggregator-ckpt-v1";
constexpr char kCheckpointHeaderV2[] = "cpi2-aggregator-ckpt-v2";

// Dedup records accumulate into a buffer and flush to the sink in chunks,
// so a large window never materializes as one giant string.
constexpr size_t kSinkChunkBytes = 64 * 1024;

}  // namespace

void Aggregator::AddSample(const CpiSample& sample) {
  if (params_.sample_dedup_window > 0 && !sample.machine.empty()) {
    if (sample.timestamp > dedup_watermark_) {
      dedup_watermark_ = sample.timestamp;
      // Prune entries older than the window; timestamps only move forward,
      // so the set stays bounded by window x arrival rate.
      const MicroTime cutoff = dedup_watermark_ - params_.sample_dedup_window;
      recent_samples_.erase(recent_samples_.begin(),
                            recent_samples_.lower_bound(SampleKey{cutoff, 0, 0}));
    }
    if (!recent_samples_
             .insert(SampleKey{sample.timestamp, dedup_ids_.Intern(sample.machine),
                               dedup_ids_.Intern(sample.task)})
             .second) {
      ++duplicates_dropped_;
      return;
    }
  }
  builder_.StageSample(sample);
}

void Aggregator::Tick(MicroTime now) {
  // Apply the tick's staged batch across the builder shards (in parallel
  // when a pool is attached) before any build can close the window.
  builder_.FlushStaged(pool_);
  if (last_build_ < 0) {
    // First tick: start the clock; the first build lands one interval later.
    last_build_ = now;
    return;
  }
  if (now - last_build_ >= params_.spec_update_interval) {
    ForceBuild(now);
  }
}

std::vector<CpiSpec> Aggregator::ForceBuild(MicroTime now) {
  last_build_ = now;
  ++builds_completed_;
  std::vector<CpiSpec> specs = builder_.BuildSpecs(pool_);
  if (callback_) {
    for (const CpiSpec& spec : specs) {
      callback_(spec);
    }
  }
  return specs;
}

void Aggregator::WriteCheckpoint(const CheckpointSink& sink) const {
  // Line-oriented records: M = metadata, W = dedup watermark, D = one dedup
  // window entry, H = one history entry, S = one latest spec. %.17g
  // round-trips doubles exactly, which the restore-equals-crashed-state
  // guarantee depends on.
  std::string buffer = std::string(kCheckpointHeaderV2) + "\n";
  buffer += StrFormat("M\t%lld\t%lld\t%lld\n", static_cast<long long>(last_build_),
                      static_cast<long long>(builds_completed_),
                      static_cast<long long>(builder_.samples_seen()));
  buffer += StrFormat("W\t%lld\n", static_cast<long long>(dedup_watermark_));
  for (const SampleKey& key : recent_samples_) {
    buffer += StrFormat("D\t%lld\t%s\t%s\n", static_cast<long long>(std::get<0>(key)),
                        dedup_ids_.NameOf(std::get<1>(key)).c_str(),
                        dedup_ids_.NameOf(std::get<2>(key)).c_str());
    if (buffer.size() >= kSinkChunkBytes) {
      sink(buffer);
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    sink(buffer);
  }

  // Spec state, shard by shard. A shard whose durable state hasn't changed
  // since the last checkpoint replays its cached serialization, so
  // steady-state checkpoints between builds don't re-render every job.
  const size_t shards = builder_.shard_count();
  shard_blob_cache_.resize(shards);
  shard_blob_version_.resize(shards, 0);
  for (size_t shard = 0; shard < shards; ++shard) {
    const uint64_t version = builder_.shard_version(shard);
    if (shard_blob_version_[shard] != version) {
      std::string& blob = shard_blob_cache_[shard];
      blob.clear();
      for (const SpecBuilder::HistoryEntry& entry : builder_.SnapshotShardHistory(shard)) {
        blob += StrFormat("H\t%s\t%s\t%.17g\t%.17g\t%.17g\t%.17g\n",
                          entry.key.jobname.c_str(), entry.key.platforminfo.c_str(),
                          entry.count, entry.mean, entry.m2, entry.usage_mean);
      }
      for (const CpiSpec& spec : builder_.SnapshotShardLatestSpecs(shard)) {
        blob += StrFormat("S\t%s\t%s\t%lld\t%.17g\t%.17g\t%.17g\n", spec.jobname.c_str(),
                          spec.platforminfo.c_str(), static_cast<long long>(spec.num_samples),
                          spec.cpu_usage_mean, spec.cpi_mean, spec.cpi_stddev);
      }
      shard_blob_version_[shard] = version;
    }
    if (!shard_blob_cache_[shard].empty()) {
      sink(shard_blob_cache_[shard]);
    }
  }
}

std::string Aggregator::Checkpoint() const {
  std::string out;
  WriteCheckpoint([&out](std::string_view chunk) { out.append(chunk); });
  return out;
}

Status Aggregator::Restore(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::string line;
  if (!std::getline(in, line) ||
      (line != kCheckpointHeaderV1 && line != kCheckpointHeaderV2)) {
    return InvalidArgumentError("aggregator checkpoint: missing or wrong header");
  }
  bool have_meta = false;
  MicroTime last_build = -1;
  int64_t builds_completed = 0;
  int64_t samples_seen = 0;
  MicroTime watermark = 0;
  struct DedupEntry {
    MicroTime timestamp = 0;
    std::string machine;
    std::string task;
  };
  std::vector<DedupEntry> dedup_entries;
  std::vector<SpecBuilder::HistoryEntry> history;
  std::vector<CpiSpec> latest_specs;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields_in(line);
    std::vector<std::string> fields;
    std::string field;
    while (std::getline(fields_in, field, '\t')) {
      fields.push_back(field);
    }
    const auto malformed = [&] {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint line %d: malformed record", line_number));
    };
    // Strict numeric parsing: a corrupted field must fail the restore with
    // the offending line, never silently come back as zero.
    const auto bad_number = [&](const std::string& value) {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint line %d: bad numeric field '%s'", line_number,
                    value.c_str()));
    };
    const auto parse_int = [&](const std::string& value, int64_t* out, Status* error) {
      if (!ParseInt64(value, out)) {
        *error = bad_number(value);
        return false;
      }
      return true;
    };
    const auto parse_double = [&](const std::string& value, double* out, Status* error) {
      if (!ParseDouble(value, out)) {
        *error = bad_number(value);
        return false;
      }
      return true;
    };
    Status error = Status::Ok();
    if (fields[0] == "M") {
      if (fields.size() != 4) {
        return malformed();
      }
      if (!parse_int(fields[1], &last_build, &error) ||
          !parse_int(fields[2], &builds_completed, &error) ||
          !parse_int(fields[3], &samples_seen, &error)) {
        return error;
      }
      have_meta = true;
    } else if (fields[0] == "W") {
      if (fields.size() != 2) {
        return malformed();
      }
      if (!parse_int(fields[1], &watermark, &error)) {
        return error;
      }
    } else if (fields[0] == "D") {
      if (fields.size() != 4) {
        return malformed();
      }
      DedupEntry entry;
      if (!parse_int(fields[1], &entry.timestamp, &error)) {
        return error;
      }
      entry.machine = fields[2];
      entry.task = fields[3];
      dedup_entries.push_back(std::move(entry));
    } else if (fields[0] == "H") {
      if (fields.size() != 7) {
        return malformed();
      }
      SpecBuilder::HistoryEntry entry;
      entry.key.jobname = fields[1];
      entry.key.platforminfo = fields[2];
      if (!parse_double(fields[3], &entry.count, &error) ||
          !parse_double(fields[4], &entry.mean, &error) ||
          !parse_double(fields[5], &entry.m2, &error) ||
          !parse_double(fields[6], &entry.usage_mean, &error)) {
        return error;
      }
      history.push_back(std::move(entry));
    } else if (fields[0] == "S") {
      if (fields.size() != 7) {
        return malformed();
      }
      CpiSpec spec;
      spec.jobname = fields[1];
      spec.platforminfo = fields[2];
      if (!parse_int(fields[3], &spec.num_samples, &error) ||
          !parse_double(fields[4], &spec.cpu_usage_mean, &error) ||
          !parse_double(fields[5], &spec.cpi_mean, &error) ||
          !parse_double(fields[6], &spec.cpi_stddev, &error)) {
        return error;
      }
      latest_specs.push_back(std::move(spec));
    } else {
      return InvalidArgumentError(
          StrFormat("aggregator checkpoint line %d: unknown record '%s'", line_number,
                    fields[0].c_str()));
    }
  }
  if (!have_meta) {
    return InvalidArgumentError("aggregator checkpoint: missing metadata record");
  }
  builder_.RestoreSnapshot(history, latest_specs, samples_seen);
  last_build_ = last_build;
  builds_completed_ = builds_completed;
  // Dedup state comes back from the checkpoint (v1 blobs carry none, so a
  // v1 restore degrades to the old re-accept-after-crash behaviour).
  recent_samples_.clear();
  dedup_watermark_ = watermark;
  for (const DedupEntry& entry : dedup_entries) {
    recent_samples_.insert(SampleKey{entry.timestamp, dedup_ids_.Intern(entry.machine),
                                     dedup_ids_.Intern(entry.task)});
  }
  return Status::Ok();
}

Status Aggregator::SaveCheckpoint(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError("open " + path + " for write: " + std::strerror(errno));
  }
  WriteCheckpoint([file](std::string_view chunk) {
    std::fwrite(chunk.data(), 1, chunk.size(), file);
  });
  if (std::fclose(file) != 0) {
    return InternalError("close " + path + " failed");
  }
  return Status::Ok();
}

Status Aggregator::LoadCheckpoint(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return Restore(buffer.str());
}

}  // namespace cpi2
