#include "core/correlation.h"

namespace cpi2 {

double AntagonistCorrelation(const std::vector<AlignedPair>& pairs, double cpi_threshold) {
  if (pairs.empty() || cpi_threshold <= 0.0) {
    return 0.0;
  }
  double usage_total = 0.0;
  for (const AlignedPair& pair : pairs) {
    usage_total += pair.b;
  }
  if (usage_total <= 0.0) {
    return 0.0;
  }
  double correlation = 0.0;
  for (const AlignedPair& pair : pairs) {
    const double cpi = pair.a;
    const double usage = pair.b / usage_total;  // sum of normalized usage is 1
    if (cpi > cpi_threshold) {
      correlation += usage * (1.0 - cpi_threshold / cpi);
    } else if (cpi < cpi_threshold && cpi > 0.0) {
      correlation += usage * (cpi / cpi_threshold - 1.0);
    }
  }
  return correlation;
}

double FusedAntagonistCorrelation(const TimeSeries& victim_cpi, const TimeSeries& usage,
                                  MicroTime begin, MicroTime end, MicroTime tolerance,
                                  double cpi_threshold, size_t* aligned_pairs) {
  *aligned_pairs = 0;
  const size_t a_begin = victim_cpi.LowerBound(begin);
  const size_t a_end = victim_cpi.LowerBound(end);
  if (a_begin >= a_end || usage.empty()) {
    return 0.0;
  }

  // Pass 1: count the aligned pairs and total their usage. Bit-identity with
  // the legacy path requires the same normalizer accumulated in the same
  // order, and the pair count decides the caller's skip-this-suspect rule.
  size_t pairs = 0;
  double usage_total = 0.0;
  {
    NearestCursor cursor(usage);
    size_t j = 0;
    for (size_t i = a_begin; i < a_end; ++i) {
      const MicroTime timestamp = victim_cpi[i].timestamp;
      if (cursor.Seek(timestamp, tolerance, &j)) {
        usage_total += usage[j].value;
        ++pairs;
      }
    }
  }
  if (pairs == 0) {
    return 0.0;
  }
  *aligned_pairs = pairs;
  if (cpi_threshold <= 0.0 || usage_total <= 0.0) {
    return 0.0;
  }

  // Pass 2: the correlation sum — the same per-pair expressions, values and
  // order as AntagonistCorrelation, so the result is bit-identical.
  double correlation = 0.0;
  NearestCursor cursor(usage);
  size_t j = 0;
  for (size_t i = a_begin; i < a_end; ++i) {
    const TimePoint& victim_point = victim_cpi[i];
    if (!cursor.Seek(victim_point.timestamp, tolerance, &j)) {
      continue;
    }
    const double cpi = victim_point.value;
    const double normalized = usage[j].value / usage_total;
    if (cpi > cpi_threshold) {
      correlation += normalized * (1.0 - cpi_threshold / cpi);
    } else if (cpi < cpi_threshold && cpi > 0.0) {
      correlation += normalized * (cpi / cpi_threshold - 1.0);
    }
  }
  return correlation;
}

}  // namespace cpi2
