#include "core/correlation.h"

namespace cpi2 {

double AntagonistCorrelation(const std::vector<AlignedPair>& pairs, double cpi_threshold) {
  if (pairs.empty() || cpi_threshold <= 0.0) {
    return 0.0;
  }
  double usage_total = 0.0;
  for (const AlignedPair& pair : pairs) {
    usage_total += pair.b;
  }
  if (usage_total <= 0.0) {
    return 0.0;
  }
  double correlation = 0.0;
  for (const AlignedPair& pair : pairs) {
    const double cpi = pair.a;
    const double usage = pair.b / usage_total;  // sum of normalized usage is 1
    if (cpi > cpi_threshold) {
      correlation += usage * (1.0 - cpi_threshold / cpi);
    } else if (cpi < cpi_threshold && cpi > 0.0) {
      correlation += usage * (cpi / cpi_threshold - 1.0);
    }
  }
  return correlation;
}

double FusedAntagonistCorrelation(const TimeSeries& victim_cpi, const TimeSeries& usage,
                                  MicroTime begin, MicroTime end, MicroTime tolerance,
                                  double cpi_threshold, size_t* aligned_pairs) {
  *aligned_pairs = 0;
  const size_t a_begin = victim_cpi.LowerBound(begin);
  const size_t a_end = victim_cpi.LowerBound(end);
  if (a_begin >= a_end || usage.empty()) {
    return 0.0;
  }

  // Pass 1: count the aligned pairs and total their usage. Bit-identity with
  // the legacy path requires the same normalizer accumulated in the same
  // order, and the pair count decides the caller's skip-this-suspect rule.
  size_t pairs = 0;
  double usage_total = 0.0;
  {
    NearestCursor cursor(usage);
    size_t j = 0;
    for (size_t i = a_begin; i < a_end; ++i) {
      const MicroTime timestamp = victim_cpi[i].timestamp;
      if (cursor.Seek(timestamp, tolerance, &j)) {
        usage_total += usage[j].value;
        ++pairs;
      }
    }
  }
  if (pairs == 0) {
    return 0.0;
  }
  *aligned_pairs = pairs;
  if (cpi_threshold <= 0.0 || usage_total <= 0.0) {
    return 0.0;
  }

  // Pass 2: the correlation sum — the same per-pair expressions, values and
  // order as AntagonistCorrelation, so the result is bit-identical.
  double correlation = 0.0;
  NearestCursor cursor(usage);
  size_t j = 0;
  for (size_t i = a_begin; i < a_end; ++i) {
    const TimePoint& victim_point = victim_cpi[i];
    if (!cursor.Seek(victim_point.timestamp, tolerance, &j)) {
      continue;
    }
    const double cpi = victim_point.value;
    const double normalized = usage[j].value / usage_total;
    if (cpi > cpi_threshold) {
      correlation += normalized * (1.0 - cpi_threshold / cpi);
    } else if (cpi < cpi_threshold && cpi > 0.0) {
      correlation += normalized * (cpi / cpi_threshold - 1.0);
    }
  }
  return correlation;
}

void BatchedAntagonistCorrelation(const TimeSeries& victim_cpi,
                                  const TimeSeries* const* usages, size_t n, MicroTime begin,
                                  MicroTime end, MicroTime tolerance, double cpi_threshold,
                                  BatchedCorrelationScratch* scratch) {
  BatchedCorrelationScratch& s = *scratch;
  s.count_.assign(n, 0);
  s.correlation_.assign(n, 0.0);

  const size_t a_begin = victim_cpi.LowerBound(begin);
  const size_t a_end = victim_cpi.LowerBound(end);
  if (a_begin >= a_end || n == 0) {
    return;  // Empty victim window: every suspect reports zero pairs.
  }
  const size_t window = a_end - a_begin;  // max pairs one suspect can record
  if (s.victim_ts_.size() < window) {
    s.victim_ts_.resize(window);
    s.victim_factor_.resize(window);
    s.pair_factor_.resize(window);
    s.pair_usage_.resize(window);
  }

  // ONE pass over the victim series: snapshot the window's timestamps into a
  // dense scratch column and precompute each point's SCORE FACTOR — the
  // victim-only part of the per-pair term, (1 - thr/c) above threshold,
  // (c/thr - 1) below, 0 at the threshold or for non-positive CPI. The
  // window lookup, the victim's ring indexing, the threshold branches and
  // the thr/c division are all paid once for the whole batch; every
  // suspect's fold below is a branchless multiply-accumulate against these
  // factors. The factor expressions see the exact operands the fused path's
  // per-pair expressions see, so every product is bit-identical; folding a
  // zero factor adds ±0.0 where the fused path skips the pair, which cannot
  // change the accumulator — it starts at +0.0 and IEEE round-to-nearest
  // addition never produces -0.0 from a non-(-0.0) left operand. A storm
  // re-scoring the same suspects victim after victim pays this snapshot per
  // victim, nothing per suspect.
  for (size_t i = 0; i < window; ++i) {
    const TimePoint& victim_point = victim_cpi[a_begin + i];
    s.victim_ts_[i] = victim_point.timestamp;
    const double cpi = victim_point.value;
    double factor = 0.0;
    if (cpi_threshold > 0.0) {  // non-positive threshold: every fold skips
      if (cpi > cpi_threshold) {
        factor = 1.0 - cpi_threshold / cpi;
      } else if (cpi < cpi_threshold && cpi > 0.0) {
        factor = cpi / cpi_threshold - 1.0;
      }
    }
    s.victim_factor_[i] = factor;
  }

  // Per-suspect sweep: the monotone cursor advances over the suspect's ring
  // ONCE (the fused path seeks twice — normalizer pass, then fold pass),
  // recording each aligned (CPI, usage) pair. The cursor, count and
  // accumulator live in registers through the sweep; count and accumulator
  // land in their SoA columns at the end. The fold runs only after the
  // sweep completes: the normalizer must be whole before any term folds —
  // FP division does not factor out bitwise — and the recorded pairs
  // replace the fused path's second seek pass with a dense replay. Pairs
  // are visited in the same victim-index order, the cursor picks the index
  // SeekNearestAdvance picks for every query (CachedNearestCursor is
  // decision-equivalent — it memoizes ring reads, not comparisons), and the
  // fold multiply-accumulates the same normalized-usage values against the
  // precomputed score factors (see the snapshot comment for why that is
  // term-for-term bit-identical to FusedAntagonistCorrelation's fold), so
  // each suspect's score is bit-identical to a standalone fused call.
  for (size_t suspect = 0; suspect < n; ++suspect) {
    const TimeSeries* usage = usages[suspect];
    if (usage == nullptr || usage->empty()) {
      continue;  // No data: aligned_pairs stays 0, the caller's skip rule.
    }
    // Start the cursor at the last point before the first victim timestamp
    // (one binary search) instead of greedily replaying the whole retained
    // prefix the way a from-zero cursor would. The nearest point to any
    // query >= victim_ts_[0] can never lie earlier, distance from there is
    // unimodal, and latest-wins ties advance identically — so every seek
    // lands on the exact index the fused path's from-zero cursor picks.
    // CachedNearestCursor then keeps the cursor's neighbor timestamps in
    // registers through the sweep: same decisions as SeekNearestAdvance,
    // one ring read per advance instead of three per query.
    size_t start = usage->LowerBound(s.victim_ts_[0]);
    if (start > 0) {
      --start;
    }
    if (start >= usage->size()) {
      start = usage->size() - 1;
    }
    CachedNearestCursor cursor(*usage, start);
    size_t pairs = 0;
    double usage_total = 0.0;
    for (size_t i = 0; i < window; ++i) {
      if (!cursor.Seek(s.victim_ts_[i], tolerance)) {
        continue;
      }
      const double u = (*usage)[cursor.index()].value;
      usage_total += u;
      s.pair_factor_[pairs] = s.victim_factor_[i];
      s.pair_usage_[pairs] = u;
      ++pairs;
    }
    s.count_[suspect] = pairs;
    if (pairs == 0 || cpi_threshold <= 0.0 || usage_total <= 0.0) {
      continue;  // correlation stays 0.0, matching the fused early returns
    }
    double correlation = 0.0;
    for (size_t p = 0; p < pairs; ++p) {
      correlation += (s.pair_usage_[p] / usage_total) * s.pair_factor_[p];
    }
    s.correlation_[suspect] = correlation;
  }
}

}  // namespace cpi2
