#include "core/correlation.h"

namespace cpi2 {

double AntagonistCorrelation(const std::vector<AlignedPair>& pairs, double cpi_threshold) {
  if (pairs.empty() || cpi_threshold <= 0.0) {
    return 0.0;
  }
  double usage_total = 0.0;
  for (const AlignedPair& pair : pairs) {
    usage_total += pair.b;
  }
  if (usage_total <= 0.0) {
    return 0.0;
  }
  double correlation = 0.0;
  for (const AlignedPair& pair : pairs) {
    const double cpi = pair.a;
    const double usage = pair.b / usage_total;  // sum of normalized usage is 1
    if (cpi > cpi_threshold) {
      correlation += usage * (1.0 - cpi_threshold / cpi);
    } else if (cpi < cpi_threshold && cpi > 0.0) {
      correlation += usage * (cpi / cpi_threshold - 1.0);
    }
  }
  return correlation;
}

}  // namespace cpi2
