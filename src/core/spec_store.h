// CPI spec persistence.
//
// "Other jobs run repeatedly, and have similar behavior on each invocation,
// so historical CPI data has significant value: if we have seen a previous
// run of a job, we don't have to build a new model of its CPI behavior from
// scratch" (section 3.1). SpecStore saves the aggregator's specs to a
// versioned tab-separated file and reloads them, so a restarted aggregator
// (or the next run of a nightly job) can seed its history
// (SpecBuilder::SeedHistory).
//
// Format (one record per line, '\t'-separated; '#' lines are comments):
//   cpi2-specs-v1
//   jobname  platforminfo  num_samples  cpu_usage_mean  cpi_mean  cpi_stddev

#ifndef CPI2_CORE_SPEC_STORE_H_
#define CPI2_CORE_SPEC_STORE_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace cpi2 {

// Writes `specs` to `path`, replacing any existing file.
Status SaveSpecs(const std::string& path, const std::vector<CpiSpec>& specs);

// Loads specs from `path`. Fails with kNotFound for a missing file, and
// kInvalidArgument for a malformed or wrong-version file; a partially
// readable file is never silently half-loaded.
StatusOr<std::vector<CpiSpec>> LoadSpecs(const std::string& path);

}  // namespace cpi2

#endif  // CPI2_CORE_SPEC_STORE_H_
