#include "core/adaptive_throttle.h"

#include <algorithm>

#include "util/logging.h"

namespace cpi2 {

AdaptiveThrottler::AdaptiveThrottler(const Options& options, CpuController* controller)
    : options_(options), controller_(controller) {}

Status AdaptiveThrottler::Begin(const std::string& antagonist, MicroTime now) {
  if (sessions_.count(antagonist) > 0) {
    return FailedPreconditionError("already throttling " + antagonist);
  }
  const Status status = controller_->SetCap(antagonist, options_.initial_cap);
  if (!status.ok()) {
    return status;
  }
  Session session;
  session.cap = options_.initial_cap;
  session.last_adjust = now;
  sessions_[antagonist] = session;
  return Status::Ok();
}

double AdaptiveThrottler::ObserveVictim(const std::string& antagonist, double victim_cpi,
                                        double spec_cpi_mean, MicroTime now) {
  const auto it = sessions_.find(antagonist);
  if (it == sessions_.end()) {
    return 0.0;
  }
  Session& session = it->second;
  const bool healthy =
      spec_cpi_mean > 0.0 && victim_cpi <= options_.target_degradation * spec_cpi_mean;

  if (healthy) {
    if (session.healthy_since < 0) {
      session.healthy_since = now;
    }
    // Fully relaxed and persistently healthy: the episode is over.
    if (session.at_max &&
        now - session.healthy_since >= options_.release_after_healthy) {
      const double cap = session.cap;
      (void)End(antagonist);
      return cap;
    }
  } else {
    session.healthy_since = -1;
  }

  if (now - session.last_adjust < options_.adjust_interval) {
    return session.cap;
  }
  session.last_adjust = now;

  const double previous = session.cap;
  if (healthy) {
    session.cap = std::min(options_.max_cap, session.cap * options_.loosen_factor);
  } else {
    session.cap = std::max(options_.min_cap, session.cap * options_.tighten_factor);
  }
  session.at_max = session.cap >= options_.max_cap;
  if (session.cap != previous) {
    ++adjustments_made_;
    const Status status = controller_->SetCap(antagonist, session.cap);
    if (!status.ok()) {
      CPI2_LOG(WARNING) << "adaptive cap of " << antagonist
                        << " failed: " << status.ToString();
    }
  }
  return session.cap;
}

Status AdaptiveThrottler::End(const std::string& antagonist) {
  if (sessions_.erase(antagonist) == 0) {
    return NotFoundError("not throttling " + antagonist);
  }
  return controller_->RemoveCap(antagonist);
}

std::optional<double> AdaptiveThrottler::CurrentCap(const std::string& antagonist) const {
  const auto it = sessions_.find(antagonist);
  if (it == sessions_.end()) {
    return std::nullopt;
  }
  return it->second.cap;
}

}  // namespace cpi2
