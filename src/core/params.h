// CPI2 configuration parameters (Table 2 of the paper).
//
// Defaults match the paper's deployed values exactly. Experiments that
// shrink timescales (e.g. unit tests that cannot simulate 24 hours) override
// individual fields; the semantics of each knob never change.

#ifndef CPI2_CORE_PARAMS_H_
#define CPI2_CORE_PARAMS_H_

#include <string>

#include "util/clock.h"

namespace cpi2 {

struct Cpi2Params {
  // --- collection (section 3.1) -------------------------------------------
  // "Sampling duration: 10 seconds".
  MicroTime sample_duration = 10 * kMicrosPerSecond;
  // "Sampling frequency: every 1 minute".
  MicroTime sample_period = kMicrosPerMinute;

  // --- aggregation (section 3.1) -------------------------------------------
  // "Predicted CPI recalculated every 24 hours (goal: 1 hour)".
  MicroTime spec_update_interval = 24 * kMicrosPerHour;
  // Historical specs decay: "multiplying the CPI value from the previous
  // day by about 0.9 before averaging it with the most recent day's data".
  double history_weight = 0.9;
  // "We do not perform CPI management for applications with fewer than 5
  // tasks or fewer than 100 CPI samples per task."
  int min_tasks_for_spec = 5;
  int min_samples_per_task = 100;

  // --- anomaly detection (section 4.1) -------------------------------------
  // "Required CPU usage >= 0.25 CPU-sec/sec".
  double min_cpu_usage = 0.25;
  // "Outlier threshold 1: 2 sigma".
  double outlier_sigmas = 2.0;
  // "Outlier threshold 2: 3 violations in 5 minutes".
  int outlier_violations = 3;
  MicroTime violation_window = 5 * kMicrosPerMinute;

  // --- antagonist identification (section 4.2) ------------------------------
  // "we typically use a 10-minute window".
  MicroTime correlation_window = 10 * kMicrosPerMinute;
  // "requiring a correlation value of at least 0.35 works well".
  double correlation_threshold = 0.35;
  // "at most one of these attempts is performed each second".
  MicroTime analysis_interval = kMicrosPerSecond;
  // Validation escape hatch: route antagonist analyses through the legacy
  // AlignSeries + AntagonistCorrelation pair (O(|victim| log |suspect|), one
  // allocation per suspect) instead of the fused merge-join fast path. The
  // two are bit-identical — correlation_equivalence_test and
  // ParallelDeterminismTest.LegacyCorrelationPathMatchesFastPath hold the
  // proof — so this exists only to keep that claim checkable in CI.
  bool legacy_correlation_path = false;
  // Validation escape hatch, one layer above legacy_correlation_path: route
  // antagonist identification through the per-suspect loop — the agent
  // rebuilds a SuspectInput vector (string copies and all) on every anomaly
  // and AntagonistIdentifier::Analyze runs one FusedAntagonistCorrelation
  // call per suspect — instead of the batched one-pass engine over the
  // agent's persistent suspect table (DESIGN.md §17). Ranked output is
  // bit-identical: ParallelDeterminismTest.BatchedIdentificationMatchesPerSuspect
  // and bench_identification_storm's pre-timing check hold the proof.
  // legacy_correlation_path implies this path (AlignSeries is per-suspect by
  // construction), so the three identification tiers chain:
  // batched ≡ per-suspect fused ≡ per-suspect AlignSeries.
  bool legacy_identification_path = false;

  // --- enforcement (section 5) ----------------------------------------------
  // "0.01 CPU-sec/sec for low-importance ('best effort') batch jobs and 0.1
  // CPU-sec/sec for other job types".
  double cap_best_effort = 0.01;
  double cap_other = 0.1;
  // "Performance caps are currently applied for 5 minutes at a time".
  MicroTime cap_duration = 5 * kMicrosPerMinute;
  // Master switch for automatic enforcement (operators can disable it per
  // cluster).
  bool enforcement_enabled = true;
  // Escalation (section 6.2 / future work): "if throttling didn't work, it
  // would ask the cluster scheduler to kill and restart an antagonist task
  // on another machine". After this many incidents whose best suspect is
  // already under a cap, the migration callback fires for that suspect.
  int recaps_before_migration = 3;

  // --- degraded modes (robustness hardening; no paper counterpart) ----------
  // Bounded sample outbox between the agent and the aggregator. Samples wait
  // here until the delivery callback acknowledges them; when the aggregator
  // is unreachable the agent retries with exponential backoff plus jitter.
  // When the outbox is full the oldest sample is dropped (and counted).
  int sample_outbox_capacity = 256;
  MicroTime delivery_retry_backoff = 2 * kMicrosPerSecond;
  MicroTime delivery_retry_backoff_max = kMicrosPerMinute;
  // Jitter as a fraction of the current backoff, drawn uniformly in
  // [0, jitter * backoff). Keeps a fleet of agents from retrying in sync.
  double delivery_retry_jitter = 0.25;
  // Spec staleness TTL: 0 disables staleness tracking entirely (legacy
  // behaviour). When set, a spec older than the TTL widens the outlier
  // threshold by stale_sigma_factor (fewer false alarms on drifting data),
  // and a spec older than stale_suppress_factor * TTL suppresses detection
  // for that job outright: never cap on dead data.
  MicroTime spec_staleness_ttl = 0;
  double stale_sigma_factor = 1.5;
  double stale_suppress_factor = 2.0;
  // Counter sanity filter: windows whose deltas are physically impossible
  // (counter went backwards, absurd CPI or usage) are rejected before they
  // reach detection. The bounds are far outside anything a healthy machine
  // produces, so the filter is inert on clean data.
  bool counter_sanity_filter = true;
  double max_plausible_cpi = 1e4;
  double max_plausible_usage = 1024.0;  // CPU-sec/sec
  // Aggregator duplicate-sample dedup window: 0 disables. When set, a
  // (machine, task, timestamp) triple seen twice within the window is
  // dropped, making retried deliveries after a lost ack idempotent.
  MicroTime sample_dedup_window = 0;

  // --- control-plane fast path (engineering; no paper counterpart) ----------
  // SpecBuilder shards its per-job×platform state by key hash so batched
  // sample ingest and spec builds run per shard, in parallel when a thread
  // pool is attached. Shard outputs merge in the legacy string-sorted key
  // order and the per-key arithmetic is untouched, so specs, push order, and
  // fault-RNG draws are bit-identical for any shard count; 1 reproduces the
  // single-map layout. Values < 1 are clamped to 1.
  int spec_shards = 8;
  // Aggregation topology. The flat path is the paper's design: one
  // Aggregator ingests every machine's samples directly. Clearing this flag
  // selects the two-tier path (DESIGN.md §16): per-cell shard aggregators
  // fold samples into mergeable integer sketches, ship CPI2SKT1 partial
  // frames to a global merger, and the merger builds the same CpiSpecs the
  // flat path produces — bit-identical across any cell count and thread
  // count, equal to the flat path within sketch quantization (~2^-20
  // relative). ParallelDeterminismTest holds both claims. Tiered mode also
  // flips spec distribution from per-machine platform scans to subscription
  // fan-out: machines register interest per job and the merger pushes only
  // to subscribers, with versioned invalidation across restarts.
  bool flat_aggregation_path = true;
  // Cell count for the tiered path (ignored when flat_aggregation_path is
  // set). Values < 1 are clamped to 1.
  int aggregation_cells = 4;
  // Validation escape hatch, mirroring legacy_correlation_path: route
  // IncidentLog::Select / TopAntagonists through the reference O(n) scan
  // instead of the columnar segment store + posting lists. The two paths are
  // result-identical (same rows, ordering, and tie-breaks) — proven by
  // forensics_equivalence_test — so this exists to keep that claim checkable
  // in CI and as the baseline for bench_forensics_query.
  bool legacy_forensics_path = false;

  // --- wire & storage formats (engineering; no paper counterpart) -----------
  // Validation escape hatch, mirroring legacy_correlation_path: route the
  // agent→aggregator transport through per-sample struct delivery and write
  // incidents/checkpoints in their text formats, instead of the binary
  // dictionary-coded wire path. Both paths are observably identical — same
  // specs, incidents, health counters, and fault-RNG draws — proven by
  // ParallelDeterminismTest.LegacyWirePathMatchesBinary. Text files remain
  // loadable forever regardless of this flag.
  bool legacy_wire_path = false;

  // Flush policy for the binary sample-batch transport. A batch seals when
  // it reaches wire_batch_max_samples, or at the first flush opportunity
  // once it is wire_batch_max_age old (0 = seal at every flush, which makes
  // batch delivery timing identical to per-sample delivery).
  int wire_batch_max_samples = 64;
  MicroTime wire_batch_max_age = 0;

  // Renders the parameter table (used by bench_table2_params and --help
  // style output).
  std::string ToTable() const;
};

}  // namespace cpi2

#endif  // CPI2_CORE_PARAMS_H_
