// Incident log persistence for offline forensics.
//
// "To allow offline analysis, we log and store data about CPIs and
// suspected antagonists. Job owners and administrators can issue SQL-like
// queries against this data" (section 5). This module gives the incident
// log a durable form: a versioned TSV with one row per incident (suspects
// flattened into a ';'-separated column) that round-trips losslessly enough
// for every IncidentLog query to work on the reloaded data.

#ifndef CPI2_CORE_INCIDENT_LOG_IO_H_
#define CPI2_CORE_INCIDENT_LOG_IO_H_

#include <string>

#include "core/incident_log.h"
#include "util/status.h"

namespace cpi2 {

// Writes every incident in `log` to `path`, replacing any existing file.
Status SaveIncidents(const std::string& path, const IncidentLog& log);

// Loads a saved incident file into a fresh IncidentLog.
StatusOr<IncidentLog> LoadIncidents(const std::string& path);

}  // namespace cpi2

#endif  // CPI2_CORE_INCIDENT_LOG_IO_H_
