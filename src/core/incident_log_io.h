// Incident log persistence for offline forensics.
//
// "To allow offline analysis, we log and store data about CPIs and
// suspected antagonists. Job owners and administrators can issue SQL-like
// queries against this data" (section 5). This module gives the incident
// log a durable form in two interchangeable encodings:
//
//   - v2 binary (default): the framed format in wire/incident_codec.h —
//     one file-level name dictionary, CRC-guarded records, doubles as raw
//     bits. 3-4x smaller than the TSV and immune to in-band separators.
//   - v1 text: the original versioned TSV, one row per incident, suspects
//     flattened into a ';'-separated column. Still written when the
//     deployment runs with params.legacy_wire_path, and loadable forever.
//
// LoadIncidents auto-detects the encoding, so archives written by any
// version of this code keep loading.

#ifndef CPI2_CORE_INCIDENT_LOG_IO_H_
#define CPI2_CORE_INCIDENT_LOG_IO_H_

#include <string>
#include <vector>

#include "core/incident_log.h"
#include "util/status.h"

namespace cpi2 {

// On-disk encoding for SaveIncidents. Deployments pick via
// params.legacy_wire_path (true -> kText); loading auto-detects.
enum class IncidentFileFormat {
  kBinary,  // framed binary v2 (wire/incident_codec.h)
  kText,    // TSV v1
};

// Writes every incident in `log` to `path`, crash-atomically (tmp + fsync +
// rename): a kill mid-save leaves any previous archive untouched. The text
// encoding rejects names containing its in-band separators; the binary
// encoding has no such restriction.
Status SaveIncidents(const std::string& path, const IncidentLog& log,
                     IncidentFileFormat format = IncidentFileFormat::kBinary);

// What a load skipped, and exactly where. Each entry names the torn or
// corrupted unit — "<path>:<line>: <reason>" for text archives,
// "<path>: record <n>: <reason>" for binary ones — so an operator can go
// look at the damage instead of guessing.
struct IncidentLoadStats {
  int64_t records_skipped = 0;
  std::vector<std::string> skipped;
};

// Loads a saved incident file (either encoding) into a fresh IncidentLog.
//
// Robustness: a truncated or corrupted record (torn TSV line, bad-CRC
// binary record, torn binary tail) is skipped with a logged warning instead
// of failing the whole load — a forensics store must survive a torn write
// at its tail. Only a missing file, a wrong header/magic, or (binary) a
// damaged file dictionary still fails. `*stats`, if non-null, receives the
// skip count and the identity of every skipped record.
StatusOr<IncidentLog> LoadIncidentsWithStats(const std::string& path,
                                             IncidentLoadStats* stats);

// Back-compat wrapper keeping the original count-only out-param.
StatusOr<IncidentLog> LoadIncidents(const std::string& path,
                                    int64_t* lines_skipped = nullptr);

}  // namespace cpi2

#endif  // CPI2_CORE_INCIDENT_LOG_IO_H_
