// Incident log persistence for offline forensics.
//
// "To allow offline analysis, we log and store data about CPIs and
// suspected antagonists. Job owners and administrators can issue SQL-like
// queries against this data" (section 5). This module gives the incident
// log a durable form: a versioned TSV with one row per incident (suspects
// flattened into a ';'-separated column) that round-trips losslessly enough
// for every IncidentLog query to work on the reloaded data.

#ifndef CPI2_CORE_INCIDENT_LOG_IO_H_
#define CPI2_CORE_INCIDENT_LOG_IO_H_

#include <string>

#include "core/incident_log.h"
#include "util/status.h"

namespace cpi2 {

// Writes every incident in `log` to `path`, replacing any existing file.
Status SaveIncidents(const std::string& path, const IncidentLog& log);

// Loads a saved incident file into a fresh IncidentLog.
//
// Robustness: a truncated or corrupted body line (wrong field count,
// malformed suspect record) is skipped with a logged warning instead of
// failing the whole load — a forensics store must survive a torn write at
// its tail. Each skip is counted into `*lines_skipped` (if non-null), so
// callers can surface "loaded N incidents, skipped M bad lines". Only a
// missing file or a missing/wrong header still fails.
StatusOr<IncidentLog> LoadIncidents(const std::string& path,
                                    int64_t* lines_skipped = nullptr);

}  // namespace cpi2

#endif  // CPI2_CORE_INCIDENT_LOG_IO_H_
