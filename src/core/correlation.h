// The paper's antagonist-correlation score (section 4.2).
//
// Given time-aligned samples of a victim's CPI {c_i} and a suspect's CPU
// usage {u_i} (normalized so sum u_i = 1) over a window, and the victim's
// abnormal-CPI threshold c_thr:
//
//   corr = sum over i of:
//     u_i * (1 - c_thr / c_i)   when c_i > c_thr   (usage during bad CPI)
//     u_i * (c_i / c_thr - 1)   when c_i < c_thr   (usage during good CPI)
//
// The result lies in [-1, 1]: usage spikes coinciding with victim pain push
// it up; usage during healthy victim periods pushes it down. This is a
// deliberately simple passive score: no throttle-probing of innocents.
//
// Three implementations of the same score:
//  - AntagonistCorrelation over a pre-aligned pair vector: the legacy
//    reference path (pairs come from AlignSeries, which allocates and costs
//    O(|a| log |b|)).
//  - FusedAntagonistCorrelation over the two raw series: merge-join
//    alignment fused with the correlation sum, O(|a|+|b|) and zero
//    allocations. Visits the identical pairs in the identical order with
//    identical arithmetic, so the two paths are bit-identical
//    (correlation_equivalence_test proves it on random series).
//  - BatchedAntagonistCorrelation over one victim and MANY suspect series:
//    ONE pass over the victim series snapshots the correlation window into
//    dense scratch columns — timestamps plus each point's precomputed score
//    factor — then a per-suspect monotone cursor (SoA count and accumulator
//    columns) sweeps each suspect's ring a single time, recording the
//    aligned (factor, usage) pairs; the fold is a branchless
//    multiply-accumulate whose every product is the product the fused
//    path's per-pair expression computes, so every score is bit-identical
//    to a FusedAntagonistCorrelation call on that suspect
//    (correlation_equivalence_test again). The kernel pays the alignment
//    seek work once per suspect instead of twice, the victim window lookup,
//    ring indexing, threshold branches and victim-side division once per
//    BATCH instead of twice per suspect, and folds out of L1-resident
//    scratch — this is the identification engine's anomaly-storm kernel
//    (DESIGN.md §17).

#ifndef CPI2_CORE_CORRELATION_H_
#define CPI2_CORE_CORRELATION_H_

#include <cstddef>
#include <vector>

#include "util/time_series.h"

namespace cpi2 {

// `pairs` holds (victim CPI, suspect CPU usage) sample pairs: pair.a is the
// victim's CPI, pair.b the suspect's usage. Usage is normalized internally.
// Returns 0 for an empty window or an all-idle suspect.
double AntagonistCorrelation(const std::vector<AlignedPair>& pairs, double cpi_threshold);

// Fast path: aligns victim CPI points in [begin, end) against the nearest
// usage point within `tolerance` (merge-join, two monotone cursors) and
// computes the correlation in the same sweep. `*aligned_pairs` reports how
// many points paired up — zero means the suspect had no overlapping data and
// the caller should skip it, exactly as an empty AlignSeries result would.
double FusedAntagonistCorrelation(const TimeSeries& victim_cpi, const TimeSeries& usage,
                                  MicroTime begin, MicroTime end, MicroTime tolerance,
                                  double cpi_threshold, size_t* aligned_pairs);

// Reusable SoA scratch for BatchedAntagonistCorrelation. The per-suspect
// columns (cursor, count, accumulator, score) are indexed by suspect; the
// victim-snapshot and pair-recording buffers are sized by the window length
// and reused for every suspect in the batch. Keep one instance alive across
// calls (the agent does, per DESIGN.md §17) and the steady state allocates
// nothing: an anomaly storm re-scores victim after victim out of the same
// buffers.
class BatchedCorrelationScratch {
 public:
  // Outputs of the last BatchedAntagonistCorrelation call.
  double correlation(size_t suspect) const { return correlation_[suspect]; }
  size_t aligned_pairs(size_t suspect) const { return count_[suspect]; }

 private:
  friend void BatchedAntagonistCorrelation(const TimeSeries&, const TimeSeries* const*,
                                           size_t, MicroTime, MicroTime, MicroTime, double,
                                           BatchedCorrelationScratch*);
  std::vector<size_t> count_;        // per-suspect aligned-pair count
  std::vector<double> correlation_;  // per-suspect final score
  std::vector<MicroTime> victim_ts_;     // dense victim-window snapshot ...
  std::vector<double> victim_factor_;    // ... with the per-point score factor
  std::vector<double> pair_factor_;      // recorded factors, reused per suspect
  std::vector<double> pair_usage_;       // recorded suspect usage, same layout
};

// Scores `n` suspects against one victim: one pass over the victim series
// snapshots the window, then each suspect gets a single-seek sweep + fold.
// usages[s] == nullptr (or an empty/non-overlapping series) yields
// aligned_pairs(s) == 0 — the caller's skip-this-suspect rule, exactly as a
// FusedAntagonistCorrelation call returning *aligned_pairs == 0 would.
// Every returned correlation(s) is bit-identical to
// FusedAntagonistCorrelation(victim_cpi, *usages[s], ...): each sweep visits
// victim points in the same order, the per-suspect cursors pick the exact
// indices the fused path's SeekNearestAdvance picks (CachedNearestCursor is
// decision-equivalent), and the fold replays the recorded pairs with the
// same expressions in the same order.
void BatchedAntagonistCorrelation(const TimeSeries& victim_cpi,
                                  const TimeSeries* const* usages, size_t n, MicroTime begin,
                                  MicroTime end, MicroTime tolerance, double cpi_threshold,
                                  BatchedCorrelationScratch* scratch);

}  // namespace cpi2

#endif  // CPI2_CORE_CORRELATION_H_
