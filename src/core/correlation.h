// The paper's antagonist-correlation score (section 4.2).
//
// Given time-aligned samples of a victim's CPI {c_i} and a suspect's CPU
// usage {u_i} (normalized so sum u_i = 1) over a window, and the victim's
// abnormal-CPI threshold c_thr:
//
//   corr = sum over i of:
//     u_i * (1 - c_thr / c_i)   when c_i > c_thr   (usage during bad CPI)
//     u_i * (c_i / c_thr - 1)   when c_i < c_thr   (usage during good CPI)
//
// The result lies in [-1, 1]: usage spikes coinciding with victim pain push
// it up; usage during healthy victim periods pushes it down. This is a
// deliberately simple passive score: no throttle-probing of innocents.
//
// Two implementations of the same score:
//  - AntagonistCorrelation over a pre-aligned pair vector: the legacy
//    reference path (pairs come from AlignSeries, which allocates and costs
//    O(|a| log |b|)).
//  - FusedAntagonistCorrelation over the two raw series: merge-join
//    alignment fused with the correlation sum, O(|a|+|b|) and zero
//    allocations. Visits the identical pairs in the identical order with
//    identical arithmetic, so the two paths are bit-identical
//    (correlation_equivalence_test proves it on random series).

#ifndef CPI2_CORE_CORRELATION_H_
#define CPI2_CORE_CORRELATION_H_

#include <cstddef>
#include <vector>

#include "util/time_series.h"

namespace cpi2 {

// `pairs` holds (victim CPI, suspect CPU usage) sample pairs: pair.a is the
// victim's CPI, pair.b the suspect's usage. Usage is normalized internally.
// Returns 0 for an empty window or an all-idle suspect.
double AntagonistCorrelation(const std::vector<AlignedPair>& pairs, double cpi_threshold);

// Fast path: aligns victim CPI points in [begin, end) against the nearest
// usage point within `tolerance` (merge-join, two monotone cursors) and
// computes the correlation in the same sweep. `*aligned_pairs` reports how
// many points paired up — zero means the suspect had no overlapping data and
// the caller should skip it, exactly as an empty AlignSeries result would.
double FusedAntagonistCorrelation(const TimeSeries& victim_cpi, const TimeSeries& usage,
                                  MicroTime begin, MicroTime end, MicroTime tolerance,
                                  double cpi_threshold, size_t* aligned_pairs);

}  // namespace cpi2

#endif  // CPI2_CORE_CORRELATION_H_
