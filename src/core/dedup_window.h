// DedupWindow: the aggregator's duplicate-sample membership window.
//
// Semantically a set of (timestamp, machine, task) keys supporting
// insert-if-absent and prune-everything-older-than — exactly what
// std::set<tuple> provided, but shaped for the ingest hot path. The wire
// transport retransmits whole batches after a reconnect, so at high sample
// rates this set sees one insert per sample and can hold millions of live
// entries; a node-based tree pays an allocation plus a deep pointer chase
// per sample, which dominated the decode->dedup->stage pipeline.
//
// Layout: an open-addressed hash table (linear probing, power-of-two
// capacity) answers membership, and a binary min-heap ordered by timestamp
// drives pruning. The heap doubles as the dense entry list: every live key
// appears exactly once in heap_, so rehashes rebuild from it and snapshots
// sort a copy of it. Timestamps from a live agent are nearly monotonic, so
// the common-case heap push is a single leaf write with zero sift-up swaps
// and the common-case insert touches two contiguous arrays — no allocation
// at steady state.
//
// Checkpoint writers need the std::set iteration order (ascending by
// timestamp, then machine id, then task id) so restored-and-rewritten
// checkpoints stay byte-identical; SortedEntries() materializes exactly
// that ordering on demand, paying the sort only at checkpoint time.

#ifndef CPI2_CORE_DEDUP_WINDOW_H_
#define CPI2_CORE_DEDUP_WINDOW_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace cpi2 {

class DedupWindow {
 public:
  struct Entry {
    MicroTime timestamp = 0;
    uint32_t machine = 0;
    uint32_t task = 0;

    bool SameKey(const Entry& other) const {
      return timestamp == other.timestamp && machine == other.machine &&
             task == other.task;
    }
  };

  // Inserts the key if absent; returns false (a duplicate) if present.
  bool Insert(MicroTime timestamp, uint32_t machine, uint32_t task) {
    const Entry entry{timestamp, machine, task};
    if ((heap_.size() + tombstones_ + 1) * 8 > capacity() * 7) {
      Rehash();
    }
    const uint64_t mask = capacity() - 1;
    size_t i = Hash(entry) & mask;
    size_t target = capacity();  // first tombstone seen, reusable
    while (true) {
      const uint8_t s = state_[i];
      if (s == kEmpty) {
        break;
      }
      if (s == kTombstone) {
        if (target == capacity()) {
          target = i;
        }
      } else if (slots_[i].SameKey(entry)) {
        return false;
      }
      i = (i + 1) & mask;
    }
    if (target == capacity()) {
      target = i;
    } else {
      --tombstones_;
    }
    slots_[target] = entry;
    state_[target] = kFull;
    HeapPush(entry);
    return true;
  }

  // Removes every entry with timestamp < cutoff (same boundary as the old
  // lower_bound({cutoff, 0, 0}) prune: entries AT the cutoff survive).
  void PruneOlderThan(MicroTime cutoff) {
    while (!heap_.empty() && heap_.front().timestamp < cutoff) {
      Erase(heap_.front());
      HeapPopMin();
    }
    // A long-lived window builds up tombstones even though the live count
    // stays flat; fold them back into capacity once they dominate.
    if (tombstones_ > 0 && tombstones_ * 4 > capacity()) {
      Rehash();
    }
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  void Clear() {
    state_.assign(state_.size(), kEmpty);
    heap_.clear();
    tombstones_ = 0;
  }

  // Every live entry, ascending by (timestamp, machine, task) — the exact
  // iteration order of the std::set<tuple> this structure replaced, which
  // the checkpoint formats depend on.
  std::vector<Entry> SortedEntries() const {
    std::vector<Entry> entries = heap_;
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      if (a.timestamp != b.timestamp) {
        return a.timestamp < b.timestamp;
      }
      if (a.machine != b.machine) {
        return a.machine < b.machine;
      }
      return a.task < b.task;
    });
    return entries;
  }

 private:
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kFull = 1;
  static constexpr uint8_t kTombstone = 2;
  static constexpr size_t kMinCapacity = 64;

  size_t capacity() const { return state_.size(); }

  static uint64_t Hash(const Entry& entry) {
    // SplitMix64 finalizer over the packed key fields.
    uint64_t x = static_cast<uint64_t>(entry.timestamp);
    x ^= (static_cast<uint64_t>(entry.machine) << 32) | entry.task;
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  void Rehash() {
    size_t new_capacity = std::max(kMinCapacity, capacity());
    // Grow only when genuinely full of live entries; a tombstone-heavy
    // rehash reuses the current footprint.
    while ((heap_.size() + 1) * 2 > new_capacity) {
      new_capacity *= 2;
    }
    slots_.assign(new_capacity, Entry{});
    state_.assign(new_capacity, kEmpty);
    tombstones_ = 0;
    const uint64_t mask = new_capacity - 1;
    for (const Entry& entry : heap_) {
      size_t i = Hash(entry) & mask;
      while (state_[i] != kEmpty) {
        i = (i + 1) & mask;
      }
      slots_[i] = entry;
      state_[i] = kFull;
    }
  }

  // Marks the slot holding `entry` (which must be present) as a tombstone.
  void Erase(const Entry& entry) {
    const uint64_t mask = capacity() - 1;
    size_t i = Hash(entry) & mask;
    while (state_[i] != kFull || !slots_[i].SameKey(entry)) {
      i = (i + 1) & mask;
    }
    state_[i] = kTombstone;
    ++tombstones_;
  }

  void HeapPush(const Entry& entry) {
    heap_.push_back(entry);
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (heap_[parent].timestamp <= heap_[i].timestamp) {
        break;
      }
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void HeapPopMin() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    size_t i = 0;
    while (true) {
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      size_t smallest = i;
      if (left < heap_.size() && heap_[left].timestamp < heap_[smallest].timestamp) {
        smallest = left;
      }
      if (right < heap_.size() && heap_[right].timestamp < heap_[smallest].timestamp) {
        smallest = right;
      }
      if (smallest == i) {
        return;
      }
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> slots_;   // hash table payload (valid where state_ == kFull)
  std::vector<uint8_t> state_;
  std::vector<Entry> heap_;    // min-heap by timestamp; also the dense live list
  size_t tombstones_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_DEDUP_WINDOW_H_
