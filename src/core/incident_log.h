// Incident storage and forensics queries.
//
// The paper logs CPI and suspected-antagonist data and lets job owners run
// Dremel (SQL) queries over it, "e.g., to find the most aggressive
// antagonists for a job in a particular time window" (section 5). This is
// the equivalent typed query surface: time-range / job / machine filters
// and a top-K antagonist ranking that can feed the scheduler's
// avoid-co-location constraints.
//
// Storage: incidents append to a deque, so pointers handed out by Select
// stay valid across later appends (a vector would invalidate them on
// reallocation). Queries run through the columnar ForensicsIndex in
// O(log n + matches); construct with legacy_scan_path = true (or set
// params.legacy_forensics_path) to route them through the reference O(n)
// scan instead. The two paths return identical results — same rows, same
// order, same tie-breaks — proven by forensics_equivalence_test.

#ifndef CPI2_CORE_INCIDENT_LOG_H_
#define CPI2_CORE_INCIDENT_LOG_H_

#include <deque>
#include <string>
#include <vector>

#include "core/incident.h"
#include "core/incident_columnar.h"

namespace cpi2 {

class IncidentLog {
 public:
  explicit IncidentLog(bool legacy_scan_path = false)
      : legacy_scan_path_(legacy_scan_path) {}

  void Add(const Incident& incident) {
    incidents_.push_back(incident);
    index_.Add(incident);
  }

  size_t size() const { return incidents_.size(); }
  const std::deque<Incident>& incidents() const { return incidents_; }

  using Query = ForensicsIndex::Query;

  // Matching incidents in log order. The returned pointers remain valid for
  // the log's lifetime, including across subsequent Add calls.
  std::vector<const Incident*> Select(const Query& query) const;

  // Aggregated view of who keeps hurting a job.
  struct AntagonistStats {
    std::string jobname;      // the suspected antagonist job
    int incidents = 0;        // incidents where it was the top suspect
    int times_capped = 0;     // incidents where it was actually capped
    double max_correlation = 0.0;
    double mean_correlation = 0.0;
  };

  // The most aggressive antagonist jobs for `victim_job` (all jobs when
  // empty) in [begin, end) (unbounded when 0), ranked by incident count.
  std::vector<AntagonistStats> TopAntagonists(const std::string& victim_job, MicroTime begin,
                                              MicroTime end, int k) const;

  // Reference full-scan implementations, kept callable so the equivalence
  // test and bench_forensics_query can compare both paths on one log.
  std::vector<const Incident*> SelectLegacy(const Query& query) const;
  std::vector<AntagonistStats> TopAntagonistsLegacy(const std::string& victim_job,
                                                    MicroTime begin, MicroTime end, int k) const;

 private:
  // Shared ranking tail: sort by (incidents desc, max_correlation desc) and
  // truncate to k. Both paths feed it the same pre-sort sequence (ascending
  // jobname), so unstable-sort tie-breaks agree.
  static std::vector<AntagonistStats> Rank(std::vector<AntagonistStats> ranked, int k);

  bool legacy_scan_path_ = false;
  std::deque<Incident> incidents_;
  ForensicsIndex index_;
};

}  // namespace cpi2

#endif  // CPI2_CORE_INCIDENT_LOG_H_
