// Incident storage and forensics queries.
//
// The paper logs CPI and suspected-antagonist data and lets job owners run
// Dremel (SQL) queries over it, "e.g., to find the most aggressive
// antagonists for a job in a particular time window" (section 5). This is
// the equivalent typed query surface: time-range / job / machine filters
// and a top-K antagonist ranking that can feed the scheduler's
// avoid-co-location constraints.

#ifndef CPI2_CORE_INCIDENT_LOG_H_
#define CPI2_CORE_INCIDENT_LOG_H_

#include <string>
#include <vector>

#include "core/incident.h"

namespace cpi2 {

class IncidentLog {
 public:
  void Add(const Incident& incident) { incidents_.push_back(incident); }

  size_t size() const { return incidents_.size(); }
  const std::vector<Incident>& incidents() const { return incidents_; }

  struct Query {
    // Empty strings / zero times mean "no constraint".
    std::string victim_job;
    std::string machine;
    MicroTime begin = 0;
    MicroTime end = 0;
    // Only incidents whose top suspect clears this correlation.
    double min_top_correlation = 0.0;
    // Only incidents where action was taken.
    bool capped_only = false;
  };

  std::vector<const Incident*> Select(const Query& query) const;

  // Aggregated view of who keeps hurting a job.
  struct AntagonistStats {
    std::string jobname;      // the suspected antagonist job
    int incidents = 0;        // incidents where it was the top suspect
    int times_capped = 0;     // incidents where it was actually capped
    double max_correlation = 0.0;
    double mean_correlation = 0.0;
  };

  // The most aggressive antagonist jobs for `victim_job` (all jobs when
  // empty) in [begin, end) (unbounded when 0), ranked by incident count.
  std::vector<AntagonistStats> TopAntagonists(const std::string& victim_job, MicroTime begin,
                                              MicroTime end, int k) const;

 private:
  std::vector<Incident> incidents_;
};

}  // namespace cpi2

#endif  // CPI2_CORE_INCIDENT_LOG_H_
