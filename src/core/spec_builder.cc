#include "core/spec_builder.h"

#include <algorithm>
#include <cmath>

namespace cpi2 {
namespace {

// Below this many staged samples a parallel flush costs more in pool
// round-trips than it saves; apply serially instead. Purely a scheduling
// choice — the arithmetic is identical either way.
constexpr size_t kMinStagedForParallelFlush = 256;

}  // namespace

SpecBuilder::SpecBuilder(const Cpi2Params& params) : params_(params) {
  shards_.resize(params.spec_shards < 1 ? 1 : static_cast<size_t>(params.spec_shards));
}

void SpecBuilder::MomentHistory::Decay(double weight) {
  count *= weight;
  m2 *= weight;
  // mean and usage_mean are location parameters; decay shrinks their weight
  // in the next merge, not their value.
}

void SpecBuilder::MomentHistory::Merge(double other_count, double other_mean, double other_m2,
                                       double other_usage) {
  if (other_count <= 0.0) {
    return;
  }
  if (count <= 0.0) {
    count = other_count;
    mean = other_mean;
    m2 = other_m2;
    usage_mean = other_usage;
    return;
  }
  const double total = count + other_count;
  const double delta = other_mean - mean;
  m2 += other_m2 + delta * delta * count * other_count / total;
  mean += delta * other_count / total;
  usage_mean += (other_usage - usage_mean) * other_count / total;
  count = total;
}

size_t SpecBuilder::Route(const CpiSample& sample) {
  ++samples_seen_;
  StagedSample staged;
  staged.key = MakeKey(job_memo_.Intern(names_, sample.jobname),
                       platform_memo_.Intern(names_, sample.platforminfo));
  if (!sample.task.empty()) {
    staged.task = task_memo_.Intern(names_, sample.task);
    staged.has_task = true;
  }
  staged.cpi = sample.cpi;
  staged.usage = sample.cpu_usage;
  const size_t shard = ShardOf(staged.key);
  shards_[shard].staged.push_back(staged);
  ++staged_total_;
  return shard;
}

void SpecBuilder::StageSample(const CpiSample& sample) { (void)Route(sample); }

void SpecBuilder::AddSample(const CpiSample& sample) {
  if (staged_total_ > 0) {
    // Keep arrival order when the two ingest paths are mixed.
    FlushStaged(nullptr);
  }
  ApplyStaged(shards_[Route(sample)]);
  staged_total_ = 0;
}

void SpecBuilder::ApplyStaged(Shard& shard) {
  for (const StagedSample& staged : shard.staged) {
    Accumulation& accumulation = shard.current[staged.key];
    accumulation.cpi.Add(staged.cpi);
    accumulation.usage.Add(staged.usage);
    if (staged.has_task) {
      ++accumulation.samples_per_task[staged.task];
    }
  }
  shard.staged.clear();
}

void SpecBuilder::FlushStaged(ThreadPool* pool) {
  if (staged_total_ == 0) {
    return;
  }
  if (pool != nullptr && shards_.size() > 1 && staged_total_ >= kMinStagedForParallelFlush) {
    pool->ParallelFor(shards_.size(), [this](size_t i) { ApplyStaged(shards_[i]); });
  } else {
    for (Shard& shard : shards_) {
      ApplyStaged(shard);
    }
  }
  staged_total_ = 0;
}

bool SpecBuilder::Eligible(const Accumulation& accumulation) const {
  if (static_cast<int>(accumulation.samples_per_task.size()) < params_.min_tasks_for_spec) {
    return false;
  }
  // "fewer than 100 CPI samples per task": require the average per-task
  // sample count to clear the bar, so a few young tasks don't block a job
  // with abundant data.
  const double average =
      static_cast<double>(accumulation.cpi.count()) /
      static_cast<double>(accumulation.samples_per_task.size());
  return average >= static_cast<double>(params_.min_samples_per_task);
}

bool SpecBuilder::NameOrderLess(IdKey a, IdKey b) const {
  const std::string& job_a = names_.NameOf(JobOf(a));
  const std::string& job_b = names_.NameOf(JobOf(b));
  if (job_a != job_b) {
    return job_a < job_b;
  }
  return names_.NameOf(PlatformOf(a)) < names_.NameOf(PlatformOf(b));
}

template <typename Map>
std::vector<SpecBuilder::IdKey> SpecBuilder::SortedKeys(const Map& map) const {
  std::vector<IdKey> keys;
  keys.reserve(map.size());
  for (const auto& [key, unused] : map) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end(), [this](IdKey a, IdKey b) { return NameOrderLess(a, b); });
  return keys;
}

template <typename Map>
std::vector<SpecBuilder::IdKey> SpecBuilder::SortedKeysAllShards(Map Shard::* member) const {
  std::vector<IdKey> keys;
  for (const Shard& shard : shards_) {
    for (const auto& [key, unused] : shard.*member) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end(), [this](IdKey a, IdKey b) { return NameOrderLess(a, b); });
  return keys;
}

void SpecBuilder::BuildShard(Shard& shard) {
  shard.built_keys.clear();
  const bool durable_state_touched = !shard.history.empty() || !shard.current.empty();

  // Decay all history first: a day with no fresh samples still ages.
  for (auto& [key, history] : shard.history) {
    history.Decay(params_.history_weight);
  }

  // Per-key merges are independent of each other and of visit order; only
  // the cross-shard output merge fixes the push-out order.
  for (auto& [key, accumulation] : shard.current) {
    MomentHistory& history = shard.history[key];
    const bool eligible_now = Eligible(accumulation);
    history.Merge(static_cast<double>(accumulation.cpi.count()), accumulation.cpi.mean(),
                  // StreamingStats keeps m2 implicitly; reconstruct it.
                  accumulation.cpi.population_variance() *
                      static_cast<double>(accumulation.cpi.count()),
                  accumulation.usage.mean());
    if (!eligible_now) {
      continue;
    }
    CpiSpec spec;
    spec.jobname = names_.NameOf(JobOf(key));  // read-only interner access
    spec.platforminfo = names_.NameOf(PlatformOf(key));
    spec.num_samples = static_cast<int64_t>(history.count);
    spec.cpu_usage_mean = history.usage_mean;
    spec.cpi_mean = history.mean;
    spec.cpi_stddev = std::sqrt(history.Variance());
    shard.latest_specs[key] = std::move(spec);
    shard.built_keys.push_back(key);
  }
  shard.current.clear();
  if (durable_state_touched) {
    ++shard.version;
  }
}

std::vector<CpiSpec> SpecBuilder::BuildSpecs(ThreadPool* pool) {
  FlushStaged(pool);
  if (pool != nullptr && shards_.size() > 1) {
    pool->ParallelFor(shards_.size(), [this](size_t i) { BuildShard(shards_[i]); });
  } else {
    for (Shard& shard : shards_) {
      BuildShard(shard);
    }
  }

  // Deterministic merge: the shard outputs interleave into the legacy
  // string-sorted key order, so spec push order (and everything downstream
  // of it, e.g. fault-plane RNG draws) is independent of sharding.
  std::vector<IdKey> keys;
  for (const Shard& shard : shards_) {
    keys.insert(keys.end(), shard.built_keys.begin(), shard.built_keys.end());
  }
  std::sort(keys.begin(), keys.end(), [this](IdKey a, IdKey b) { return NameOrderLess(a, b); });

  std::vector<CpiSpec> specs;
  specs.reserve(keys.size());
  for (const IdKey key : keys) {
    specs.push_back(shards_[ShardOf(key)].latest_specs.at(key));
  }
  return specs;
}

std::optional<CpiSpec> SpecBuilder::GetSpec(const std::string& jobname,
                                            const std::string& platforminfo) const {
  const auto job = names_.Find(jobname);
  const auto platform = names_.Find(platforminfo);
  if (!job.has_value() || !platform.has_value()) {
    return std::nullopt;
  }
  const IdKey key = MakeKey(*job, *platform);
  const Shard& shard = shards_[ShardOf(key)];
  const auto it = shard.latest_specs.find(key);
  if (it == shard.latest_specs.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<SpecBuilder::HistoryEntry> SpecBuilder::SnapshotHistory() const {
  std::vector<HistoryEntry> entries;
  for (const IdKey key : SortedKeysAllShards(&Shard::history)) {
    const MomentHistory& history = shards_[ShardOf(key)].history.at(key);
    HistoryEntry entry;
    entry.key.jobname = names_.NameOf(JobOf(key));
    entry.key.platforminfo = names_.NameOf(PlatformOf(key));
    entry.count = history.count;
    entry.mean = history.mean;
    entry.m2 = history.m2;
    entry.usage_mean = history.usage_mean;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<CpiSpec> SpecBuilder::SnapshotLatestSpecs() const {
  std::vector<CpiSpec> specs;
  for (const IdKey key : SortedKeysAllShards(&Shard::latest_specs)) {
    specs.push_back(shards_[ShardOf(key)].latest_specs.at(key));
  }
  return specs;
}

std::vector<SpecBuilder::HistoryEntry> SpecBuilder::SnapshotShardHistory(size_t shard) const {
  std::vector<HistoryEntry> entries;
  const Shard& s = shards_[shard];
  entries.reserve(s.history.size());
  for (const IdKey key : SortedKeys(s.history)) {
    const MomentHistory& history = s.history.at(key);
    HistoryEntry entry;
    entry.key.jobname = names_.NameOf(JobOf(key));
    entry.key.platforminfo = names_.NameOf(PlatformOf(key));
    entry.count = history.count;
    entry.mean = history.mean;
    entry.m2 = history.m2;
    entry.usage_mean = history.usage_mean;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<CpiSpec> SpecBuilder::SnapshotShardLatestSpecs(size_t shard) const {
  std::vector<CpiSpec> specs;
  const Shard& s = shards_[shard];
  specs.reserve(s.latest_specs.size());
  for (const IdKey key : SortedKeys(s.latest_specs)) {
    specs.push_back(s.latest_specs.at(key));
  }
  return specs;
}

void SpecBuilder::RestoreSnapshot(const std::vector<HistoryEntry>& history,
                                  const std::vector<CpiSpec>& latest_specs,
                                  int64_t samples_seen) {
  for (Shard& shard : shards_) {
    shard.history.clear();
    shard.latest_specs.clear();
    shard.current.clear();
    shard.staged.clear();
    ++shard.version;
  }
  staged_total_ = 0;
  for (const HistoryEntry& entry : history) {
    const IdKey key = MakeKey(names_.Intern(entry.key.jobname),
                              names_.Intern(entry.key.platforminfo));
    MomentHistory& moments = shards_[ShardOf(key)].history[key];
    moments.count = entry.count;
    moments.mean = entry.mean;
    moments.m2 = entry.m2;
    moments.usage_mean = entry.usage_mean;
  }
  for (const CpiSpec& spec : latest_specs) {
    const IdKey key =
        MakeKey(names_.Intern(spec.jobname), names_.Intern(spec.platforminfo));
    shards_[ShardOf(key)].latest_specs[key] = spec;
  }
  samples_seen_ = samples_seen;
}

void SpecBuilder::SeedHistory(const CpiSpec& spec) {
  const IdKey key =
      MakeKey(names_.Intern(spec.jobname), names_.Intern(spec.platforminfo));
  Shard& shard = shards_[ShardOf(key)];
  MomentHistory& history = shard.history[key];
  MomentHistory seeded;
  seeded.count = static_cast<double>(spec.num_samples);
  seeded.mean = spec.cpi_mean;
  seeded.m2 = spec.cpi_stddev * spec.cpi_stddev * static_cast<double>(spec.num_samples);
  seeded.usage_mean = spec.cpu_usage_mean;
  history.Merge(seeded.count, seeded.mean, seeded.m2, seeded.usage_mean);
  shard.latest_specs[key] = spec;
  ++shard.version;
}

}  // namespace cpi2
