#include "core/spec_builder.h"

#include <algorithm>
#include <cmath>

namespace cpi2 {

void SpecBuilder::MomentHistory::Decay(double weight) {
  count *= weight;
  m2 *= weight;
  // mean and usage_mean are location parameters; decay shrinks their weight
  // in the next merge, not their value.
}

void SpecBuilder::MomentHistory::Merge(double other_count, double other_mean, double other_m2,
                                       double other_usage) {
  if (other_count <= 0.0) {
    return;
  }
  if (count <= 0.0) {
    count = other_count;
    mean = other_mean;
    m2 = other_m2;
    usage_mean = other_usage;
    return;
  }
  const double total = count + other_count;
  const double delta = other_mean - mean;
  m2 += other_m2 + delta * delta * count * other_count / total;
  mean += delta * other_count / total;
  usage_mean += (other_usage - usage_mean) * other_count / total;
  count = total;
}

void SpecBuilder::AddSample(const CpiSample& sample) {
  ++samples_seen_;
  const IdKey key =
      MakeKey(names_.Intern(sample.jobname), names_.Intern(sample.platforminfo));
  Accumulation& accumulation = current_[key];
  accumulation.cpi.Add(sample.cpi);
  accumulation.usage.Add(sample.cpu_usage);
  if (!sample.task.empty()) {
    ++accumulation.samples_per_task[names_.Intern(sample.task)];
  }
}

bool SpecBuilder::Eligible(const Accumulation& accumulation) const {
  if (static_cast<int>(accumulation.samples_per_task.size()) < params_.min_tasks_for_spec) {
    return false;
  }
  // "fewer than 100 CPI samples per task": require the average per-task
  // sample count to clear the bar, so a few young tasks don't block a job
  // with abundant data.
  const double average =
      static_cast<double>(accumulation.cpi.count()) /
      static_cast<double>(accumulation.samples_per_task.size());
  return average >= static_cast<double>(params_.min_samples_per_task);
}

bool SpecBuilder::NameOrderLess(IdKey a, IdKey b) const {
  const std::string& job_a = names_.NameOf(JobOf(a));
  const std::string& job_b = names_.NameOf(JobOf(b));
  if (job_a != job_b) {
    return job_a < job_b;
  }
  return names_.NameOf(PlatformOf(a)) < names_.NameOf(PlatformOf(b));
}

template <typename Map>
std::vector<SpecBuilder::IdKey> SpecBuilder::SortedKeys(const Map& map) const {
  std::vector<IdKey> keys;
  keys.reserve(map.size());
  for (const auto& [key, unused] : map) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end(), [this](IdKey a, IdKey b) { return NameOrderLess(a, b); });
  return keys;
}

std::vector<CpiSpec> SpecBuilder::BuildSpecs() {
  std::vector<CpiSpec> specs;

  // Decay all history first: a day with no fresh samples still ages.
  for (auto& [key, history] : history_) {
    history.Decay(params_.history_weight);
  }

  // Per-key merges are independent; the sorted visit only fixes the output
  // (and spec push-out) order to the legacy string-keyed order.
  for (const IdKey key : SortedKeys(current_)) {
    Accumulation& accumulation = current_[key];
    MomentHistory& history = history_[key];
    const bool eligible_now = Eligible(accumulation);
    history.Merge(static_cast<double>(accumulation.cpi.count()), accumulation.cpi.mean(),
                  // StreamingStats keeps m2 implicitly; reconstruct it.
                  accumulation.cpi.population_variance() *
                      static_cast<double>(accumulation.cpi.count()),
                  accumulation.usage.mean());
    if (!eligible_now) {
      continue;
    }
    CpiSpec spec;
    spec.jobname = names_.NameOf(JobOf(key));
    spec.platforminfo = names_.NameOf(PlatformOf(key));
    spec.num_samples = static_cast<int64_t>(history.count);
    spec.cpu_usage_mean = history.usage_mean;
    spec.cpi_mean = history.mean;
    spec.cpi_stddev = std::sqrt(history.Variance());
    latest_specs_[key] = spec;
    specs.push_back(spec);
  }
  current_.clear();
  return specs;
}

std::optional<CpiSpec> SpecBuilder::GetSpec(const std::string& jobname,
                                            const std::string& platforminfo) const {
  const auto job = names_.Find(jobname);
  const auto platform = names_.Find(platforminfo);
  if (!job.has_value() || !platform.has_value()) {
    return std::nullopt;
  }
  const auto it = latest_specs_.find(MakeKey(*job, *platform));
  if (it == latest_specs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<SpecBuilder::HistoryEntry> SpecBuilder::SnapshotHistory() const {
  std::vector<HistoryEntry> entries;
  entries.reserve(history_.size());
  for (const IdKey key : SortedKeys(history_)) {
    const MomentHistory& history = history_.at(key);
    HistoryEntry entry;
    entry.key.jobname = names_.NameOf(JobOf(key));
    entry.key.platforminfo = names_.NameOf(PlatformOf(key));
    entry.count = history.count;
    entry.mean = history.mean;
    entry.m2 = history.m2;
    entry.usage_mean = history.usage_mean;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<CpiSpec> SpecBuilder::SnapshotLatestSpecs() const {
  std::vector<CpiSpec> specs;
  specs.reserve(latest_specs_.size());
  for (const IdKey key : SortedKeys(latest_specs_)) {
    specs.push_back(latest_specs_.at(key));
  }
  return specs;
}

void SpecBuilder::RestoreSnapshot(const std::vector<HistoryEntry>& history,
                                  const std::vector<CpiSpec>& latest_specs,
                                  int64_t samples_seen) {
  history_.clear();
  latest_specs_.clear();
  current_.clear();
  for (const HistoryEntry& entry : history) {
    MomentHistory& moments = history_[MakeKey(names_.Intern(entry.key.jobname),
                                              names_.Intern(entry.key.platforminfo))];
    moments.count = entry.count;
    moments.mean = entry.mean;
    moments.m2 = entry.m2;
    moments.usage_mean = entry.usage_mean;
  }
  for (const CpiSpec& spec : latest_specs) {
    latest_specs_[MakeKey(names_.Intern(spec.jobname), names_.Intern(spec.platforminfo))] =
        spec;
  }
  samples_seen_ = samples_seen;
}

void SpecBuilder::SeedHistory(const CpiSpec& spec) {
  const IdKey key =
      MakeKey(names_.Intern(spec.jobname), names_.Intern(spec.platforminfo));
  MomentHistory& history = history_[key];
  MomentHistory seeded;
  seeded.count = static_cast<double>(spec.num_samples);
  seeded.mean = spec.cpi_mean;
  seeded.m2 = spec.cpi_stddev * spec.cpi_stddev * static_cast<double>(spec.num_samples);
  seeded.usage_mean = spec.cpu_usage_mean;
  history.Merge(seeded.count, seeded.mean, seeded.m2, seeded.usage_mean);
  latest_specs_[key] = spec;
}

}  // namespace cpi2
