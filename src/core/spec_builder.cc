#include "core/spec_builder.h"

#include <cmath>

namespace cpi2 {

void SpecBuilder::MomentHistory::Decay(double weight) {
  count *= weight;
  m2 *= weight;
  // mean and usage_mean are location parameters; decay shrinks their weight
  // in the next merge, not their value.
}

void SpecBuilder::MomentHistory::Merge(double other_count, double other_mean, double other_m2,
                                       double other_usage) {
  if (other_count <= 0.0) {
    return;
  }
  if (count <= 0.0) {
    count = other_count;
    mean = other_mean;
    m2 = other_m2;
    usage_mean = other_usage;
    return;
  }
  const double total = count + other_count;
  const double delta = other_mean - mean;
  m2 += other_m2 + delta * delta * count * other_count / total;
  mean += delta * other_count / total;
  usage_mean += (other_usage - usage_mean) * other_count / total;
  count = total;
}

void SpecBuilder::AddSample(const CpiSample& sample) {
  ++samples_seen_;
  Accumulation& accumulation = current_[{sample.jobname, sample.platforminfo}];
  accumulation.cpi.Add(sample.cpi);
  accumulation.usage.Add(sample.cpu_usage);
  if (!sample.task.empty()) {
    ++accumulation.samples_per_task[sample.task];
  }
}

bool SpecBuilder::Eligible(const Accumulation& accumulation) const {
  if (static_cast<int>(accumulation.samples_per_task.size()) < params_.min_tasks_for_spec) {
    return false;
  }
  // "fewer than 100 CPI samples per task": require the average per-task
  // sample count to clear the bar, so a few young tasks don't block a job
  // with abundant data.
  const double average =
      static_cast<double>(accumulation.cpi.count()) /
      static_cast<double>(accumulation.samples_per_task.size());
  return average >= static_cast<double>(params_.min_samples_per_task);
}

std::vector<CpiSpec> SpecBuilder::BuildSpecs() {
  std::vector<CpiSpec> specs;

  // Decay all history first: a day with no fresh samples still ages.
  for (auto& [key, history] : history_) {
    history.Decay(params_.history_weight);
  }

  for (auto& [key, accumulation] : current_) {
    MomentHistory& history = history_[key];
    const bool eligible_now = Eligible(accumulation);
    history.Merge(static_cast<double>(accumulation.cpi.count()), accumulation.cpi.mean(),
                  // StreamingStats keeps m2 implicitly; reconstruct it.
                  accumulation.cpi.population_variance() *
                      static_cast<double>(accumulation.cpi.count()),
                  accumulation.usage.mean());
    if (!eligible_now) {
      continue;
    }
    CpiSpec spec;
    spec.jobname = key.jobname;
    spec.platforminfo = key.platforminfo;
    spec.num_samples = static_cast<int64_t>(history.count);
    spec.cpu_usage_mean = history.usage_mean;
    spec.cpi_mean = history.mean;
    spec.cpi_stddev = std::sqrt(history.Variance());
    latest_specs_[key] = spec;
    specs.push_back(spec);
  }
  current_.clear();
  return specs;
}

std::optional<CpiSpec> SpecBuilder::GetSpec(const std::string& jobname,
                                            const std::string& platforminfo) const {
  const auto it = latest_specs_.find({jobname, platforminfo});
  if (it == latest_specs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<SpecBuilder::HistoryEntry> SpecBuilder::SnapshotHistory() const {
  std::vector<HistoryEntry> entries;
  entries.reserve(history_.size());
  for (const auto& [key, history] : history_) {
    HistoryEntry entry;
    entry.key = key;
    entry.count = history.count;
    entry.mean = history.mean;
    entry.m2 = history.m2;
    entry.usage_mean = history.usage_mean;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<CpiSpec> SpecBuilder::SnapshotLatestSpecs() const {
  std::vector<CpiSpec> specs;
  specs.reserve(latest_specs_.size());
  for (const auto& [key, spec] : latest_specs_) {
    specs.push_back(spec);
  }
  return specs;
}

void SpecBuilder::RestoreSnapshot(const std::vector<HistoryEntry>& history,
                                  const std::vector<CpiSpec>& latest_specs,
                                  int64_t samples_seen) {
  history_.clear();
  latest_specs_.clear();
  current_.clear();
  for (const HistoryEntry& entry : history) {
    MomentHistory& moments = history_[entry.key];
    moments.count = entry.count;
    moments.mean = entry.mean;
    moments.m2 = entry.m2;
    moments.usage_mean = entry.usage_mean;
  }
  for (const CpiSpec& spec : latest_specs) {
    latest_specs_[{spec.jobname, spec.platforminfo}] = spec;
  }
  samples_seen_ = samples_seen;
}

void SpecBuilder::SeedHistory(const CpiSpec& spec) {
  MomentHistory& history = history_[{spec.jobname, spec.platforminfo}];
  MomentHistory seeded;
  seeded.count = static_cast<double>(spec.num_samples);
  seeded.mean = spec.cpi_mean;
  seeded.m2 = spec.cpi_stddev * spec.cpi_stddev * static_cast<double>(spec.num_samples);
  seeded.usage_mean = spec.cpu_usage_mean;
  history.Merge(seeded.count, seeded.mean, seeded.m2, seeded.usage_mean);
  latest_specs_[{spec.jobname, spec.platforminfo}] = spec;
}

}  // namespace cpi2
