#include "core/agent.h"

#include <algorithm>

#include "util/logging.h"

namespace cpi2 {

Agent::Agent(Options options, CounterSource* source, CpuController* controller)
    : options_(std::move(options)),
      sampler_(source,
               CpiSampler::Options{options_.params.sample_duration,
                                   options_.params.sample_period,
                                   /*stagger_windows=*/true},
               [this](const std::string& container, const CounterDelta& delta) {
                 OnWindow(container, delta);
               }),
      detector_(options_.params),
      identifier_(options_.params),
      enforcement_(options_.params, controller),
      jitter_rng_(options_.jitter_seed) {}

void Agent::AddTask(const TaskMeta& meta, MicroTime now) {
  const uint32_t id = task_ids_.Intern(meta.task);
  TaskMeta& stored = tasks_[meta.task] = meta;
  stored.series_id = id;  // resolve the name once; the sample path reuses it
  stored.detector_key = next_detector_key_++;  // fresh key per incarnation
  series_.emplace(id, TaskSeries{});
  sampler_.AddContainer(meta.task, now);
  ++membership_version_;  // suspect table is stale until the next rebuild
}

void Agent::RemoveTask(const std::string& task) {
  if (const auto it = tasks_.find(task); it != tasks_.end()) {
    detector_.ForgetTask(it->second.detector_key);
    tasks_.erase(it);
  }
  if (const auto id = task_ids_.Find(task); id.has_value()) {
    series_.erase(*id);
  }
  sampler_.RemoveContainer(task);
  enforcement_.ForgetTask(task);
  ++membership_version_;  // suspect table is stale until the next rebuild
}

void Agent::UpdateSpec(const CpiSpec& spec, MicroTime now) {
  if (spec.platforminfo != options_.platforminfo) {
    return;  // Spec for a different CPU type; not applicable here.
  }
  specs_[spec.jobname] = SpecEntry{spec, now};
}

std::optional<CpiSpec> Agent::GetSpec(const std::string& jobname) const {
  const auto it = specs_.find(jobname);
  if (it == specs_.end()) {
    return std::nullopt;
  }
  return it->second.spec;
}

std::optional<MicroTime> Agent::SpecReceivedAt(const std::string& jobname) const {
  const auto it = specs_.find(jobname);
  if (it == specs_.end()) {
    return std::nullopt;
  }
  return it->second.received_at;
}

void Agent::Tick(MicroTime now) {
  last_tick_ = now;
  sampler_.Tick(now);
  enforcement_.Tick(now);
}

void Agent::Restart(MicroTime now) {
  tasks_.clear();
  series_.clear();  // task_ids_ survives: ids are process-lifetime stable
  specs_.clear();
  suspect_rows_.clear();
  suspect_rows_version_ = ~0ull;  // rows pointed into the cleared registry
  ++membership_version_;
  // next_detector_key_ survives, like task_ids_: keys stay unique across the
  // crash so a pre-crash ForgetTask can never hit a post-crash incarnation.
  sampler_.Clear();
  detector_.Clear();
  enforcement_.Reset();
  outbox_.clear();
  batch_outbox_.clear();
  batch_encoder_.Reset();
  pending_count_ = 0;
  pending_consumed_ = 0;
  queued_samples_ = 0;
  pending_opened_at_ = 0;
  outbox_retry_at_ = 0;
  outbox_attempts_ = 0;
  last_tick_ = now;
  // Diagnostic counters lived in the dead process's memory; only health_
  // (conceptually scraped by monitoring) carries across the restart.
  samples_processed_ = 0;
  outliers_flagged_ = 0;
  anomalies_detected_ = 0;
  incidents_reported_ = 0;
  ++health_.restarts;
}

void Agent::ArmRetryBackoff(MicroTime now) {
  // Exponential backoff, capped, with uniform jitter so a fleet of agents
  // does not hammer a recovering aggregator in lockstep.
  MicroTime backoff = options_.params.delivery_retry_backoff;
  for (int i = 0; i < outbox_attempts_ && backoff < options_.params.delivery_retry_backoff_max;
       ++i) {
    backoff *= 2;
  }
  if (backoff > options_.params.delivery_retry_backoff_max) {
    backoff = options_.params.delivery_retry_backoff_max;
  }
  if (options_.params.delivery_retry_jitter > 0.0) {
    backoff += static_cast<MicroTime>(
        jitter_rng_.Uniform(0.0, options_.params.delivery_retry_jitter *
                                     static_cast<double>(backoff)));
  }
  outbox_retry_at_ = now + backoff;
  ++outbox_attempts_;
}

void Agent::FlushOutbox(MicroTime now) {
  if (batch_delivery_callback_) {
    FlushOutboxBatched(now);
  } else if (delivery_callback_) {
    FlushOutboxPerSample(now);
  }
}

void Agent::FlushOutboxPerSample(MicroTime now) {
  if (now < outbox_retry_at_) {
    return;
  }
  while (!outbox_.empty()) {
    const DeliveryResult result = delivery_callback_(outbox_.front());
    if (result == DeliveryResult::kUnavailable) {
      ++health_.delivery_retries;
      ArmRetryBackoff(now);
      return;
    }
    if (result == DeliveryResult::kAck) {
      ++health_.samples_delivered;
    } else {
      ++health_.samples_lost;
    }
    outbox_.pop_front();
    outbox_attempts_ = 0;
    outbox_retry_at_ = 0;
  }
}

void Agent::MaybeSealPendingBatch(MicroTime now, bool force) {
  if (pending_count_ == 0) {
    return;
  }
  if (!force && options_.params.wire_batch_max_age > 0 &&
      now - pending_opened_at_ < options_.params.wire_batch_max_age) {
    return;  // Let the open batch accumulate a little longer.
  }
  if (pending_consumed_ < pending_count_) {
    EncodedSampleBatch batch;
    batch.bytes = batch_encoder_.Finish();
    batch.sample_count = pending_count_;
    batch.consumed = pending_consumed_;
    batch_outbox_.push_back(std::move(batch));
  }
  // else: capacity pressure evicted every sample; nothing worth sending.
  batch_encoder_.Reset();
  pending_count_ = 0;
  pending_consumed_ = 0;
}

void Agent::FlushOutboxBatched(MicroTime now) {
  // Sealing is independent of backoff: an aged-out open batch must join the
  // queue even while the transport is waiting out a retry.
  MaybeSealPendingBatch(now, /*force=*/options_.params.wire_batch_max_age == 0);
  if (now < outbox_retry_at_) {
    return;
  }
  // Walk the queue by index instead of hammering the front: a windowed
  // transport answers {in_flight} for batches riding the wire, and the pass
  // advances past them to launch the next ones — up to the transport's
  // window of batches are outstanding after one pass. With a plain
  // (non-windowed) callback in_flight is never set, the index stays at 0,
  // and this degenerates to the classic front-only stop-and-wait loop.
  size_t idx = 0;
  while (idx < batch_outbox_.size()) {
    EncodedSampleBatch& batch = batch_outbox_[idx];
    const BatchDeliveryOutcome outcome =
        windowed_batch_delivery_callback_
            ? windowed_batch_delivery_callback_(batch, idx)
            : batch_delivery_callback_(batch);
    if (outcome.in_flight) {
      ++idx;  // sent, unsettled: nothing to account, keep the batch queued
      continue;
    }
    health_.samples_delivered += outcome.delivered;
    health_.samples_lost += outcome.lost;
    const size_t settled = static_cast<size_t>(outcome.delivered) +
                           static_cast<size_t>(outcome.lost);
    batch.consumed += settled;
    queued_samples_ -= settled;
    if (outcome.decode_failed) {
      // The bytes are damaged; retrying cannot help. Every unsettled sample
      // in the batch is gone.
      ++health_.wire_decode_errors;
      health_.samples_lost +=
          static_cast<int64_t>(batch.sample_count - batch.consumed);
      queued_samples_ -= batch.sample_count - batch.consumed;
      batch_outbox_.erase(batch_outbox_.begin() + static_cast<long>(idx));
      outbox_attempts_ = 0;
      outbox_retry_at_ = 0;
      continue;
    }
    if (outcome.retry) {
      ++health_.delivery_retries;
      if (outcome.delivered + outcome.lost > 0) {
        // Forward progress resets the backoff ladder, exactly as the
        // per-sample path resets it on every settled sample.
        outbox_attempts_ = 0;
      }
      ArmRetryBackoff(now);
      return;
    }
    batch_outbox_.erase(batch_outbox_.begin() + static_cast<long>(idx));
    outbox_attempts_ = 0;
    outbox_retry_at_ = 0;
  }
}

size_t Agent::outbox_size() const {
  // queued_samples_ is maintained at every enqueue/settle/evict, so this is
  // O(1) — it sits in the per-sample feed loop of every caller.
  return batch_delivery_callback_ ? queued_samples_ : outbox_.size();
}

void Agent::EnqueueSample(const CpiSample& sample) {
  const int capacity = options_.params.sample_outbox_capacity;
  if (!batch_delivery_callback_) {
    if (static_cast<int>(outbox_.size()) >= capacity) {
      outbox_.pop_front();  // bounded queue: evict oldest, keep freshest
      ++health_.outbox_overflow_drops;
    }
    outbox_.push_back(sample);
    ++health_.samples_enqueued;
    return;
  }
  // Batched transport: the bound still counts *samples*, not batches. Evict
  // the oldest unsettled sample by advancing the front batch's consumed
  // cursor (or the open batch's, when nothing is sealed) — the receiver
  // will simply never see it, which is the encoded twin of pop_front().
  if (static_cast<int>(outbox_size()) >= capacity) {
    while (!batch_outbox_.empty() &&
           batch_outbox_.front().consumed >= batch_outbox_.front().sample_count) {
      batch_outbox_.pop_front();  // fully-evicted husk; shed it
    }
    if (!batch_outbox_.empty()) {
      ++batch_outbox_.front().consumed;
    } else {
      ++pending_consumed_;
    }
    --queued_samples_;
    ++health_.outbox_overflow_drops;
  }
  if (pending_count_ == 0) {
    pending_opened_at_ = sample.timestamp;
  }
  batch_encoder_.Add(sample);
  ++pending_count_;
  ++queued_samples_;
  ++health_.samples_enqueued;
  const int max_samples = options_.params.wire_batch_max_samples;
  if (max_samples > 0 && pending_count_ >= static_cast<size_t>(max_samples)) {
    MaybeSealPendingBatch(sample.timestamp, /*force=*/true);
  }
}

void Agent::OfferSample(const CpiSample& sample) {
  if (!delivery_callback_ && !batch_delivery_callback_) {
    return;  // no transport installed; nothing to queue for
  }
  if (sample_callback_) {
    sample_callback_(sample);  // the tap still observes offered samples
  }
  EnqueueSample(sample);
}

const TimeSeries* Agent::UsageSeries(const std::string& task) const {
  const auto id = task_ids_.Find(task);
  if (!id.has_value()) {
    return nullptr;
  }
  const auto it = series_.find(*id);
  return it != series_.end() ? &it->second.usage : nullptr;
}

const TimeSeries* Agent::CpiSeries(const std::string& task) const {
  const auto id = task_ids_.Find(task);
  if (!id.has_value()) {
    return nullptr;
  }
  const auto it = series_.find(*id);
  return it != series_.end() ? &it->second.cpi : nullptr;
}

bool Agent::RejectedBySanityFilter(const CounterDelta& delta) const {
  if (!options_.params.counter_sanity_filter) {
    return false;
  }
  // Counter went backwards: a reset/zeroed counter makes the CPU-seconds
  // delta negative (the unsigned cycle counters wrap to huge values, but the
  // signed CPU time is the reliable tell).
  if (delta.cpu_seconds < 0.0) {
    return true;
  }
  // More CPU than any machine has, or a CPI no real core can produce:
  // garbage, not measurement.
  if (delta.UsageRate() > options_.params.max_plausible_usage) {
    return true;
  }
  if (delta.Cpi() > options_.params.max_plausible_cpi) {
    return true;
  }
  // Cycles burned with zero instructions retired over a full window cannot
  // happen outside a glitch (our platforms always retire alongside cycles).
  if (delta.instructions == 0 && delta.cycles > 0) {
    return true;
  }
  return false;
}

void Agent::OnWindow(const std::string& container, const CounterDelta& delta) {
  const auto meta_it = tasks_.find(container);
  if (meta_it == tasks_.end()) {
    return;  // Task vanished between scheduling the window and finishing it.
  }
  if (RejectedBySanityFilter(delta)) {
    ++health_.counter_rejects;
    return;
  }
  const TaskMeta& meta = meta_it->second;
  const MicroTime now = delta.window_end;

  CpiSample sample;
  sample.jobname = meta.jobname;
  sample.platforminfo = options_.platforminfo;
  sample.timestamp = now;
  sample.cpu_usage = delta.UsageRate();
  sample.cpi = delta.Cpi();
  sample.task = meta.task;
  sample.machine = options_.machine_name;
  sample.l3_miss_per_instruction = delta.L3MissesPerInstruction();
  ++samples_processed_;

  TaskSeries& series = series_[meta.series_id];
  if (!series.usage.Append(now, sample.cpu_usage)) {
    ++health_.series_points_dropped;
  }
  if (sample.cpi > 0.0 && !series.cpi.Append(now, sample.cpi)) {
    ++health_.series_points_dropped;
  }
  // Bound memory: keep a bit more than the correlation window.
  const MicroTime cutoff = now - 2 * options_.params.correlation_window;
  series.usage.TrimBefore(cutoff);
  series.cpi.TrimBefore(cutoff);

  if (sample_callback_) {
    sample_callback_(sample);
  }
  if (delivery_callback_ || batch_delivery_callback_) {
    EnqueueSample(sample);
  }

  if (sample.cpi <= 0.0) {
    return;  // No instructions retired in the window; nothing to score.
  }
  const auto spec_it = specs_.find(meta.jobname);
  if (spec_it == specs_.end()) {
    return;  // No robust prediction for this job yet.
  }
  // Staleness policy: a spec that has outlived its TTL is a weakening
  // prediction — widen the outlier threshold; one past the suppression
  // horizon is dead data — never cap anyone on it.
  double sigma_scale = 1.0;
  if (options_.params.spec_staleness_ttl > 0) {
    const MicroTime age = now - spec_it->second.received_at;
    const double suppress_age = options_.params.stale_suppress_factor *
                                static_cast<double>(options_.params.spec_staleness_ttl);
    if (static_cast<double>(age) > suppress_age) {
      ++health_.stale_spec_suppressions;
      return;
    }
    if (age > options_.params.spec_staleness_ttl) {
      sigma_scale = options_.params.stale_sigma_factor;
      ++health_.stale_spec_widenings;
    }
  }
  const OutlierDetector::Result result =
      detector_.Observe(meta.detector_key, sample, spec_it->second.spec, sigma_scale);
  if (result.outlier) {
    ++outliers_flagged_;
  }
  if (result.anomaly) {
    ++anomalies_detected_;
    if (identifier_.Allowed(now)) {
      HandleAnomaly(meta, sample, result.threshold, spec_it->second.spec);
    }
  }
}

void Agent::RebuildSuspectTableIfStale() {
  if (suspect_rows_version_ == membership_version_) {
    return;  // Table still matches the registry; reuse it as-is.
  }
  suspect_rows_.clear();
  suspect_rows_.reserve(tasks_.size());
  for (const auto& [task, meta] : tasks_) {
    const auto series_it = series_.find(meta.series_id);
    AntagonistIdentifier::SuspectRow row;
    row.task = &task;  // map nodes are stable; pointers outlive the rebuild
    row.jobname = &meta.jobname;
    row.workload_class = meta.workload_class;
    row.priority = meta.priority;
    // A task with no series slot scores as "no data" (null usage), exactly
    // the per-suspect path's skip rule for a missing series.
    row.usage = series_it != series_.end() ? &series_it->second.usage : nullptr;
    suspect_rows_.push_back(row);
  }
  // tasks_ iterates in ascending name order, so the rows arrive name-sorted —
  // the invariant AnalyzeBatched's integer tie-break leans on.
  suspect_rows_version_ = membership_version_;
}

void Agent::HandleAnomaly(const TaskMeta& victim, const CpiSample& sample, double threshold,
                          const CpiSpec& spec) {
  const auto victim_series = series_.find(victim.series_id);
  if (victim_series == series_.end()) {
    return;
  }

  std::vector<Suspect> ranked;
  if (options_.params.legacy_identification_path || options_.params.legacy_correlation_path) {
    // Reference path: rebuild a SuspectInput vector from scratch (four string
    // copies per co-resident task) and score suspects one Analyze loop
    // iteration at a time. legacy_correlation_path implies this shape — the
    // AlignSeries reference is per-suspect by construction.
    std::vector<AntagonistIdentifier::SuspectInput> inputs;
    inputs.reserve(tasks_.size());
    for (const auto& [task, meta] : tasks_) {
      if (task == victim.task) {
        continue;
      }
      const auto series_it = series_.find(meta.series_id);
      if (series_it == series_.end()) {
        continue;
      }
      AntagonistIdentifier::SuspectInput input;
      input.task = task;
      input.jobname = meta.jobname;
      input.workload_class = meta.workload_class;
      input.priority = meta.priority;
      input.usage = &series_it->second.usage;
      inputs.push_back(input);
    }
    ranked = identifier_.Analyze(victim_series->second.cpi, threshold, inputs, sample.timestamp);
  } else {
    // Batched engine: sync the persistent suspect table if membership moved,
    // then score every co-resident in one fused sweep. During an anomaly
    // storm every victim after the first reuses the table and the kernel
    // scratch untouched — the whole storm runs without a single allocation
    // until incidents materialize.
    RebuildSuspectTableIfStale();
    const auto victim_row = std::lower_bound(
        suspect_rows_.begin(), suspect_rows_.end(), victim.task,
        [](const AntagonistIdentifier::SuspectRow& row, const std::string& name) {
          return *row.task < name;
        });
    const size_t skip_row =
        victim_row != suspect_rows_.end() && *victim_row->task == victim.task
            ? static_cast<size_t>(victim_row - suspect_rows_.begin())
            : AntagonistIdentifier::kNoSkip;
    identifier_.AnalyzeBatched(victim_series->second.cpi, threshold, suspect_rows_, skip_row,
                               sample.timestamp, &ranked_scratch_);
    // Materialize Suspect records only now that an incident is actually
    // being built; the analysis itself never copied a string.
    ranked.reserve(ranked_scratch_.size());
    for (const AntagonistIdentifier::RankedRef& ref : ranked_scratch_) {
      const AntagonistIdentifier::SuspectRow& row = suspect_rows_[ref.row];
      Suspect suspect;
      suspect.task = *row.task;
      suspect.jobname = *row.jobname;
      suspect.workload_class = row.workload_class;
      suspect.priority = row.priority;
      suspect.correlation = ref.correlation;
      ranked.push_back(std::move(suspect));
    }
  }

  Incident incident;
  incident.timestamp = sample.timestamp;
  incident.machine = options_.machine_name;
  incident.victim_task = victim.task;
  incident.victim_job = victim.jobname;
  incident.platforminfo = options_.platforminfo;
  incident.victim_class = victim.workload_class;
  incident.victim_cpi = sample.cpi;
  incident.cpi_threshold = threshold;
  incident.spec_mean = spec.cpi_mean;
  incident.spec_stddev = spec.cpi_stddev;
  incident.suspects = ranked;

  const EnforcementPolicy::Decision decision = enforcement_.OnIncident(
      victim.workload_class, victim.protection_opt_in, ranked, sample.timestamp);
  incident.action = decision.action;
  incident.action_target = decision.target;
  incident.cap_level = decision.cap_level;
  incident.note = decision.reason;

  ++incidents_reported_;
  if (incident_callback_) {
    incident_callback_(incident);
  }
}

}  // namespace cpi2
