#include "core/agent.h"

#include "util/logging.h"

namespace cpi2 {

Agent::Agent(Options options, CounterSource* source, CpuController* controller)
    : options_(std::move(options)),
      sampler_(source,
               CpiSampler::Options{options_.params.sample_duration,
                                   options_.params.sample_period,
                                   /*stagger_windows=*/true},
               [this](const std::string& container, const CounterDelta& delta) {
                 OnWindow(container, delta);
               }),
      detector_(options_.params),
      identifier_(options_.params),
      enforcement_(options_.params, controller) {}

void Agent::AddTask(const TaskMeta& meta, MicroTime now) {
  tasks_[meta.task] = meta;
  series_.emplace(meta.task, TaskSeries{});
  sampler_.AddContainer(meta.task, now);
}

void Agent::RemoveTask(const std::string& task) {
  tasks_.erase(task);
  series_.erase(task);
  sampler_.RemoveContainer(task);
  detector_.ForgetTask(task);
  enforcement_.ForgetTask(task);
}

void Agent::UpdateSpec(const CpiSpec& spec) {
  if (spec.platforminfo != options_.platforminfo) {
    return;  // Spec for a different CPU type; not applicable here.
  }
  specs_[spec.jobname] = spec;
}

std::optional<CpiSpec> Agent::GetSpec(const std::string& jobname) const {
  const auto it = specs_.find(jobname);
  if (it == specs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Agent::Tick(MicroTime now) {
  sampler_.Tick(now);
  enforcement_.Tick(now);
}

const TimeSeries* Agent::UsageSeries(const std::string& task) const {
  const auto it = series_.find(task);
  return it != series_.end() ? &it->second.usage : nullptr;
}

const TimeSeries* Agent::CpiSeries(const std::string& task) const {
  const auto it = series_.find(task);
  return it != series_.end() ? &it->second.cpi : nullptr;
}

void Agent::OnWindow(const std::string& container, const CounterDelta& delta) {
  const auto meta_it = tasks_.find(container);
  if (meta_it == tasks_.end()) {
    return;  // Task vanished between scheduling the window and finishing it.
  }
  const TaskMeta& meta = meta_it->second;
  const MicroTime now = delta.window_end;

  CpiSample sample;
  sample.jobname = meta.jobname;
  sample.platforminfo = options_.platforminfo;
  sample.timestamp = now;
  sample.cpu_usage = delta.UsageRate();
  sample.cpi = delta.Cpi();
  sample.task = meta.task;
  sample.machine = options_.machine_name;
  sample.l3_miss_per_instruction = delta.L3MissesPerInstruction();
  ++samples_processed_;

  TaskSeries& series = series_[container];
  series.usage.Append(now, sample.cpu_usage);
  if (sample.cpi > 0.0) {
    series.cpi.Append(now, sample.cpi);
  }
  // Bound memory: keep a bit more than the correlation window.
  const MicroTime cutoff = now - 2 * options_.params.correlation_window;
  series.usage.TrimBefore(cutoff);
  series.cpi.TrimBefore(cutoff);

  if (sample_callback_) {
    sample_callback_(sample);
  }

  if (sample.cpi <= 0.0) {
    return;  // No instructions retired in the window; nothing to score.
  }
  const auto spec_it = specs_.find(meta.jobname);
  if (spec_it == specs_.end()) {
    return;  // No robust prediction for this job yet.
  }
  const OutlierDetector::Result result = detector_.Observe(container, sample, spec_it->second);
  if (result.outlier) {
    ++outliers_flagged_;
  }
  if (result.anomaly) {
    ++anomalies_detected_;
    if (identifier_.Allowed(now)) {
      HandleAnomaly(meta, sample, result.threshold, spec_it->second);
    }
  }
}

void Agent::HandleAnomaly(const TaskMeta& victim, const CpiSample& sample, double threshold,
                          const CpiSpec& spec) {
  // Assemble every co-resident task as a suspect.
  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.reserve(tasks_.size());
  for (const auto& [task, meta] : tasks_) {
    if (task == victim.task) {
      continue;
    }
    const auto series_it = series_.find(task);
    if (series_it == series_.end()) {
      continue;
    }
    AntagonistIdentifier::SuspectInput input;
    input.task = task;
    input.jobname = meta.jobname;
    input.workload_class = meta.workload_class;
    input.priority = meta.priority;
    input.usage = &series_it->second.usage;
    inputs.push_back(input);
  }
  const auto victim_series = series_.find(victim.task);
  if (victim_series == series_.end()) {
    return;
  }
  const std::vector<Suspect> ranked =
      identifier_.Analyze(victim_series->second.cpi, threshold, inputs, sample.timestamp);

  Incident incident;
  incident.timestamp = sample.timestamp;
  incident.machine = options_.machine_name;
  incident.victim_task = victim.task;
  incident.victim_job = victim.jobname;
  incident.platforminfo = options_.platforminfo;
  incident.victim_class = victim.workload_class;
  incident.victim_cpi = sample.cpi;
  incident.cpi_threshold = threshold;
  incident.spec_mean = spec.cpi_mean;
  incident.spec_stddev = spec.cpi_stddev;
  incident.suspects = ranked;

  const EnforcementPolicy::Decision decision = enforcement_.OnIncident(
      victim.workload_class, victim.protection_opt_in, ranked, sample.timestamp);
  incident.action = decision.action;
  incident.action_target = decision.target;
  incident.cap_level = decision.cap_level;
  incident.note = decision.reason;

  ++incidents_reported_;
  if (incident_callback_) {
    incident_callback_(incident);
  }
}

}  // namespace cpi2
