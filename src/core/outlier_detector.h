// Per-machine CPI outlier / anomaly detection (section 4.1).
//
// A sample is an *outlier* when its CPI exceeds the job spec's 2-sigma
// threshold AND the task used at least 0.25 CPU-sec/sec (the usage floor
// filters self-inflicted CPI inflation at idle, case 3). A task is
// *anomalous* — worth an antagonist analysis — once it accumulates 3
// outlier flags within a 5-minute window.

#ifndef CPI2_CORE_OUTLIER_DETECTOR_H_
#define CPI2_CORE_OUTLIER_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/params.h"
#include "core/types.h"

namespace cpi2 {

// Keyed by the caller's dense task key — the agent passes
// TaskMeta::detector_key, minted fresh for every task *incarnation*. The
// detector never sees a task name: Observe and ForgetTask are pure integer
// indexing, and because keys are never reused, a stale ForgetTask for a dead
// incarnation cannot clobber the history of a new task that happens to run
// under a recycled name (outlier_detector_test holds the regression).
class OutlierDetector {
 public:
  explicit OutlierDetector(const Cpi2Params& params) : params_(params) {}

  struct Result {
    // This sample crossed the spec threshold (with sufficient usage).
    bool outlier = false;
    // The task has had >= outlier_violations outliers within the window;
    // antagonist identification should run.
    bool anomaly = false;
    // The threshold that was applied (mean + outlier_sigmas * stddev).
    double threshold = 0.0;
    // Sample skipped entirely (below the usage floor).
    bool skipped_low_usage = false;
  };

  // Scores one sample of the task keyed `key` against its job's spec.
  // `sigma_scale` widens the outlier threshold (mean + sigma_scale *
  // outlier_sigmas * stddev); degraded modes pass > 1.0 when the spec is
  // stale so that a drifting job does not trip on an outdated model.
  Result Observe(uint32_t key, const CpiSample& sample, const CpiSpec& spec,
                 double sigma_scale);
  Result Observe(uint32_t key, const CpiSample& sample, const CpiSpec& spec) {
    return Observe(key, sample, spec, /*sigma_scale=*/1.0);
  }

  // Drops a task's flag history (task exited or moved away). A key never
  // observed (or already forgotten) is a no-op.
  void ForgetTask(uint32_t key);

  // Drops all flag history (agent restart: everything in memory is lost).
  void Clear() {
    flags_.clear();
    present_.clear();
    tracked_ = 0;
  }

  // Number of tasks with at least one recent flag (diagnostics).
  size_t tracked_tasks() const { return tracked_; }

 private:
  Cpi2Params params_;
  // Per task key: timestamps of recent outlier flags, oldest first. Keys
  // index these vectors directly, so the hot Observe path never allocates
  // or rebalances a map node (and never hashes a string).
  std::vector<std::deque<MicroTime>> flags_;
  std::vector<uint8_t> present_;  // key currently has a flag history
  size_t tracked_ = 0;            // == count of set bits in present_
};

}  // namespace cpi2

#endif  // CPI2_CORE_OUTLIER_DETECTOR_H_
