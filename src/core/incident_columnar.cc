#include "core/incident_columnar.h"

#include <algorithm>
#include <optional>

namespace cpi2 {

void ForensicsIndex::Add(const Incident& incident) {
  const size_t row = timestamps_.size();
  if (row % kSegmentRows == 0) {
    segments_.push_back(Segment{incident.timestamp, incident.timestamp});
  } else {
    Segment& segment = segments_.back();
    segment.min_ts = std::min(segment.min_ts, incident.timestamp);
    segment.max_ts = std::max(segment.max_ts, incident.timestamp);
  }
  if (row > 0 && incident.timestamp < timestamps_.back()) {
    time_ordered_ = false;
  }

  timestamps_.push_back(incident.timestamp);
  const uint32_t victim = names_.Intern(incident.victim_job);
  const uint32_t machine = names_.Intern(incident.machine);
  victim_jobs_.push_back(victim);
  machines_.push_back(machine);
  by_victim_[victim].push_back(row);
  by_machine_[machine].push_back(row);

  uint8_t flags = 0;
  if (incident.action == IncidentAction::kHardCap) {
    flags |= kHardCapped;
  }
  if (!incident.suspects.empty()) {
    const Suspect& top = incident.suspects.front();
    flags |= kHasSuspect;
    if (incident.action == IncidentAction::kHardCap && incident.action_target == top.task) {
      flags |= kCappedForTop;
    }
    top_suspect_jobs_.push_back(names_.Intern(top.jobname));
    top_correlations_.push_back(top.correlation);
  } else {
    top_suspect_jobs_.push_back(0);
    top_correlations_.push_back(0.0);
  }
  flags_.push_back(flags);
}

size_t ForensicsIndex::FirstAtOrAfter(const std::vector<size_t>& rows, MicroTime ts) const {
  return static_cast<size_t>(
      std::lower_bound(rows.begin(), rows.end(), ts,
                       [this](size_t row, MicroTime t) { return timestamps_[row] < t; }) -
      rows.begin());
}

std::vector<size_t> ForensicsIndex::Select(const Query& query) const {
  std::vector<size_t> out;
  std::optional<uint32_t> victim_id;
  std::optional<uint32_t> machine_id;
  if (!query.victim_job.empty()) {
    victim_id = names_.Find(query.victim_job);
    if (!victim_id.has_value()) {
      return out;  // name never logged: nothing can match
    }
  }
  if (!query.machine.empty()) {
    machine_id = names_.Find(query.machine);
    if (!machine_id.has_value()) {
      return out;
    }
  }

  // The full predicate, identical filter-for-filter to the reference scan.
  // The driving index below only narrows which rows get tested.
  const auto matches = [&](size_t row) {
    if (query.begin != 0 && timestamps_[row] < query.begin) {
      return false;
    }
    if (query.end != 0 && timestamps_[row] >= query.end) {
      return false;
    }
    if (victim_id.has_value() && victim_jobs_[row] != *victim_id) {
      return false;
    }
    if (machine_id.has_value() && machines_[row] != *machine_id) {
      return false;
    }
    if (query.min_top_correlation > 0.0 &&
        ((flags_[row] & kHasSuspect) == 0 ||
         top_correlations_[row] < query.min_top_correlation)) {
      return false;
    }
    if (query.capped_only && (flags_[row] & kHardCapped) == 0) {
      return false;
    }
    return true;
  };

  if (victim_id.has_value() || machine_id.has_value()) {
    // Drive from the more selective posting list (victim when both given;
    // the other column stays an ordinary filter in matches()).
    const auto& lists = victim_id.has_value() ? by_victim_ : by_machine_;
    const auto it = lists.find(victim_id.has_value() ? *victim_id : *machine_id);
    if (it == lists.end()) {
      return out;
    }
    const std::vector<size_t>& rows = it->second;
    size_t lo = 0;
    size_t hi = rows.size();
    if (time_ordered_) {
      // Posting lists are ascending row ids, so in a time-ordered log their
      // timestamps are non-decreasing: binary search the window.
      if (query.begin != 0) {
        lo = FirstAtOrAfter(rows, query.begin);
      }
      if (query.end != 0) {
        hi = FirstAtOrAfter(rows, query.end);
      }
    }
    for (size_t i = lo; i < hi; ++i) {
      if (matches(rows[i])) {
        out.push_back(rows[i]);
      }
    }
  } else if (time_ordered_) {
    const auto begin_it =
        query.begin == 0 ? timestamps_.begin()
                         : std::lower_bound(timestamps_.begin(), timestamps_.end(), query.begin);
    const auto end_it = query.end == 0
                            ? timestamps_.end()
                            : std::lower_bound(begin_it, timestamps_.end(), query.end);
    const size_t hi = static_cast<size_t>(end_it - timestamps_.begin());
    for (size_t row = static_cast<size_t>(begin_it - timestamps_.begin()); row < hi; ++row) {
      if (matches(row)) {
        out.push_back(row);
      }
    }
  } else {
    // Out-of-order log: min/max pruning skips whole segments outside the
    // window; rows inside surviving segments are checked individually.
    for (size_t seg = 0; seg < segments_.size(); ++seg) {
      if (query.begin != 0 && segments_[seg].max_ts < query.begin) {
        continue;
      }
      if (query.end != 0 && segments_[seg].min_ts >= query.end) {
        continue;
      }
      const size_t first = seg * kSegmentRows;
      const size_t last = std::min(first + kSegmentRows, timestamps_.size());
      for (size_t row = first; row < last; ++row) {
        if (matches(row)) {
          out.push_back(row);
        }
      }
    }
  }
  return out;
}

ForensicsIndex::TopSuspect ForensicsIndex::Top(size_t row) const {
  TopSuspect top;
  top.has_suspect = (flags_[row] & kHasSuspect) != 0;
  top.capped_for_top = (flags_[row] & kCappedForTop) != 0;
  top.jobname_id = top_suspect_jobs_[row];
  top.correlation = top_correlations_[row];
  return top;
}

}  // namespace cpi2
