// Columnar forensics index over the incident log.
//
// The incident log's query surface (Select / TopAntagonists) stands in for
// the paper's Dremel queries over logged incidents (section 5). The
// reference implementation scans every incident per query; at forensics
// scale (weeks of incidents, interactive dashboards) that is O(n) per
// query. This index stores the queryable columns struct-of-arrays and keeps
// just enough structure to answer the existing queries in
// O(log n + matches):
//
//  - interned ids: victim job, machine, and top-suspect job names intern to
//    dense uint32 ids once at append time, so query filters compare
//    integers, not heap strings;
//  - posting lists: per victim-job and per-machine row-id lists, appended
//    in arrival order, so the common "incidents for job J" query touches
//    only J's rows;
//  - time-ordered segments: rows group into fixed-size segments carrying
//    min/max timestamps. While appends arrive in time order (the normal
//    case — the harness logs incidents as they happen) time filters binary
//    search directly; out-of-order appends flip a flag and time filters
//    fall back to segment min/max pruning plus per-row checks, never to a
//    wrong answer.
//
// The index answers with row ids in ascending (log) order — the exact
// order the reference scan visits rows — so results built from it are
// identical to the legacy path, including downstream floating-point
// accumulation order and sort tie-breaks. forensics_equivalence_test holds
// that claim; params.legacy_forensics_path routes queries through the
// reference scan to keep it checkable in CI.

#ifndef CPI2_CORE_INCIDENT_COLUMNAR_H_
#define CPI2_CORE_INCIDENT_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/incident.h"
#include "util/interner.h"

namespace cpi2 {

class ForensicsIndex {
 public:
  // Typed query, mirroring the paper's "most aggressive antagonists for a
  // job in a particular time window" Dremel use case.
  struct Query {
    // Empty strings / zero times mean "no constraint".
    std::string victim_job;
    std::string machine;
    MicroTime begin = 0;
    MicroTime end = 0;
    // Only incidents whose top suspect clears this correlation.
    double min_top_correlation = 0.0;
    // Only incidents where action was taken.
    bool capped_only = false;
  };

  // Appends the incident's queryable columns as row id rows().
  void Add(const Incident& incident);

  size_t rows() const { return timestamps_.size(); }

  // Row ids matching the query, ascending — the same rows, in the same
  // order, as the reference full scan.
  std::vector<size_t> Select(const Query& query) const;

  // The columns TopAntagonists aggregates, denormalized at append time:
  // the front() suspect's job and correlation, plus whether the incident's
  // cap landed on that suspect.
  struct TopSuspect {
    bool has_suspect = false;
    bool capped_for_top = false;  // action == kHardCap targeting the top suspect
    uint32_t jobname_id = 0;      // valid only when has_suspect
    double correlation = 0.0;
  };
  TopSuspect Top(size_t row) const;

  const std::string& JobName(uint32_t id) const { return names_.NameOf(id); }

 private:
  // Rows per segment: small enough that min/max pruning skips most of an
  // out-of-order log, large enough that segment metadata stays negligible.
  static constexpr size_t kSegmentRows = 512;
  static constexpr uint8_t kHasSuspect = 1;
  static constexpr uint8_t kHardCapped = 2;
  static constexpr uint8_t kCappedForTop = 4;

  struct Segment {
    MicroTime min_ts = 0;
    MicroTime max_ts = 0;
  };

  // First index into `rows` whose timestamp is >= ts (rows ascending by
  // row id; only valid while time_ordered_).
  size_t FirstAtOrAfter(const std::vector<size_t>& rows, MicroTime ts) const;

  // Names from all three columns share one id space.
  StringInterner names_;

  // Struct-of-arrays columns, one entry per incident.
  std::vector<MicroTime> timestamps_;
  std::vector<uint32_t> victim_jobs_;
  std::vector<uint32_t> machines_;
  std::vector<uint32_t> top_suspect_jobs_;
  std::vector<double> top_correlations_;
  std::vector<uint8_t> flags_;

  std::vector<Segment> segments_;
  std::unordered_map<uint32_t, std::vector<size_t>> by_victim_;
  std::unordered_map<uint32_t, std::vector<size_t>> by_machine_;
  bool time_ordered_ = true;
};

}  // namespace cpi2

#endif  // CPI2_CORE_INCIDENT_COLUMNAR_H_
