// Cluster-level CPI sample aggregation service (Figure 6).
//
// Receives every agent's samples, periodically rebuilds the per-job,
// per-platform CPI specs through SpecBuilder, and pushes fresh specs back
// out through a callback (the harness routes them to the machines running
// each job). The paper rebuilds every 24 hours with a goal of hourly;
// the interval is a parameter.
//
// Degraded-mode hardening:
//  - Checkpoint/restore: the spec state (age-weighted history, latest
//    specs, build clock) serializes to a versioned TSV blob, so a restarted
//    aggregator resumes from its last checkpoint instead of forgetting a
//    day of history. Samples accumulated since the checkpoint are lost —
//    the loss is bounded by the checkpoint interval.
//  - Duplicate-sample idempotence: when sample_dedup_window > 0, a
//    (machine, task, timestamp) triple seen twice within the window is
//    dropped, so an agent retrying after a lost ack cannot double-count.

#ifndef CPI2_CORE_AGGREGATOR_H_
#define CPI2_CORE_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/params.h"
#include "core/spec_builder.h"
#include "core/types.h"
#include "util/interner.h"
#include "util/status.h"

namespace cpi2 {

class Aggregator {
 public:
  using SpecCallback = std::function<void(const CpiSpec&)>;

  explicit Aggregator(const Cpi2Params& params) : params_(params), builder_(params) {}

  void AddSample(const CpiSample& sample);

  // Rebuilds specs when the update interval has elapsed. Call regularly.
  void Tick(MicroTime now);

  // Rebuilds immediately regardless of the interval (used to prime specs at
  // experiment start and by the paper's "goal: 1 hour" mode).
  std::vector<CpiSpec> ForceBuild(MicroTime now);

  void SetSpecCallback(SpecCallback callback) { callback_ = std::move(callback); }

  std::optional<CpiSpec> GetSpec(const std::string& jobname,
                                 const std::string& platforminfo) const {
    return builder_.GetSpec(jobname, platforminfo);
  }

  SpecBuilder& builder() { return builder_; }
  int64_t builds_completed() const { return builds_completed_; }
  int64_t duplicates_dropped() const { return duplicates_dropped_; }

  // --- checkpoint/restore ---------------------------------------------------
  // Serializes the spec state (history + latest specs + build clock) to a
  // self-contained versioned text blob. The in-progress accumulation window
  // and the dedup set are intentionally excluded; see the header comment.
  std::string Checkpoint() const;
  // Replaces this aggregator's spec state with a previously checkpointed
  // blob. Fails (leaving the current state untouched) on a malformed blob.
  Status Restore(const std::string& checkpoint);
  // File-backed convenience wrappers around Checkpoint()/Restore().
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

 private:
  // Sample identity for dedup: timestamp first so pruning old entries is a
  // single ordered-range erase. Machine and task are interned ids — the
  // per-sample insert compares three integers instead of two heap strings.
  using SampleKey = std::tuple<MicroTime, uint32_t, uint32_t>;

  Cpi2Params params_;
  SpecBuilder builder_;
  SpecCallback callback_;
  StringInterner dedup_ids_;  // machine and task names share one id space
  MicroTime last_build_ = -1;
  int64_t builds_completed_ = 0;
  int64_t duplicates_dropped_ = 0;
  std::set<SampleKey> recent_samples_;  // only used when dedup enabled
  MicroTime dedup_watermark_ = 0;       // newest timestamp seen
};

}  // namespace cpi2

#endif  // CPI2_CORE_AGGREGATOR_H_
