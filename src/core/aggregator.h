// Cluster-level CPI sample aggregation service (Figure 6).
//
// Receives every agent's samples, periodically rebuilds the per-job,
// per-platform CPI specs through SpecBuilder, and pushes fresh specs back
// out through a callback (the harness routes them to the machines running
// each job). The paper rebuilds every 24 hours with a goal of hourly;
// the interval is a parameter.

#ifndef CPI2_CORE_AGGREGATOR_H_
#define CPI2_CORE_AGGREGATOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/params.h"
#include "core/spec_builder.h"
#include "core/types.h"

namespace cpi2 {

class Aggregator {
 public:
  using SpecCallback = std::function<void(const CpiSpec&)>;

  explicit Aggregator(const Cpi2Params& params) : params_(params), builder_(params) {}

  void AddSample(const CpiSample& sample) { builder_.AddSample(sample); }

  // Rebuilds specs when the update interval has elapsed. Call regularly.
  void Tick(MicroTime now);

  // Rebuilds immediately regardless of the interval (used to prime specs at
  // experiment start and by the paper's "goal: 1 hour" mode).
  std::vector<CpiSpec> ForceBuild(MicroTime now);

  void SetSpecCallback(SpecCallback callback) { callback_ = std::move(callback); }

  std::optional<CpiSpec> GetSpec(const std::string& jobname,
                                 const std::string& platforminfo) const {
    return builder_.GetSpec(jobname, platforminfo);
  }

  SpecBuilder& builder() { return builder_; }
  int64_t builds_completed() const { return builds_completed_; }

 private:
  Cpi2Params params_;
  SpecBuilder builder_;
  SpecCallback callback_;
  MicroTime last_build_ = -1;
  int64_t builds_completed_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_AGGREGATOR_H_
