// Cluster-level CPI sample aggregation service (Figure 6).
//
// Receives every agent's samples, periodically rebuilds the per-job,
// per-platform CPI specs through SpecBuilder, and pushes fresh specs back
// out through a callback (the harness routes them to the machines running
// each job). The paper rebuilds every 24 hours with a goal of hourly;
// the interval is a parameter.
//
// Fast path: AddSample dedups (serial, deterministic) and stages the sample
// into its SpecBuilder shard; each Tick flushes the accumulated batch — and
// each build runs per shard — on the attached ThreadPool when one is set.
// The shard outputs merge back in the legacy string-sorted order, so spec
// push order is bit-identical to the serial single-map path.
//
// Degraded-mode hardening:
//  - Checkpoint/restore: the spec state (age-weighted history, latest
//    specs, build clock) and the dedup state serialize to a versioned TSV
//    blob (v2; v1 blobs still load), so a restarted aggregator resumes from
//    its last checkpoint instead of forgetting a day of history. Samples
//    accumulated since the checkpoint are lost — the loss is bounded by the
//    checkpoint interval. The writer streams shard by shard and reuses each
//    shard's cached serialization until its state changes, so steady-state
//    checkpoints between builds cost O(dedup window), not O(total jobs).
//  - Duplicate-sample idempotence: when sample_dedup_window > 0, a
//    (machine, task, timestamp) triple seen twice within the window is
//    dropped, so an agent retrying after a lost ack cannot double-count.
//    The watermark and window contents persist in the checkpoint, so
//    duplicates replayed across a crash/restore are still absorbed.

#ifndef CPI2_CORE_AGGREGATOR_H_
#define CPI2_CORE_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dedup_window.h"
#include "core/params.h"
#include "core/spec_builder.h"
#include "core/types.h"
#include "util/interner.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpi2 {

class Aggregator {
 public:
  using SpecCallback = std::function<void(const CpiSpec&)>;
  // Receives checkpoint chunks in order; concatenation is the blob.
  using CheckpointSink = std::function<void(std::string_view)>;

  explicit Aggregator(const Cpi2Params& params) : params_(params), builder_(params) {}

  void AddSample(const CpiSample& sample);

  // Rebuilds specs when the update interval has elapsed, and flushes the
  // tick's staged sample batch into the builder shards. Call regularly.
  void Tick(MicroTime now);

  // Rebuilds immediately regardless of the interval (used to prime specs at
  // experiment start and by the paper's "goal: 1 hour" mode).
  std::vector<CpiSpec> ForceBuild(MicroTime now);

  void SetSpecCallback(SpecCallback callback) { callback_ = std::move(callback); }

  // Worker pool for batch flushes and per-shard builds; nullptr (the
  // default) keeps everything on the calling thread. Borrowed, not owned.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  std::optional<CpiSpec> GetSpec(const std::string& jobname,
                                 const std::string& platforminfo) const {
    return builder_.GetSpec(jobname, platforminfo);
  }

  SpecBuilder& builder() { return builder_; }
  int64_t builds_completed() const { return builds_completed_; }
  int64_t duplicates_dropped() const { return duplicates_dropped_; }

  // --- checkpoint/restore ---------------------------------------------------
  // Streams the checkpoint (spec history + latest specs + build clock +
  // dedup state) to `sink` chunk by chunk: header and metadata first, then
  // one chunk per builder shard, each reused from a cached serialization
  // when that shard hasn't changed since the last checkpoint. The
  // in-progress accumulation window is intentionally excluded; see the
  // header comment. Emits the framed binary v3 encoding by default, or the
  // text v2 encoding when params.legacy_wire_path is set; Restore
  // auto-detects either (plus text v1), and restoring the two encodings of
  // one state produces bit-identical aggregators.
  void WriteCheckpoint(const CheckpointSink& sink) const;
  // Convenience wrapper materializing the streamed checkpoint as one blob.
  std::string Checkpoint() const;
  // Replaces this aggregator's state with a previously checkpointed blob.
  // Fails (leaving the current state untouched) on a malformed blob: every
  // numeric field is parsed strictly, so a corrupted checkpoint surfaces as
  // InvalidArgumentError naming the bad line instead of restoring zeros.
  Status Restore(const std::string& checkpoint);
  // File-backed convenience wrappers around WriteCheckpoint()/Restore().
  // SaveCheckpoint writes crash-atomically (tmp + fsync + rename), so a
  // kill mid-save leaves the previous checkpoint intact.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

 private:
  void WriteCheckpointText(const CheckpointSink& sink) const;
  void WriteCheckpointBinary(const CheckpointSink& sink) const;

  Cpi2Params params_;
  SpecBuilder builder_;
  SpecCallback callback_;
  ThreadPool* pool_ = nullptr;  // borrowed; flush/build scheduling only
  StringInterner dedup_ids_;  // machine and task names share one id space
  InternMemo machine_memo_;   // batches deliver one machine's samples in a row
  InternCache task_memo_;     // tasks rotate within a machine's batch
  MicroTime last_build_ = -1;
  int64_t builds_completed_ = 0;
  int64_t duplicates_dropped_ = 0;
  // Sample identity for dedup is (timestamp, machine id, task id); the
  // interned ids make the per-sample membership probe integer compares
  // instead of string compares, and DedupWindow makes it allocation-free.
  DedupWindow recent_samples_;     // only used when dedup enabled
  MicroTime dedup_watermark_ = 0;  // newest timestamp seen
  // Per-shard checkpoint blob cache, keyed by the builder's shard versions.
  // Mutable: WriteCheckpoint is logically const and single-threaded (it runs
  // in the harness's serial phase).
  mutable std::vector<std::string> shard_blob_cache_;
  mutable std::vector<uint64_t> shard_blob_version_;
};

}  // namespace cpi2

#endif  // CPI2_CORE_AGGREGATOR_H_
