// Incident record: one detected CPU-interference event.
//
// Produced by the per-machine agent when an anomalous task's antagonist
// analysis completes; consumed by the enforcement policy, the incident log
// (forensics), and operators.

#ifndef CPI2_CORE_INCIDENT_H_
#define CPI2_CORE_INCIDENT_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "util/clock.h"

namespace cpi2 {

// One co-resident task scored by the antagonist correlation.
struct Suspect {
  std::string task;
  std::string jobname;
  WorkloadClass workload_class = WorkloadClass::kBatch;
  JobPriority priority = JobPriority::kNonProduction;
  double correlation = 0.0;
};

// Enforcement outcome attached to an incident.
enum class IncidentAction {
  kNone,          // no suspect cleared the bar, or enforcement disabled
  kHardCap,       // a suspect was CPU hard-capped
  kAlreadyCapped, // the best suspect was already under a cap
};

struct Incident {
  MicroTime timestamp = 0;
  std::string machine;

  std::string victim_task;
  std::string victim_job;
  std::string platforminfo;
  WorkloadClass victim_class = WorkloadClass::kLatencySensitive;

  double victim_cpi = 0.0;
  double cpi_threshold = 0.0;  // the spec threshold that was crossed
  double spec_mean = 0.0;
  double spec_stddev = 0.0;

  // All analyzed suspects, highest correlation first.
  std::vector<Suspect> suspects;

  IncidentAction action = IncidentAction::kNone;
  std::string action_target;  // capped task, when action == kHardCap
  double cap_level = 0.0;     // CPU-sec/sec
  std::string note;

  // Renders a one-line summary for logs.
  std::string Summary() const;
};

}  // namespace cpi2

#endif  // CPI2_CORE_INCIDENT_H_
