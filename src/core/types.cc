#include "core/types.h"

namespace cpi2 {

const char* WorkloadClassName(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kLatencySensitive:
      return "latency-sensitive";
    case WorkloadClass::kBatch:
      return "batch";
  }
  return "?";
}

const char* JobPriorityName(JobPriority p) {
  switch (p) {
    case JobPriority::kProduction:
      return "production";
    case JobPriority::kNonProduction:
      return "non-production";
    case JobPriority::kBestEffort:
      return "best-effort";
  }
  return "?";
}

}  // namespace cpi2
