#include "core/params.h"

#include "util/string_util.h"

namespace cpi2 {
namespace {

std::string FormatDuration(MicroTime t) {
  if (t % kMicrosPerHour == 0 && t >= kMicrosPerHour) {
    return StrFormat("%lld hours", static_cast<long long>(t / kMicrosPerHour));
  }
  if (t % kMicrosPerMinute == 0 && t >= kMicrosPerMinute) {
    return StrFormat("%lld minutes", static_cast<long long>(t / kMicrosPerMinute));
  }
  return StrFormat("%lld seconds", static_cast<long long>(t / kMicrosPerSecond));
}

}  // namespace

std::string Cpi2Params::ToTable() const {
  std::string out;
  const auto row = [&out](const std::string& name, const std::string& value) {
    out += PadRight(name, 38) + value + "\n";
  };
  row("Parameter", "Value");
  row("Collection granularity", "task");
  row("Sampling duration", FormatDuration(sample_duration));
  row("Sampling frequency", "every " + FormatDuration(sample_period));
  row("Aggregation granularity", "job x CPU type");
  row("Predicted CPI recalculated",
      "every " + FormatDuration(spec_update_interval) + " (goal: 1 hour)");
  row("Required CPU usage", StrFormat(">= %.2f CPU-sec/sec", min_cpu_usage));
  row("Outlier threshold 1",
      StrFormat("%.0f sigma (sigma: standard deviation)", outlier_sigmas));
  row("Outlier threshold 2",
      StrFormat("%d violations in %s", outlier_violations,
                FormatDuration(violation_window).c_str()));
  row("Antagonist correlation threshold", StrFormat("%.2f", correlation_threshold));
  row("Hard-capping quota", StrFormat("%.2f CPU-sec/sec", cap_other));
  row("Hard-capping quota (best effort)", StrFormat("%.2f CPU-sec/sec", cap_best_effort));
  row("Hard-capping duration", FormatDuration(cap_duration));
  row("Sample transport", legacy_wire_path ? "per-sample (text formats)" : "binary batches");
  row("Wire batch max samples", StrFormat("%d", wire_batch_max_samples));
  row("Wire batch max age",
      wire_batch_max_age == 0 ? "flush every tick" : FormatDuration(wire_batch_max_age));
  return out;
}

}  // namespace cpi2
