#include "core/enforcement.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace cpi2 {

EnforcementPolicy::EnforcementPolicy(const Cpi2Params& params, CpuController* controller)
    : params_(params), controller_(controller), enabled_(params.enforcement_enabled) {}

EnforcementPolicy::Decision EnforcementPolicy::OnIncident(
    WorkloadClass victim_class, bool victim_opt_in,
    const std::vector<Suspect>& ranked_suspects, MicroTime now) {
  Decision decision;
  if (!enabled_) {
    decision.reason = "enforcement disabled";
    return decision;
  }
  if (victim_class != WorkloadClass::kLatencySensitive && !victim_opt_in) {
    // Batch victims are not protected automatically (they have straggler
    // mechanisms of their own) unless the job opted in explicitly.
    decision.reason = "victim not eligible (batch, not opted in)";
    return decision;
  }
  for (const Suspect& suspect : ranked_suspects) {
    if (suspect.correlation < params_.correlation_threshold) {
      break;  // Ranked descending: nothing further clears the bar.
    }
    if (suspect.workload_class != WorkloadClass::kBatch) {
      continue;  // Never throttle latency-sensitive suspects automatically.
    }
    if (IsCapped(suspect.task)) {
      decision.action = IncidentAction::kAlreadyCapped;
      decision.target = suspect.task;
      decision.reason = "top suspect already capped";
      // Escalation: capping this offender clearly is not enough.
      const int stuck = ++stuck_incidents_[suspect.task];
      if (migration_callback_ && stuck >= params_.recaps_before_migration) {
        stuck_incidents_[suspect.task] = 0;
        ++migrations_requested_;
        decision.reason += "; requesting kill-and-restart elsewhere";
        CPI2_LOG(INFO) << "escalating " << suspect.task << " to migration";
        migration_callback_(suspect.task);
      }
      return decision;
    }
    const double level = CapLevelFor(suspect.priority);
    const Status status = controller_->SetCap(suspect.task, level);
    if (!status.ok()) {
      decision.reason = "cap failed: " + status.ToString();
      return decision;
    }
    active_caps_[suspect.task] = {now + params_.cap_duration, level};
    ++caps_applied_;
    decision.action = IncidentAction::kHardCap;
    decision.target = suspect.task;
    decision.cap_level = level;
    decision.reason = StrFormat("correlation %.2f >= %.2f", suspect.correlation,
                                params_.correlation_threshold);
    CPI2_LOG(INFO) << "hard-capping " << suspect.task << " to " << level << " CPU-s/s ("
                   << decision.reason << ")";
    return decision;
  }
  decision.reason = "no throttleable suspect above threshold";
  return decision;
}

void EnforcementPolicy::Tick(MicroTime now) {
  for (auto it = active_caps_.begin(); it != active_caps_.end();) {
    if (now >= it->second.expires_at) {
      const Status status = controller_->RemoveCap(it->first);
      if (!status.ok()) {
        CPI2_LOG(WARNING) << "uncap " << it->first << " failed: " << status.ToString();
      }
      it = active_caps_.erase(it);
    } else {
      ++it;
    }
  }
}

Status EnforcementPolicy::ManualCap(const std::string& task, double cpu_sec_per_sec,
                                    MicroTime duration, MicroTime now) {
  const Status status = controller_->SetCap(task, cpu_sec_per_sec);
  if (!status.ok()) {
    return status;
  }
  const MicroTime effective = duration > 0 ? duration : params_.cap_duration;
  active_caps_[task] = {now + effective, cpu_sec_per_sec};
  ++caps_applied_;
  return Status::Ok();
}

Status EnforcementPolicy::ManualUncap(const std::string& task) {
  active_caps_.erase(task);
  return controller_->RemoveCap(task);
}

}  // namespace cpi2
