#include "core/cell_aggregator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/string_util.h"
#include "wire/framing.h"
#include "wire/sketch_codec.h"

namespace cpi2 {
namespace {

constexpr char kHierCheckpointMagic[] = "CPI2HAG1";

// Record tags, matching the flat v3 checkpoint vocabulary (aggregator.cc):
// M = metadata, W = dedup watermark, D = dedup window entries, H = history
// entries, S = latest specs (here with a trailing version varint).
constexpr uint8_t kMetaTag = 'M';
constexpr uint8_t kWatermarkTag = 'W';
constexpr uint8_t kDedupTag = 'D';
constexpr uint8_t kHistoryTag = 'H';
constexpr uint8_t kSpecTag = 'S';

constexpr size_t kDedupEntriesPerRecord = 2048;

struct ParsedHierCheckpoint {
  bool have_meta = false;
  MicroTime last_build = -1;
  int64_t builds_completed = 0;
  int64_t samples_seen = 0;
  MicroTime watermark = 0;
  struct DedupEntry {
    MicroTime timestamp = 0;
    std::string machine;
    std::string task;
  };
  std::vector<DedupEntry> dedup_entries;
  std::vector<SpecBuilder::HistoryEntry> history;
  std::vector<GlobalMerger::VersionedSpec> latest_specs;
};

// All-or-nothing parse, mirroring the flat checkpoint loader: any damaged
// record rejects the blob naming the record.
Status ParseHierCheckpoint(std::string_view checkpoint, ParsedHierCheckpoint* parsed) {
  WireReader reader(checkpoint.substr(kWireMagicSize));
  int record_number = 0;
  std::string_view payload;
  while (true) {
    ++record_number;
    const FrameResult frame = ReadFramedRecord(reader, &payload);
    if (frame == FrameResult::kEnd) {
      return Status::Ok();
    }
    const auto damaged = [&](const char* what) {
      return InvalidArgumentError(
          StrFormat("hierarchical checkpoint record %d: %s", record_number, what));
    };
    if (frame == FrameResult::kCorrupt) {
      return damaged("bad CRC");
    }
    if (frame == FrameResult::kTruncated) {
      return damaged("truncated");
    }
    WireReader record(payload);
    const uint8_t tag = record.GetByte();
    switch (tag) {
      case kMetaTag:
        parsed->last_build = record.GetZigzag();
        parsed->builds_completed = static_cast<int64_t>(record.GetVarint());
        parsed->samples_seen = static_cast<int64_t>(record.GetVarint());
        parsed->have_meta = true;
        break;
      case kWatermarkTag:
        parsed->watermark = record.GetZigzag();
        break;
      case kDedupTag: {
        const uint64_t name_count = record.GetVarint();
        if (record.failed() || name_count > record.remaining()) {
          return damaged("malformed dedup dictionary");
        }
        std::vector<std::string_view> names(static_cast<size_t>(name_count));
        for (auto& name : names) {
          name = record.GetString();
        }
        const uint64_t entry_count = record.GetVarint();
        if (record.failed() || entry_count > record.remaining()) {
          return damaged("malformed dedup entries");
        }
        MicroTime prev = 0;
        for (uint64_t i = 0; i < entry_count; ++i) {
          ParsedHierCheckpoint::DedupEntry entry;
          const uint64_t machine_idx = record.GetVarint();
          const uint64_t task_idx = record.GetVarint();
          entry.timestamp = prev + record.GetZigzag();
          prev = entry.timestamp;
          if (record.failed() || machine_idx >= names.size() || task_idx >= names.size()) {
            return damaged("malformed dedup entries");
          }
          entry.machine.assign(names[static_cast<size_t>(machine_idx)]);
          entry.task.assign(names[static_cast<size_t>(task_idx)]);
          parsed->dedup_entries.push_back(std::move(entry));
        }
        break;
      }
      case kHistoryTag: {
        const uint64_t entry_count = record.GetVarint();
        if (record.failed() || entry_count > record.remaining()) {
          return damaged("malformed history entries");
        }
        for (uint64_t i = 0; i < entry_count; ++i) {
          SpecBuilder::HistoryEntry entry;
          entry.key.jobname.assign(record.GetString());
          entry.key.platforminfo.assign(record.GetString());
          entry.count = record.GetDouble();
          entry.mean = record.GetDouble();
          entry.m2 = record.GetDouble();
          entry.usage_mean = record.GetDouble();
          if (record.failed()) {
            return damaged("malformed history entries");
          }
          parsed->history.push_back(std::move(entry));
        }
        break;
      }
      case kSpecTag: {
        const uint64_t spec_count = record.GetVarint();
        if (record.failed() || spec_count > record.remaining()) {
          return damaged("malformed spec entries");
        }
        for (uint64_t i = 0; i < spec_count; ++i) {
          GlobalMerger::VersionedSpec versioned;
          versioned.spec.jobname.assign(record.GetString());
          versioned.spec.platforminfo.assign(record.GetString());
          versioned.spec.num_samples = static_cast<int64_t>(record.GetVarint());
          versioned.spec.cpu_usage_mean = record.GetDouble();
          versioned.spec.cpi_mean = record.GetDouble();
          versioned.spec.cpi_stddev = record.GetDouble();
          versioned.version = record.GetVarint();
          if (record.failed()) {
            return damaged("malformed spec entries");
          }
          parsed->latest_specs.push_back(std::move(versioned));
        }
        break;
      }
      default:
        return damaged("unknown record tag");
    }
    if (record.failed()) {
      return damaged("record underran its payload");
    }
  }
}

}  // namespace

// --- CellAggregator ---------------------------------------------------------

CellAggregator::CellAggregator(const Cpi2Params& params, uint32_t cell_id)
    : params_(params), cell_id_(cell_id) {}

void CellAggregator::AddSample(const CpiSample& sample) {
  const IdKey key =
      (static_cast<IdKey>(job_memo_.Intern(names_, sample.jobname)) << 32) |
      platform_memo_.Intern(names_, sample.platforminfo);
  Partial& partial = window_[key];
  partial.sketch.Add(sample.cpi, sample.cpu_usage);
  if (!sample.task.empty()) {
    partial.task_samples.emplace_back(TaskIdentityHash(sample.task), 1);
  }
}

void CellAggregator::EmitFrame(std::string* out) {
  SketchFrame frame;
  frame.cell_id = cell_id_;
  frame.sequence = sequence_++;

  // Emit partials in (jobname, platforminfo) order with a first-use name
  // dictionary: the frame bytes become a pure function of the window's
  // contents, independent of interner id assignment or map iteration order.
  std::vector<IdKey> keys;
  keys.reserve(window_.size());
  for (const auto& [key, unused] : window_) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end(), [this](IdKey a, IdKey b) {
    const std::string& job_a = names_.NameOf(static_cast<uint32_t>(a >> 32));
    const std::string& job_b = names_.NameOf(static_cast<uint32_t>(b >> 32));
    if (job_a != job_b) {
      return job_a < job_b;
    }
    return names_.NameOf(static_cast<uint32_t>(a)) < names_.NameOf(static_cast<uint32_t>(b));
  });

  std::unordered_map<uint32_t, uint32_t> dict;  // interner id -> frame index
  const auto frame_index = [&](uint32_t interned) {
    const auto [it, inserted] = dict.try_emplace(interned, static_cast<uint32_t>(dict.size()));
    if (inserted) {
      frame.names.push_back(names_.NameOf(interned));
    }
    return it->second;
  };

  frame.partials.reserve(keys.size());
  for (const IdKey key : keys) {
    Partial& window_partial = window_.at(key);
    SketchPartial partial;
    partial.job = frame_index(static_cast<uint32_t>(key >> 32));
    partial.platform = frame_index(static_cast<uint32_t>(key));
    partial.sketch = window_partial.sketch;
    // Canonicalize the per-sample append log: ascending hash, duplicate
    // hashes collapsed by summing counts (what the old per-sample map did).
    std::sort(window_partial.task_samples.begin(), window_partial.task_samples.end());
    partial.task_samples.reserve(window_partial.task_samples.size());
    for (const auto& [hash, count] : window_partial.task_samples) {
      if (!partial.task_samples.empty() && partial.task_samples.back().first == hash) {
        partial.task_samples.back().second += count;
      } else {
        partial.task_samples.emplace_back(hash, count);
      }
    }
    frame.partials.push_back(std::move(partial));
  }
  EncodeSketchFrame(frame, out);
  window_.clear();
}

void CellAggregator::DiscardWindow() { window_.clear(); }

// --- GlobalMerger -----------------------------------------------------------

GlobalMerger::GlobalMerger(const Cpi2Params& params) : params_(params) {}

void GlobalMerger::MomentHistory::Decay(double weight) {
  count *= weight;
  m2 *= weight;
}

void GlobalMerger::MomentHistory::Merge(double other_count, double other_mean,
                                        double other_m2, double other_usage) {
  if (other_count <= 0.0) {
    return;
  }
  if (count <= 0.0) {
    count = other_count;
    mean = other_mean;
    m2 = other_m2;
    usage_mean = other_usage;
    return;
  }
  const double total = count + other_count;
  const double delta = other_mean - mean;
  m2 += other_m2 + delta * delta * count * other_count / total;
  mean += delta * other_count / total;
  usage_mean += (other_usage - usage_mean) * other_count / total;
  count = total;
}

Status GlobalMerger::MergeFrame(std::string_view bytes) {
  SketchFrame frame;
  SketchFrameDecodeStats stats;
  const Status status = DecodeSketchFrame(bytes, &frame, &stats);
  partials_dropped_ += stats.records_skipped;
  if (!status.ok()) {
    ++partials_dropped_;  // the whole frame: at least its header is gone
    return status;
  }
  for (SketchPartial& partial : frame.partials) {
    const IdKey key = MakeKey(names_.Intern(frame.names[partial.job]),
                              names_.Intern(frame.names[partial.platform]));
    MergedPartial& merged = window_[key];
    merged.sketch.Merge(partial.sketch);
    if (merged.task_samples.empty()) {
      merged.task_samples = std::move(partial.task_samples);
      continue;
    }
    // Both sides are ascending by hash (the decoder enforces it for the
    // incoming partial): linear merge, summing counts on hash collisions.
    merge_scratch_.clear();
    merge_scratch_.reserve(merged.task_samples.size() + partial.task_samples.size());
    auto a = merged.task_samples.begin();
    auto b = partial.task_samples.begin();
    while (a != merged.task_samples.end() && b != partial.task_samples.end()) {
      if (a->first < b->first) {
        merge_scratch_.push_back(*a++);
      } else if (b->first < a->first) {
        merge_scratch_.push_back(*b++);
      } else {
        merge_scratch_.emplace_back(a->first, a->second + b->second);
        ++a;
        ++b;
      }
    }
    merge_scratch_.insert(merge_scratch_.end(), a, merged.task_samples.end());
    merge_scratch_.insert(merge_scratch_.end(), b, partial.task_samples.end());
    merged.task_samples.swap(merge_scratch_);
  }
  return Status::Ok();
}

bool GlobalMerger::Eligible(const MergedPartial& merged) const {
  // SpecBuilder::Eligible restated over the sketch: distinct tasks via the
  // identity-hash union (exact across any cell partition), average samples
  // per task from the sketch's total count.
  if (static_cast<int>(merged.task_samples.size()) < params_.min_tasks_for_spec) {
    return false;
  }
  const double average = static_cast<double>(merged.sketch.count()) /
                         static_cast<double>(merged.task_samples.size());
  return average >= static_cast<double>(params_.min_samples_per_task);
}

bool GlobalMerger::NameOrderLess(IdKey a, IdKey b) const {
  const std::string& job_a = names_.NameOf(JobOf(a));
  const std::string& job_b = names_.NameOf(JobOf(b));
  if (job_a != job_b) {
    return job_a < job_b;
  }
  return names_.NameOf(PlatformOf(a)) < names_.NameOf(PlatformOf(b));
}

template <typename Map>
std::vector<GlobalMerger::IdKey> GlobalMerger::SortedKeys(const Map& map) const {
  std::vector<IdKey> keys;
  keys.reserve(map.size());
  for (const auto& [key, unused] : map) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end(), [this](IdKey a, IdKey b) { return NameOrderLess(a, b); });
  return keys;
}

std::vector<CpiSpec> GlobalMerger::BuildSpecs(uint64_t version) {
  // SpecBuilder::BuildShard's sequence, with the sketch supplying the
  // window moments: decay all history first, then per-key merge + build.
  for (auto& [key, history] : history_) {
    history.Decay(params_.history_weight);
  }
  std::vector<IdKey> built;
  for (auto& [key, merged] : window_) {
    MomentHistory& history = history_[key];
    const bool eligible_now = Eligible(merged);
    history.Merge(static_cast<double>(merged.sketch.count()), merged.sketch.cpi_mean(),
                  merged.sketch.cpi_m2(), merged.sketch.usage_mean());
    if (!eligible_now) {
      continue;
    }
    CpiSpec spec;
    spec.jobname = names_.NameOf(JobOf(key));
    spec.platforminfo = names_.NameOf(PlatformOf(key));
    spec.num_samples = static_cast<int64_t>(history.count);
    spec.cpu_usage_mean = history.usage_mean;
    spec.cpi_mean = history.mean;
    spec.cpi_stddev = std::sqrt(history.Variance());
    latest_specs_[key] = VersionedSpec{std::move(spec), version};
    built.push_back(key);
  }
  window_.clear();

  std::sort(built.begin(), built.end(),
            [this](IdKey a, IdKey b) { return NameOrderLess(a, b); });
  std::vector<CpiSpec> specs;
  specs.reserve(built.size());
  for (const IdKey key : built) {
    specs.push_back(latest_specs_.at(key).spec);
  }
  return specs;
}

std::optional<CpiSpec> GlobalMerger::GetSpec(const std::string& jobname,
                                             const std::string& platforminfo) const {
  const auto versioned = LatestSpec(jobname, platforminfo);
  if (!versioned.has_value()) {
    return std::nullopt;
  }
  return versioned->spec;
}

std::optional<GlobalMerger::VersionedSpec> GlobalMerger::LatestSpec(
    const std::string& jobname, const std::string& platforminfo) const {
  const auto job = names_.Find(jobname);
  const auto platform = names_.Find(platforminfo);
  if (!job.has_value() || !platform.has_value()) {
    return std::nullopt;
  }
  const auto it = latest_specs_.find(MakeKey(*job, *platform));
  if (it == latest_specs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<SpecBuilder::HistoryEntry> GlobalMerger::SnapshotHistory() const {
  std::vector<SpecBuilder::HistoryEntry> entries;
  entries.reserve(history_.size());
  for (const IdKey key : SortedKeys(history_)) {
    const MomentHistory& history = history_.at(key);
    SpecBuilder::HistoryEntry entry;
    entry.key.jobname = names_.NameOf(JobOf(key));
    entry.key.platforminfo = names_.NameOf(PlatformOf(key));
    entry.count = history.count;
    entry.mean = history.mean;
    entry.m2 = history.m2;
    entry.usage_mean = history.usage_mean;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<GlobalMerger::VersionedSpec> GlobalMerger::SnapshotLatestSpecs() const {
  std::vector<VersionedSpec> specs;
  specs.reserve(latest_specs_.size());
  for (const IdKey key : SortedKeys(latest_specs_)) {
    specs.push_back(latest_specs_.at(key));
  }
  return specs;
}

void GlobalMerger::RestoreSnapshot(
    const std::vector<SpecBuilder::HistoryEntry>& history,
    const std::vector<VersionedSpec>& latest_specs) {
  history_.clear();
  latest_specs_.clear();
  window_.clear();
  for (const SpecBuilder::HistoryEntry& entry : history) {
    const IdKey key = MakeKey(names_.Intern(entry.key.jobname),
                              names_.Intern(entry.key.platforminfo));
    MomentHistory& moments = history_[key];
    moments.count = entry.count;
    moments.mean = entry.mean;
    moments.m2 = entry.m2;
    moments.usage_mean = entry.usage_mean;
  }
  for (const VersionedSpec& versioned : latest_specs) {
    const IdKey key = MakeKey(names_.Intern(versioned.spec.jobname),
                              names_.Intern(versioned.spec.platforminfo));
    latest_specs_[key] = versioned;
  }
}

// --- HierarchicalAggregator -------------------------------------------------

HierarchicalAggregator::HierarchicalAggregator(const Cpi2Params& params)
    : params_(params), merger_(params) {
  const size_t cells =
      params.aggregation_cells < 1 ? 1 : static_cast<size_t>(params.aggregation_cells);
  cells_.reserve(cells);
  for (size_t i = 0; i < cells; ++i) {
    cells_.emplace_back(params, static_cast<uint32_t>(i));
  }
  cell_down_.assign(cells, false);
  cell_last_merge_.assign(cells, -1);
  frame_scratch_.resize(cells);
}

void HierarchicalAggregator::AddSample(size_t cell, const CpiSample& sample) {
  // Global dedup, byte-for-byte the flat Aggregator's logic: one watermark
  // and one window regardless of the cell partition, so the set of dropped
  // duplicates is identical to the flat path's for the same arrival stream.
  if (params_.sample_dedup_window > 0 && !sample.machine.empty()) {
    if (sample.timestamp > dedup_watermark_) {
      dedup_watermark_ = sample.timestamp;
      recent_samples_.PruneOlderThan(dedup_watermark_ - params_.sample_dedup_window);
    }
    if (!recent_samples_.Insert(sample.timestamp,
                                machine_memo_.Intern(dedup_ids_, sample.machine),
                                task_memo_.Intern(dedup_ids_, sample.task))) {
      ++duplicates_dropped_;
      return;
    }
  }
  ++samples_seen_;
  cells_[cell % cells_.size()].AddSample(sample);
}

void HierarchicalAggregator::Tick(MicroTime now) {
  if (last_build_ < 0) {
    last_build_ = now;
    return;
  }
  if (now - last_build_ >= params_.spec_update_interval) {
    ForceBuild(now);
  }
}

std::vector<CpiSpec> HierarchicalAggregator::ForceBuild(MicroTime now) {
  last_build_ = now;
  ++builds_completed_;

  // Frame encoding is per-cell independent work (sort + serialize), so it
  // parallelizes; the fold below is serial but order-insensitive — sketch
  // merging is associative and commutative, so any schedule yields the same
  // merger state bit for bit.
  const auto encode_cell = [this](size_t i) {
    frame_scratch_[i].clear();
    if (cell_down_[i]) {
      cells_[i].DiscardWindow();  // a dead cell's window dies with it
    } else {
      cells_[i].EmitFrame(&frame_scratch_[i]);
    }
  };
  if (pool_ != nullptr && cells_.size() > 1) {
    pool_->ParallelFor(cells_.size(), encode_cell);
  } else {
    for (size_t i = 0; i < cells_.size(); ++i) {
      encode_cell(i);
    }
  }

  cells_reporting_ = 0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (frame_scratch_[i].empty()) {
      continue;
    }
    if (merger_.MergeFrame(frame_scratch_[i]).ok()) {
      cell_last_merge_[i] = now;
      ++cells_reporting_;
    }
  }
  stalest_partial_age_ = 0;
  for (const MicroTime last : cell_last_merge_) {
    // A cell that has never reported is as stale as the whole run.
    const MicroTime age = last < 0 ? now : now - last;
    stalest_partial_age_ = std::max(stalest_partial_age_, age);
  }

  std::vector<CpiSpec> specs =
      merger_.BuildSpecs(static_cast<uint64_t>(builds_completed_));
  if (callback_) {
    for (const CpiSpec& spec : specs) {
      callback_(spec, static_cast<uint64_t>(builds_completed_));
    }
  }
  return specs;
}

void HierarchicalAggregator::SetCellDown(size_t cell, bool down) {
  if (cell < cell_down_.size()) {
    cell_down_[cell] = down;
  }
}

std::string HierarchicalAggregator::Checkpoint() const {
  std::string out;
  AppendWireMagic(&out, kHierCheckpointMagic);
  std::string payload;
  const auto frame_out = [&] {
    AppendFramedRecord(&out, payload);
    payload.clear();
  };

  WireWriter meta(&payload);
  meta.PutByte(kMetaTag);
  meta.PutZigzag(last_build_);
  meta.PutVarint(static_cast<uint64_t>(builds_completed_));
  meta.PutVarint(static_cast<uint64_t>(samples_seen_));
  frame_out();

  WireWriter watermark(&payload);
  watermark.PutByte(kWatermarkTag);
  watermark.PutZigzag(dedup_watermark_);
  frame_out();

  const std::vector<DedupWindow::Entry> dedup_entries = recent_samples_.SortedEntries();
  auto dedup_it = dedup_entries.begin();
  while (dedup_it != dedup_entries.end()) {
    std::unordered_map<uint32_t, uint32_t> local_ids;
    std::string names_buf;
    std::string entries_buf;
    WireWriter names(&names_buf);
    WireWriter entries(&entries_buf);
    const auto local_index = [&](uint32_t interned) {
      const auto [it, inserted] =
          local_ids.try_emplace(interned, static_cast<uint32_t>(local_ids.size()));
      if (inserted) {
        names.PutString(dedup_ids_.NameOf(interned));
      }
      return it->second;
    };
    size_t count = 0;
    MicroTime prev = 0;
    for (; dedup_it != dedup_entries.end() && count < kDedupEntriesPerRecord;
         ++dedup_it, ++count) {
      entries.PutVarint(local_index(dedup_it->machine));
      entries.PutVarint(local_index(dedup_it->task));
      entries.PutZigzag(dedup_it->timestamp - prev);
      prev = dedup_it->timestamp;
    }
    WireWriter record(&payload);
    record.PutByte(kDedupTag);
    record.PutVarint(local_ids.size());
    payload.append(names_buf);
    record.PutVarint(count);
    payload.append(entries_buf);
    frame_out();
  }

  const std::vector<SpecBuilder::HistoryEntry> history = merger_.SnapshotHistory();
  if (!history.empty()) {
    WireWriter record(&payload);
    record.PutByte(kHistoryTag);
    record.PutVarint(history.size());
    for (const SpecBuilder::HistoryEntry& entry : history) {
      record.PutString(entry.key.jobname);
      record.PutString(entry.key.platforminfo);
      record.PutDouble(entry.count);
      record.PutDouble(entry.mean);
      record.PutDouble(entry.m2);
      record.PutDouble(entry.usage_mean);
    }
    frame_out();
  }
  const std::vector<GlobalMerger::VersionedSpec> specs = merger_.SnapshotLatestSpecs();
  if (!specs.empty()) {
    WireWriter record(&payload);
    record.PutByte(kSpecTag);
    record.PutVarint(specs.size());
    for (const GlobalMerger::VersionedSpec& versioned : specs) {
      record.PutString(versioned.spec.jobname);
      record.PutString(versioned.spec.platforminfo);
      record.PutVarint(static_cast<uint64_t>(versioned.spec.num_samples));
      record.PutDouble(versioned.spec.cpu_usage_mean);
      record.PutDouble(versioned.spec.cpi_mean);
      record.PutDouble(versioned.spec.cpi_stddev);
      record.PutVarint(versioned.version);
    }
    frame_out();
  }
  return out;
}

Status HierarchicalAggregator::Restore(const std::string& checkpoint) {
  if (!HasWireMagic(checkpoint, kHierCheckpointMagic)) {
    return InvalidArgumentError("hierarchical checkpoint: missing or wrong magic");
  }
  ParsedHierCheckpoint parsed;
  const Status status = ParseHierCheckpoint(checkpoint, &parsed);
  if (!status.ok()) {
    return status;
  }
  if (!parsed.have_meta) {
    return InvalidArgumentError("hierarchical checkpoint: missing metadata record");
  }
  merger_.RestoreSnapshot(parsed.history, parsed.latest_specs);
  last_build_ = parsed.last_build;
  builds_completed_ = parsed.builds_completed;
  samples_seen_ = parsed.samples_seen;
  recent_samples_.Clear();
  dedup_watermark_ = parsed.watermark;
  for (const ParsedHierCheckpoint::DedupEntry& entry : parsed.dedup_entries) {
    recent_samples_.Insert(entry.timestamp, dedup_ids_.Intern(entry.machine),
                           dedup_ids_.Intern(entry.task));
  }
  // The restart starts a new epoch: partials the cells accumulated against
  // the pre-crash merger must not replay, exactly as a flat restore drops
  // the builder's in-progress window.
  for (CellAggregator& cell : cells_) {
    cell.DiscardWindow();
  }
  return Status::Ok();
}

}  // namespace cpi2
