// Per-machine CPI2 management agent.
//
// One Agent runs on every machine (Figure 6). It owns the whole local loop:
//   counters -> duty-cycled sampler -> CpiSamples -> outlier detection
//   against pushed specs -> antagonist correlation -> enforcement.
// Samples stream to the cluster aggregator through a callback; completed
// analyses are reported as Incidents. The agent is backend-agnostic: give
// it a simulated Machine or real perf_event/cgroupfs backends and it runs
// identically. All anomaly detection is local (no central bottleneck).

#ifndef CPI2_CORE_AGENT_H_
#define CPI2_CORE_AGENT_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cgroup/cpu_controller.h"
#include "core/antagonist_identifier.h"
#include "core/enforcement.h"
#include "core/incident.h"
#include "core/outlier_detector.h"
#include "core/params.h"
#include "core/types.h"
#include "perf/counter_source.h"
#include "perf/sampler.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/time_series.h"
#include "wire/sample_codec.h"

namespace cpi2 {

// What the agent must know about a local task to manage it.
struct TaskMeta {
  std::string task;  // container id
  std::string jobname;
  WorkloadClass workload_class = WorkloadClass::kBatch;
  JobPriority priority = JobPriority::kNonProduction;
  // Batch victims are normally not protected; a job can opt in explicitly
  // (section 5: "because it is explicitly marked as eligible").
  bool protection_opt_in = false;
  // Agent-internal: the dense id keying this task's series bookkeeping,
  // filled by Agent::AddTask. Callers registering tasks leave the default.
  uint32_t series_id = 0;
  // Agent-internal: the detector key for THIS incarnation of the task.
  // Unlike series_id (interned per name, so a recycled name maps to the same
  // id forever), detector keys are never reused across incarnations: a stale
  // ForgetTask for a dead incarnation can never clobber the outlier history
  // of a new task running under a recycled name.
  uint32_t detector_key = 0;
};

// Outcome of one attempt to deliver a sample to the collection pipeline.
enum class DeliveryResult {
  kAck,          // accepted by the aggregator; done
  kLost,         // dropped in flight (network loss); do not retry
  kUnavailable,  // pipeline unreachable; keep the sample and retry later
};

// One sealed batch of samples on the agent→aggregator wire. The agent keeps
// the encoded bytes, not the structs: a retry re-sends the very same bytes,
// and `consumed` tells the receiver how many leading samples were already
// settled (delivered or lost) by earlier attempts, so fault decisions are
// drawn for exactly the same sample sequence as per-sample delivery.
struct EncodedSampleBatch {
  std::string bytes;       // wire/sample_codec encoding, magic through CRC
  size_t sample_count = 0; // samples encoded in `bytes`
  size_t consumed = 0;     // leading samples already settled (skip on retry)
};

// What the receiver did with one delivery attempt of a batch. `delivered` +
// `lost` samples (counted from `consumed`) are settled; `retry` means the
// receiver stopped there — the next sample was *not* processed and the batch
// must be re-sent after backoff. `decode_failed` means the bytes did not
// decode (corruption); the batch is unsalvageable.
struct BatchDeliveryOutcome {
  int delivered = 0;
  int lost = 0;
  bool retry = false;
  bool decode_failed = false;
  // Windowed transports only: the batch was sent (or already is on the
  // wire) and its ack is pending — nothing settles, no backoff arms, and
  // the flush pass moves on to the next queued batch.
  bool in_flight = false;
};

// Degraded-mode counters for one agent. Every transition into (or event
// within) a degraded mode is counted here, so operators can tell a healthy
// fleet from one that is silently riding out faults.
struct AgentHealth {
  int64_t restarts = 0;                 // crash/restart cycles survived
  int64_t samples_enqueued = 0;         // samples that entered the outbox
  int64_t samples_delivered = 0;        // acked by the pipeline
  int64_t samples_lost = 0;             // dropped in flight, never retried
  int64_t delivery_retries = 0;         // kUnavailable results (backoff arms)
  int64_t outbox_overflow_drops = 0;    // oldest sample evicted, outbox full
  int64_t counter_rejects = 0;          // sanity filter discarded a window
  int64_t stale_spec_widenings = 0;     // detection ran with widened threshold
  int64_t stale_spec_suppressions = 0;  // detection suppressed: spec too old
  int64_t series_points_dropped = 0;    // out-of-order points a task series refused
  int64_t wire_decode_errors = 0;       // sample batches the receiver failed to decode
};

class Agent {
 public:
  struct Options {
    Cpi2Params params;
    std::string machine_name;
    // The machine's CPU type; stamped into every sample and used to select
    // the right spec (CPI is computed per job x platform).
    std::string platforminfo;
    // Seed for the retry-jitter stream. Only drawn from when a delivery
    // fails, so it has no effect on fault-free runs.
    uint64_t jitter_seed = 0xa9e27;
  };

  using SampleCallback = std::function<void(const CpiSample&)>;
  using IncidentCallback = std::function<void(const Incident&)>;
  // Attempts to hand one sample to the collection pipeline and reports what
  // became of it. Invoked only from FlushOutbox (single-threaded).
  using DeliveryCallback = std::function<DeliveryResult(const CpiSample&)>;
  // Attempts to deliver one encoded batch (starting at `consumed`). Invoked
  // only from FlushOutbox (single-threaded).
  using BatchDeliveryCallback = std::function<BatchDeliveryOutcome(const EncodedSampleBatch&)>;
  // Windowed variant for pipelined transports: `queue_index` is the batch's
  // position in the outbox (0 = oldest). A transport with N outstanding
  // batches answers {in_flight = true} for sent-but-unsettled batches, so
  // one flush pass walks the queue and keeps up to N batches on the wire.
  using WindowedBatchDeliveryCallback =
      std::function<BatchDeliveryOutcome(const EncodedSampleBatch&, size_t queue_index)>;

  Agent(Options options, CounterSource* source, CpuController* controller);

  // --- task lifecycle -------------------------------------------------------
  void AddTask(const TaskMeta& meta, MicroTime now);
  void RemoveTask(const std::string& task);
  bool HasTask(const std::string& task) const { return tasks_.count(task) > 0; }
  size_t task_count() const { return tasks_.size(); }
  // Every task this agent manages, keyed by container id (name order).
  // This is the membership source of truth, so callers syncing against a
  // machine can iterate it directly instead of shadow-tracking membership.
  const std::map<std::string, TaskMeta>& Tasks() const { return tasks_; }

  // Bumped by every AddTask/RemoveTask/Restart. The suspect table rebuilds
  // lazily when its built-against version falls behind this (the same idea
  // as Machine::membership_version gating the harness registry sync).
  uint64_t membership_version() const { return membership_version_; }

  // --- spec distribution (pushed from the aggregator) -----------------------
  // `now` stamps the spec's arrival time for staleness tracking; the
  // one-argument form uses the last Tick time (fine for tests and for specs
  // pushed between ticks).
  void UpdateSpec(const CpiSpec& spec, MicroTime now);
  void UpdateSpec(const CpiSpec& spec) { UpdateSpec(spec, last_tick_); }
  std::optional<CpiSpec> GetSpec(const std::string& jobname) const;
  // Arrival time of the spec for `jobname`, or nullopt if none is cached.
  std::optional<MicroTime> SpecReceivedAt(const std::string& jobname) const;

  // --- main loop -------------------------------------------------------------
  // Drives sampling, detection and cap expiry. Call once per second.
  void Tick(MicroTime now);

  // Simulates the agent process crashing and coming back: every piece of
  // in-memory state — spec cache, detector history, CPI/usage series, task
  // registry, sampler schedule, outbox, cap bookkeeping — is gone. Caps
  // already applied to the CPU controller survive in the kernel; callers
  // model startup reconciliation by clearing them (see
  // ClusterHarness::ReconcileCapsAfterRestart).
  void Restart(MicroTime now);

  void SetSampleCallback(SampleCallback callback) { sample_callback_ = std::move(callback); }
  void SetIncidentCallback(IncidentCallback callback) {
    incident_callback_ = std::move(callback);
  }
  // Installing a delivery callback switches the agent from fire-and-forget
  // sample reporting to the outbox path: samples queue in a bounded outbox
  // and FlushOutbox attempts delivery with retry + exponential backoff +
  // jitter. The plain SampleCallback (if also set) still observes every
  // emitted sample; it is a tap, not the transport.
  void SetDeliveryCallback(DeliveryCallback callback) {
    delivery_callback_ = std::move(callback);
  }
  // The batched transport: samples are dictionary-encoded into
  // EncodedSampleBatches as they are emitted, sealed by the flush policy
  // (params.wire_batch_max_samples / wire_batch_max_age), and delivered
  // batch-at-a-time with the same retry/backoff/jitter machinery as the
  // per-sample path. At most one of the two delivery callbacks should be
  // installed; the batch callback wins when both are.
  void SetBatchDeliveryCallback(BatchDeliveryCallback callback) {
    batch_delivery_callback_ = std::move(callback);
  }
  // Pipelined transport: like SetBatchDeliveryCallback, but the flush pass
  // walks the whole outbox, skipping over batches the transport reports as
  // in flight — up to the transport's window of batches ride the wire
  // concurrently instead of one per ack round-trip.
  void SetWindowedBatchDeliveryCallback(WindowedBatchDeliveryCallback callback) {
    windowed_batch_delivery_callback_ = std::move(callback);
    // Batched mode is keyed off batch_delivery_callback_ everywhere else;
    // install a front-only adapter so mode checks keep working.
    batch_delivery_callback_ = [this](const EncodedSampleBatch& batch) {
      return windowed_batch_delivery_callback_(batch, 0);
    };
  }

  // Hands one externally produced sample straight to the delivery outbox,
  // bypassing the counter-sampling path. This is the daemon ingestion hook:
  // cpi2-agentd feeds samples here and the full outbox machinery — bounded
  // queue, overflow eviction, batch sealing, retry/backoff — applies
  // unchanged. Batch sealing happens on capacity here and on age/force in
  // FlushOutbox, so offered samples are on the wire after the next flush.
  // Requires a delivery callback; without one the sample is dropped (there
  // is no transport to queue for).
  void OfferSample(const CpiSample& sample);

  // Attempts to deliver queued samples in FIFO order. Stops at the first
  // unavailable/retry result and backs off exponentially (with jitter)
  // before the next attempt. Call from a single thread (the harness's merge
  // phase).
  void FlushOutbox(MicroTime now);
  // Samples currently queued for delivery, whichever transport is active
  // (in batch mode: unsettled samples across sealed batches + the open one).
  size_t outbox_size() const;

  EnforcementPolicy& enforcement() { return enforcement_; }
  const AgentHealth& health() const { return health_; }

  // --- diagnostics -----------------------------------------------------------
  int64_t samples_processed() const { return samples_processed_; }
  int64_t outliers_flagged() const { return outliers_flagged_; }
  int64_t anomalies_detected() const { return anomalies_detected_; }
  int64_t incidents_reported() const { return incidents_reported_; }

  // Recent CPU-usage series of a task (for tests and forensics).
  const TimeSeries* UsageSeries(const std::string& task) const;
  const TimeSeries* CpiSeries(const std::string& task) const;

 private:
  struct TaskSeries {
    TimeSeries cpi;
    TimeSeries usage;
  };

  // A cached spec plus when it arrived, for staleness policy.
  struct SpecEntry {
    CpiSpec spec;
    MicroTime received_at = 0;
  };

  // Sampler callback: one completed counting window for `container`.
  void OnWindow(const std::string& container, const CounterDelta& delta);

  // True when the window's deltas are physically impossible (counter reset,
  // garbage values): such windows must never reach detection.
  bool RejectedBySanityFilter(const CounterDelta& delta) const;

  // Runs the anomaly -> identification -> enforcement chain for a victim.
  void HandleAnomaly(const TaskMeta& victim, const CpiSample& sample, double threshold,
                     const CpiSpec& spec);

  // Brings the persistent suspect table back in sync with tasks_ after a
  // membership change. One pointer-gathering walk; no string copies.
  void RebuildSuspectTableIfStale();

  Options options_;
  CpiSampler sampler_;
  OutlierDetector detector_;
  AntagonistIdentifier identifier_;
  EnforcementPolicy enforcement_;

  std::map<std::string, TaskMeta> tasks_;
  // Task names intern to dense ids once (at AddTask); the per-task series
  // live in an integer-keyed map, so the per-window and per-analysis lookups
  // never walk string comparisons. Ids are process-lifetime stable: the
  // interner deliberately survives Restart() so a task re-registered after a
  // crash reuses its id.
  StringInterner task_ids_;
  std::unordered_map<uint32_t, TaskSeries> series_;
  // Specs for this machine's platform, keyed by jobname.
  std::map<std::string, SpecEntry> specs_;

  // Persistent suspect table (DESIGN.md §17): one name-sorted row per task,
  // pointing into tasks_ keys/metadata (std::map nodes are stable) and
  // series_ values (unordered_map values are stable). Rebuilt lazily — only
  // when an anomaly fires after membership changed — and reused across every
  // victim of an anomaly storm. ranked_scratch_ is the reusable batched
  // analysis output.
  std::vector<AntagonistIdentifier::SuspectRow> suspect_rows_;
  uint64_t membership_version_ = 0;
  uint64_t suspect_rows_version_ = ~0ull;  // stale until the first rebuild
  std::vector<AntagonistIdentifier::RankedRef> ranked_scratch_;
  // Next per-incarnation detector key (see TaskMeta::detector_key). Never
  // reused and deliberately NOT reset by Restart, mirroring task_ids_.
  uint32_t next_detector_key_ = 0;

  // Queues `sample` for delivery on whichever transport is installed,
  // evicting the oldest queued sample when the outbox is at capacity.
  void EnqueueSample(const CpiSample& sample);
  // Seals the open batch into batch_outbox_ if the flush policy says so
  // (always when wire_batch_max_age == 0, else once the batch is old
  // enough). `force` seals regardless of age (capacity-triggered seals).
  void MaybeSealPendingBatch(MicroTime now, bool force);
  // Arms the retry backoff after a failed delivery attempt (shared by both
  // transports; draws jitter exactly once).
  void ArmRetryBackoff(MicroTime now);
  void FlushOutboxPerSample(MicroTime now);
  void FlushOutboxBatched(MicroTime now);

  SampleCallback sample_callback_;
  IncidentCallback incident_callback_;
  DeliveryCallback delivery_callback_;
  BatchDeliveryCallback batch_delivery_callback_;
  WindowedBatchDeliveryCallback windowed_batch_delivery_callback_;

  // Samples awaiting delivery (FIFO, bounded by sample_outbox_capacity).
  std::deque<CpiSample> outbox_;
  MicroTime outbox_retry_at_ = 0;  // no attempts before this time
  int outbox_attempts_ = 0;        // consecutive failed attempts (backoff)
  Rng jitter_rng_;

  // Batched-transport state: sealed batches awaiting delivery plus the open
  // batch being encoded. pending_consumed_ counts open-batch samples already
  // evicted by capacity pressure (the seal carries it into the batch).
  std::deque<EncodedSampleBatch> batch_outbox_;
  SampleBatchEncoder batch_encoder_;
  size_t pending_count_ = 0;
  size_t pending_consumed_ = 0;
  MicroTime pending_opened_at_ = 0;
  // Running count of unsettled queued samples across batch_outbox_ and the
  // open batch — outbox_size() in O(1). The summation it replaces was two
  // deque walks per offered sample (capacity check + caller feed loops).
  size_t queued_samples_ = 0;

  MicroTime last_tick_ = 0;
  AgentHealth health_;

  int64_t samples_processed_ = 0;
  int64_t outliers_flagged_ = 0;
  int64_t anomalies_detected_ = 0;
  int64_t incidents_reported_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_AGENT_H_
