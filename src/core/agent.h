// Per-machine CPI2 management agent.
//
// One Agent runs on every machine (Figure 6). It owns the whole local loop:
//   counters -> duty-cycled sampler -> CpiSamples -> outlier detection
//   against pushed specs -> antagonist correlation -> enforcement.
// Samples stream to the cluster aggregator through a callback; completed
// analyses are reported as Incidents. The agent is backend-agnostic: give
// it a simulated Machine or real perf_event/cgroupfs backends and it runs
// identically. All anomaly detection is local (no central bottleneck).

#ifndef CPI2_CORE_AGENT_H_
#define CPI2_CORE_AGENT_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cgroup/cpu_controller.h"
#include "core/antagonist_identifier.h"
#include "core/enforcement.h"
#include "core/incident.h"
#include "core/outlier_detector.h"
#include "core/params.h"
#include "core/types.h"
#include "perf/counter_source.h"
#include "perf/sampler.h"
#include "util/time_series.h"

namespace cpi2 {

// What the agent must know about a local task to manage it.
struct TaskMeta {
  std::string task;  // container id
  std::string jobname;
  WorkloadClass workload_class = WorkloadClass::kBatch;
  JobPriority priority = JobPriority::kNonProduction;
  // Batch victims are normally not protected; a job can opt in explicitly
  // (section 5: "because it is explicitly marked as eligible").
  bool protection_opt_in = false;
};

class Agent {
 public:
  struct Options {
    Cpi2Params params;
    std::string machine_name;
    // The machine's CPU type; stamped into every sample and used to select
    // the right spec (CPI is computed per job x platform).
    std::string platforminfo;
  };

  using SampleCallback = std::function<void(const CpiSample&)>;
  using IncidentCallback = std::function<void(const Incident&)>;

  Agent(Options options, CounterSource* source, CpuController* controller);

  // --- task lifecycle -------------------------------------------------------
  void AddTask(const TaskMeta& meta, MicroTime now);
  void RemoveTask(const std::string& task);
  bool HasTask(const std::string& task) const { return tasks_.count(task) > 0; }
  size_t task_count() const { return tasks_.size(); }
  // Every task this agent manages, keyed by container id (name order).
  // This is the membership source of truth, so callers syncing against a
  // machine can iterate it directly instead of shadow-tracking membership.
  const std::map<std::string, TaskMeta>& Tasks() const { return tasks_; }

  // --- spec distribution (pushed from the aggregator) -----------------------
  void UpdateSpec(const CpiSpec& spec);
  std::optional<CpiSpec> GetSpec(const std::string& jobname) const;

  // --- main loop -------------------------------------------------------------
  // Drives sampling, detection and cap expiry. Call once per second.
  void Tick(MicroTime now);

  void SetSampleCallback(SampleCallback callback) { sample_callback_ = std::move(callback); }
  void SetIncidentCallback(IncidentCallback callback) {
    incident_callback_ = std::move(callback);
  }

  EnforcementPolicy& enforcement() { return enforcement_; }

  // --- diagnostics -----------------------------------------------------------
  int64_t samples_processed() const { return samples_processed_; }
  int64_t outliers_flagged() const { return outliers_flagged_; }
  int64_t anomalies_detected() const { return anomalies_detected_; }
  int64_t incidents_reported() const { return incidents_reported_; }

  // Recent CPU-usage series of a task (for tests and forensics).
  const TimeSeries* UsageSeries(const std::string& task) const;
  const TimeSeries* CpiSeries(const std::string& task) const;

 private:
  struct TaskSeries {
    TimeSeries cpi;
    TimeSeries usage;
  };

  // Sampler callback: one completed counting window for `container`.
  void OnWindow(const std::string& container, const CounterDelta& delta);

  // Runs the anomaly -> identification -> enforcement chain for a victim.
  void HandleAnomaly(const TaskMeta& victim, const CpiSample& sample, double threshold,
                     const CpiSpec& spec);

  Options options_;
  CpiSampler sampler_;
  OutlierDetector detector_;
  AntagonistIdentifier identifier_;
  EnforcementPolicy enforcement_;

  std::map<std::string, TaskMeta> tasks_;
  std::map<std::string, TaskSeries> series_;
  // Specs for this machine's platform, keyed by jobname.
  std::map<std::string, CpiSpec> specs_;

  SampleCallback sample_callback_;
  IncidentCallback incident_callback_;

  int64_t samples_processed_ = 0;
  int64_t outliers_flagged_ = 0;
  int64_t anomalies_detected_ = 0;
  int64_t incidents_reported_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_AGENT_H_
