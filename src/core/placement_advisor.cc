#include "core/placement_advisor.h"

#include <algorithm>
#include <map>

namespace cpi2 {

std::vector<PlacementAdvisor::Advice> PlacementAdvisor::Advise(const IncidentLog& log,
                                                               MicroTime now) const {
  IncidentLog::Query query;
  if (options_.window > 0) {
    query.begin = now > options_.window ? now - options_.window : 0;
  }
  query.min_top_correlation = options_.min_correlation;

  std::map<std::pair<std::string, std::string>, Advice> pairs;
  for (const Incident* incident : log.Select(query)) {
    const Suspect& top = incident->suspects.front();
    Advice& advice = pairs[{incident->victim_job, top.jobname}];
    advice.victim_job = incident->victim_job;
    advice.antagonist_job = top.jobname;
    ++advice.incidents;
    advice.max_correlation = std::max(advice.max_correlation, top.correlation);
  }

  std::vector<Advice> out;
  for (const auto& [key, advice] : pairs) {
    if (advice.incidents >= options_.min_incidents) {
      out.push_back(advice);
    }
  }
  std::sort(out.begin(), out.end(), [](const Advice& a, const Advice& b) {
    if (a.incidents != b.incidents) {
      return a.incidents > b.incidents;
    }
    return a.max_correlation > b.max_correlation;
  });
  return out;
}

}  // namespace cpi2
