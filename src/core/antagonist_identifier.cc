#include "core/antagonist_identifier.h"

#include <algorithm>
#include <cstring>

#include "core/correlation.h"

namespace cpi2 {

namespace {

// Order-preserving integer key for descending-double sort: ascending order
// on the transformed bits is descending order on the doubles. Valid for all
// finite doubles and infinities; the caller must never feed NaN (a NaN
// correlation would already be undefined behaviour under std::sort's
// strict-weak-ordering requirement in the comparator form).
uint64_t DescendingDoubleKey(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint64_t ascending =
      (bits & 0x8000000000000000ULL) ? ~bits : bits ^ 0x8000000000000000ULL;
  return ~ascending;
}

}  // namespace

std::vector<Suspect> AntagonistIdentifier::Analyze(const TimeSeries& victim_cpi,
                                                   double cpi_threshold,
                                                   const std::vector<SuspectInput>& suspects,
                                                   MicroTime now) {
  last_analysis_ = now;
  ++analyses_run_;

  const MicroTime begin = now - params_.correlation_window;
  const MicroTime tolerance = params_.sample_period / 2;

  std::vector<Suspect> scored;
  scored.reserve(suspects.size());
  for (const SuspectInput& input : suspects) {
    if (input.usage == nullptr) {
      continue;
    }
    double correlation = 0.0;
    if (params_.legacy_correlation_path) {
      // Reference path: materialize the aligned pairs, then score them.
      // O(|victim| log |suspect|) plus a vector allocation per suspect.
      const std::vector<AlignedPair> pairs =
          AlignSeries(victim_cpi, *input.usage, begin, now + 1, tolerance);
      if (pairs.empty()) {
        continue;
      }
      correlation = AntagonistCorrelation(pairs, cpi_threshold);
    } else {
      // Fast path: merge-join alignment fused with the correlation sum.
      // O(|victim| + |suspect|) per suspect and no heap work at all —
      // bit-identical to the reference path (correlation_equivalence_test).
      size_t aligned = 0;
      correlation = FusedAntagonistCorrelation(victim_cpi, *input.usage, begin, now + 1,
                                               tolerance, cpi_threshold, &aligned);
      if (aligned == 0) {
        continue;
      }
    }
    Suspect suspect;
    suspect.task = input.task;
    suspect.jobname = input.jobname;
    suspect.workload_class = input.workload_class;
    suspect.priority = input.priority;
    suspect.correlation = correlation;
    scored.push_back(std::move(suspect));
  }
  // Highest correlation first; equal correlations order by task id so the
  // ranking (and therefore who gets capped) never depends on input order.
  std::sort(scored.begin(), scored.end(), [](const Suspect& a, const Suspect& b) {
    if (a.correlation != b.correlation) {
      return a.correlation > b.correlation;
    }
    return a.task < b.task;
  });
  return scored;
}

void AntagonistIdentifier::AnalyzeBatched(const TimeSeries& victim_cpi, double cpi_threshold,
                                          const std::vector<SuspectRow>& rows, size_t skip_row,
                                          MicroTime now, std::vector<RankedRef>* ranked) {
  last_analysis_ = now;
  ++analyses_run_;

  const MicroTime begin = now - params_.correlation_window;
  const MicroTime tolerance = params_.sample_period / 2;

  const size_t n = rows.size();
  batch_usages_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    batch_usages_[i] = i == skip_row ? nullptr : rows[i].usage;
  }
  BatchedAntagonistCorrelation(victim_cpi, batch_usages_.data(), n, begin, now + 1, tolerance,
                               cpi_threshold, &batch_scratch_);

  // Analyze's ordering: correlation descending, ties by ascending task id.
  // Rows are name-sorted, so comparing row indices IS comparing task ids —
  // the sort never touches a string. And instead of a two-field comparator,
  // each scoring suspect gets ONE branchless 96-bit key: sign-flipped
  // correlation bits (ascending integer order == descending double order)
  // over the row index (the ascending tie-break). The bit order and the
  // double order can only disagree on -0.0 vs +0.0, and the correlation
  // fold can never produce -0.0: its accumulator starts at +0.0, IEEE
  // addition of -0.0 to +0.0 yields +0.0, and exact cancellation rounds to
  // +0.0 — so key order IS Analyze's order.
  rank_keys_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (batch_usages_[i] == nullptr || batch_scratch_.aligned_pairs(i) == 0) {
      continue;  // Analyze's skip rules: no series, or no overlapping data.
    }
    rank_keys_.push_back(
        (static_cast<unsigned __int128>(DescendingDoubleKey(batch_scratch_.correlation(i)))
         << 32) |
        static_cast<uint32_t>(i));
  }
  std::sort(rank_keys_.begin(), rank_keys_.end());
  ranked->clear();
  ranked->reserve(rank_keys_.size());  // no-op at steady state: vector reused
  for (const unsigned __int128 key : rank_keys_) {
    const uint32_t row = static_cast<uint32_t>(key);
    ranked->push_back({row, batch_scratch_.correlation(row)});
  }
}

}  // namespace cpi2
