#include "core/antagonist_identifier.h"

#include <algorithm>

#include "core/correlation.h"

namespace cpi2 {

std::vector<Suspect> AntagonistIdentifier::Analyze(const TimeSeries& victim_cpi,
                                                   double cpi_threshold,
                                                   const std::vector<SuspectInput>& suspects,
                                                   MicroTime now) {
  last_analysis_ = now;
  ++analyses_run_;

  const MicroTime begin = now - params_.correlation_window;
  const MicroTime tolerance = params_.sample_period / 2;

  std::vector<Suspect> scored;
  scored.reserve(suspects.size());
  for (const SuspectInput& input : suspects) {
    if (input.usage == nullptr) {
      continue;
    }
    const std::vector<AlignedPair> pairs =
        AlignSeries(victim_cpi, *input.usage, begin, now + 1, tolerance);
    if (pairs.empty()) {
      continue;
    }
    Suspect suspect;
    suspect.task = input.task;
    suspect.jobname = input.jobname;
    suspect.workload_class = input.workload_class;
    suspect.priority = input.priority;
    suspect.correlation = AntagonistCorrelation(pairs, cpi_threshold);
    scored.push_back(suspect);
  }
  std::sort(scored.begin(), scored.end(),
            [](const Suspect& a, const Suspect& b) { return a.correlation > b.correlation; });
  return scored;
}

}  // namespace cpi2
