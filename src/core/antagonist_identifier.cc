#include "core/antagonist_identifier.h"

#include <algorithm>

#include "core/correlation.h"

namespace cpi2 {

std::vector<Suspect> AntagonistIdentifier::Analyze(const TimeSeries& victim_cpi,
                                                   double cpi_threshold,
                                                   const std::vector<SuspectInput>& suspects,
                                                   MicroTime now) {
  last_analysis_ = now;
  ++analyses_run_;

  const MicroTime begin = now - params_.correlation_window;
  const MicroTime tolerance = params_.sample_period / 2;

  std::vector<Suspect> scored;
  scored.reserve(suspects.size());
  for (const SuspectInput& input : suspects) {
    if (input.usage == nullptr) {
      continue;
    }
    double correlation = 0.0;
    if (params_.legacy_correlation_path) {
      // Reference path: materialize the aligned pairs, then score them.
      // O(|victim| log |suspect|) plus a vector allocation per suspect.
      const std::vector<AlignedPair> pairs =
          AlignSeries(victim_cpi, *input.usage, begin, now + 1, tolerance);
      if (pairs.empty()) {
        continue;
      }
      correlation = AntagonistCorrelation(pairs, cpi_threshold);
    } else {
      // Fast path: merge-join alignment fused with the correlation sum.
      // O(|victim| + |suspect|) per suspect and no heap work at all —
      // bit-identical to the reference path (correlation_equivalence_test).
      size_t aligned = 0;
      correlation = FusedAntagonistCorrelation(victim_cpi, *input.usage, begin, now + 1,
                                               tolerance, cpi_threshold, &aligned);
      if (aligned == 0) {
        continue;
      }
    }
    Suspect suspect;
    suspect.task = input.task;
    suspect.jobname = input.jobname;
    suspect.workload_class = input.workload_class;
    suspect.priority = input.priority;
    suspect.correlation = correlation;
    scored.push_back(std::move(suspect));
  }
  // Highest correlation first; equal correlations order by task id so the
  // ranking (and therefore who gets capped) never depends on input order.
  std::sort(scored.begin(), scored.end(), [](const Suspect& a, const Suspect& b) {
    if (a.correlation != b.correlation) {
      return a.correlation > b.correlation;
    }
    return a.task < b.task;
  });
  return scored;
}

}  // namespace cpi2
