// Umbrella header for the CPI2 library.
//
// CPI2 detects CPU performance interference between co-located tasks using
// cycles-per-instruction statistics, identifies the antagonist with a
// passive correlation analysis, and (optionally) throttles it with CPU
// bandwidth hard-capping. Reproduction of Zhang et al., EuroSys 2013.
//
// Typical wiring (see examples/quickstart.cpp):
//
//   cpi2::Cpi2Params params;                       // Table 2 defaults
//   cpi2::Agent agent({params, "machine-1", "xeon-2.6GHz"}, &counters, &caps);
//   agent.AddTask({"search.0", "websearch", cpi2::WorkloadClass::kLatencySensitive,
//                  cpi2::JobPriority::kProduction}, now);
//   agent.UpdateSpec(spec);                        // pushed by an Aggregator
//   agent.SetIncidentCallback([](const cpi2::Incident& i) { ... });
//   every second: agent.Tick(now);

#ifndef CPI2_CORE_CPI2_H_
#define CPI2_CORE_CPI2_H_

#include "core/adaptive_throttle.h"
#include "core/agent.h"
#include "core/aggregator.h"
#include "core/antagonist_identifier.h"
#include "core/correlation.h"
#include "core/enforcement.h"
#include "core/incident.h"
#include "core/incident_log.h"
#include "core/incident_log_io.h"
#include "core/outlier_detector.h"
#include "core/params.h"
#include "core/placement_advisor.h"
#include "core/spec_builder.h"
#include "core/spec_store.h"
#include "core/types.h"

#endif  // CPI2_CORE_CPI2_H_
