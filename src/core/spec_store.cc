#include "core/spec_store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace cpi2 {
namespace {

constexpr char kHeader[] = "cpi2-specs-v1";

// Job/platform names travel on their own tab-separated columns; forbid the
// separators rather than inventing an escaping scheme nothing needs.
bool SafeName(const std::string& name) {
  return name.find('\t') == std::string::npos && name.find('\n') == std::string::npos;
}

}  // namespace

Status SaveSpecs(const std::string& path, const std::vector<CpiSpec>& specs) {
  for (const CpiSpec& spec : specs) {
    if (!SafeName(spec.jobname) || !SafeName(spec.platforminfo)) {
      return InvalidArgumentError("spec names must not contain tabs or newlines: " +
                                  spec.jobname);
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError("open " + path + " for write: " + std::strerror(errno));
  }
  std::fprintf(file, "%s\n", kHeader);
  std::fprintf(file, "# jobname\tplatforminfo\tnum_samples\tcpu_usage_mean\tcpi_mean\tcpi_stddev\n");
  for (const CpiSpec& spec : specs) {
    std::fprintf(file, "%s\t%s\t%lld\t%.9g\t%.9g\t%.9g\n", spec.jobname.c_str(),
                 spec.platforminfo.c_str(), static_cast<long long>(spec.num_samples),
                 spec.cpu_usage_mean, spec.cpi_mean, spec.cpi_stddev);
  }
  if (std::fclose(file) != 0) {
    return InternalError("close " + path + " failed");
  }
  return Status::Ok();
}

StatusOr<std::vector<CpiSpec>> LoadSpecs(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open " + path);
  }
  std::string line;
  if (!std::getline(file, line) || line != kHeader) {
    return InvalidArgumentError(path + ": missing or wrong header (want " +
                                std::string(kHeader) + ")");
  }
  std::vector<CpiSpec> specs;
  int line_number = 1;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream in(line);
    CpiSpec spec;
    std::string samples_text;
    std::string usage_text;
    std::string mean_text;
    std::string stddev_text;
    if (!std::getline(in, spec.jobname, '\t') || !std::getline(in, spec.platforminfo, '\t') ||
        !std::getline(in, samples_text, '\t') || !std::getline(in, usage_text, '\t') ||
        !std::getline(in, mean_text, '\t') || !std::getline(in, stddev_text)) {
      return InvalidArgumentError(
          StrFormat("%s:%d: expected 6 tab-separated fields", path.c_str(), line_number));
    }
    char* end = nullptr;
    spec.num_samples = std::strtoll(samples_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return InvalidArgumentError(
          StrFormat("%s:%d: bad num_samples '%s'", path.c_str(), line_number,
                    samples_text.c_str()));
    }
    const auto parse_double = [&](const std::string& text, double* out) {
      char* text_end = nullptr;
      *out = std::strtod(text.c_str(), &text_end);
      return text_end != nullptr && *text_end == '\0' && !text.empty();
    };
    if (!parse_double(usage_text, &spec.cpu_usage_mean) ||
        !parse_double(mean_text, &spec.cpi_mean) ||
        !parse_double(stddev_text, &spec.cpi_stddev)) {
      return InvalidArgumentError(
          StrFormat("%s:%d: bad numeric field", path.c_str(), line_number));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace cpi2
