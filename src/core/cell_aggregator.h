// Two-tier hierarchical aggregation (DESIGN.md §16).
//
// The flat Aggregator ingests every machine's samples directly; that is the
// paper's design and tops out around a few thousand machines. This file is
// the warehouse-scale alternative:
//
//   machines ──► CellAggregator (one per cell)      ──► CPI2SKT1 frames
//                  fold samples into CpiSketches         (wire/sketch_codec)
//                                                            │
//   GlobalMerger ◄───────────────────────────────────────────┘
//     merge partials, keep the age-weighted MomentHistory, build the same
//     CpiSpecs the flat path builds
//
// HierarchicalAggregator is the facade the harness drives; it mirrors the
// flat Aggregator's surface (AddSample / Tick / ForceBuild / Checkpoint /
// Restore) so the two are selectable by params.flat_aggregation_path.
//
// Determinism contract, held by ParallelDeterminismTest:
//  - Tiered runs are bit-identical across any cell count and thread count:
//    cell partials are integer sketches (stats/sketch.h) whose merge is
//    exactly associative, sample dedup is global (the same code and state as
//    the flat path, so watermark pruning cannot diverge across partitions),
//    and task identity crosses the tier as a partition-invariant FNV-1a
//    hash, so spec eligibility counts distinct tasks exactly.
//  - Tiered equals flat within sketch quantization (~2^-20 relative) on
//    spec values, with the spec key set, num_samples, and dedup counts
//    exactly equal: the history-count arithmetic never touches quantized
//    values, and the merger replays SpecBuilder's decay/merge code.
//  - Crash semantics match: Restore() resumes from the checkpoint and
//    discards the cells' in-progress windows, losing exactly the samples a
//    flat restore loses.

#ifndef CPI2_CORE_CELL_AGGREGATOR_H_
#define CPI2_CORE_CELL_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/dedup_window.h"
#include "core/params.h"
#include "core/spec_builder.h"
#include "core/types.h"
#include "stats/sketch.h"
#include "util/interner.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpi2 {

// One cell's shard of the aggregation tier: folds its machines' samples
// into per-(job, platform) sketches and ships them as CPI2SKT1 frames.
// Holds no history — the window resets at every emission, and all
// age-weighting happens in the merger.
class CellAggregator {
 public:
  CellAggregator(const Cpi2Params& params, uint32_t cell_id);

  void AddSample(const CpiSample& sample);

  // Encodes the current window as a CPI2SKT1 frame appended to `*out`
  // (not cleared), then resets the window and bumps the sequence number.
  void EmitFrame(std::string* out);

  // Drops the current window without emitting — the merger restarted, so
  // partials accumulated against its pre-crash epoch must not replay.
  void DiscardWindow();

  uint32_t cell_id() const { return cell_id_; }
  uint64_t sequence() const { return sequence_; }
  size_t window_keys() const { return window_.size(); }

 private:
  using IdKey = uint64_t;  // packed (job id, platform id), as in SpecBuilder
  struct Partial {
    CpiSketch sketch;
    // One entry appended per sample (identity hash, 1) — O(1) on the ingest
    // hot path; EmitFrame sorts and collapses duplicates into the canonical
    // ascending-hash (hash, count) form the wire encoding requires anyway.
    std::vector<std::pair<uint64_t, int64_t>> task_samples;
  };

  Cpi2Params params_;
  uint32_t cell_id_;
  uint64_t sequence_ = 0;
  StringInterner names_;
  InternMemo job_memo_, platform_memo_;
  std::unordered_map<IdKey, Partial> window_;
};

// The top of the tier: merges cell partials and builds specs with exactly
// the arithmetic SpecBuilder::BuildShard uses, so the flat and tiered paths
// produce the same specs up to sketch quantization.
class GlobalMerger {
 public:
  // A spec plus the build version that produced it, for subscription
  // fan-out: a subscriber holding this version needs no redelivery.
  struct VersionedSpec {
    CpiSpec spec;
    uint64_t version = 0;
  };

  explicit GlobalMerger(const Cpi2Params& params);

  // Decodes one CPI2SKT1 frame and folds its partials into the current
  // window. Damaged partial records are skipped and counted in
  // partials_dropped(); a damaged header rejects (and counts) the frame.
  Status MergeFrame(std::string_view bytes);

  // Closes the window: decays history, merges the window's sketches, and
  // returns the eligible specs in (jobname, platforminfo) order — the flat
  // path's push order. Every returned spec is stamped with `version`.
  std::vector<CpiSpec> BuildSpecs(uint64_t version);

  std::optional<CpiSpec> GetSpec(const std::string& jobname,
                                 const std::string& platforminfo) const;
  std::optional<VersionedSpec> LatestSpec(const std::string& jobname,
                                          const std::string& platforminfo) const;

  int64_t partials_dropped() const { return partials_dropped_; }

  // --- checkpoint surface (used by HierarchicalAggregator) -----------------
  // Name-sorted snapshots, mirroring SpecBuilder's; restoring them clears
  // the in-progress window.
  std::vector<SpecBuilder::HistoryEntry> SnapshotHistory() const;
  std::vector<VersionedSpec> SnapshotLatestSpecs() const;
  void RestoreSnapshot(const std::vector<SpecBuilder::HistoryEntry>& history,
                       const std::vector<VersionedSpec>& latest_specs);

 private:
  using IdKey = uint64_t;
  static constexpr IdKey MakeKey(uint32_t job, uint32_t platform) {
    return (static_cast<IdKey>(job) << 32) | platform;
  }
  static constexpr uint32_t JobOf(IdKey key) { return static_cast<uint32_t>(key >> 32); }
  static constexpr uint32_t PlatformOf(IdKey key) { return static_cast<uint32_t>(key); }

  // SpecBuilder::MomentHistory's exact arithmetic, restated here because the
  // original is private. The decay/merge expressions must stay literally
  // identical — flat-vs-tiered num_samples equality depends on the count
  // arithmetic being the same sequence of double operations.
  struct MomentHistory {
    double count = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    double usage_mean = 0.0;

    void Decay(double weight);
    void Merge(double other_count, double other_mean, double other_m2, double other_usage);
    double Variance() const { return count > 1.0 ? m2 / (count - 1.0) : 0.0; }
  };

  struct MergedPartial {
    CpiSketch sketch;
    // Sorted ascending by hash, duplicates collapsed. Decoded partials
    // arrive in exactly that order (the codec rejects anything else), so
    // folding one in is a linear two-pointer merge, not a map op per task.
    std::vector<std::pair<uint64_t, int64_t>> task_samples;
  };

  bool Eligible(const MergedPartial& merged) const;
  bool NameOrderLess(IdKey a, IdKey b) const;
  template <typename Map>
  std::vector<IdKey> SortedKeys(const Map& map) const;

  Cpi2Params params_;
  StringInterner names_;
  std::unordered_map<IdKey, MergedPartial> window_;
  std::unordered_map<IdKey, MomentHistory> history_;
  std::unordered_map<IdKey, VersionedSpec> latest_specs_;
  std::vector<std::pair<uint64_t, int64_t>> merge_scratch_;  // reused per merge
  int64_t partials_dropped_ = 0;
};

// The facade the harness drives in tiered mode: cells + merger behind the
// flat Aggregator's surface, plus per-cell health rollups so a dead cell is
// visible instead of silently shrinking specs.
class HierarchicalAggregator {
 public:
  // Spec push-out, with the build version for subscription bookkeeping.
  using SpecCallback = std::function<void(const CpiSpec&, uint64_t version)>;

  explicit HierarchicalAggregator(const Cpi2Params& params);

  // Routes one sample to `cell` after global dedup — the same dedup code,
  // state, and counters as the flat Aggregator, which is what makes the
  // dedup outcome independent of the cell partition.
  void AddSample(size_t cell, const CpiSample& sample);

  // Same cadence contract as Aggregator::Tick: first call starts the build
  // clock, later calls ForceBuild once the update interval has elapsed.
  void Tick(MicroTime now);

  // Collects every live cell's frame (encoded in parallel on the attached
  // pool), merges them, and builds + pushes specs.
  std::vector<CpiSpec> ForceBuild(MicroTime now);

  void SetSpecCallback(SpecCallback callback) { callback_ = std::move(callback); }
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }  // borrowed

  std::optional<CpiSpec> GetSpec(const std::string& jobname,
                                 const std::string& platforminfo) const {
    return merger_.GetSpec(jobname, platforminfo);
  }
  std::optional<GlobalMerger::VersionedSpec> LatestSpec(
      const std::string& jobname, const std::string& platforminfo) const {
    return merger_.LatestSpec(jobname, platforminfo);
  }

  size_t cell_count() const { return cells_.size(); }
  GlobalMerger& merger() { return merger_; }
  int64_t builds_completed() const { return builds_completed_; }
  int64_t duplicates_dropped() const { return duplicates_dropped_; }
  int64_t samples_seen() const { return samples_seen_; }

  // Simulates a dead cell: it stops emitting frames (its window is dropped
  // at each build, as a dead cell's memory would be) until revived.
  void SetCellDown(size_t cell, bool down);

  // --- per-cell health rollups --------------------------------------------
  // Cells that contributed a frame to the most recent build.
  int64_t cells_reporting() const { return cells_reporting_; }
  // Age (at the last build) of the stalest cell's last merged frame; 0 when
  // every cell reported, grows by one build interval per build a cell
  // misses. Before any build: 0.
  MicroTime stalest_partial_age() const { return stalest_partial_age_; }
  // Partial records (or whole frames) the merger had to drop, cumulative.
  int64_t partials_dropped() const { return merger_.partials_dropped(); }

  // --- checkpoint/restore --------------------------------------------------
  // Binary framed blob (CPI2HAG1), same record vocabulary as the flat v3
  // checkpoint plus per-spec versions. Restore is all-or-nothing and — like
  // the flat path — discards all in-progress windows (merger and cells): a
  // restarted merger must not replay partials from its pre-crash epoch.
  std::string Checkpoint() const;
  Status Restore(const std::string& checkpoint);

 private:
  Cpi2Params params_;
  std::vector<CellAggregator> cells_;
  GlobalMerger merger_;
  SpecCallback callback_;
  ThreadPool* pool_ = nullptr;  // borrowed; frame encoding only
  StringInterner dedup_ids_;
  InternMemo machine_memo_;
  InternCache task_memo_;  // tasks rotate within a machine's batch
  MicroTime last_build_ = -1;
  int64_t builds_completed_ = 0;
  int64_t duplicates_dropped_ = 0;
  int64_t samples_seen_ = 0;
  DedupWindow recent_samples_;
  MicroTime dedup_watermark_ = 0;
  std::vector<bool> cell_down_;
  std::vector<MicroTime> cell_last_merge_;  // -1 until a cell first reports
  int64_t cells_reporting_ = 0;
  MicroTime stalest_partial_age_ = 0;
  std::vector<std::string> frame_scratch_;  // per-cell encode buffers, reused
};

}  // namespace cpi2

#endif  // CPI2_CORE_CELL_AGGREGATOR_H_
