#include "core/incident_log.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace cpi2 {

std::vector<const Incident*> IncidentLog::Select(const Query& query) const {
  if (legacy_scan_path_) {
    return SelectLegacy(query);
  }
  std::vector<const Incident*> out;
  std::vector<size_t> rows = index_.Select(query);
  out.reserve(rows.size());
  for (const size_t row : rows) {
    out.push_back(&incidents_[row]);
  }
  return out;
}

std::vector<const Incident*> IncidentLog::SelectLegacy(const Query& query) const {
  std::vector<const Incident*> out;
  for (const Incident& incident : incidents_) {
    if (!query.victim_job.empty() && incident.victim_job != query.victim_job) {
      continue;
    }
    if (!query.machine.empty() && incident.machine != query.machine) {
      continue;
    }
    if (query.begin != 0 && incident.timestamp < query.begin) {
      continue;
    }
    if (query.end != 0 && incident.timestamp >= query.end) {
      continue;
    }
    if (query.min_top_correlation > 0.0 &&
        (incident.suspects.empty() ||
         incident.suspects.front().correlation < query.min_top_correlation)) {
      continue;
    }
    if (query.capped_only && incident.action != IncidentAction::kHardCap) {
      continue;
    }
    out.push_back(&incident);
  }
  return out;
}

std::vector<IncidentLog::AntagonistStats> IncidentLog::Rank(std::vector<AntagonistStats> ranked,
                                                            int k) {
  std::sort(ranked.begin(), ranked.end(), [](const AntagonistStats& a, const AntagonistStats& b) {
    if (a.incidents != b.incidents) {
      return a.incidents > b.incidents;
    }
    return a.max_correlation > b.max_correlation;
  });
  if (k > 0 && static_cast<size_t>(k) < ranked.size()) {
    ranked.resize(static_cast<size_t>(k));
  }
  return ranked;
}

std::vector<IncidentLog::AntagonistStats> IncidentLog::TopAntagonists(
    const std::string& victim_job, MicroTime begin, MicroTime end, int k) const {
  if (legacy_scan_path_) {
    return TopAntagonistsLegacy(victim_job, begin, end, k);
  }
  Query query;
  query.victim_job = victim_job;
  query.begin = begin;
  query.end = end;

  // Index rows come back in log order, so the incremental mean_correlation
  // update sees correlations in the same sequence as the reference scan —
  // bit-identical accumulation.
  std::unordered_map<uint32_t, AntagonistStats> by_id;
  for (const size_t row : index_.Select(query)) {
    const ForensicsIndex::TopSuspect top = index_.Top(row);
    if (!top.has_suspect) {
      continue;
    }
    AntagonistStats& stats = by_id[top.jobname_id];
    ++stats.incidents;
    if (top.capped_for_top) {
      ++stats.times_capped;
    }
    stats.max_correlation = std::max(stats.max_correlation, top.correlation);
    stats.mean_correlation +=
        (top.correlation - stats.mean_correlation) / static_cast<double>(stats.incidents);
  }

  std::vector<AntagonistStats> ranked;
  ranked.reserve(by_id.size());
  for (auto& [id, stats] : by_id) {
    stats.jobname = index_.JobName(id);
    ranked.push_back(std::move(stats));
  }
  // The reference path feeds Rank() a std::map iteration (ascending
  // jobname); sort the same way so unstable-sort tie-breaks line up.
  std::sort(ranked.begin(), ranked.end(),
            [](const AntagonistStats& a, const AntagonistStats& b) {
              return a.jobname < b.jobname;
            });
  return Rank(std::move(ranked), k);
}

std::vector<IncidentLog::AntagonistStats> IncidentLog::TopAntagonistsLegacy(
    const std::string& victim_job, MicroTime begin, MicroTime end, int k) const {
  Query query;
  query.victim_job = victim_job;
  query.begin = begin;
  query.end = end;

  std::map<std::string, AntagonistStats> by_job;
  for (const Incident* incident : SelectLegacy(query)) {
    if (incident->suspects.empty()) {
      continue;
    }
    const Suspect& top = incident->suspects.front();
    AntagonistStats& stats = by_job[top.jobname];
    stats.jobname = top.jobname;
    ++stats.incidents;
    if (incident->action == IncidentAction::kHardCap && incident->action_target == top.task) {
      ++stats.times_capped;
    }
    stats.max_correlation = std::max(stats.max_correlation, top.correlation);
    stats.mean_correlation += (top.correlation - stats.mean_correlation) /
                              static_cast<double>(stats.incidents);
  }

  std::vector<AntagonistStats> ranked;
  ranked.reserve(by_job.size());
  for (const auto& [job, stats] : by_job) {
    ranked.push_back(stats);
  }
  return Rank(std::move(ranked), k);
}

}  // namespace cpi2
