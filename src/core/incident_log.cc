#include "core/incident_log.h"

#include <algorithm>
#include <map>

namespace cpi2 {

std::vector<const Incident*> IncidentLog::Select(const Query& query) const {
  std::vector<const Incident*> out;
  for (const Incident& incident : incidents_) {
    if (!query.victim_job.empty() && incident.victim_job != query.victim_job) {
      continue;
    }
    if (!query.machine.empty() && incident.machine != query.machine) {
      continue;
    }
    if (query.begin != 0 && incident.timestamp < query.begin) {
      continue;
    }
    if (query.end != 0 && incident.timestamp >= query.end) {
      continue;
    }
    if (query.min_top_correlation > 0.0 &&
        (incident.suspects.empty() ||
         incident.suspects.front().correlation < query.min_top_correlation)) {
      continue;
    }
    if (query.capped_only && incident.action != IncidentAction::kHardCap) {
      continue;
    }
    out.push_back(&incident);
  }
  return out;
}

std::vector<IncidentLog::AntagonistStats> IncidentLog::TopAntagonists(
    const std::string& victim_job, MicroTime begin, MicroTime end, int k) const {
  Query query;
  query.victim_job = victim_job;
  query.begin = begin;
  query.end = end;

  std::map<std::string, AntagonistStats> by_job;
  for (const Incident* incident : Select(query)) {
    if (incident->suspects.empty()) {
      continue;
    }
    const Suspect& top = incident->suspects.front();
    AntagonistStats& stats = by_job[top.jobname];
    stats.jobname = top.jobname;
    ++stats.incidents;
    if (incident->action == IncidentAction::kHardCap && incident->action_target == top.task) {
      ++stats.times_capped;
    }
    stats.max_correlation = std::max(stats.max_correlation, top.correlation);
    stats.mean_correlation += (top.correlation - stats.mean_correlation) /
                              static_cast<double>(stats.incidents);
  }

  std::vector<AntagonistStats> ranked;
  ranked.reserve(by_job.size());
  for (const auto& [job, stats] : by_job) {
    ranked.push_back(stats);
  }
  std::sort(ranked.begin(), ranked.end(), [](const AntagonistStats& a, const AntagonistStats& b) {
    if (a.incidents != b.incidents) {
      return a.incidents > b.incidents;
    }
    return a.max_correlation > b.max_correlation;
  });
  if (k > 0 && static_cast<size_t>(k) < ranked.size()) {
    ranked.resize(static_cast<size_t>(k));
  }
  return ranked;
}

}  // namespace cpi2
