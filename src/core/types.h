// Core data types of CPI2: samples, specs, and workload classification.
//
// The sample and spec layouts follow the records in section 3.1 of the
// paper verbatim (jobname, platforminfo, timestamp, cpu_usage, cpi; and the
// aggregated num_samples, cpu_usage_mean, cpi_mean, cpi_stddev).

#ifndef CPI2_CORE_TYPES_H_
#define CPI2_CORE_TYPES_H_

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace cpi2 {

// Scheduling class: enforcement prefers latency-sensitive victims over
// batch antagonists (section 5).
enum class WorkloadClass { kLatencySensitive, kBatch };

// Priority band (section 2: "production" and "non-production"; best-effort
// batch receives the harshest hard-cap).
enum class JobPriority { kProduction, kNonProduction, kBestEffort };

const char* WorkloadClassName(WorkloadClass c);
const char* JobPriorityName(JobPriority p);

// One per-task CPI measurement, collected once a minute over a 10-second
// counting window.
struct CpiSample {
  std::string jobname;
  std::string platforminfo;  // e.g. CPU type
  MicroTime timestamp = 0;   // microseconds since epoch
  double cpu_usage = 0.0;    // CPU-sec/sec over the window
  double cpi = 0.0;

  // Routing/diagnostic extensions beyond the paper's wire record: which task
  // and machine produced the sample, and the L3 miss rate observed alongside
  // (used by the Figure 15(c) analysis).
  std::string task;
  std::string machine;
  double l3_miss_per_instruction = 0.0;
};

// Aggregated per-job, per-platform CPI statistics: the "CPI spec". Acts as
// the predicted CPI distribution for normal behaviour of the job.
struct CpiSpec {
  std::string jobname;
  std::string platforminfo;
  int64_t num_samples = 0;
  double cpu_usage_mean = 0.0;
  double cpi_mean = 0.0;
  double cpi_stddev = 0.0;

  // The outlier threshold at `sigmas` standard deviations above the mean
  // (the paper flags samples beyond 2 sigma).
  double OutlierThreshold(double sigmas) const { return cpi_mean + sigmas * cpi_stddev; }
};

// Key identifying a spec: CPI is computed separately per job x CPU type.
struct JobPlatformKey {
  std::string jobname;
  std::string platforminfo;

  bool operator<(const JobPlatformKey& other) const {
    if (jobname != other.jobname) {
      return jobname < other.jobname;
    }
    return platforminfo < other.platforminfo;
  }
  bool operator==(const JobPlatformKey& other) const {
    return jobname == other.jobname && platforminfo == other.platforminfo;
  }
};

}  // namespace cpi2

#endif  // CPI2_CORE_TYPES_H_
