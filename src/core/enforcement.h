// Enforcement policy: dealing with antagonists (section 5).
//
// Policy, verbatim from the paper: latency-sensitive victims take
// precedence over batch antagonists. When the top-correlated suspect that
// clears the naming threshold is a batch task, it is CPU hard-capped — to
// 0.01 CPU-s/s for best-effort jobs, 0.1 for other batch — for 5 minutes at
// a time. If the victim stays anomalous, later analyses pick a different
// suspect (the capped one's usage, and hence correlation, collapses).
// Operators can cap/uncap manually and disable automatic mode per cluster;
// kill-and-restart ("migration") stays a manual action because it wastes
// checkpoint work.

#ifndef CPI2_CORE_ENFORCEMENT_H_
#define CPI2_CORE_ENFORCEMENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cgroup/cpu_controller.h"
#include "core/incident.h"
#include "core/params.h"

namespace cpi2 {

class EnforcementPolicy {
 public:
  // Invoked when capping a persistent offender keeps failing to relieve the
  // victim: the cluster scheduler should kill-and-restart `task` elsewhere.
  using MigrationCallback = std::function<void(const std::string& task)>;

  EnforcementPolicy(const Cpi2Params& params, CpuController* controller);

  struct Decision {
    IncidentAction action = IncidentAction::kNone;
    std::string target;
    double cap_level = 0.0;
    std::string reason;
  };

  // Decides and applies the response to one incident: the victim must be
  // eligible (latency-sensitive, or explicitly opted in), and the chosen
  // suspect must clear the correlation threshold, be batch, and not already
  // be capped.
  Decision OnIncident(WorkloadClass victim_class, bool victim_opt_in,
                      const std::vector<Suspect>& ranked_suspects, MicroTime now);
  Decision OnIncident(WorkloadClass victim_class, const std::vector<Suspect>& ranked_suspects,
                      MicroTime now) {
    return OnIncident(victim_class, /*victim_opt_in=*/false, ranked_suspects, now);
  }

  // Expires caps whose duration has elapsed. Call at least once a second.
  void Tick(MicroTime now);

  // --- operator interface -------------------------------------------------
  // Cap `task` to `cpu_sec_per_sec` for `duration` (0 = the default).
  Status ManualCap(const std::string& task, double cpu_sec_per_sec, MicroTime duration,
                   MicroTime now);
  Status ManualUncap(const std::string& task);
  // Per-cluster master switch ("turn CPI protection on or off").
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Escalation: when capping `task` has not helped after
  // recaps_before_migration incidents, the callback is invoked once and the
  // counter resets.
  void SetMigrationCallback(MigrationCallback callback) {
    migration_callback_ = std::move(callback);
  }
  int64_t migrations_requested() const { return migrations_requested_; }

  bool IsCapped(const std::string& task) const { return active_caps_.count(task) > 0; }
  size_t active_cap_count() const { return active_caps_.size(); }
  int64_t caps_applied() const { return caps_applied_; }

  // A task went away (exit/migration): forget its cap silently.
  void ForgetTask(const std::string& task) { active_caps_.erase(task); }

  // Agent restart: all in-memory cap bookkeeping is lost. Caps already
  // written to the CPU controller survive in the kernel (cgroup quotas are
  // not tied to the agent process); startup reconciliation must clear them
  // separately. The enabled/disabled switch is configuration, not state, so
  // it survives.
  void Reset() {
    active_caps_.clear();
    stuck_incidents_.clear();
  }

 private:
  struct ActiveCap {
    MicroTime expires_at = 0;
    double level = 0.0;
  };

  double CapLevelFor(JobPriority priority) const {
    return priority == JobPriority::kBestEffort ? params_.cap_best_effort : params_.cap_other;
  }

  Cpi2Params params_;
  CpuController* controller_;
  bool enabled_;
  std::map<std::string, ActiveCap> active_caps_;
  // Incidents whose best suspect was already capped, per suspect.
  std::map<std::string, int> stuck_incidents_;
  MigrationCallback migration_callback_;
  int64_t caps_applied_ = 0;
  int64_t migrations_requested_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CORE_ENFORCEMENT_H_
