#include "core/outlier_detector.h"

namespace cpi2 {

OutlierDetector::Result OutlierDetector::Observe(uint32_t key, const CpiSample& sample,
                                                 const CpiSpec& spec, double sigma_scale) {
  Result result;
  result.threshold = spec.OutlierThreshold(sigma_scale * params_.outlier_sigmas);

  // Ignore low-usage samples: CPI inflates at near-idle for reasons that
  // have nothing to do with antagonists (case 3).
  if (sample.cpu_usage < params_.min_cpu_usage) {
    result.skipped_low_usage = true;
    return result;
  }

  if (sample.cpi <= result.threshold) {
    return result;
  }
  result.outlier = true;

  if (key >= flags_.size()) {
    flags_.resize(key + 1);
    present_.resize(key + 1, 0);
  }
  if (!present_[key]) {
    present_[key] = 1;
    ++tracked_;
  }
  std::deque<MicroTime>& task_flags = flags_[key];
  task_flags.push_back(sample.timestamp);
  const MicroTime cutoff = sample.timestamp - params_.violation_window;
  while (!task_flags.empty() && task_flags.front() < cutoff) {
    task_flags.pop_front();
  }
  result.anomaly = static_cast<int>(task_flags.size()) >= params_.outlier_violations;
  return result;
}

void OutlierDetector::ForgetTask(uint32_t key) {
  if (key >= present_.size() || !present_[key]) {
    return;
  }
  flags_[key].clear();
  present_[key] = 0;
  --tracked_;
}

}  // namespace cpi2
