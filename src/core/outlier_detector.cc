#include "core/outlier_detector.h"

namespace cpi2 {

OutlierDetector::Result OutlierDetector::Observe(const std::string& task,
                                                 const CpiSample& sample, const CpiSpec& spec,
                                                 double sigma_scale) {
  Result result;
  result.threshold = spec.OutlierThreshold(sigma_scale * params_.outlier_sigmas);

  // Ignore low-usage samples: CPI inflates at near-idle for reasons that
  // have nothing to do with antagonists (case 3).
  if (sample.cpu_usage < params_.min_cpu_usage) {
    result.skipped_low_usage = true;
    return result;
  }

  if (sample.cpi <= result.threshold) {
    return result;
  }
  result.outlier = true;

  const uint32_t id = ids_.Intern(task);
  if (id >= flags_.size()) {
    flags_.resize(id + 1);
    present_.resize(id + 1, 0);
  }
  if (!present_[id]) {
    present_[id] = 1;
    ++tracked_;
  }
  std::deque<MicroTime>& task_flags = flags_[id];
  task_flags.push_back(sample.timestamp);
  const MicroTime cutoff = sample.timestamp - params_.violation_window;
  while (!task_flags.empty() && task_flags.front() < cutoff) {
    task_flags.pop_front();
  }
  result.anomaly = static_cast<int>(task_flags.size()) >= params_.outlier_violations;
  return result;
}

void OutlierDetector::ForgetTask(const std::string& task) {
  const std::optional<uint32_t> id = ids_.Find(task);
  if (!id.has_value() || *id >= present_.size() || !present_[*id]) {
    return;
  }
  flags_[*id].clear();
  present_[*id] = 0;
  --tracked_;
}

}  // namespace cpi2
