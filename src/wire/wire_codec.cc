#include "wire/wire_codec.h"

#include <array>
#include <bit>

namespace cpi2 {
namespace {

// Reflected CRC32 tables for polynomial 0xEDB88320, built once at load.
// Table 0 is the classic byte-at-a-time table; tables 1..7 extend it for
// slicing-by-8, which processes eight input bytes per step — the CRC runs
// over every encoded batch and every framed record, so it is squarely on
// the wire hot path.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      crc = (crc >> 8) ^ tables[0][crc & 0xff];
      tables[t][i] = crc;
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& CrcTables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = BuildCrcTables();
  return tables;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const auto& tables = CrcTables();
  const auto& table = tables[0];
  uint32_t crc = ~seed;
  const char* p = data.data();
  size_t n = data.size();
  // Slicing-by-8 on the aligned middle (little-endian only: the 64-bit load
  // must place the first input byte in the low CRC lanes).
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint64_t chunk;
      std::memcpy(&chunk, p, 8);
      chunk ^= crc;  // fold the running CRC into the first four bytes
      crc = tables[7][chunk & 0xff] ^ tables[6][(chunk >> 8) & 0xff] ^
            tables[5][(chunk >> 16) & 0xff] ^ tables[4][(chunk >> 24) & 0xff] ^
            tables[3][(chunk >> 32) & 0xff] ^ tables[2][(chunk >> 40) & 0xff] ^
            tables[1][(chunk >> 48) & 0xff] ^ tables[0][chunk >> 56];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; ++p, --n) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(*p)) & 0xff];
  }
  return ~crc;
}

}  // namespace cpi2
