// Binary sample-batch codec: the agent→aggregator transport encoding.
//
// A batch carries every CpiSample an agent emitted since its last flush.
// Layout (all integers varint unless noted):
//
//   magic[8] = "CPI2SMB1"
//   dict_count, then dict_count length-prefixed names
//   sample_count, then per sample:
//     job_idx, platform_idx, task_idx, machine_idx   (dictionary indices)
//     zigzag(timestamp - previous sample's timestamp)
//     fixed64 cpu_usage, fixed64 cpi, fixed64 l3_miss_per_instruction
//   fixed32 CRC32 over every preceding byte
//
// The dictionary is per batch: each distinct job/platform/task/machine name
// is written once, samples reference it by index, and a decoded sample is
// field-for-field bit-identical to the struct that was encoded (doubles
// travel as raw IEEE-754 bits, timestamps as exact integer deltas). A
// 60-sample batch from one machine typically carries ~20 names total, so
// the per-sample cost collapses to a few index varints plus 24 bytes of
// doubles — 3-4x smaller than the equivalent %.17g text.
//
// The encoder reuses every internal buffer across batches and keeps its
// name→index map across Reset() (generation-tagged), so the steady-state
// encode path allocates nothing.

#ifndef CPI2_WIRE_SAMPLE_CODEC_H_
#define CPI2_WIRE_SAMPLE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace cpi2 {

inline constexpr char kSampleBatchMagic[] = "CPI2SMB1";

class SampleBatchEncoder {
 public:
  SampleBatchEncoder() = default;

  // Appends one sample to the open batch.
  void Add(const CpiSample& sample);

  size_t sample_count() const { return count_; }

  // Seals the batch: magic + dictionary + samples + CRC, returned as one
  // contiguous buffer (owned by the encoder, valid until Reset/Add).
  const std::string& Finish();

  // Clears the open batch (buffers and map capacity are retained).
  void Reset();

 private:
  // Consecutive samples from one agent repeat the machine and platform names
  // every time and the job/task names in runs, so each of Add()'s four
  // dictionary lookups keeps a one-entry memo: one string compare replaces
  // the hash-map probe on a repeat. `hit` distinguishes an empty memo from a
  // memoized empty name.
  struct DictMemo {
    std::string name;
    uint32_t index = 0;
    uint64_t generation = 0;
    bool hit = false;
  };

  uint32_t DictIndex(const std::string& name, DictMemo& memo);

  // name -> (generation, index): entries from earlier batches stay resident
  // and are revalidated by generation, so repeat names never re-allocate.
  std::unordered_map<std::string, std::pair<uint64_t, uint32_t>> dict_ids_;
  DictMemo job_memo_, platform_memo_, task_memo_, machine_memo_;
  uint64_t generation_ = 1;
  uint32_t dict_count_ = 0;
  std::string dict_buf_;  // length-prefixed names, in first-use order
  std::string body_buf_;  // per-sample records
  std::string out_;       // assembled batch (Finish)
  size_t count_ = 0;
  MicroTime prev_timestamp_ = 0;
};

// Decodes a batch into `*out`, resized to exactly the decoded count on
// success. Existing elements (and their string capacity) are overwritten in
// place, so a caller decoding into the same scratch vector allocates only
// on growth — the steady-state decode path is allocation-free. Fails
// cleanly — never reads out of bounds — on a wrong magic, a CRC mismatch
// (flipped byte), or a truncated buffer; on failure `*out` holds
// unspecified leftovers and must not be read.
Status DecodeSampleBatch(std::string_view bytes, std::vector<CpiSample>* out);

// Reference text encoding of the same batch ("cpi2-samples-v1" header, one
// %.17g TSV row per sample). This is the storage-format baseline the wire
// benchmarks compare against, and what wiredump emits for humans.
void EncodeSampleBatchText(const std::vector<CpiSample>& samples, std::string* out);
Status DecodeSampleBatchText(std::string_view text, std::vector<CpiSample>* out);

}  // namespace cpi2

#endif  // CPI2_WIRE_SAMPLE_CODEC_H_
