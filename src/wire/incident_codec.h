// Binary incident-file codec ("v2" of the incident store; v1 is the TSV
// format in core/incident_log_io).
//
// Layout:
//
//   magic[8] = "CPI2INC2"
//   varint record_count            incidents the writer intended to persist
//   framed dict record  tag 'D'    every name in the file, written once
//   framed incident record ×N, tag 'I':
//     zigzag timestamp (absolute — records must survive a skipped neighbour)
//     machine/victim_task/victim_job/platforminfo/action_target dict indices
//     victim_class byte, action byte
//     fixed64 victim_cpi, cpi_threshold, spec_mean, spec_stddev, cap_level
//     inline note string
//     suspect_count, then per suspect: task/jobname indices, class byte,
//     priority byte, fixed64 correlation
//
// Each record carries its own CRC (see wire/framing.h), so a flipped byte
// loses exactly one incident and a torn tail loses only the records after
// the tear; `record_count` up front lets the loader say *how many* records a
// truncation swallowed. The dictionary record is the one single point of
// failure — if it is damaged the file is rejected outright, since every
// index would dereference garbage.

#ifndef CPI2_WIRE_INCIDENT_CODEC_H_
#define CPI2_WIRE_INCIDENT_CODEC_H_

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "core/incident.h"
#include "util/status.h"

namespace cpi2 {

inline constexpr char kIncidentFileMagic[] = "CPI2INC2";

// Encodes `incidents` as one binary incident file into `*out` (cleared
// first). Unlike the TSV writer this never rejects a name: there are no
// in-band separators to collide with.
void EncodeIncidentFile(const std::deque<Incident>& incidents, std::string* out);

// Per-load accounting of what could not be decoded, and why. Mirrors the
// text loader's skip-and-count contract, but with record identity.
struct IncidentDecodeStats {
  int64_t records_skipped = 0;
  // One human-readable line per skip, e.g. "record 3: bad CRC" or
  // "records 7..11: truncated tail". Bounded by the caller's patience, not
  // by us; real files have zero entries.
  std::vector<std::string> skip_reasons;
};

// Decodes a binary incident file. Damaged individual records are skipped and
// counted into `*stats` (if non-null); only a wrong magic, an unreadable
// header, or a damaged dictionary fails the whole load.
Status DecodeIncidentFile(std::string_view bytes, std::vector<Incident>* out,
                          IncidentDecodeStats* stats);

}  // namespace cpi2

#endif  // CPI2_WIRE_INCIDENT_CODEC_H_
