// Record framing shared by the binary incident log and the binary
// aggregator checkpoint.
//
// Layout of a framed file/blob:
//
//   magic[8]                      format + major version, e.g. "CPI2INC2"
//   repeated framed record:
//     varint payload_length
//     payload[payload_length]     first payload byte is a record tag
//     crc32(payload)  fixed32
//
// The CRC covers exactly the payload, so any single flipped byte inside a
// record is caught by that record alone; a truncated tail is caught because
// the declared length (or the 4 CRC bytes) runs past end-of-buffer. What a
// reader does with a bad record is its policy: the incident loader skips and
// counts, the checkpoint loader rejects the whole blob (a half-restored
// aggregator is worse than none).

#ifndef CPI2_WIRE_FRAMING_H_
#define CPI2_WIRE_FRAMING_H_

#include <string>
#include <string_view>

#include "wire/wire_codec.h"

namespace cpi2 {

// Every binary magic is exactly 8 bytes so Sniff* helpers are one memcmp.
inline constexpr size_t kWireMagicSize = 8;

// True when `data` begins with the 8-byte `magic`.
bool HasWireMagic(std::string_view data, std::string_view magic);

// Appends `magic` (must be kWireMagicSize bytes) to `out`.
void AppendWireMagic(std::string* out, std::string_view magic);

// Appends one framed record (length + payload + CRC) to `out`.
void AppendFramedRecord(std::string* out, std::string_view payload);

// Outcome of pulling one framed record off a reader.
enum class FrameResult {
  kRecord,     // *payload holds a CRC-verified record
  kEnd,        // clean end of buffer, no bytes left over
  kCorrupt,    // bad CRC: this record is damaged but framing survives
  kTruncated,  // length or CRC runs past the end: nothing after is readable
};

// Reads the next framed record from `reader`. On kRecord, `*payload` views
// the verified payload bytes. On kCorrupt the reader has consumed the
// damaged record (the caller may continue with the next one); on
// kTruncated/kEnd the reader is exhausted.
FrameResult ReadFramedRecord(WireReader& reader, std::string_view* payload);

}  // namespace cpi2

#endif  // CPI2_WIRE_FRAMING_H_
