#include "wire/incident_codec.h"

#include <unordered_map>

#include "util/string_util.h"
#include "wire/framing.h"

namespace cpi2 {
namespace {

constexpr uint8_t kDictTag = 'D';
constexpr uint8_t kIncidentTag = 'I';

// File-level dictionary builder: names are assigned indices in first-use
// order while incident payloads are being encoded, then the dict record is
// emitted before them.
class FileDict {
 public:
  uint32_t Index(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(name, static_cast<uint32_t>(names_.size()));
    if (inserted) {
      names_.push_back(&it->first);
    }
    return it->second;
  }

  void EncodeRecord(std::string* payload) const {
    WireWriter writer(payload);
    writer.PutByte(kDictTag);
    writer.PutVarint(names_.size());
    for (const std::string* name : names_) {
      writer.PutString(*name);
    }
  }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<const std::string*> names_;
};

void EncodeIncidentPayload(const Incident& incident, FileDict& dict, std::string* payload) {
  WireWriter writer(payload);
  writer.PutByte(kIncidentTag);
  writer.PutZigzag(incident.timestamp);
  writer.PutVarint(dict.Index(incident.machine));
  writer.PutVarint(dict.Index(incident.victim_task));
  writer.PutVarint(dict.Index(incident.victim_job));
  writer.PutVarint(dict.Index(incident.platforminfo));
  writer.PutVarint(dict.Index(incident.action_target));
  writer.PutByte(static_cast<uint8_t>(incident.victim_class));
  writer.PutByte(static_cast<uint8_t>(incident.action));
  writer.PutDouble(incident.victim_cpi);
  writer.PutDouble(incident.cpi_threshold);
  writer.PutDouble(incident.spec_mean);
  writer.PutDouble(incident.spec_stddev);
  writer.PutDouble(incident.cap_level);
  writer.PutString(incident.note);
  writer.PutVarint(incident.suspects.size());
  for (const Suspect& suspect : incident.suspects) {
    writer.PutVarint(dict.Index(suspect.task));
    writer.PutVarint(dict.Index(suspect.jobname));
    writer.PutByte(static_cast<uint8_t>(suspect.workload_class));
    writer.PutByte(static_cast<uint8_t>(suspect.priority));
    writer.PutDouble(suspect.correlation);
  }
}

bool DecodeIncidentPayload(std::string_view payload, const std::vector<std::string_view>& dict,
                           Incident* incident) {
  WireReader reader(payload);
  if (reader.GetByte() != kIncidentTag) {
    return false;
  }
  const size_t dict_size = dict.size();
  auto name = [&](uint64_t index, std::string* out) {
    if (index >= dict_size) {
      reader.GetSpan(payload.size());  // latch failure via overrun
      return;
    }
    out->assign(dict[static_cast<size_t>(index)]);
  };
  incident->timestamp = reader.GetZigzag();
  name(reader.GetVarint(), &incident->machine);
  name(reader.GetVarint(), &incident->victim_task);
  name(reader.GetVarint(), &incident->victim_job);
  name(reader.GetVarint(), &incident->platforminfo);
  name(reader.GetVarint(), &incident->action_target);
  incident->victim_class = static_cast<WorkloadClass>(reader.GetByte());
  incident->action = static_cast<IncidentAction>(reader.GetByte());
  incident->victim_cpi = reader.GetDouble();
  incident->cpi_threshold = reader.GetDouble();
  incident->spec_mean = reader.GetDouble();
  incident->spec_stddev = reader.GetDouble();
  incident->cap_level = reader.GetDouble();
  const std::string_view note = reader.GetString();
  incident->note.assign(note.data(), note.size());
  const uint64_t suspect_count = reader.GetVarint();
  if (reader.failed() || suspect_count > reader.remaining()) {
    return false;
  }
  incident->suspects.clear();
  incident->suspects.reserve(static_cast<size_t>(suspect_count));
  for (uint64_t i = 0; i < suspect_count; ++i) {
    Suspect suspect;
    name(reader.GetVarint(), &suspect.task);
    name(reader.GetVarint(), &suspect.jobname);
    suspect.workload_class = static_cast<WorkloadClass>(reader.GetByte());
    suspect.priority = static_cast<JobPriority>(reader.GetByte());
    suspect.correlation = reader.GetDouble();
    incident->suspects.push_back(std::move(suspect));
  }
  return !reader.failed() && reader.remaining() == 0;
}

}  // namespace

void EncodeIncidentFile(const std::deque<Incident>& incidents, std::string* out) {
  out->clear();
  FileDict dict;
  // Encode incident payloads first so the dictionary is complete, then
  // assemble dict-before-incidents (the loader needs names up front).
  std::vector<std::string> payloads;
  payloads.reserve(incidents.size());
  for (const Incident& incident : incidents) {
    EncodeIncidentPayload(incident, dict, &payloads.emplace_back());
  }
  AppendWireMagic(out, kIncidentFileMagic);
  WireWriter writer(out);
  writer.PutVarint(incidents.size());
  std::string dict_payload;
  dict.EncodeRecord(&dict_payload);
  AppendFramedRecord(out, dict_payload);
  for (const std::string& payload : payloads) {
    AppendFramedRecord(out, payload);
  }
}

Status DecodeIncidentFile(std::string_view bytes, std::vector<Incident>* out,
                          IncidentDecodeStats* stats) {
  out->clear();
  if (!HasWireMagic(bytes, kIncidentFileMagic)) {
    return InvalidArgumentError("incident file: bad magic");
  }
  WireReader reader(bytes.substr(kWireMagicSize));
  const uint64_t record_count = reader.GetVarint();
  if (reader.failed()) {
    return InvalidArgumentError("incident file: unreadable record count");
  }

  std::string_view payload;
  FrameResult frame = ReadFramedRecord(reader, &payload);
  if (frame != FrameResult::kRecord || payload.empty() || payload[0] != kDictTag) {
    return InvalidArgumentError("incident file: missing or damaged dictionary record");
  }
  WireReader dict_reader(payload.substr(1));
  const uint64_t name_count = dict_reader.GetVarint();
  if (dict_reader.failed() || name_count > dict_reader.remaining()) {
    return InvalidArgumentError("incident file: damaged dictionary record");
  }
  std::vector<std::string_view> dict(static_cast<size_t>(name_count));
  for (auto& entry : dict) {
    entry = dict_reader.GetString();
  }
  if (dict_reader.failed()) {
    return InvalidArgumentError("incident file: damaged dictionary record");
  }

  auto skip = [&](std::string reason) {
    if (stats != nullptr) {
      ++stats->records_skipped;
      stats->skip_reasons.push_back(std::move(reason));
    }
  };

  out->reserve(static_cast<size_t>(record_count));
  uint64_t record_index = 0;
  while (record_index < record_count) {
    frame = ReadFramedRecord(reader, &payload);
    if (frame == FrameResult::kEnd || frame == FrameResult::kTruncated) {
      // The writer promised `record_count` records; everything from here to
      // the promised end was lost to a torn tail.
      const uint64_t lost = record_count - record_index;
      if (stats != nullptr) {
        stats->records_skipped += static_cast<int64_t>(lost);
        stats->skip_reasons.push_back(
            lost == 1 ? StrFormat("record %llu: truncated tail",
                                  static_cast<unsigned long long>(record_index))
                      : StrFormat("records %llu..%llu: truncated tail",
                                  static_cast<unsigned long long>(record_index),
                                  static_cast<unsigned long long>(record_count - 1)));
      }
      return Status::Ok();
    }
    if (frame == FrameResult::kCorrupt) {
      skip(StrFormat("record %llu: bad CRC", static_cast<unsigned long long>(record_index)));
      ++record_index;
      continue;
    }
    Incident incident;
    if (!DecodeIncidentPayload(payload, dict, &incident)) {
      skip(StrFormat("record %llu: malformed incident payload",
                     static_cast<unsigned long long>(record_index)));
      ++record_index;
      continue;
    }
    out->push_back(std::move(incident));
    ++record_index;
  }
  return Status::Ok();
}

}  // namespace cpi2
