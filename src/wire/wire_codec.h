// Wire-format primitives for the CPI2 data plane.
//
// Every durable or transported artifact — sample batches on the
// agent→aggregator path, the binary incident log, the binary aggregator
// checkpoint — is built from the same four ingredients:
//
//   - LEB128 varints for counts, dictionary indices, and lengths,
//   - zigzag varints for signed values (timestamp deltas),
//   - little-endian fixed64 for raw IEEE-754 double bits (samples must
//     decode bit-identical to the structs that were sent; text round-trips
//     need 17 significant digits to promise the same thing, at 3x the size),
//   - CRC32 (IEEE reflected polynomial) so a torn tail or flipped byte is
//     *detected* instead of silently mis-parsed.
//
// WireWriter appends to a caller-owned std::string, so encoders reuse one
// buffer across batches and the steady-state encode path performs no
// allocations. WireReader is a bounds-checked cursor over a string_view: any
// overrun or malformed varint latches a failure flag that callers check once
// at the end instead of after every field.

#ifndef CPI2_WIRE_WIRE_CODEC_H_
#define CPI2_WIRE_WIRE_CODEC_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace cpi2 {

// CRC32 (IEEE 802.3, reflected, init/final xor 0xffffffff) of `data`,
// optionally chained from a previous value.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// Zigzag mapping: small-magnitude signed values become small varints.
inline uint64_t ZigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
}
inline int64_t ZigzagDecode(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

// Appends encoded fields to a caller-owned buffer (never cleared here, so
// one buffer serves header + body + trailer).
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutByte(uint8_t value) { out_->push_back(static_cast<char>(value)); }

  void PutVarint(uint64_t value) {
    while (value >= 0x80) {
      out_->push_back(static_cast<char>((value & 0x7f) | 0x80));
      value >>= 7;
    }
    out_->push_back(static_cast<char>(value));
  }

  void PutZigzag(int64_t value) { PutVarint(ZigzagEncode(value)); }

  // Raw little-endian 32-bit word (CRC trailers).
  void PutFixed32(uint32_t value) {
    char bytes[4];
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(bytes, &value, 4);
    } else {
      for (int i = 0; i < 4; ++i) {
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
      }
    }
    out_->append(bytes, 4);
  }

  // Raw IEEE-754 double bits, little-endian: decodes bit-identical.
  void PutDouble(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    char bytes[8];
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(bytes, &bits, 8);
    } else {
      for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<char>((bits >> (8 * i)) & 0xff);
      }
    }
    out_->append(bytes, 8);
  }

  // Length-prefixed byte string.
  void PutString(std::string_view value) {
    PutVarint(value.size());
    out_->append(value.data(), value.size());
  }

  std::string* buffer() { return out_; }

 private:
  std::string* out_;
};

// Bounds-checked cursor over an encoded buffer. All getters return a benign
// zero/empty value once `failed()` latches; decode loops therefore check the
// flag at natural boundaries (per record, per batch) rather than per field.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool failed() const { return failed_; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  uint8_t GetByte() {
    if (pos_ >= data_.size()) {
      failed_ = true;
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint64_t GetVarint() {
    // One-byte fast path: dictionary indices and small deltas dominate.
    if (pos_ < data_.size()) {
      const uint8_t first = static_cast<uint8_t>(data_[pos_]);
      if ((first & 0x80) == 0) {
        ++pos_;
        return first;
      }
    }
    uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size() || shift > 63) {
        failed_ = true;
        return 0;
      }
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return value;
      }
      shift += 7;
    }
  }

  int64_t GetZigzag() { return ZigzagDecode(GetVarint()); }

  uint32_t GetFixed32() {
    if (remaining() < 4) {
      failed_ = true;
      return 0;
    }
    uint32_t value = 0;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&value, data_.data() + pos_, 4);
    } else {
      for (int i = 0; i < 4; ++i) {
        value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
      }
    }
    pos_ += 4;
    return value;
  }

  double GetDouble() {
    if (remaining() < 8) {
      failed_ = true;
      return 0.0;
    }
    uint64_t bits = 0;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&bits, data_.data() + pos_, 8);
    } else {
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
      }
    }
    pos_ += 8;
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  // A length-prefixed byte string; the view aliases the underlying buffer.
  std::string_view GetString() {
    const uint64_t length = GetVarint();
    if (failed_ || length > remaining()) {
      failed_ = true;
      return {};
    }
    const std::string_view value = data_.substr(pos_, length);
    pos_ += length;
    return value;
  }

  // A raw byte span without a length prefix (framed-record payloads).
  std::string_view GetSpan(size_t length) {
    if (length > remaining()) {
      failed_ = true;
      return {};
    }
    const std::string_view value = data_.substr(pos_, length);
    pos_ += length;
    return value;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace cpi2

#endif  // CPI2_WIRE_WIRE_CODEC_H_
