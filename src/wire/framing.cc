#include "wire/framing.h"

#include <cassert>

namespace cpi2 {

bool HasWireMagic(std::string_view data, std::string_view magic) {
  assert(magic.size() == kWireMagicSize);
  return data.size() >= magic.size() && data.substr(0, magic.size()) == magic;
}

void AppendWireMagic(std::string* out, std::string_view magic) {
  assert(magic.size() == kWireMagicSize);
  out->append(magic.data(), magic.size());
}

void AppendFramedRecord(std::string* out, std::string_view payload) {
  WireWriter writer(out);
  writer.PutVarint(payload.size());
  out->append(payload.data(), payload.size());
  writer.PutFixed32(Crc32(payload));
}

FrameResult ReadFramedRecord(WireReader& reader, std::string_view* payload) {
  if (reader.remaining() == 0) {
    return FrameResult::kEnd;
  }
  const uint64_t length = reader.GetVarint();
  if (reader.failed() || length + 4 > reader.remaining()) {
    // The length itself is unreadable or promises more bytes than exist:
    // either a torn tail or a corrupted length byte. Framing is lost.
    return FrameResult::kTruncated;
  }
  const std::string_view body = reader.GetSpan(static_cast<size_t>(length));
  const uint32_t stored_crc = reader.GetFixed32();
  if (reader.failed()) {
    return FrameResult::kTruncated;
  }
  if (Crc32(body) != stored_crc) {
    return FrameResult::kCorrupt;
  }
  *payload = body;
  return FrameResult::kRecord;
}

}  // namespace cpi2
