#include "wire/sample_codec.h"

#include <cstdio>
#include <cstring>

#include "util/string_util.h"
#include "wire/framing.h"

namespace cpi2 {

namespace {

constexpr char kSampleTextHeader[] = "cpi2-samples-v1";

// Assigns `view` into `*out`, reusing the string's existing capacity.
void AssignView(std::string_view view, std::string* out) {
  out->assign(view.data(), view.size());
}

}  // namespace

uint32_t SampleBatchEncoder::DictIndex(const std::string& name, DictMemo& memo) {
  if (memo.hit && memo.generation == generation_ && memo.name == name) {
    return memo.index;
  }
  auto [it, inserted] = dict_ids_.try_emplace(name, generation_, dict_count_);
  uint32_t index;
  if (!inserted && it->second.first == generation_) {
    index = it->second.second;
  } else {
    // First use of this name in the current batch: append it to the
    // dictionary section and (re)stamp the resident map entry.
    it->second = {generation_, dict_count_};
    WireWriter writer(&dict_buf_);
    writer.PutString(name);
    index = dict_count_++;
  }
  memo.name = name;  // capacity is retained across assignments
  memo.index = index;
  memo.generation = generation_;
  memo.hit = true;
  return index;
}

void SampleBatchEncoder::Add(const CpiSample& sample) {
  WireWriter writer(&body_buf_);
  writer.PutVarint(DictIndex(sample.jobname, job_memo_));
  writer.PutVarint(DictIndex(sample.platforminfo, platform_memo_));
  writer.PutVarint(DictIndex(sample.task, task_memo_));
  writer.PutVarint(DictIndex(sample.machine, machine_memo_));
  writer.PutZigzag(sample.timestamp - prev_timestamp_);
  prev_timestamp_ = sample.timestamp;
  writer.PutDouble(sample.cpu_usage);
  writer.PutDouble(sample.cpi);
  writer.PutDouble(sample.l3_miss_per_instruction);
  ++count_;
}

const std::string& SampleBatchEncoder::Finish() {
  out_.clear();
  AppendWireMagic(&out_, kSampleBatchMagic);
  WireWriter writer(&out_);
  writer.PutVarint(dict_count_);
  out_.append(dict_buf_);
  writer.PutVarint(count_);
  out_.append(body_buf_);
  writer.PutFixed32(Crc32(out_));
  return out_;
}

void SampleBatchEncoder::Reset() {
  // Bumping the generation invalidates every resident dictionary entry
  // without deallocating the map nodes.
  ++generation_;
  dict_count_ = 0;
  dict_buf_.clear();
  body_buf_.clear();
  count_ = 0;
  prev_timestamp_ = 0;
}

Status DecodeSampleBatch(std::string_view bytes, std::vector<CpiSample>* out) {
  // No clear(): stale elements past sample_count are trimmed by the final
  // resize, and keeping the existing elements alive is what lets AssignView
  // reuse their string capacity on the hot path.
  if (!HasWireMagic(bytes, kSampleBatchMagic)) {
    return InvalidArgumentError("sample batch: bad magic");
  }
  if (bytes.size() < kWireMagicSize + 4) {
    return InvalidArgumentError("sample batch: truncated");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  WireReader crc_reader(bytes.substr(bytes.size() - 4));
  if (Crc32(body) != crc_reader.GetFixed32()) {
    return InvalidArgumentError("sample batch: CRC mismatch");
  }
  WireReader reader(body.substr(kWireMagicSize));

  const uint64_t dict_count = reader.GetVarint();
  if (reader.failed() || dict_count > reader.remaining()) {
    return InvalidArgumentError("sample batch: bad dictionary count");
  }
  // Reused across calls: dictionary views are only live within this decode,
  // and re-growing the vector per batch was a steady-state allocation.
  static thread_local std::vector<std::string_view> dict;
  dict.assign(static_cast<size_t>(dict_count), std::string_view());
  for (auto& entry : dict) {
    entry = reader.GetString();
  }
  // A sample record is at least 29 bytes (4 one-byte indices, a one-byte
  // delta, three fixed64 doubles), which bounds a sane count.
  const uint64_t sample_count = reader.GetVarint();
  if (reader.failed() || sample_count > reader.remaining() / 29) {
    return InvalidArgumentError("sample batch: bad sample count");
  }

  // Reuse previously-decoded elements (and their string capacity) in place.
  if (out->size() < sample_count) {
    out->resize(static_cast<size_t>(sample_count));
  }
  MicroTime prev_timestamp = 0;
  for (uint64_t i = 0; i < sample_count; ++i) {
    CpiSample& sample = (*out)[static_cast<size_t>(i)];
    const uint64_t job_idx = reader.GetVarint();
    const uint64_t platform_idx = reader.GetVarint();
    const uint64_t task_idx = reader.GetVarint();
    const uint64_t machine_idx = reader.GetVarint();
    const int64_t ts_delta = reader.GetZigzag();
    sample.cpu_usage = reader.GetDouble();
    sample.cpi = reader.GetDouble();
    sample.l3_miss_per_instruction = reader.GetDouble();
    if (reader.failed() || job_idx >= dict_count || platform_idx >= dict_count ||
        task_idx >= dict_count || machine_idx >= dict_count) {
      return InvalidArgumentError(
          StrFormat("sample batch: malformed sample record %llu",
                    static_cast<unsigned long long>(i)));
    }
    AssignView(dict[static_cast<size_t>(job_idx)], &sample.jobname);
    AssignView(dict[static_cast<size_t>(platform_idx)], &sample.platforminfo);
    AssignView(dict[static_cast<size_t>(task_idx)], &sample.task);
    AssignView(dict[static_cast<size_t>(machine_idx)], &sample.machine);
    sample.timestamp = prev_timestamp + ts_delta;
    prev_timestamp = sample.timestamp;
  }
  if (reader.remaining() != 0) {
    return InvalidArgumentError("sample batch: trailing bytes after samples");
  }
  out->resize(static_cast<size_t>(sample_count));
  return Status::Ok();
}

void EncodeSampleBatchText(const std::vector<CpiSample>& samples, std::string* out) {
  out->clear();
  out->append(kSampleTextHeader);
  out->push_back('\n');
  char line[512];
  for (const CpiSample& s : samples) {
    const int n = std::snprintf(
        line, sizeof(line), "%s\t%s\t%lld\t%.17g\t%.17g\t%s\t%s\t%.17g\n",
        s.jobname.c_str(), s.platforminfo.c_str(),
        static_cast<long long>(s.timestamp), s.cpu_usage, s.cpi, s.task.c_str(),
        s.machine.c_str(), s.l3_miss_per_instruction);
    if (n > 0 && static_cast<size_t>(n) < sizeof(line)) {
      out->append(line, static_cast<size_t>(n));
    } else {
      // Names too long for the stack buffer: fall back to piecewise append.
      out->append(s.jobname).push_back('\t');
      out->append(s.platforminfo).push_back('\t');
      out->append(StrFormat("%lld\t%.17g\t%.17g\t", static_cast<long long>(s.timestamp),
                            s.cpu_usage, s.cpi));
      out->append(s.task).push_back('\t');
      out->append(s.machine).push_back('\t');
      out->append(StrFormat("%.17g\n", s.l3_miss_per_instruction));
    }
  }
}

Status DecodeSampleBatchText(std::string_view text, std::vector<CpiSample>* out) {
  out->clear();
  size_t pos = 0;
  auto next_line = [&](std::string_view* line) {
    if (pos >= text.size()) {
      return false;
    }
    const size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      *line = text.substr(pos);
      pos = text.size();
    } else {
      *line = text.substr(pos, eol - pos);
      pos = eol + 1;
    }
    return true;
  };

  std::string_view header;
  if (!next_line(&header) || header != kSampleTextHeader) {
    return InvalidArgumentError("sample text: missing cpi2-samples-v1 header");
  }
  std::string_view line;
  std::string field;
  int64_t line_no = 1;
  while (next_line(&line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string_view fields[8];
    size_t field_count = 0;
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == '\t') {
        if (field_count >= 8) {
          field_count = 9;  // too many fields
          break;
        }
        fields[field_count++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    if (field_count != 8) {
      return InvalidArgumentError(
          StrFormat("sample text: line %lld has %zu fields, want 8",
                    static_cast<long long>(line_no), field_count));
    }
    CpiSample sample;
    AssignView(fields[0], &sample.jobname);
    AssignView(fields[1], &sample.platforminfo);
    AssignView(fields[5], &sample.task);
    AssignView(fields[6], &sample.machine);
    field.assign(fields[2]);
    if (!ParseInt64(field, &sample.timestamp)) {
      return InvalidArgumentError(
          StrFormat("sample text: line %lld: bad timestamp", static_cast<long long>(line_no)));
    }
    field.assign(fields[3]);
    bool ok = ParseDouble(field, &sample.cpu_usage);
    field.assign(fields[4]);
    ok = ok && ParseDouble(field, &sample.cpi);
    field.assign(fields[7]);
    ok = ok && ParseDouble(field, &sample.l3_miss_per_instruction);
    if (!ok) {
      return InvalidArgumentError(
          StrFormat("sample text: line %lld: bad numeric field", static_cast<long long>(line_no)));
    }
    out->push_back(std::move(sample));
  }
  return Status::Ok();
}

}  // namespace cpi2
