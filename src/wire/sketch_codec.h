// CPI2SKT1: the partial-spec frame a cell aggregator ships to the global
// merger (DESIGN.md §16).
//
// Layout (framing.h conventions: 8-byte magic, then framed records, each
// varint-length + payload + crc32):
//
//   magic "CPI2SKT1"
//   record 'H': cell_id varint, sequence varint, name count varint,
//               names (length-prefixed strings), partial count varint
//   record 'P' (one per job x platform partial):
//               job name-index varint, platform name-index varint,
//               sketch (see below),
//               task count varint, then per task:
//                 identity-hash varint, sample count varint
//                 (ascending hash order — the canonical encoding)
//   sketch:     count varint,
//               cpi_sum zigzag128 (lo/hi varints), cpi_sq_sum u128 (lo/hi),
//               usage_sum zigzag128, underflow varint, overflow varint,
//               bucket count varint (must equal kNumBuckets), bucket varints
//
// Task identity crosses the tier boundary as a 64-bit FNV-1a of the task
// name: the merger only needs distinct-task counts for spec eligibility,
// and a hash is partition-invariant (collisions collapse identically no
// matter how the stream was split into cells) at a fraction of the bytes.
//
// Because the encoding is a pure function of the sketch's integer state and
// the name-sorted emission order, two cells that saw the same samples for a
// key produce byte-identical 'P' payloads — the wire-level face of the
// sketch's bit-identical-merge guarantee.
//
// Decode policy mirrors the incident log: a damaged 'P' record is skipped
// and counted (the merger loses one partial, not the frame); a damaged or
// missing 'H' header rejects the frame.

#ifndef CPI2_WIRE_SKETCH_CODEC_H_
#define CPI2_WIRE_SKETCH_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/sketch.h"
#include "util/status.h"
#include "wire/wire_codec.h"

namespace cpi2 {

inline constexpr std::string_view kSketchFrameMagic = "CPI2SKT1";

// 64-bit FNV-1a of a task name: the partition-invariant task identity used
// for cross-cell distinct-task counting.
uint64_t TaskIdentityHash(std::string_view task);

struct SketchPartial {
  uint32_t job = 0;       // index into SketchFrame::names
  uint32_t platform = 0;  // index into SketchFrame::names
  CpiSketch sketch;
  // (task identity hash, sample count), ascending by hash.
  std::vector<std::pair<uint64_t, int64_t>> task_samples;
};

struct SketchFrame {
  uint32_t cell_id = 0;
  uint64_t sequence = 0;  // cell-local emission counter
  std::vector<std::string> names;
  std::vector<SketchPartial> partials;
};

struct SketchFrameDecodeStats {
  int64_t records_skipped = 0;  // damaged 'P' records dropped
};

void EncodeSketchFrame(const SketchFrame& frame, std::string* out);

// Decodes a frame; *out is cleared first. Damaged partial records are
// skipped and counted in `stats` (which may be nullptr); a bad magic or
// header fails the whole frame.
Status DecodeSketchFrame(std::string_view bytes, SketchFrame* out,
                         SketchFrameDecodeStats* stats);

// Bare sketch round-trip, used inside 'P' records and directly by the
// merge-invariance tests and golden fixtures: identical sketch state <=>
// identical bytes.
void AppendSketch(WireWriter& writer, const CpiSketch& sketch);
bool ReadSketch(WireReader& reader, CpiSketch* sketch);
void EncodeSketch(const CpiSketch& sketch, std::string* out);
Status DecodeSketch(std::string_view bytes, CpiSketch* out);

}  // namespace cpi2

#endif  // CPI2_WIRE_SKETCH_CODEC_H_
