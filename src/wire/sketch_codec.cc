#include "wire/sketch_codec.h"

#include <algorithm>

#include "wire/framing.h"

namespace cpi2 {
namespace {

constexpr uint8_t kHeaderTag = 'H';
constexpr uint8_t kPartialTag = 'P';

// Zigzag over 128 bits, same mapping as the 64-bit version in wire_codec.h.
unsigned __int128 Zigzag128Encode(__int128 value) {
  return (static_cast<unsigned __int128>(value) << 1) ^
         static_cast<unsigned __int128>(value >> 127);
}

__int128 Zigzag128Decode(unsigned __int128 value) {
  return static_cast<__int128>((value >> 1) ^ (~(value & 1) + 1));
}

// 128-bit quantities travel as two 64-bit varints, low half first: the low
// half carries all the entropy for realistic sums, so the high half is
// nearly always the one-byte varint 0.
void PutU128(WireWriter& writer, unsigned __int128 value) {
  writer.PutVarint(static_cast<uint64_t>(value));
  writer.PutVarint(static_cast<uint64_t>(value >> 64));
}

unsigned __int128 GetU128(WireReader& reader) {
  const uint64_t lo = reader.GetVarint();
  const uint64_t hi = reader.GetVarint();
  return (static_cast<unsigned __int128>(hi) << 64) | lo;
}

void EncodePartial(WireWriter& writer, const SketchPartial& partial) {
  writer.PutByte(kPartialTag);
  writer.PutVarint(partial.job);
  writer.PutVarint(partial.platform);
  AppendSketch(writer, partial.sketch);
  writer.PutVarint(partial.task_samples.size());
  for (const auto& [hash, count] : partial.task_samples) {
    writer.PutVarint(hash);
    writer.PutVarint(static_cast<uint64_t>(count));
  }
}

bool DecodePartial(std::string_view payload, size_t num_names,
                   SketchPartial* partial) {
  WireReader reader(payload);
  if (reader.GetByte() != kPartialTag) {
    return false;
  }
  const uint64_t job = reader.GetVarint();
  const uint64_t platform = reader.GetVarint();
  if (reader.failed() || job >= num_names || platform >= num_names) {
    return false;
  }
  partial->job = static_cast<uint32_t>(job);
  partial->platform = static_cast<uint32_t>(platform);
  if (!ReadSketch(reader, &partial->sketch)) {
    return false;
  }
  const uint64_t num_tasks = reader.GetVarint();
  if (reader.failed() || num_tasks > reader.remaining()) {
    return false;  // each entry is at least two bytes; cap before reserving
  }
  partial->task_samples.clear();
  partial->task_samples.reserve(num_tasks);
  uint64_t prev_hash = 0;
  for (uint64_t i = 0; i < num_tasks; ++i) {
    const uint64_t hash = reader.GetVarint();
    const uint64_t count = reader.GetVarint();
    if (i > 0 && hash <= prev_hash) {
      return false;  // canonical encoding is strictly ascending by hash
    }
    prev_hash = hash;
    partial->task_samples.emplace_back(hash, static_cast<int64_t>(count));
  }
  return !reader.failed() && reader.remaining() == 0;
}

}  // namespace

uint64_t TaskIdentityHash(std::string_view task) {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : task) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

void AppendSketch(WireWriter& writer, const CpiSketch& sketch) {
  const CpiSketch::RawState& raw = sketch.raw();
  writer.PutVarint(raw.count);
  PutU128(writer, Zigzag128Encode(raw.cpi_sum_q));
  PutU128(writer, raw.cpi_sq_sum_q);
  PutU128(writer, Zigzag128Encode(raw.usage_sum_q));
  writer.PutVarint(raw.underflow);
  writer.PutVarint(raw.overflow);
  writer.PutVarint(CpiSketch::kNumBuckets);
  for (int i = 0; i < CpiSketch::kNumBuckets; ++i) {
    writer.PutVarint(raw.buckets[static_cast<size_t>(i)]);
  }
}

bool ReadSketch(WireReader& reader, CpiSketch* sketch) {
  CpiSketch::RawState raw;
  raw.count = reader.GetVarint();
  raw.cpi_sum_q = Zigzag128Decode(GetU128(reader));
  raw.cpi_sq_sum_q = GetU128(reader);
  raw.usage_sum_q = Zigzag128Decode(GetU128(reader));
  raw.underflow = reader.GetVarint();
  raw.overflow = reader.GetVarint();
  if (reader.GetVarint() != CpiSketch::kNumBuckets || reader.failed()) {
    return false;
  }
  for (int i = 0; i < CpiSketch::kNumBuckets; ++i) {
    raw.buckets[static_cast<size_t>(i)] = reader.GetVarint();
  }
  if (reader.failed()) {
    return false;
  }
  sketch->set_raw(raw);
  return true;
}

void EncodeSketch(const CpiSketch& sketch, std::string* out) {
  WireWriter writer(out);
  AppendSketch(writer, sketch);
}

Status DecodeSketch(std::string_view bytes, CpiSketch* out) {
  WireReader reader(bytes);
  if (!ReadSketch(reader, out)) {
    return InvalidArgumentError("malformed sketch encoding");
  }
  if (reader.remaining() != 0) {
    return InvalidArgumentError("trailing bytes after sketch");
  }
  return Status::Ok();
}

void EncodeSketchFrame(const SketchFrame& frame, std::string* out) {
  AppendWireMagic(out, kSketchFrameMagic);
  std::string payload;
  {
    WireWriter writer(&payload);
    writer.PutByte(kHeaderTag);
    writer.PutVarint(frame.cell_id);
    writer.PutVarint(frame.sequence);
    writer.PutVarint(frame.names.size());
    for (const std::string& name : frame.names) {
      writer.PutString(name);
    }
    writer.PutVarint(frame.partials.size());
  }
  AppendFramedRecord(out, payload);
  for (const SketchPartial& partial : frame.partials) {
    payload.clear();
    WireWriter writer(&payload);
    EncodePartial(writer, partial);
    AppendFramedRecord(out, payload);
  }
}

Status DecodeSketchFrame(std::string_view bytes, SketchFrame* out,
                         SketchFrameDecodeStats* stats) {
  *out = SketchFrame();
  if (!HasWireMagic(bytes, kSketchFrameMagic)) {
    return InvalidArgumentError("not a CPI2SKT1 frame");
  }
  WireReader reader(bytes.substr(kWireMagicSize));
  std::string_view payload;

  // Header record: damage here loses the name dictionary, so the whole
  // frame is unusable.
  switch (ReadFramedRecord(reader, &payload)) {
    case FrameResult::kRecord:
      break;
    case FrameResult::kEnd:
      return InvalidArgumentError("CPI2SKT1 frame has no header record");
    case FrameResult::kCorrupt:
    case FrameResult::kTruncated:
      return InvalidArgumentError("CPI2SKT1 header record damaged");
  }
  uint64_t declared_partials = 0;
  {
    WireReader header(payload);
    if (header.GetByte() != kHeaderTag) {
      return InvalidArgumentError("CPI2SKT1 first record is not a header");
    }
    out->cell_id = static_cast<uint32_t>(header.GetVarint());
    out->sequence = header.GetVarint();
    const uint64_t num_names = header.GetVarint();
    if (header.failed() || num_names > header.remaining()) {
      return InvalidArgumentError("CPI2SKT1 header malformed");
    }
    out->names.reserve(num_names);
    for (uint64_t i = 0; i < num_names; ++i) {
      out->names.emplace_back(header.GetString());
    }
    declared_partials = header.GetVarint();
    if (header.failed() || header.remaining() != 0) {
      return InvalidArgumentError("CPI2SKT1 header malformed");
    }
  }

  // Partial records: skip-and-count, like the incident loader — one flipped
  // byte costs one (job, platform) partial, not the cell's whole window.
  bool done = false;
  while (!done) {
    switch (ReadFramedRecord(reader, &payload)) {
      case FrameResult::kRecord: {
        SketchPartial partial;
        if (DecodePartial(payload, out->names.size(), &partial)) {
          out->partials.push_back(std::move(partial));
        } else if (stats != nullptr) {
          ++stats->records_skipped;
        }
        break;
      }
      case FrameResult::kCorrupt:
        if (stats != nullptr) {
          ++stats->records_skipped;
        }
        break;
      case FrameResult::kTruncated:
        if (stats != nullptr) {
          stats->records_skipped +=
              static_cast<int64_t>(declared_partials) -
              static_cast<int64_t>(out->partials.size());
        }
        done = true;
        break;
      case FrameResult::kEnd:
        done = true;
        break;
    }
  }
  return Status::Ok();
}

}  // namespace cpi2
