#include "cgroup/fs_cpu_controller.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/string_util.h"

namespace cpi2 {

FsCpuController::FsCpuController(std::string cgroup_root, MicroTime period,
                                 CgroupVersion version)
    : cgroup_root_(std::move(cgroup_root)), period_(period), version_(version) {}

std::string FsCpuController::ControlPath(const std::string& container,
                                         const char* file) const {
  return cgroup_root_ + "/" + container + "/" + file;
}

Status FsCpuController::WriteControlFile(const std::string& path, const std::string& value) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    const int err = errno;
    const std::string message = "open " + path + ": " + std::strerror(err);
    return err == EACCES || err == EPERM ? PermissionDeniedError(message)
                                         : NotFoundError(message);
  }
  const size_t written = std::fwrite(value.data(), 1, value.size(), file);
  const int close_result = std::fclose(file);
  if (written != value.size() || close_result != 0) {
    return InternalError("write " + path + " failed");
  }
  return Status::Ok();
}

Status FsCpuController::SetQuota(const std::string& container, long long quota_usec) {
  const auto period = static_cast<long long>(period_);
  if (version_ == CgroupVersion::kV2) {
    const std::string value = quota_usec < 0 ? StrFormat("max %lld", period)
                                             : StrFormat("%lld %lld", quota_usec, period);
    return WriteControlFile(ControlPath(container, "cpu.max"), value);
  }
  // v1: period first so a shrinking quota is always valid against it.
  if (const Status status = WriteControlFile(ControlPath(container, "cpu.cfs_period_us"),
                                             StrFormat("%lld", period));
      !status.ok()) {
    return status;
  }
  return WriteControlFile(ControlPath(container, "cpu.cfs_quota_us"),
                          StrFormat("%lld", quota_usec < 0 ? -1LL : quota_usec));
}

Status FsCpuController::SetCap(const std::string& container, double cpu_sec_per_sec) {
  if (cpu_sec_per_sec <= 0.0) {
    return InvalidArgumentError("cap must be positive");
  }
  const auto quota = static_cast<long long>(cpu_sec_per_sec * static_cast<double>(period_));
  if (quota < 1000) {
    // The kernel rejects quotas below 1ms.
    return InvalidArgumentError(
        StrFormat("cap %.4f CPU-s/s yields quota below the 1ms kernel minimum",
                  cpu_sec_per_sec));
  }
  return SetQuota(container, quota);
}

Status FsCpuController::RemoveCap(const std::string& container) {
  return SetQuota(container, -1);
}

std::optional<double> FsCpuController::GetCapV2(const std::string& container) const {
  std::ifstream file(ControlPath(container, "cpu.max"));
  if (!file) {
    return std::nullopt;
  }
  std::string quota_str;
  long long period = 0;
  file >> quota_str >> period;
  if (!file || quota_str == "max" || period <= 0) {
    return std::nullopt;
  }
  const long long quota = std::strtoll(quota_str.c_str(), nullptr, 10);
  if (quota <= 0) {
    return std::nullopt;
  }
  return static_cast<double>(quota) / static_cast<double>(period);
}

std::optional<double> FsCpuController::GetCapV1(const std::string& container) const {
  std::ifstream quota_file(ControlPath(container, "cpu.cfs_quota_us"));
  std::ifstream period_file(ControlPath(container, "cpu.cfs_period_us"));
  long long quota = 0;
  long long period = 0;
  if (!(quota_file >> quota) || !(period_file >> period) || quota <= 0 || period <= 0) {
    return std::nullopt;
  }
  return static_cast<double>(quota) / static_cast<double>(period);
}

std::optional<double> FsCpuController::GetCap(const std::string& container) const {
  return version_ == CgroupVersion::kV2 ? GetCapV2(container) : GetCapV1(container);
}

}  // namespace cpi2
