// cgroup filesystem backend for CPU hard-capping (v2 and v1).
//
// Translates a cap of C CPU-sec/sec into CFS bandwidth-controller settings
// with the paper's 250 ms period (Turner et al., "CPU bandwidth control for
// CFS"): cgroup v2 writes "<quota_usec> <period_usec>" to `cpu.max`; the
// 2011-era v1 hierarchy the paper ran on writes `cpu.cfs_quota_us` and
// `cpu.cfs_period_us` separately.

#ifndef CPI2_CGROUP_FS_CPU_CONTROLLER_H_
#define CPI2_CGROUP_FS_CPU_CONTROLLER_H_

#include <string>

#include "cgroup/cpu_controller.h"

namespace cpi2 {

enum class CgroupVersion { kV2, kV1 };

class FsCpuController : public CpuController {
 public:
  // `cgroup_root` is the mounted cgroup hierarchy (e.g. "/sys/fs/cgroup",
  // or "/sys/fs/cgroup/cpu" for v1); containers are paths relative to it.
  explicit FsCpuController(std::string cgroup_root,
                           MicroTime period = kDefaultCapPeriod,
                           CgroupVersion version = CgroupVersion::kV2);

  Status SetCap(const std::string& container, double cpu_sec_per_sec) override;
  Status RemoveCap(const std::string& container) override;
  std::optional<double> GetCap(const std::string& container) const override;

 private:
  std::string ControlPath(const std::string& container, const char* file) const;
  Status WriteControlFile(const std::string& path, const std::string& value);
  Status SetQuota(const std::string& container, long long quota_usec);
  std::optional<double> GetCapV2(const std::string& container) const;
  std::optional<double> GetCapV1(const std::string& container) const;

  std::string cgroup_root_;
  MicroTime period_;
  CgroupVersion version_;
};

}  // namespace cpi2

#endif  // CPI2_CGROUP_FS_CPU_CONTROLLER_H_
