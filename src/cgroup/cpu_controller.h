// CPU bandwidth control ("hard-capping") abstraction.
//
// Section 5: "we forcibly reduce the antagonist's CPU usage by applying CPU
// hard-capping. This bounds the amount of CPU a task can use over a short
// period of time (e.g., 25 ms in each 250 ms window, which corresponds to a
// cap of 0.1 CPU-sec/sec)." The controller expresses caps directly in
// CPU-sec/sec; backends translate to quota/period.
//
// Implementations: FsCpuController (cgroup-v2 cpu.max, this file's sibling),
// the simulator's Machine (enforced by its CPU allocator), and
// FakeCpuController for tests.

#ifndef CPI2_CGROUP_CPU_CONTROLLER_H_
#define CPI2_CGROUP_CPU_CONTROLLER_H_

#include <map>
#include <optional>
#include <string>

#include "util/clock.h"
#include "util/status.h"

namespace cpi2 {

// The CFS bandwidth window the paper uses (250 ms).
inline constexpr MicroTime kDefaultCapPeriod = 250 * kMicrosPerMilli;

class CpuController {
 public:
  virtual ~CpuController() = default;

  // Caps `container` to at most `cpu_sec_per_sec` CPU-seconds per second.
  virtual Status SetCap(const std::string& container, double cpu_sec_per_sec) = 0;

  // Removes any cap from `container`.
  virtual Status RemoveCap(const std::string& container) = 0;

  // Returns the active cap, or nullopt if uncapped / unknown.
  virtual std::optional<double> GetCap(const std::string& container) const = 0;
};

// Records caps in memory; used by unit tests and the quickstart example.
class FakeCpuController : public CpuController {
 public:
  Status SetCap(const std::string& container, double cpu_sec_per_sec) override {
    if (cpu_sec_per_sec <= 0.0) {
      return InvalidArgumentError("cap must be positive");
    }
    caps_[container] = cpu_sec_per_sec;
    ++set_calls_;
    return Status::Ok();
  }

  Status RemoveCap(const std::string& container) override {
    caps_.erase(container);
    ++remove_calls_;
    return Status::Ok();
  }

  std::optional<double> GetCap(const std::string& container) const override {
    const auto it = caps_.find(container);
    if (it == caps_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  int set_calls() const { return set_calls_; }
  int remove_calls() const { return remove_calls_; }

 private:
  std::map<std::string, double> caps_;
  int set_calls_ = 0;
  int remove_calls_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_CGROUP_CPU_CONTROLLER_H_
