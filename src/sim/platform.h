// Hardware platform descriptions for the cluster simulator.
//
// CPI is a function of the hardware platform (section 3.1), so CPI2
// aggregates specs per job x CPU type. The simulator models platforms with
// enough fidelity to reproduce that: per-platform clock speed, core count,
// shared L3 capacity, memory bandwidth, and a relative CPI scale factor
// (the same binary runs at different CPIs on different microarchitectures).

#ifndef CPI2_SIM_PLATFORM_H_
#define CPI2_SIM_PLATFORM_H_

#include <string>

namespace cpi2 {

struct Platform {
  std::string name = "default";
  double clock_ghz = 2.6;
  int cores = 12;
  double l3_cache_mb = 12.0;
  // Aggregate memory bandwidth available to the socket, in normalized
  // "pressure units": total antagonist memory intensity beyond this level
  // saturates the bus.
  double mem_bandwidth_units = 8.0;
  // Multiplier on every task's base CPI for this platform (1.0 = the
  // reference platform a task's base_cpi is quoted on).
  double cpi_scale = 1.0;

  double CyclesPerSecond() const { return clock_ghz * 1e9; }
};

// Two representative platforms (the paper's Figure 4 uses two CPU types).
Platform ReferencePlatform();
Platform OlderPlatform();

}  // namespace cpi2

#endif  // CPI2_SIM_PLATFORM_H_
