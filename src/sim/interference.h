// Shared-resource interference model.
//
// This is the simulator's substitute for real cache/memory-bus contention
// (see DESIGN.md, substitutions table). The model captures the one causal
// relationship CPI2 depends on: when a co-resident task burns CPU while
// touching lots of cache or memory bandwidth, its neighbours' CPI rises in
// proportion to that task's CPU usage. Two terms:
//
//   cache pressure on task i  = sum_{j != i} cpu_j * min(1, cache_mb_j / L3)
//   bus pressure on task i    = max(0, sum_j cpu_j * mem_int_j - cpu_i * mem_int_i)
//                               / platform.mem_bandwidth_units
//
//   cpi_i = base_cpi_i * (1 + sensitivity_i * cache_weight * cache_pressure
//                           + bw_weight * bus_pressure * (0.5 + 0.5 * mem_int_i))
//
// L3 misses/instruction scale with the same cache pressure, which is what
// produces the paper's Figure 15(c) correlation between CPI relief and L3
// miss relief under throttling.

#ifndef CPI2_SIM_INTERFERENCE_H_
#define CPI2_SIM_INTERFERENCE_H_

#include <vector>

#include "sim/platform.h"

namespace cpi2 {

struct InterferenceParams {
  double cache_weight = 0.6;
  double bw_weight = 0.3;
  // How strongly contention inflates L3 misses/instruction.
  double mpi_contention_weight = 1.5;
  // Baseline L3 misses/instruction for a task with zero memory intensity.
  double base_mpi = 0.001;
  // Additional baseline MPI per unit of memory intensity.
  double mpi_per_intensity = 0.02;
};

// One co-resident task's contribution to (and susceptibility to) contention.
struct TaskLoad {
  double cpu = 0.0;               // CPU-sec/sec it is actually running at
  double cache_mb = 0.0;          // cache working set
  double memory_intensity = 0.0;  // [0, 1]
  double sensitivity = 0.0;       // [0, 1]
};

struct InterferenceResult {
  // Multiplier >= 1 on the task's base CPI.
  double cpi_multiplier = 1.0;
  // L3 misses per instruction, including contention effects.
  double l3_mpi = 0.0;
};

// Computes the interference each task experiences from all the others.
// Output has one entry per input, in order.
std::vector<InterferenceResult> ComputeInterference(const Platform& platform,
                                                    const InterferenceParams& params,
                                                    const std::vector<TaskLoad>& loads);

// In-place variant for the per-tick hot path: resizes `*results` to
// loads.size() and fills it, reusing its capacity so steady-state ticks do
// not allocate.
void ComputeInterference(const Platform& platform, const InterferenceParams& params,
                         const std::vector<TaskLoad>& loads,
                         std::vector<InterferenceResult>* results);

// Structure-of-arrays inputs for the batched interference kernel. All
// pointers address `n` elements, one per co-resident task, in the same
// order the outputs are written. The derived per-task constants are
// precomputed once per task (TaskTable does this at admission):
//   footprint    = min(1, cache_mb / platform.l3_cache_mb)   (0 if no L3)
//   sens_cw      = sensitivity * params.cache_weight
//   w_sens       = params.mpi_contention_weight * sensitivity
//   half_mi      = 0.5 + 0.5 * memory_intensity
//   baseline_mpi = params.base_mpi + params.mpi_per_intensity * memory_intensity
// Folding them this way keeps every product associated exactly as the
// scalar ComputeInterference evaluates it, so the batch kernel is
// bit-identical to the reference loop.
struct InterferenceBatchInputs {
  const double* cpu = nullptr;
  const double* footprint = nullptr;
  const double* memory_intensity = nullptr;
  const double* sens_cw = nullptr;
  const double* w_sens = nullptr;
  const double* half_mi = nullptr;
  const double* baseline_mpi = nullptr;
};

// Batched interference: same math as ComputeInterference but over parallel
// arrays, with the per-task invariants hoisted out of the tick loop. The
// totals pass stays a sequential sum (FP addition order is part of the
// determinism contract); the per-task pass is element-wise and free to
// vectorize. Writes n entries to cpi_multiplier and l3_mpi.
void ComputeInterferenceBatch(const Platform& platform, const InterferenceParams& params,
                              size_t n, const InterferenceBatchInputs& in,
                              double* cpi_multiplier, double* l3_mpi);

}  // namespace cpi2

#endif  // CPI2_SIM_INTERFERENCE_H_
