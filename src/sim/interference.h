// Shared-resource interference model.
//
// This is the simulator's substitute for real cache/memory-bus contention
// (see DESIGN.md, substitutions table). The model captures the one causal
// relationship CPI2 depends on: when a co-resident task burns CPU while
// touching lots of cache or memory bandwidth, its neighbours' CPI rises in
// proportion to that task's CPU usage. Two terms:
//
//   cache pressure on task i  = sum_{j != i} cpu_j * min(1, cache_mb_j / L3)
//   bus pressure on task i    = max(0, sum_j cpu_j * mem_int_j - cpu_i * mem_int_i)
//                               / platform.mem_bandwidth_units
//
//   cpi_i = base_cpi_i * (1 + sensitivity_i * cache_weight * cache_pressure
//                           + bw_weight * bus_pressure * (0.5 + 0.5 * mem_int_i))
//
// L3 misses/instruction scale with the same cache pressure, which is what
// produces the paper's Figure 15(c) correlation between CPI relief and L3
// miss relief under throttling.

#ifndef CPI2_SIM_INTERFERENCE_H_
#define CPI2_SIM_INTERFERENCE_H_

#include <vector>

#include "sim/platform.h"

namespace cpi2 {

struct InterferenceParams {
  double cache_weight = 0.6;
  double bw_weight = 0.3;
  // How strongly contention inflates L3 misses/instruction.
  double mpi_contention_weight = 1.5;
  // Baseline L3 misses/instruction for a task with zero memory intensity.
  double base_mpi = 0.001;
  // Additional baseline MPI per unit of memory intensity.
  double mpi_per_intensity = 0.02;
};

// One co-resident task's contribution to (and susceptibility to) contention.
struct TaskLoad {
  double cpu = 0.0;               // CPU-sec/sec it is actually running at
  double cache_mb = 0.0;          // cache working set
  double memory_intensity = 0.0;  // [0, 1]
  double sensitivity = 0.0;       // [0, 1]
};

struct InterferenceResult {
  // Multiplier >= 1 on the task's base CPI.
  double cpi_multiplier = 1.0;
  // L3 misses per instruction, including contention effects.
  double l3_mpi = 0.0;
};

// Computes the interference each task experiences from all the others.
// Output has one entry per input, in order.
std::vector<InterferenceResult> ComputeInterference(const Platform& platform,
                                                    const InterferenceParams& params,
                                                    const std::vector<TaskLoad>& loads);

// In-place variant for the per-tick hot path: resizes `*results` to
// loads.size() and fills it, reusing its capacity so steady-state ticks do
// not allocate.
void ComputeInterference(const Platform& platform, const InterferenceParams& params,
                         const std::vector<TaskLoad>& loads,
                         std::vector<InterferenceResult>* results);

}  // namespace cpi2

#endif  // CPI2_SIM_INTERFERENCE_H_
