#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace cpi2 {

Scheduler::Scheduler(std::vector<Machine*> machines, Options options, uint64_t seed)
    : machines_(std::move(machines)),
      options_(options),
      rng_(seed),
      production_reserved_(machines_.size(), 0.0),
      total_reserved_(machines_.size(), 0.0),
      starved_streak_(machines_.size(), 0) {
  machine_index_.reserve(machines_.size());
  for (size_t i = 0; i < machines_.size(); ++i) {
    machine_index_.emplace(machines_[i], i);
  }
}

size_t Scheduler::IndexOf(const Machine* machine) const {
  const auto it = machine_index_.find(machine);
  assert(it != machine_index_.end() && "machine not managed by this scheduler");
  return it->second;
}

bool Scheduler::ViolatesConstraint(const Machine& machine, const TaskSpec& spec) const {
  const auto it = avoid_.find(spec.job_name);
  if (it == avoid_.end()) {
    return false;
  }
  for (const auto& [task_name, location] : locations_) {
    if (location->name() != machine.name()) {
      continue;
    }
    const Task* task = location->FindTask(task_name);
    if (task != nullptr && it->second.count(task->spec().job_name) > 0) {
      return true;
    }
  }
  return false;
}

bool Scheduler::Fits(size_t machine_index, const TaskSpec& spec) const {
  const double cores = static_cast<double>(machines_[machine_index]->platform().cores);
  if (spec.priority == JobPriority::kProduction) {
    // Production reservations are never oversubscribed.
    if (production_reserved_[machine_index] + spec.cpu_request > cores) {
      return false;
    }
  }
  // Everything combined may overcommit up to the configured factor.
  return total_reserved_[machine_index] + spec.cpu_request <= cores * options_.batch_overcommit;
}

Machine* Scheduler::PickMachine(const TaskSpec& spec, const std::string& avoid_machine) {
  // Power-of-two-choices among feasible machines: sample a handful and take
  // the least reserved, which approximates least-loaded placement without a
  // full scan being deterministic-hotspot-prone.
  Machine* best = nullptr;
  double best_reserved = std::numeric_limits<double>::infinity();
  constexpr int kProbes = 2;
  for (int probe = 0; probe < kProbes && !machines_.empty(); ++probe) {
    const size_t index =
        static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(machines_.size()) - 1));
    Machine* candidate = machines_[index];
    if (candidate->name() == avoid_machine || !Fits(index, spec) ||
        ViolatesConstraint(*candidate, spec)) {
      continue;
    }
    const double reserved = total_reserved_[index];
    if (reserved < best_reserved) {
      best_reserved = reserved;
      best = candidate;
    }
  }
  if (best != nullptr) {
    return best;
  }
  // Fall back to a full scan so feasible placements are never missed.
  for (size_t index = 0; index < machines_.size(); ++index) {
    Machine* candidate = machines_[index];
    if (candidate->name() == avoid_machine || !Fits(index, spec) ||
        ViolatesConstraint(*candidate, spec)) {
      continue;
    }
    const double reserved = total_reserved_[index];
    if (reserved < best_reserved) {
      best_reserved = reserved;
      best = candidate;
    }
  }
  return best;
}

Status Scheduler::PlaceTask(const std::string& task_name, const TaskSpec& spec) {
  if (locations_.count(task_name) > 0) {
    return InvalidArgumentError("task already placed: " + task_name);
  }
  Machine* machine = PickMachine(spec, /*avoid_machine=*/"");
  if (machine == nullptr) {
    return UnavailableError("no machine fits task " + task_name);
  }
  const Status status = machine->AddTask(task_name, spec);
  if (!status.ok()) {
    return status;
  }
  locations_[task_name] = machine;
  const size_t index = IndexOf(machine);
  total_reserved_[index] += spec.cpu_request;
  if (spec.priority == JobPriority::kProduction) {
    production_reserved_[index] += spec.cpu_request;
  }
  ++total_placed_;
  return Status::Ok();
}

Status Scheduler::SubmitJob(const JobSpec& spec) {
  if (spec.task_count <= 0) {
    return InvalidArgumentError("job needs at least one task: " + spec.name);
  }
  // Admission control: place all or nothing.
  std::vector<std::string> placed;
  for (int i = 0; i < spec.task_count; ++i) {
    TaskSpec task = spec.task;
    task.job_name = spec.name;
    const std::string task_name = StrFormat("%s.%d", spec.name.c_str(), i);
    const Status status = PlaceTask(task_name, task);
    if (!status.ok()) {
      for (const std::string& name : placed) {
        EvictTask(name);
      }
      return status;
    }
    placed.push_back(task_name);
  }
  return Status::Ok();
}

Status Scheduler::EvictTask(const std::string& task_name) {
  const auto it = locations_.find(task_name);
  if (it == locations_.end()) {
    return NotFoundError("task not placed: " + task_name);
  }
  Machine* machine = it->second;
  const Task* task = machine->FindTask(task_name);
  if (task != nullptr) {
    // Copy the reservation fields out before RemoveTask: the Task (and its
    // spec) is destroyed by removal, so holding a reference across it would
    // read freed memory.
    const double request = task->spec().cpu_request;
    const bool production = task->spec().priority == JobPriority::kProduction;
    (void)machine->RemoveTask(task_name);
    const size_t index = IndexOf(machine);
    total_reserved_[index] -= request;
    if (production) {
      production_reserved_[index] -= request;
    }
  }
  locations_.erase(it);
  return Status::Ok();
}

Status Scheduler::MigrateTask(const std::string& task_name) {
  const auto it = locations_.find(task_name);
  if (it == locations_.end()) {
    return NotFoundError("task not placed: " + task_name);
  }
  Machine* old_machine = it->second;
  const Task* task = old_machine->FindTask(task_name);
  if (task == nullptr) {
    locations_.erase(it);
    return NotFoundError("task vanished: " + task_name);
  }
  const TaskSpec spec = task->spec();
  const Status evicted = EvictTask(task_name);
  if (!evicted.ok()) {
    return evicted;
  }
  Machine* machine = PickMachine(spec, old_machine->name());
  if (machine == nullptr) {
    // Nowhere else to go; put it back where it was.
    (void)old_machine->AddTask(task_name, spec);
    locations_[task_name] = old_machine;
    const size_t old_index = IndexOf(old_machine);
    total_reserved_[old_index] += spec.cpu_request;
    if (spec.priority == JobPriority::kProduction) {
      production_reserved_[old_index] += spec.cpu_request;
    }
    return UnavailableError("no other machine fits " + task_name);
  }
  const Status status = machine->AddTask(task_name, spec);
  if (!status.ok()) {
    return status;
  }
  locations_[task_name] = machine;
  const size_t index = IndexOf(machine);
  total_reserved_[index] += spec.cpu_request;
  if (spec.priority == JobPriority::kProduction) {
    production_reserved_[index] += spec.cpu_request;
  }
  return Status::Ok();
}

void Scheduler::Maintain(MicroTime now) {
  // Reap self-exited tasks: release their reservations and queue restarts.
  for (size_t machine_pos = 0; machine_pos < machines_.size(); ++machine_pos) {
    Machine* machine = machines_[machine_pos];
    for (const Machine::ExitedTask& exited : machine->DrainExited()) {
      const auto it = locations_.find(exited.name);
      if (it != locations_.end()) {
        total_reserved_[machine_pos] -= exited.spec.cpu_request;
        if (exited.spec.priority == JobPriority::kProduction) {
          production_reserved_[machine_pos] -= exited.spec.cpu_request;
        }
        locations_.erase(it);
      }
      CPI2_LOG(DEBUG) << "task exited: " << exited.name << " on " << machine->name();
      if (options_.restart_exited_tasks) {
        restart_queue_.push_back(
            {exited.name, exited.spec, now + options_.restart_delay, machine->name()});
      }
    }
  }

  // Preempt the largest batch task on machines whose batch population has
  // been starved for too long; the replacement lands elsewhere.
  if (options_.preemption_satisfaction > 0.0) {
    for (size_t machine_pos = 0; machine_pos < machines_.size(); ++machine_pos) {
      Machine* machine = machines_[machine_pos];
      int& streak = starved_streak_[machine_pos];
      if (machine->LastBatchSatisfaction() < options_.preemption_satisfaction) {
        ++streak;
      } else {
        streak = 0;
        continue;
      }
      if (streak < options_.preemption_patience) {
        continue;
      }
      streak = 0;
      Task* largest = nullptr;
      for (Task* task : machine->Tasks()) {
        if (task->spec().sched_class != WorkloadClass::kBatch) {
          continue;
        }
        if (largest == nullptr || task->spec().cpu_request > largest->spec().cpu_request) {
          largest = task;
        }
      }
      if (largest == nullptr) {
        continue;
      }
      const std::string task_name = largest->name();
      const TaskSpec spec = largest->spec();
      CPI2_LOG(DEBUG) << "preempting starved batch task " << task_name << " on "
                      << machine->name();
      if (EvictTask(task_name).ok()) {
        ++total_preemptions_;
        restart_queue_.push_back(
            {task_name, spec, now + options_.restart_delay, machine->name()});
      }
    }
  }

  // Place due replacements.
  while (!restart_queue_.empty() && restart_queue_.front().ready_at <= now) {
    PendingRestart restart = restart_queue_.front();
    restart_queue_.pop_front();
    Machine* machine = PickMachine(restart.spec, restart.avoid_machine);
    if (machine == nullptr) {
      // Try again later.
      restart.ready_at = now + options_.restart_delay;
      restart_queue_.push_back(restart);
      break;
    }
    const Status status = machine->AddTask(restart.task_name, restart.spec);
    if (status.ok()) {
      locations_[restart.task_name] = machine;
      const size_t index = IndexOf(machine);
      total_reserved_[index] += restart.spec.cpu_request;
      if (restart.spec.priority == JobPriority::kProduction) {
        production_reserved_[index] += restart.spec.cpu_request;
      }
      ++total_restarts_;
    }
  }
}

void Scheduler::AddAntagonistConstraint(const std::string& job,
                                        const std::string& antagonist_job) {
  avoid_[job].insert(antagonist_job);
}

Machine* Scheduler::LocateTask(const std::string& task_name) {
  const auto it = locations_.find(task_name);
  return it != locations_.end() ? it->second : nullptr;
}

}  // namespace cpi2
