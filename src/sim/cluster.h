// Cluster: machines + scheduler + virtual time.
//
// Runs the simulation on 1-second ticks of a ManualClock. Tick order is
// machines first (so counters reflect the tick), then scheduler maintenance
// (reap/restart), then registered listeners (CPI2 agents, trace recorders),
// so observers always see a consistent post-tick world.
//
// The machine phase is sharded across a persistent ThreadPool when
// Options::threads != 1. Machines are mutually independent during Tick (each
// owns its tasks and its RNG), so a parallel run is bit-identical to a serial
// one; cross-machine consumers (e.g. ClusterHarness) reuse the same pool via
// pool() and merge their per-machine effects in deterministic machine order.

#ifndef CPI2_SIM_CLUSTER_H_
#define CPI2_SIM_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "sim/machine.h"
#include "sim/scheduler.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cpi2 {

class Cluster {
 public:
  struct Options {
    MicroTime tick = kMicrosPerSecond;
    uint64_t seed = 20130415;  // EuroSys'13 opening day.
    MicroTime start_time = 0;
    Scheduler::Options scheduler;
    InterferenceParams interference;
    // Threads ticking the machines (and, via pool(), the harness agents).
    // 0 = hardware concurrency, 1 = the exact legacy serial path. Results
    // are identical for every value; only wall-clock time changes.
    int threads = 0;
  };

  explicit Cluster(Options options);

  // Adds `count` machines of the given platform. Must be called before
  // BuildScheduler().
  void AddMachines(const Platform& platform, int count);

  // Finalizes the machine set and constructs the scheduler.
  void BuildScheduler();

  Scheduler& scheduler();
  ManualClock& clock() { return clock_; }
  MicroTime now() const { return clock_.NowMicros(); }

  // Machines in creation order. The vector is cached; the reference stays
  // valid until the next AddMachines call.
  const std::vector<Machine*>& machines();
  Machine* machine(size_t index) { return machines_[index].get(); }
  size_t machine_count() const { return machines_.size(); }

  // The shared worker pool, or nullptr when Options::threads == 1 (serial).
  // Listeners doing independent per-machine work may shard across it, as
  // long as they merge cross-machine effects in a deterministic order.
  ThreadPool* pool();

  // Listeners run after every tick, in registration order.
  using TickListener = std::function<void(MicroTime now)>;
  void AddTickListener(TickListener listener) { listeners_.push_back(std::move(listener)); }

  // Advances the world by one tick.
  void Tick();

  // Runs ticks until `duration` has elapsed.
  void RunFor(MicroTime duration);

 private:
  Options options_;
  ManualClock clock_;
  Rng rng_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<Machine*> machines_raw_;  // cached view of machines_
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<TickListener> listeners_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily by pool()
  bool pool_resolved_ = false;
};

}  // namespace cpi2

#endif  // CPI2_SIM_CLUSTER_H_
