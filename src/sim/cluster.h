// Cluster: machines + scheduler + virtual time.
//
// Runs the simulation on 1-second ticks of a ManualClock. Tick order is
// machines first (so counters reflect the tick), then scheduler maintenance
// (reap/restart), then registered listeners (CPI2 agents, trace recorders),
// so observers always see a consistent post-tick world.

#ifndef CPI2_SIM_CLUSTER_H_
#define CPI2_SIM_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "sim/machine.h"
#include "sim/scheduler.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cpi2 {

class Cluster {
 public:
  struct Options {
    MicroTime tick = kMicrosPerSecond;
    uint64_t seed = 20130415;  // EuroSys'13 opening day.
    MicroTime start_time = 0;
    Scheduler::Options scheduler;
    InterferenceParams interference;
  };

  explicit Cluster(Options options);

  // Adds `count` machines of the given platform. Must be called before
  // BuildScheduler().
  void AddMachines(const Platform& platform, int count);

  // Finalizes the machine set and constructs the scheduler.
  void BuildScheduler();

  Scheduler& scheduler();
  ManualClock& clock() { return clock_; }
  MicroTime now() const { return clock_.NowMicros(); }

  std::vector<Machine*> machines();
  Machine* machine(size_t index) { return machines_[index].get(); }
  size_t machine_count() const { return machines_.size(); }

  // Listeners run after every tick, in registration order.
  using TickListener = std::function<void(MicroTime now)>;
  void AddTickListener(TickListener listener) { listeners_.push_back(std::move(listener)); }

  // Advances the world by one tick.
  void Tick();

  // Runs ticks until `duration` has elapsed.
  void RunFor(MicroTime duration);

 private:
  Options options_;
  ManualClock clock_;
  Rng rng_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<TickListener> listeners_;
};

}  // namespace cpi2

#endif  // CPI2_SIM_CLUSTER_H_
