// A simulated machine: CPU allocation, interference, and counters.
//
// Machine implements the two substrate interfaces CPI2's per-machine agent
// consumes, so the exact same Agent code runs against the simulator and
// against real perf_event / cgroupfs backends:
//   - CounterSource: per-task cumulative counters (container id == task name)
//   - CpuController: CPU hard-capping of tasks
//
// Each tick the machine:
//   1. asks every running task how much CPU it wants,
//   2. allocates CPU: latency-sensitive tasks first, then batch tasks share
//      the remainder proportionally; hard caps always bind,
//   3. runs the interference model to get each task's effective CPI and L3
//      miss rate,
//   4. lets each task account the tick (counters, app metrics, cap
//      reactions).
//
// Tasks live in a TaskTable (dense slots, parallel arrays). The tick path
// walks those arrays directly — batched demand/allocation/interference/
// accounting passes in container-name order. It is bit-identical in every
// observable to the original per-Task method-call loop it replaced, which
// survives as a straight-line reference implementation inside
// TaskTableTest.FuzzChurnMatchesReferenceTick (DESIGN.md §14).

#ifndef CPI2_SIM_MACHINE_H_
#define CPI2_SIM_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cgroup/cpu_controller.h"
#include "perf/counter_source.h"
#include "sim/interference.h"
#include "sim/platform.h"
#include "sim/task.h"
#include "sim/task_table.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cpi2 {

class Machine : public CounterSource, public CpuController {
 public:
  Machine(std::string name, Platform platform, uint64_t seed,
          InterferenceParams interference = InterferenceParams());

  const std::string& name() const { return name_; }
  const Platform& platform() const { return platform_; }

  // --- task management --------------------------------------------------
  // Creates a task from `spec` under container id `task_name`.
  // Fails if the name is already in use.
  Status AddTask(const std::string& task_name, const TaskSpec& spec);
  Status RemoveTask(const std::string& task_name);
  Task* FindTask(const std::string& task_name);
  const Task* FindTask(const std::string& task_name) const;
  // Tasks in name order. The vector is cached and only rebuilt after a
  // membership change; the reference is invalidated by AddTask/RemoveTask/
  // DrainExited.
  const std::vector<Task*>& Tasks() { return table_.TasksByName(); }
  size_t task_count() const { return table_.size(); }

  // Bumped by every task arrival/removal; consumers mirroring the task set
  // (the harness agent sync) skip reconciliation while it is unchanged.
  uint64_t membership_version() const { return table_.membership_version(); }

  // A task that ended on its own (e.g. self-termination under capping).
  struct ExitedTask {
    std::string name;
    TaskSpec spec;
  };

  // Removes tasks that exited on their own and returns them (name + spec),
  // so the scheduler can release reservations and reschedule.
  std::vector<ExitedTask> DrainExited();

  // --- simulation -------------------------------------------------------
  void Tick(MicroTime now, MicroTime dt);

  // Fraction of cores in use last tick, in [0, 1].
  double LastUtilization() const { return last_utilization_; }

  // How much of the batch tasks' demand was actually granted last tick,
  // in [0, 1] (1.0 when there is no batch demand). Sustained starvation is
  // the scheduler's cue to preempt and move a batch task elsewhere.
  double LastBatchSatisfaction() const { return last_batch_satisfaction_; }

  // --- CounterSource ------------------------------------------------------
  StatusOr<CounterSnapshot> Read(const std::string& container) override;
  // Handle = the task table's interner id. Ids are assigned per *name* and
  // never reused, so a handle is a permanent alias for the name: re-arrival
  // under the same name resolves to the new task, a dead name fails
  // NotFound — exactly the string path, minus the per-read hash.
  std::optional<uint64_t> ContainerHandle(const std::string& container) override;
  StatusOr<CounterSnapshot> ReadByHandle(uint64_t handle) override;

  // --- CpuController ------------------------------------------------------
  Status SetCap(const std::string& container, double cpu_sec_per_sec) override;
  Status RemoveCap(const std::string& container) override;
  std::optional<double> GetCap(const std::string& container) const override;

 private:
  // The SoA tick: batched passes over the TaskTable arrays.
  void TickSoa(MicroTime now, double tick_seconds);

  std::string name_;
  Platform platform_;
  InterferenceParams interference_;
  // platform_.CyclesPerSecond(), hoisted out of the accounting pass.
  double cycles_per_second_;
  Rng rng_;
  TaskTable table_;
  // Per-tick scratch, reused across ticks so the hot path is allocation-free
  // at steady state. Only touched by Tick, which runs on one thread at a
  // time per machine.
  struct TickScratch {
    std::vector<double> limit;
    std::vector<double> alloc;
    std::vector<double> cpi_multiplier;  // interference outputs
    std::vector<double> l3_mpi;
  };
  TickScratch scratch_;
  double last_utilization_ = 0.0;
  double last_batch_satisfaction_ = 1.0;
  MicroTime last_tick_time_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_SIM_MACHINE_H_
