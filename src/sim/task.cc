#include "sim/task.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/task_table.h"

namespace cpi2 {

double DiurnalCurve::Factor(MicroTime now) const {
  if (amplitude == 0.0) {
    return 1.0;
  }
  const double day_fraction =
      static_cast<double>((now - peak_offset) % kMicrosPerDay) / static_cast<double>(kMicrosPerDay);
  return 1.0 + amplitude * std::cos(2.0 * M_PI * day_fraction);
}

double LognormalNoise(Rng& rng, double cv) {
  if (cv <= 0.0) {
    return 1.0;
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  const double sigma = std::sqrt(sigma2);
  return rng.LogNormal(-0.5 * sigma2, sigma);
}

// The method bodies below are the table-backed spelling of the original
// per-object task model; TaskTable's SoA tick path inlines the same math
// over whole machines. Every multiplicative stage and RNG draw stays in the
// original order so both spellings are bit-identical.

bool Task::exited() const { return table_->exited_[slot_] != 0; }

double Task::cap() const { return table_->cap_[slot_]; }
void Task::SetCap(double cpu_sec_per_sec) { table_->cap_[slot_] = cpu_sec_per_sec; }
void Task::RemoveCap() { table_->cap_[slot_] = std::numeric_limits<double>::infinity(); }
bool Task::IsCapped() const {
  return table_->cap_[slot_] != std::numeric_limits<double>::infinity();
}

uint64_t Task::cycles() const { return table_->cycles_[slot_]; }
uint64_t Task::instructions() const { return table_->instructions_[slot_]; }
uint64_t Task::l2_misses() const { return table_->l2_misses_[slot_]; }
uint64_t Task::l3_misses() const { return table_->l3_misses_[slot_]; }
uint64_t Task::mem_requests() const { return table_->mem_requests_[slot_]; }
double Task::cpu_seconds() const { return table_->cpu_seconds_[slot_]; }

double Task::last_usage() const { return table_->last_usage_[slot_]; }
double Task::last_cpi() const { return table_->last_cpi_[slot_]; }
double Task::last_latency_ms() const { return table_->last_latency_ms_[slot_]; }
double Task::last_tps() const { return table_->last_tps_[slot_]; }
int Task::threads() const { return table_->threads_[slot_]; }

double Task::DesiredCpu(MicroTime now) {
  TaskTable& t = *table_;
  const uint32_t s = slot_;
  if (t.exited_[s]) {
    return 0.0;
  }
  double demand = spec_.base_cpu_demand;
  if (spec_.alt_cpu_demand >= 0.0 && spec_.mode_half_period > 0 &&
      now >= spec_.mode_start_time) {
    const int64_t phase = ((now - spec_.mode_start_time) / spec_.mode_half_period) % 2;
    demand = phase == 0 ? spec_.alt_cpu_demand : spec_.base_cpu_demand;
  }
  demand *= spec_.diurnal.Factor(now);
  if (spec_.demand_walk_sigma > 0.0) {
    if (t.last_walk_update_[s] < 0 || now - t.last_walk_update_[s] >= kMicrosPerMinute) {
      t.demand_walk_log_[s] = (1.0 - spec_.demand_walk_revert) * t.demand_walk_log_[s] +
                              t.rng_[s].Normal(0.0, spec_.demand_walk_sigma);
      t.last_walk_update_[s] = now;
      t.demand_walk_factor_[s] = std::exp(t.demand_walk_log_[s]);
    }
    demand *= t.demand_walk_factor_[s];
  }
  if (now < t.lame_duck_until_[s]) {
    demand *= 0.1;  // Lame-duck mode: offload work, keep a trickle running.
  }
  demand *= LognormalNoise(t.rng_[s], spec_.demand_cv);
  return std::max(0.0, demand);
}

double Task::CpiNoise() { return LognormalNoise(table_->rng_[slot_], spec_.cpi_noise_cv); }

double Task::CpiWalkFactor(MicroTime now) {
  if (spec_.cpi_walk_sigma <= 0.0) {
    return 1.0;
  }
  TaskTable& t = *table_;
  const uint32_t s = slot_;
  if (t.last_cpi_walk_update_[s] < 0 || now - t.last_cpi_walk_update_[s] >= kMicrosPerMinute) {
    t.cpi_walk_log_[s] = (1.0 - spec_.cpi_walk_revert) * t.cpi_walk_log_[s] +
                         t.rng_[s].Normal(0.0, spec_.cpi_walk_sigma);
    t.last_cpi_walk_update_[s] = now;
    t.cpi_walk_factor_[s] = std::exp(t.cpi_walk_log_[s]);
  }
  return t.cpi_walk_factor_[s];
}

void Task::Account(MicroTime now, double tick_seconds, double allocated_cpu, double effective_cpi,
                   double l3_mpi, const Platform& platform) {
  TaskTable& t = *table_;
  const uint32_t s = slot_;
  t.last_usage_[s] = allocated_cpu;
  t.last_cpi_[s] = effective_cpi;

  const double cycles_delta = allocated_cpu * tick_seconds * platform.CyclesPerSecond();
  t.cycles_[s] += static_cast<uint64_t>(cycles_delta);
  const double instr_delta = effective_cpi > 0.0 ? cycles_delta / effective_cpi : 0.0;
  t.instructions_[s] += static_cast<uint64_t>(instr_delta);
  const double l3_delta = instr_delta * l3_mpi;
  t.l3_misses_[s] += static_cast<uint64_t>(l3_delta);
  t.l2_misses_[s] += static_cast<uint64_t>(l3_delta * 4.0);    // L2 misses a superset of L3's.
  t.mem_requests_[s] += static_cast<uint64_t>(l3_delta * 1.2);  // Misses plus prefetch traffic.
  t.cpu_seconds_[s] += allocated_cpu * tick_seconds;

  // Application-level metrics.
  if (spec_.base_latency_ms > 0.0) {
    const double base = BaseCpiOn(platform);
    const double cpu_part =
        (1.0 - spec_.latency_io_fraction) * (base > 0.0 ? effective_cpi / base : 1.0);
    const double io_part =
        spec_.latency_io_fraction * LognormalNoise(t.rng_[s], spec_.latency_io_noise_cv);
    t.last_latency_ms_[s] = spec_.base_latency_ms * latency_scale_ * (cpu_part + io_part);
  }
  if (spec_.instr_per_txn > 0.0 && tick_seconds > 0.0) {
    const double ips = instr_delta / tick_seconds;
    t.last_tps_[s] = ips / spec_.instr_per_txn * LognormalNoise(t.rng_[s], spec_.tps_noise_cv);
  }

  UpdateCapBehavior(now);
}

void Task::UpdateCapBehavior(MicroTime now) {
  TaskTable& t = *table_;
  const uint32_t s = slot_;
  // A cap only changes behaviour when it actually binds.
  const bool capped_now = IsCapped() && t.cap_[s] < 0.5 * spec_.base_cpu_demand;
  if (capped_now && !t.was_capped_last_tick_[s]) {
    ++t.cap_episodes_[s];
    t.capped_since_[s] = now;
  }

  switch (spec_.cap_behavior) {
    case CapBehavior::kTolerate:
      t.threads_[s] = spec_.base_threads;
      break;
    case CapBehavior::kLameDuck:
      if (capped_now) {
        // Starved of CPU, the task's work queues back up and it spawns
        // handler threads (case 5: 8 threads -> ~80 while capped).
        const int ceiling = spec_.base_threads * 10;
        t.threads_[s] = std::min(ceiling, t.threads_[s] + std::max(1, t.threads_[s] / 8));
      } else if (t.was_capped_last_tick_[s]) {
        // Cap just lifted: enter lame-duck mode (case 5: thread count drops
        // to 2 for tens of minutes before reverting).
        t.lame_duck_until_[s] = now + spec_.lame_duck_duration;
        t.threads_[s] = 2;
      } else if (now >= t.lame_duck_until_[s]) {
        t.threads_[s] = spec_.base_threads;
      }
      break;
    case CapBehavior::kSelfTerminate:
      // Case 6: the MapReduce worker survives its first capping but gives up
      // partway into a later one, preferring to be rescheduled elsewhere.
      if (capped_now && t.cap_episodes_[s] >= 2 &&
          now - t.capped_since_[s] > 2 * kMicrosPerMinute) {
        t.exited_[s] = 1;
        t.threads_[s] = 0;
        t.any_exited_ = true;
      }
      break;
  }

  t.was_capped_last_tick_[s] = capped_now;
}

}  // namespace cpi2
