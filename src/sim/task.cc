#include "sim/task.h"

#include <algorithm>
#include <cmath>

namespace cpi2 {

double DiurnalCurve::Factor(MicroTime now) const {
  if (amplitude == 0.0) {
    return 1.0;
  }
  const double day_fraction =
      static_cast<double>((now - peak_offset) % kMicrosPerDay) / static_cast<double>(kMicrosPerDay);
  return 1.0 + amplitude * std::cos(2.0 * M_PI * day_fraction);
}

namespace {

// Lognormal multiplicative noise with mean 1 and the given coefficient of
// variation.
double LognormalNoise(Rng& rng, double cv) {
  if (cv <= 0.0) {
    return 1.0;
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  const double sigma = std::sqrt(sigma2);
  return rng.LogNormal(-0.5 * sigma2, sigma);
}

}  // namespace

Task::Task(std::string name, TaskSpec spec, Rng rng)
    : name_(std::move(name)), spec_(std::move(spec)), rng_(rng), threads_(spec_.base_threads) {
  latency_scale_ = LognormalNoise(rng_, spec_.latency_task_cv);
  cpi_scale_ = LognormalNoise(rng_, spec_.cpi_task_cv);
}

double Task::DesiredCpu(MicroTime now) {
  if (exited_) {
    return 0.0;
  }
  double demand = spec_.base_cpu_demand;
  if (spec_.alt_cpu_demand >= 0.0 && spec_.mode_half_period > 0 &&
      now >= spec_.mode_start_time) {
    const int64_t phase = ((now - spec_.mode_start_time) / spec_.mode_half_period) % 2;
    demand = phase == 0 ? spec_.alt_cpu_demand : spec_.base_cpu_demand;
  }
  demand *= spec_.diurnal.Factor(now);
  if (spec_.demand_walk_sigma > 0.0) {
    if (last_walk_update_ < 0 || now - last_walk_update_ >= kMicrosPerMinute) {
      demand_walk_log_ = (1.0 - spec_.demand_walk_revert) * demand_walk_log_ +
                         rng_.Normal(0.0, spec_.demand_walk_sigma);
      last_walk_update_ = now;
    }
    demand *= std::exp(demand_walk_log_);
  }
  if (now < lame_duck_until_) {
    demand *= 0.1;  // Lame-duck mode: offload work, keep a trickle running.
  }
  demand *= LognormalNoise(rng_, spec_.demand_cv);
  return std::max(0.0, demand);
}

double Task::CpiNoise() { return LognormalNoise(rng_, spec_.cpi_noise_cv); }

double Task::CpiWalkFactor(MicroTime now) {
  if (spec_.cpi_walk_sigma <= 0.0) {
    return 1.0;
  }
  if (last_cpi_walk_update_ < 0 || now - last_cpi_walk_update_ >= kMicrosPerMinute) {
    cpi_walk_log_ = (1.0 - spec_.cpi_walk_revert) * cpi_walk_log_ +
                    rng_.Normal(0.0, spec_.cpi_walk_sigma);
    last_cpi_walk_update_ = now;
  }
  return std::exp(cpi_walk_log_);
}

void Task::Account(MicroTime now, double tick_seconds, double allocated_cpu, double effective_cpi,
                   double l3_mpi, const Platform& platform) {
  last_usage_ = allocated_cpu;
  last_cpi_ = effective_cpi;

  const double cycles_delta = allocated_cpu * tick_seconds * platform.CyclesPerSecond();
  cycles_ += static_cast<uint64_t>(cycles_delta);
  const double instr_delta = effective_cpi > 0.0 ? cycles_delta / effective_cpi : 0.0;
  instructions_ += static_cast<uint64_t>(instr_delta);
  const double l3_delta = instr_delta * l3_mpi;
  l3_misses_ += static_cast<uint64_t>(l3_delta);
  l2_misses_ += static_cast<uint64_t>(l3_delta * 4.0);   // L2 misses a superset of L3's.
  mem_requests_ += static_cast<uint64_t>(l3_delta * 1.2);  // Misses plus prefetch traffic.
  cpu_seconds_ += allocated_cpu * tick_seconds;

  // Application-level metrics.
  if (spec_.base_latency_ms > 0.0) {
    const double base = BaseCpiOn(platform);
    const double cpu_part =
        (1.0 - spec_.latency_io_fraction) * (base > 0.0 ? effective_cpi / base : 1.0);
    const double io_part =
        spec_.latency_io_fraction * LognormalNoise(rng_, spec_.latency_io_noise_cv);
    last_latency_ms_ = spec_.base_latency_ms * latency_scale_ * (cpu_part + io_part);
  }
  if (spec_.instr_per_txn > 0.0 && tick_seconds > 0.0) {
    const double ips = instr_delta / tick_seconds;
    last_tps_ = ips / spec_.instr_per_txn * LognormalNoise(rng_, spec_.tps_noise_cv);
  }

  UpdateCapBehavior(now);
}

void Task::UpdateCapBehavior(MicroTime now) {
  // A cap only changes behaviour when it actually binds.
  const bool capped_now = IsCapped() && cap_ < 0.5 * spec_.base_cpu_demand;
  if (capped_now && !was_capped_last_tick_) {
    ++cap_episodes_;
    capped_since_ = now;
  }

  switch (spec_.cap_behavior) {
    case CapBehavior::kTolerate:
      threads_ = spec_.base_threads;
      break;
    case CapBehavior::kLameDuck:
      if (capped_now) {
        // Starved of CPU, the task's work queues back up and it spawns
        // handler threads (case 5: 8 threads -> ~80 while capped).
        const int ceiling = spec_.base_threads * 10;
        threads_ = std::min(ceiling, threads_ + std::max(1, threads_ / 8));
      } else if (was_capped_last_tick_) {
        // Cap just lifted: enter lame-duck mode (case 5: thread count drops
        // to 2 for tens of minutes before reverting).
        lame_duck_until_ = now + spec_.lame_duck_duration;
        threads_ = 2;
      } else if (now >= lame_duck_until_) {
        threads_ = spec_.base_threads;
      }
      break;
    case CapBehavior::kSelfTerminate:
      // Case 6: the MapReduce worker survives its first capping but gives up
      // partway into a later one, preferring to be rescheduled elsewhere.
      if (capped_now && cap_episodes_ >= 2 && now - capped_since_ > 2 * kMicrosPerMinute) {
        exited_ = true;
        threads_ = 0;
      }
      break;
  }

  was_capped_last_tick_ = capped_now;
}

}  // namespace cpi2
