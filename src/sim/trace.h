// Per-task time-series recording for the figure harnesses.
//
// The case studies (Figures 8-13) plot victim CPI against antagonist CPU
// usage, thread counts, and latency over wall-clock time. TraceRecorder is
// a tick listener that samples selected tasks' last-tick observables at a
// configurable cadence, robust to tasks exiting mid-run.

#ifndef CPI2_SIM_TRACE_H_
#define CPI2_SIM_TRACE_H_

#include <map>
#include <string>

#include "sim/machine.h"
#include "util/clock.h"
#include "util/time_series.h"

namespace cpi2 {

struct TaskTrace {
  TimeSeries cpu_usage;
  TimeSeries cpi;
  TimeSeries latency_ms;
  TimeSeries tps;
  TimeSeries threads;
};

class TraceRecorder {
 public:
  // Samples every `interval` of simulated time.
  explicit TraceRecorder(MicroTime interval = 10 * kMicrosPerSecond)
      : interval_(interval) {}

  // Starts recording `task_name`, looked up on `machine` each sample (so a
  // task that exits simply stops producing points).
  void Watch(Machine* machine, const std::string& task_name);

  // Tick listener entry point.
  void OnTick(MicroTime now);

  // Recorded data for a task (empty trace if never watched).
  const TaskTrace& trace(const std::string& task_name) const;

 private:
  struct Watched {
    Machine* machine;
    TaskTrace trace;
  };

  MicroTime interval_;
  MicroTime last_sample_ = -1;
  std::map<std::string, Watched> watched_;
  TaskTrace empty_;
};

}  // namespace cpi2

#endif  // CPI2_SIM_TRACE_H_
