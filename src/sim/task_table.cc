#include "sim/task_table.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cpi2 {
namespace {

// mu/sigma of a mean-1 lognormal with coefficient of variation `cv` — the
// exact expressions LognormalNoise evaluates per draw, hoisted to admission
// time so the tick loop calls Rng::LogNormal directly.
void LognormalMuSigma(double cv, double* mu, double* sigma) {
  if (cv <= 0.0) {
    *mu = 0.0;
    *sigma = 0.0;
    return;
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  *sigma = std::sqrt(sigma2);
  *mu = -0.5 * sigma2;
}

}  // namespace

TaskTable::TaskTable(const Platform& platform, const InterferenceParams& interference)
    : platform_(platform), interference_(interference) {}

Task* TaskTable::Add(const std::string& name, const TaskSpec& spec, const Rng& rng) {
  const uint32_t id = names_.Intern(name);
  if (id >= id_to_slot_.size()) {
    id_to_slot_.resize(id + 1, -1);
  }
  if (id_to_slot_[id] >= 0) {
    return nullptr;
  }

  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    rng_[slot] = rng;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    flags_.emplace_back();
    hot_.emplace_back();
    rng_.push_back(rng);
    cap_.emplace_back();
    exited_.emplace_back();
    cycles_.emplace_back();
    instructions_.emplace_back();
    l2_misses_.emplace_back();
    l3_misses_.emplace_back();
    mem_requests_.emplace_back();
    cpu_seconds_.emplace_back();
    last_usage_.emplace_back();
    last_cpi_.emplace_back();
    last_latency_ms_.emplace_back();
    last_tps_.emplace_back();
    threads_.emplace_back();
    demand_walk_log_.emplace_back();
    demand_walk_factor_.emplace_back();
    last_walk_update_.emplace_back();
    cpi_walk_log_.emplace_back();
    cpi_walk_factor_.emplace_back();
    last_cpi_walk_update_.emplace_back();
    was_capped_last_tick_.emplace_back();
    cap_episodes_.emplace_back();
    capped_since_.emplace_back();
    lame_duck_until_.emplace_back();
  }

  // Reset the slot's mutable state to a fresh task's.
  cap_[slot] = std::numeric_limits<double>::infinity();
  exited_[slot] = 0;
  cycles_[slot] = 0;
  instructions_[slot] = 0;
  l2_misses_[slot] = 0;
  l3_misses_[slot] = 0;
  mem_requests_[slot] = 0;
  cpu_seconds_[slot] = 0.0;
  last_usage_[slot] = 0.0;
  last_cpi_[slot] = 0.0;
  last_latency_ms_[slot] = 0.0;
  last_tps_[slot] = 0.0;
  threads_[slot] = spec.base_threads;
  demand_walk_log_[slot] = 0.0;
  demand_walk_factor_[slot] = 1.0;  // exp(0)
  last_walk_update_[slot] = -1;
  cpi_walk_log_[slot] = 0.0;
  cpi_walk_factor_[slot] = 1.0;
  last_cpi_walk_update_[slot] = -1;
  was_capped_last_tick_[slot] = 0;
  cap_episodes_[slot] = 0;
  capped_since_[slot] = 0;
  lame_duck_until_[slot] = 0;

  // Per-instance spreads, in the draw order the legacy Task constructor
  // used: latency first, then CPI.
  const double latency_scale = LognormalNoise(rng_[slot], spec.latency_task_cv);
  const double cpi_scale = LognormalNoise(rng_[slot], spec.cpi_task_cv);
  slots_[slot].reset(new Task(this, slot, name, spec, latency_scale, cpi_scale));

  HotSpec& hs = hot_[slot];
  hs.base_demand = spec.base_cpu_demand;
  LognormalMuSigma(spec.demand_cv, &hs.demand_mu, &hs.demand_sigma);
  LognormalMuSigma(spec.cpi_noise_cv, &hs.cpi_mu, &hs.cpi_sigma);
  LognormalMuSigma(spec.latency_io_noise_cv, &hs.lat_mu, &hs.lat_sigma);
  LognormalMuSigma(spec.tps_noise_cv, &hs.tps_mu, &hs.tps_sigma);
  hs.base_cpi_platform = spec.base_cpi * cpi_scale * platform_.cpi_scale;
  hs.one_minus_io = 1.0 - spec.latency_io_fraction;
  hs.io_fraction = spec.latency_io_fraction;
  hs.latency_base_scaled = spec.base_latency_ms * latency_scale;
  hs.idle_cpi_inflation = spec.idle_cpi_inflation;
  hs.instr_per_txn = spec.instr_per_txn;
  hs.footprint = platform_.l3_cache_mb > 0.0
                     ? std::min(1.0, spec.cache_mb / platform_.l3_cache_mb)
                     : 0.0;
  hs.memory_intensity = spec.memory_intensity;
  hs.sens_cw = spec.contention_sensitivity * interference_.cache_weight;
  hs.w_sens = interference_.mpi_contention_weight * spec.contention_sensitivity;
  hs.half_mi = 0.5 + 0.5 * spec.memory_intensity;
  hs.baseline_mpi = interference_.base_mpi + interference_.mpi_per_intensity * spec.memory_intensity;

  uint16_t f = 0;
  if (spec.sched_class == WorkloadClass::kLatencySensitive) f |= kTaskFlagLatencySensitive;
  if (spec.alt_cpu_demand >= 0.0 && spec.mode_half_period > 0) f |= kTaskFlagBimodal;
  if (spec.diurnal.amplitude != 0.0) f |= kTaskFlagDiurnal;
  if (spec.demand_walk_sigma > 0.0) f |= kTaskFlagDemandWalk;
  if (spec.demand_cv > 0.0) f |= kTaskFlagDemandNoise;
  if (spec.cpi_noise_cv > 0.0) f |= kTaskFlagCpiNoise;
  if (spec.cpi_walk_sigma > 0.0) f |= kTaskFlagCpiWalk;
  if (spec.cpi_step_time >= 0) f |= kTaskFlagCpiStep;
  if (spec.idle_cpi_inflation > 0.0) f |= kTaskFlagIdleInflation;
  if (spec.base_latency_ms > 0.0) f |= kTaskFlagLatency;
  if (spec.latency_io_noise_cv > 0.0) f |= kTaskFlagLatencyNoise;
  if (spec.instr_per_txn > 0.0) f |= kTaskFlagTps;
  if (spec.tps_noise_cv > 0.0) f |= kTaskFlagTpsNoise;
  if (spec.cap_behavior != CapBehavior::kTolerate) f |= kTaskFlagCapReactive;
  flags_[slot] = f;

  id_to_slot_[id] = static_cast<int32_t>(slot);
  ++live_count_;
  ++membership_version_;
  order_dirty_ = true;
  return slots_[slot].get();
}

bool TaskTable::Remove(std::string_view name) {
  const std::optional<uint32_t> id = names_.Find(name);
  if (!id.has_value() || *id >= id_to_slot_.size() || id_to_slot_[*id] < 0) {
    return false;
  }
  const uint32_t slot = static_cast<uint32_t>(id_to_slot_[*id]);
  id_to_slot_[*id] = -1;
  slots_[slot].reset();
  free_slots_.push_back(slot);
  --live_count_;
  ++membership_version_;
  order_dirty_ = true;
  return true;
}

Task* TaskTable::Find(std::string_view name) {
  const std::optional<uint32_t> id = names_.Find(name);
  if (!id.has_value() || *id >= id_to_slot_.size()) {
    return nullptr;
  }
  const int32_t slot = id_to_slot_[*id];
  return slot >= 0 ? slots_[slot].get() : nullptr;
}

const Task* TaskTable::Find(std::string_view name) const {
  return const_cast<TaskTable*>(this)->Find(name);
}

const std::vector<Task*>& TaskTable::TasksByName() {
  if (order_dirty_) {
    RebuildOrder();
  }
  return tasks_by_name_;
}

const std::vector<uint32_t>& TaskTable::SlotsByName() {
  if (order_dirty_) {
    RebuildOrder();
  }
  return slots_by_name_;
}

const TaskTable::DenseConst& TaskTable::DenseInputs() {
  if (order_dirty_) {
    RebuildOrder();
  }
  return dense_;
}

void TaskTable::RebuildOrder() {
  tasks_by_name_.clear();
  tasks_by_name_.reserve(live_count_);
  for (const std::unique_ptr<Task>& task : slots_) {
    if (task != nullptr) {
      tasks_by_name_.push_back(task.get());
    }
  }
  std::sort(tasks_by_name_.begin(), tasks_by_name_.end(),
            [](const Task* a, const Task* b) { return a->name() < b->name(); });

  const size_t n = tasks_by_name_.size();
  slots_by_name_.resize(n);
  dense_.footprint.resize(n);
  dense_.memory_intensity.resize(n);
  dense_.sens_cw.resize(n);
  dense_.w_sens.resize(n);
  dense_.half_mi.resize(n);
  dense_.baseline_mpi.resize(n);
  dense_.latency_sensitive.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const uint32_t slot = tasks_by_name_[k]->slot();
    slots_by_name_[k] = slot;
    const HotSpec& hs = hot_[slot];
    dense_.footprint[k] = hs.footprint;
    dense_.memory_intensity[k] = hs.memory_intensity;
    dense_.sens_cw[k] = hs.sens_cw;
    dense_.w_sens[k] = hs.w_sens;
    dense_.half_mi[k] = hs.half_mi;
    dense_.baseline_mpi[k] = hs.baseline_mpi;
    dense_.latency_sensitive[k] = (flags_[slot] & kTaskFlagLatencySensitive) != 0 ? 1 : 0;
  }
  order_dirty_ = false;
}

void TaskTable::RunCapBehavior(uint32_t slot, MicroTime now) {
  slots_[slot]->UpdateCapBehavior(now);
}

}  // namespace cpi2
