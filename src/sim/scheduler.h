// Central cluster scheduler (admission control + placement).
//
// Mirrors the behaviour section 2 of the paper describes: a per-cluster
// scheduler that never oversubscribes latency-sensitive/production CPU
// reservations but speculatively over-commits batch work; preempted or
// self-terminated batch tasks are simply restarted elsewhere. It also
// supports the paper's "avoid co-locating job J with antagonist A"
// constraint (section 5 / future work).

#ifndef CPI2_SIM_SCHEDULER_H_
#define CPI2_SIM_SCHEDULER_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/machine.h"
#include "sim/task.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpi2 {

// A job: N tasks stamped from one template.
struct JobSpec {
  std::string name;
  int task_count = 1;
  TaskSpec task;  // task.job_name is overwritten with `name` on submit.
};

class Scheduler {
 public:
  struct Options {
    // Batch reservations may total up to overcommit * cores per machine.
    double batch_overcommit = 1.5;
    // Delay before a failed batch task's replacement is placed.
    MicroTime restart_delay = 30 * kMicrosPerSecond;
    // Restart batch tasks that exit; latency-sensitive tasks are restarted
    // too (their frameworks always do).
    bool restart_exited_tasks = true;

    // Preemption (section 2: "If the scheduler guesses wrong, it may need
    // to preempt a batch task and move it to another machine"): when a
    // machine's batch tasks have been granted less than
    // preemption_satisfaction of their demand for preemption_patience
    // consecutive Maintain calls, the largest batch task there is evicted
    // and requeued elsewhere. 0 disables.
    double preemption_satisfaction = 0.4;
    int preemption_patience = 60;
  };

  Scheduler(std::vector<Machine*> machines, Options options, uint64_t seed);

  // Creates `spec.task_count` tasks named "<job>.<index>" and places them.
  // Fails (without placing anything) if admission control cannot fit them.
  Status SubmitJob(const JobSpec& spec);

  // Places a single task; used for replacements and by tests.
  Status PlaceTask(const std::string& task_name, const TaskSpec& spec);

  // Removes a task from wherever it runs.
  Status EvictTask(const std::string& task_name);

  // Kill-and-restart elsewhere: the paper's manual "migration" (section 5).
  // The replacement avoids the current machine.
  Status MigrateTask(const std::string& task_name);

  // Reaps exited tasks from all machines and schedules replacements.
  void Maintain(MicroTime now);

  // Records that tasks of `job` should not land on machines running tasks
  // of `antagonist_job` (and vice versa is NOT implied).
  void AddAntagonistConstraint(const std::string& job, const std::string& antagonist_job);

  // Where a task currently runs, or nullptr.
  Machine* LocateTask(const std::string& task_name);

  int pending_restarts() const { return static_cast<int>(restart_queue_.size()); }
  int total_placed() const { return total_placed_; }
  int total_restarts() const { return total_restarts_; }
  int total_preemptions() const { return total_preemptions_; }

 private:
  struct PendingRestart {
    std::string task_name;
    TaskSpec spec;
    MicroTime ready_at = 0;
    std::string avoid_machine;
  };

  // Picks the best machine for `spec`, or nullptr if none fits.
  Machine* PickMachine(const TaskSpec& spec, const std::string& avoid_machine);
  bool Fits(size_t machine_index, const TaskSpec& spec) const;
  bool ViolatesConstraint(const Machine& machine, const TaskSpec& spec) const;
  // Position of `machine` in machines_ (the index into the reservation
  // vectors). Every machine the scheduler touches came from machines_.
  size_t IndexOf(const Machine* machine) const;

  std::vector<Machine*> machines_;
  Options options_;
  Rng rng_;
  // task name -> machine.
  std::map<std::string, Machine*> locations_;
  // Reserved CPU (production / all), indexed by machine position. Machines
  // are fixed at construction, so flat vectors replace the former per-name
  // maps: the hot Fits/PickMachine path indexes instead of hashing strings.
  std::vector<double> production_reserved_;
  std::vector<double> total_reserved_;
  std::unordered_map<const Machine*, size_t> machine_index_;
  // job -> set of antagonist jobs to avoid.
  std::map<std::string, std::set<std::string>> avoid_;
  std::deque<PendingRestart> restart_queue_;
  // Consecutive starved Maintain calls, indexed by machine position.
  std::vector<int> starved_streak_;
  int total_placed_ = 0;
  int total_restarts_ = 0;
  int total_preemptions_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_SIM_SCHEDULER_H_
