#include "sim/cluster.h"

#include <cassert>
#include <thread>

#include "util/string_util.h"

namespace cpi2 {

Cluster::Cluster(Options options)
    : options_(options), clock_(options.start_time), rng_(options.seed) {}

void Cluster::AddMachines(const Platform& platform, int count) {
  assert(scheduler_ == nullptr && "AddMachines must precede BuildScheduler");
  for (int i = 0; i < count; ++i) {
    const std::string name =
        StrFormat("m%04d-%s", static_cast<int>(machines_.size()), platform.name.c_str());
    machines_.push_back(std::make_unique<Machine>(name, platform, rng_(), options_.interference));
  }
  machines_raw_.clear();
}

void Cluster::BuildScheduler() {
  assert(scheduler_ == nullptr);
  scheduler_ = std::make_unique<Scheduler>(machines(), options_.scheduler, rng_());
}

Scheduler& Cluster::scheduler() {
  assert(scheduler_ != nullptr && "call BuildScheduler() first");
  return *scheduler_;
}

const std::vector<Machine*>& Cluster::machines() {
  if (machines_raw_.size() != machines_.size()) {
    machines_raw_.clear();
    machines_raw_.reserve(machines_.size());
    for (auto& machine : machines_) {
      machines_raw_.push_back(machine.get());
    }
  }
  return machines_raw_;
}

ThreadPool* Cluster::pool() {
  if (!pool_resolved_) {
    pool_resolved_ = true;
    int threads = options_.threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (threads > 1) {
      // ParallelFor counts the calling thread as a lane, so N-way parallelism
      // needs N - 1 workers.
      pool_ = std::make_unique<ThreadPool>(threads - 1);
    }
  }
  return pool_.get();
}

void Cluster::Tick() {
  clock_.Advance(options_.tick);
  const MicroTime now = clock_.NowMicros();
  ThreadPool* workers = pool();
  if (workers != nullptr && machines_.size() > 1) {
    const std::vector<Machine*>& shard = machines();
    workers->ParallelFor(shard.size(),
                         [&](size_t i) { shard[i]->Tick(now, options_.tick); });
  } else {
    for (auto& machine : machines_) {
      machine->Tick(now, options_.tick);
    }
  }
  if (scheduler_ != nullptr) {
    scheduler_->Maintain(now);
  }
  for (const TickListener& listener : listeners_) {
    listener(now);
  }
}

void Cluster::RunFor(MicroTime duration) {
  const MicroTime end = clock_.NowMicros() + duration;
  while (clock_.NowMicros() < end) {
    Tick();
  }
}

}  // namespace cpi2
