#include "sim/cluster.h"

#include <cassert>

#include "util/string_util.h"

namespace cpi2 {

Cluster::Cluster(Options options)
    : options_(options), clock_(options.start_time), rng_(options.seed) {}

void Cluster::AddMachines(const Platform& platform, int count) {
  assert(scheduler_ == nullptr && "AddMachines must precede BuildScheduler");
  for (int i = 0; i < count; ++i) {
    const std::string name =
        StrFormat("m%04d-%s", static_cast<int>(machines_.size()), platform.name.c_str());
    machines_.push_back(
        std::make_unique<Machine>(name, platform, rng_(), options_.interference));
  }
}

void Cluster::BuildScheduler() {
  assert(scheduler_ == nullptr);
  std::vector<Machine*> raw;
  raw.reserve(machines_.size());
  for (auto& machine : machines_) {
    raw.push_back(machine.get());
  }
  scheduler_ = std::make_unique<Scheduler>(std::move(raw), options_.scheduler, rng_());
}

Scheduler& Cluster::scheduler() {
  assert(scheduler_ != nullptr && "call BuildScheduler() first");
  return *scheduler_;
}

std::vector<Machine*> Cluster::machines() {
  std::vector<Machine*> raw;
  raw.reserve(machines_.size());
  for (auto& machine : machines_) {
    raw.push_back(machine.get());
  }
  return raw;
}

void Cluster::Tick() {
  clock_.Advance(options_.tick);
  const MicroTime now = clock_.NowMicros();
  for (auto& machine : machines_) {
    machine->Tick(now, options_.tick);
  }
  if (scheduler_ != nullptr) {
    scheduler_->Maintain(now);
  }
  for (const TickListener& listener : listeners_) {
    listener(now);
  }
}

void Cluster::RunFor(MicroTime duration) {
  const MicroTime end = clock_.NowMicros() + duration;
  while (clock_.NowMicros() < end) {
    Tick();
  }
}

}  // namespace cpi2
