// Deterministic fault-injection plane for the CPI2 pipeline.
//
// The paper's pipeline (per-machine sampling -> cluster aggregation -> spec
// push-back -> local enforcement) silently assumes samples arrive, specs
// stay fresh, and counters never glitch. FaultPlane makes every one of
// those assumptions breakable on purpose, at every pipeline boundary:
//
//   - agent crash/restart: a machine's agent process dies, losing its spec
//     cache, detector history, and outbox; it restarts after a delay,
//   - aggregator outage windows: the collection service is unreachable on a
//     periodic schedule (deploys, failovers); optionally it also loses its
//     in-memory state at outage start (crash, not just partition),
//   - spec-push faults: a pushed spec is lost, delayed, or duplicated,
//   - per-machine sample-loss bursts: a ToR switch brownout drops every
//     sample a machine emits for a while (heavier-tailed than the legacy
//     uniform drop knob, which ClusterHarness keeps as a shim),
//   - ack loss: delivery succeeded but the acknowledgement did not, so the
//     agent retries and the aggregator must deduplicate,
//   - counter glitches: rates handed to perf/FlakyCounterSource.
//
// Determinism contract: every fault draw comes from a dedicated per-machine
// RNG stream (forked from the seed in machine order) or from the single
// spec-push stream, and all draws happen on the driving thread — BeginTick
// in machine order before the parallel phase, per-sample draws during the
// serial merge phase. A run with faults active is therefore bit-identical
// across thread counts, which tests/harness/parallel_determinism_test.cc
// pins down.

#ifndef CPI2_SIM_FAULT_PLANE_H_
#define CPI2_SIM_FAULT_PLANE_H_

#include <cstdint>
#include <vector>

#include "util/clock.h"
#include "util/rng.h"

namespace cpi2 {

class FaultPlane {
 public:
  struct Options {
    // Typically Cluster::Options::seed; the per-machine streams fork from it
    // so a different cluster seed produces different fault schedules.
    uint64_t seed = 20130415;

    // --- agent process faults --------------------------------------------
    // Per machine, per tick probability that the agent crashes. The agent
    // is down (no sampling, no detection, no enforcement bookkeeping) for
    // `agent_restart_delay`, then restarts cold.
    double agent_crash_per_tick = 0.0;
    MicroTime agent_restart_delay = 5 * kMicrosPerSecond;

    // --- aggregator outages ----------------------------------------------
    // The aggregator is unreachable during [phase + k*period,
    // phase + k*period + duration) for every k >= 0. 0 period = never.
    MicroTime aggregator_outage_period = 0;
    MicroTime aggregator_outage_duration = 0;
    MicroTime aggregator_outage_phase = 0;
    // When true each outage is a crash: the aggregator's in-memory spec
    // state is lost at outage start and restored from the harness's last
    // checkpoint (if any) at outage end.
    bool aggregator_crash_on_outage = false;
    // How often the harness checkpoints the aggregator (0 = never). Only
    // meaningful with aggregator_crash_on_outage.
    MicroTime aggregator_checkpoint_interval = 0;

    // --- spec push-back channel ------------------------------------------
    double spec_push_loss_rate = 0.0;
    double spec_push_duplicate_rate = 0.0;
    double spec_push_delay_rate = 0.0;
    MicroTime spec_push_delay = 30 * kMicrosPerSecond;

    // --- sample transport -------------------------------------------------
    // Per machine, per tick probability that a loss burst starts; while a
    // burst is active every sample the machine delivers is lost.
    double sample_burst_per_tick = 0.0;
    MicroTime sample_burst_duration = 0;
    // Probability that a successful delivery's ack is lost: the aggregator
    // has the sample, the agent retries it anyway (exercises dedup).
    double ack_loss_rate = 0.0;
    // Per-batch probability that a sample batch arrives bit-flipped: the
    // receiver's CRC check rejects it and every unsettled sample in the
    // batch is lost (counted as a wire decode error). Only meaningful on
    // the binary wire path — per-sample struct delivery has no bytes to
    // corrupt.
    double wire_corrupt_rate = 0.0;

    // --- counter substrate (consumed by perf/FlakyCounterSource) ---------
    double counter_zero_rate = 0.0;
    double counter_garbage_rate = 0.0;
    double counter_stuck_rate = 0.0;
  };

  // Event counters, aggregated cluster-wide.
  struct Stats {
    int64_t agent_crashes = 0;
    int64_t agent_restarts = 0;
    int64_t aggregator_outages = 0;
    int64_t aggregator_outage_ticks = 0;
    int64_t sample_bursts = 0;
    int64_t spec_pushes_lost = 0;
    int64_t spec_pushes_delayed = 0;
    int64_t spec_pushes_duplicated = 0;
    int64_t acks_lost = 0;
    int64_t batches_corrupted = 0;
  };

  FaultPlane(const Options& options, int machines);

  // True when any fault class has a non-zero rate/schedule; lets the
  // harness skip the fault plane entirely on clean runs.
  bool AnyFaultsEnabled() const;

  // Advances all schedules to `now`. MUST run on the driving thread before
  // the parallel agent phase: it draws from the per-machine streams in
  // machine order and computes this tick's crash/restart/burst/outage
  // state. Call exactly once per tick.
  void BeginTick(MicroTime now);

  // --- per-tick state (valid after BeginTick, stable within the tick) ----
  // The machine's agent is down this tick (crashed, not yet restarted).
  bool AgentDown(int machine) const { return machines_[machine].agent_down; }
  // The machine's agent restarts this tick: the harness must reset the
  // agent and reconcile leftover caps before ticking it.
  bool AgentRestarting(int machine) const { return machines_[machine].agent_restarting; }
  bool SampleBurstActive(int machine) const { return machines_[machine].burst_active; }
  bool AggregatorDown() const { return aggregator_down_; }
  // The outage boundary transitions, each true for exactly one tick.
  bool AggregatorCrashedThisTick() const { return aggregator_crashed_this_tick_; }
  bool AggregatorRecoveredThisTick() const { return aggregator_recovered_this_tick_; }
  // A checkpoint is due this tick (schedule only; the harness takes it).
  bool CheckpointDue() const { return checkpoint_due_; }

  // --- serial-phase draws ------------------------------------------------
  // Per-sample ack-loss draw for `machine`. Only call from the merge phase
  // (machine order); draws from that machine's stream.
  bool DrawAckLost(int machine);
  // Per-batch corruption draw for `machine` (merge phase, machine order):
  // one draw per batch delivery attempt, before any per-sample draws.
  bool DrawWireCorrupt(int machine);
  // Per-push spec-channel draws, in this order, from the spec stream.
  bool DrawSpecPushLost();
  bool DrawSpecPushDelayed();
  bool DrawSpecPushDuplicated();

  // Schedules a one-shot agent crash at `now` (tests and operator drills);
  // takes effect at the next BeginTick. `restart_delay` < 0 uses the
  // configured default.
  void InjectAgentCrash(int machine, MicroTime restart_delay = -1);

  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }

  // The fault-stream seed for machine `i`'s counter glitches, distinct from
  // the stream used for crash/burst draws.
  uint64_t CounterSeedFor(int machine) const;

 private:
  struct MachineState {
    Rng rng;                         // crash/burst/ack draws for this machine
    MicroTime agent_down_until = 0;  // 0 = agent up
    MicroTime burst_until = 0;
    MicroTime pending_crash_delay = -2;  // >= -1: a manual crash is queued
    bool agent_down = false;
    bool agent_restarting = false;
    bool burst_active = false;

    explicit MachineState(Rng stream) : rng(stream) {}
  };

  Options options_;
  std::vector<MachineState> machines_;
  Rng spec_rng_;
  MicroTime last_checkpoint_ = -1;
  bool aggregator_down_ = false;
  bool aggregator_crashed_this_tick_ = false;
  bool aggregator_recovered_this_tick_ = false;
  bool checkpoint_due_ = false;
  Stats stats_;
};

}  // namespace cpi2

#endif  // CPI2_SIM_FAULT_PLANE_H_
