#include "sim/interference.h"

#include <algorithm>

namespace cpi2 {

std::vector<InterferenceResult> ComputeInterference(const Platform& platform,
                                                    const InterferenceParams& params,
                                                    const std::vector<TaskLoad>& loads) {
  std::vector<InterferenceResult> results;
  ComputeInterference(platform, params, loads, &results);
  return results;
}

void ComputeInterference(const Platform& platform, const InterferenceParams& params,
                         const std::vector<TaskLoad>& loads,
                         std::vector<InterferenceResult>* out) {
  std::vector<InterferenceResult>& results = *out;
  results.assign(loads.size(), InterferenceResult{});

  // Totals once, then subtract each task's own contribution.
  double total_cache_pollution = 0.0;
  double total_bus_demand = 0.0;
  for (const TaskLoad& load : loads) {
    const double footprint = platform.l3_cache_mb > 0.0
                                 ? std::min(1.0, load.cache_mb / platform.l3_cache_mb)
                                 : 0.0;
    total_cache_pollution += load.cpu * footprint;
    total_bus_demand += load.cpu * load.memory_intensity;
  }

  for (size_t i = 0; i < loads.size(); ++i) {
    const TaskLoad& load = loads[i];
    const double own_footprint = platform.l3_cache_mb > 0.0
                                     ? std::min(1.0, load.cache_mb / platform.l3_cache_mb)
                                     : 0.0;
    const double cache_pressure =
        std::max(0.0, total_cache_pollution - load.cpu * own_footprint);
    const double bus_pressure =
        platform.mem_bandwidth_units > 0.0
            ? std::max(0.0, total_bus_demand - load.cpu * load.memory_intensity) /
                  platform.mem_bandwidth_units
            : 0.0;

    InterferenceResult& r = results[i];
    const double cache_term = load.sensitivity * params.cache_weight * cache_pressure;
    const double bw_term =
        params.bw_weight * bus_pressure * (0.5 + 0.5 * load.memory_intensity);
    r.cpi_multiplier = 1.0 + cache_term + bw_term;

    const double baseline_mpi = params.base_mpi + params.mpi_per_intensity * load.memory_intensity;
    r.l3_mpi = baseline_mpi *
               (1.0 + params.mpi_contention_weight * load.sensitivity * cache_pressure);
  }
}

void ComputeInterferenceBatch(const Platform& platform, const InterferenceParams& params,
                              size_t n, const InterferenceBatchInputs& in,
                              double* cpi_multiplier, double* l3_mpi) {
  // Totals once, in array order: the additions must associate exactly like
  // the scalar reference loop's.
  double total_cache_pollution = 0.0;
  double total_bus_demand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total_cache_pollution += in.cpu[i] * in.footprint[i];
    total_bus_demand += in.cpu[i] * in.memory_intensity[i];
  }

  const double bw_weight = params.bw_weight;
  const double mem_bw = platform.mem_bandwidth_units;
  if (mem_bw > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      const double cache_pressure =
          std::max(0.0, total_cache_pollution - in.cpu[i] * in.footprint[i]);
      const double bus_pressure =
          std::max(0.0, total_bus_demand - in.cpu[i] * in.memory_intensity[i]) / mem_bw;
      cpi_multiplier[i] =
          1.0 + in.sens_cw[i] * cache_pressure + bw_weight * bus_pressure * in.half_mi[i];
      l3_mpi[i] = in.baseline_mpi[i] * (1.0 + in.w_sens[i] * cache_pressure);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const double cache_pressure =
          std::max(0.0, total_cache_pollution - in.cpu[i] * in.footprint[i]);
      cpi_multiplier[i] = 1.0 + in.sens_cw[i] * cache_pressure;
      l3_mpi[i] = in.baseline_mpi[i] * (1.0 + in.w_sens[i] * cache_pressure);
    }
  }
}

}  // namespace cpi2
