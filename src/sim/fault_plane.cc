#include "sim/fault_plane.h"

namespace cpi2 {
namespace {

// Stream-domain separators so the crash/burst stream, the counter-glitch
// stream, and the spec-push stream are distinct even for machine 0 / seed 0.
constexpr uint64_t kFaultDomain = 0xfa17'0000'0000'0001ULL;
constexpr uint64_t kCounterDomain = 0xfa17'0000'0000'0002ULL;
constexpr uint64_t kSpecDomain = 0xfa17'0000'0000'0003ULL;

}  // namespace

FaultPlane::FaultPlane(const Options& options, int machines)
    : options_(options), spec_rng_(options.seed ^ kSpecDomain) {
  machines_.reserve(machines);
  Rng root(options.seed ^ kFaultDomain);
  for (int i = 0; i < machines; ++i) {
    // Fork in machine order: machine i's stream depends only on the seed and
    // i, never on how many machines come after it or on thread scheduling.
    machines_.emplace_back(root.Fork());
  }
}

bool FaultPlane::AnyFaultsEnabled() const {
  return options_.agent_crash_per_tick > 0 || options_.aggregator_outage_period > 0 ||
         options_.spec_push_loss_rate > 0 || options_.spec_push_duplicate_rate > 0 ||
         options_.spec_push_delay_rate > 0 || options_.sample_burst_per_tick > 0 ||
         options_.ack_loss_rate > 0 || options_.wire_corrupt_rate > 0 ||
         options_.counter_zero_rate > 0 ||
         options_.counter_garbage_rate > 0 || options_.counter_stuck_rate > 0;
}

void FaultPlane::BeginTick(MicroTime now) {
  // Aggregator outage schedule: pure arithmetic on the clock, no draws, so
  // it is trivially deterministic and easy to line up with spec pushes in
  // tests.
  aggregator_crashed_this_tick_ = false;
  aggregator_recovered_this_tick_ = false;
  bool down = false;
  if (options_.aggregator_outage_period > 0 && options_.aggregator_outage_duration > 0 &&
      now >= options_.aggregator_outage_phase) {
    const MicroTime offset =
        (now - options_.aggregator_outage_phase) % options_.aggregator_outage_period;
    down = offset < options_.aggregator_outage_duration;
  }
  if (down && !aggregator_down_) {
    ++stats_.aggregator_outages;
    aggregator_crashed_this_tick_ = options_.aggregator_crash_on_outage;
  } else if (!down && aggregator_down_) {
    aggregator_recovered_this_tick_ = options_.aggregator_crash_on_outage;
  }
  aggregator_down_ = down;
  if (down) {
    ++stats_.aggregator_outage_ticks;
  }

  checkpoint_due_ = false;
  if (options_.aggregator_checkpoint_interval > 0 && !down &&
      (last_checkpoint_ < 0 || now - last_checkpoint_ >= options_.aggregator_checkpoint_interval)) {
    checkpoint_due_ = true;
    last_checkpoint_ = now;
  }

  // Per-machine draws, in machine order. Every machine draws the same
  // number of variates per tick regardless of its current state, so one
  // machine's crash never shifts another machine's stream.
  for (MachineState& m : machines_) {
    m.agent_restarting = false;

    const bool crash_drawn =
        options_.agent_crash_per_tick > 0 && m.rng.Bernoulli(options_.agent_crash_per_tick);
    const bool burst_drawn =
        options_.sample_burst_per_tick > 0 && m.rng.Bernoulli(options_.sample_burst_per_tick);

    if (m.agent_down && now >= m.agent_down_until) {
      m.agent_down = false;
      m.agent_restarting = true;
      ++stats_.agent_restarts;
    }
    MicroTime crash_delay = -1;
    bool crash = false;
    if (m.pending_crash_delay >= -1) {  // manual InjectAgentCrash wins
      crash = true;
      crash_delay = m.pending_crash_delay;
      m.pending_crash_delay = -2;
    } else if (crash_drawn) {
      crash = true;
    }
    if (crash && !m.agent_down) {
      m.agent_down = true;
      m.agent_restarting = false;
      m.agent_down_until =
          now + (crash_delay >= 0 ? crash_delay : options_.agent_restart_delay);
      ++stats_.agent_crashes;
    }

    if (burst_drawn && m.burst_until < now + options_.sample_burst_duration) {
      if (m.burst_until <= now) {
        ++stats_.sample_bursts;
      }
      m.burst_until = now + options_.sample_burst_duration;
    }
    m.burst_active = m.burst_until > now;
  }
}

bool FaultPlane::DrawAckLost(int machine) {
  if (options_.ack_loss_rate <= 0) {
    return false;
  }
  const bool lost = machines_[machine].rng.Bernoulli(options_.ack_loss_rate);
  if (lost) {
    ++stats_.acks_lost;
  }
  return lost;
}

bool FaultPlane::DrawWireCorrupt(int machine) {
  if (options_.wire_corrupt_rate <= 0) {
    return false;
  }
  const bool corrupted = machines_[machine].rng.Bernoulli(options_.wire_corrupt_rate);
  if (corrupted) {
    ++stats_.batches_corrupted;
  }
  return corrupted;
}

bool FaultPlane::DrawSpecPushLost() {
  if (options_.spec_push_loss_rate <= 0) {
    return false;
  }
  const bool lost = spec_rng_.Bernoulli(options_.spec_push_loss_rate);
  if (lost) {
    ++stats_.spec_pushes_lost;
  }
  return lost;
}

bool FaultPlane::DrawSpecPushDelayed() {
  if (options_.spec_push_delay_rate <= 0) {
    return false;
  }
  const bool delayed = spec_rng_.Bernoulli(options_.spec_push_delay_rate);
  if (delayed) {
    ++stats_.spec_pushes_delayed;
  }
  return delayed;
}

bool FaultPlane::DrawSpecPushDuplicated() {
  if (options_.spec_push_duplicate_rate <= 0) {
    return false;
  }
  const bool duplicated = spec_rng_.Bernoulli(options_.spec_push_duplicate_rate);
  if (duplicated) {
    ++stats_.spec_pushes_duplicated;
  }
  return duplicated;
}

void FaultPlane::InjectAgentCrash(int machine, MicroTime restart_delay) {
  machines_[machine].pending_crash_delay = restart_delay >= 0 ? restart_delay : -1;
}

uint64_t FaultPlane::CounterSeedFor(int machine) const {
  return options_.seed ^ kCounterDomain ^ (static_cast<uint64_t>(machine) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace cpi2
