#include "sim/trace.h"

namespace cpi2 {

void TraceRecorder::Watch(Machine* machine, const std::string& task_name) {
  watched_.insert({task_name, Watched{machine, TaskTrace{}}});
}

void TraceRecorder::OnTick(MicroTime now) {
  if (last_sample_ >= 0 && now - last_sample_ < interval_) {
    return;
  }
  last_sample_ = now;
  for (auto& [task_name, watched] : watched_) {
    const Task* task = watched.machine->FindTask(task_name);
    if (task == nullptr) {
      continue;
    }
    watched.trace.cpu_usage.Append(now, task->last_usage());
    watched.trace.cpi.Append(now, task->last_cpi());
    watched.trace.latency_ms.Append(now, task->last_latency_ms());
    watched.trace.tps.Append(now, task->last_tps());
    watched.trace.threads.Append(now, static_cast<double>(task->threads()));
  }
}

const TaskTrace& TraceRecorder::trace(const std::string& task_name) const {
  const auto it = watched_.find(task_name);
  return it != watched_.end() ? it->second.trace : empty_;
}

}  // namespace cpi2
