// Dense slot table for one machine's tasks: the SoA tick engine's storage.
//
// The legacy layout kept each Machine's tasks in a
// std::map<std::string, std::unique_ptr<Task>> and the tick loop chased a
// pointer per task per field. TaskTable replaces that with:
//
//   - a StringInterner assigning every container name a dense uint32 id
//     (ids are never reused; an id->slot vector gives O(1) name lookup),
//   - a slot per live task, recycled LIFO through a free list,
//   - every *mutable* per-task field in a slot-indexed parallel array
//     (RNG stream, caps, counters, walk state, cap-reaction state), plus a
//     HotSpec of admission-time-derived constants (lognormal mu/sigma pairs,
//     platform-folded base CPI, interference coefficients),
//   - name-ordered views (TasksByName/SlotsByName) rebuilt lazily after a
//     membership change, so tick iteration order is exactly the order the
//     legacy map produced — slot numbers never leak into observable output.
//
// The Task object survives as a stable *handle* (name, spec, per-instance
// scale draws) whose accessors read and write its slot; Machine's SoA tick
// loop bypasses the handles and walks the arrays directly. Both produce
// bit-identical results — see DESIGN.md §14 for the determinism argument.

#ifndef CPI2_SIM_TASK_TABLE_H_
#define CPI2_SIM_TASK_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/interference.h"
#include "sim/platform.h"
#include "sim/task.h"
#include "util/clock.h"
#include "util/interner.h"
#include "util/rng.h"

namespace cpi2 {

// Per-slot feature bits: which optional per-tick stages a task actually
// uses. Every gated stage is multiplicative with identity 1.0 (or draws
// nothing when its cv/sigma is zero), so skipping a cleared stage is
// bit-identical to the legacy unconditional evaluation.
enum TaskFlag : uint16_t {
  kTaskFlagLatencySensitive = 1u << 0,
  kTaskFlagBimodal = 1u << 1,          // alt_cpu_demand >= 0 && mode_half_period > 0
  kTaskFlagDiurnal = 1u << 2,          // diurnal.amplitude != 0
  kTaskFlagDemandWalk = 1u << 3,       // demand_walk_sigma > 0
  kTaskFlagDemandNoise = 1u << 4,      // demand_cv > 0
  kTaskFlagCpiNoise = 1u << 5,         // cpi_noise_cv > 0
  kTaskFlagCpiWalk = 1u << 6,          // cpi_walk_sigma > 0
  kTaskFlagCpiStep = 1u << 7,          // cpi_step_time >= 0
  kTaskFlagIdleInflation = 1u << 8,    // idle_cpi_inflation > 0
  kTaskFlagLatency = 1u << 9,          // base_latency_ms > 0
  kTaskFlagLatencyNoise = 1u << 10,    // latency_io_noise_cv > 0
  kTaskFlagTps = 1u << 11,             // instr_per_txn > 0
  kTaskFlagTpsNoise = 1u << 12,        // tps_noise_cv > 0
  kTaskFlagCapReactive = 1u << 13,     // cap_behavior != kTolerate
};

// Demand-shaping features rare enough to share one cold branch in the tick
// loop's demand pass.
inline constexpr uint16_t kTaskFlagRareDemand =
    kTaskFlagBimodal | kTaskFlagDiurnal | kTaskFlagDemandWalk;

class TaskTable {
 public:
  // `platform` and `interference` are the owning machine's: the per-task
  // derived constants fold them in at admission time.
  TaskTable(const Platform& platform, const InterferenceParams& interference);

  // Task handles hold back-pointers into the table.
  TaskTable(const TaskTable&) = delete;
  TaskTable& operator=(const TaskTable&) = delete;

  // Admits a task under `name` with its own RNG stream. Returns nullptr if
  // a live task already uses the name. The returned Task* keeps its address
  // until Remove(name); churn in other slots never moves it.
  Task* Add(const std::string& name, const TaskSpec& spec, const Rng& rng);

  // Frees `name`'s slot (recycled LIFO). Returns false if not live.
  bool Remove(std::string_view name);

  Task* Find(std::string_view name);
  const Task* Find(std::string_view name) const;

  size_t size() const { return live_count_; }

  // Live tasks / their slots in container-name order — the iteration order
  // the legacy std::map layout had, which is the order every observable
  // side effect (RNG draws, sampler registration, exit draining) happens
  // in. Rebuilt lazily after a membership change; references invalidated
  // by Add/Remove.
  const std::vector<Task*>& TasksByName();
  const std::vector<uint32_t>& SlotsByName();

  // Bumped by every successful Add/Remove. Consumers mirroring the
  // membership (the harness agent sync) skip their reconciliation scan
  // while it is unchanged.
  uint64_t membership_version() const { return membership_version_; }

  // True once any live task flags itself exited; cleared by
  // AcknowledgeExits so DrainExited can early-out without scanning.
  bool any_exited() const { return any_exited_; }
  void AcknowledgeExits() { any_exited_ = false; }

  // Advances `slot`'s cap-reaction state machine (paper cases 5/6).
  void RunCapBehavior(uint32_t slot, MicroTime now);

 private:
  friend class Task;
  friend class Machine;

  // Admission-time-derived constants, one per slot. The lognormal mu/sigma
  // pairs are the exact expressions LognormalNoise evaluates per draw,
  // hoisted; the folded products keep the same association the scalar code
  // uses, so results stay bit-identical.
  struct HotSpec {
    double base_demand = 0.0;
    double demand_mu = 0.0, demand_sigma = 0.0;  // from demand_cv
    double cpi_mu = 0.0, cpi_sigma = 0.0;        // from cpi_noise_cv
    double lat_mu = 0.0, lat_sigma = 0.0;        // from latency_io_noise_cv
    double tps_mu = 0.0, tps_sigma = 0.0;        // from tps_noise_cv
    double base_cpi_platform = 0.0;  // base_cpi * cpi_scale * platform.cpi_scale
    double one_minus_io = 1.0;       // 1 - latency_io_fraction
    double io_fraction = 0.0;
    double latency_base_scaled = 0.0;  // base_latency_ms * latency_scale
    double idle_cpi_inflation = 0.0;
    double instr_per_txn = 0.0;
    // Interference-kernel constants (see InterferenceBatchInputs).
    double footprint = 0.0;
    double memory_intensity = 0.0;
    double sens_cw = 0.0;
    double w_sens = 0.0;
    double half_mi = 0.0;
    double baseline_mpi = 0.0;
  };

  // Name-order (k-indexed) copies of the interference constants, packed
  // contiguously for ComputeInterferenceBatch; rebuilt with SlotsByName.
  struct DenseConst {
    std::vector<double> footprint;
    std::vector<double> memory_intensity;
    std::vector<double> sens_cw;
    std::vector<double> w_sens;
    std::vector<double> half_mi;
    std::vector<double> baseline_mpi;
    std::vector<uint8_t> latency_sensitive;
  };

  const DenseConst& DenseInputs();
  void RebuildOrder();

  Platform platform_;
  InterferenceParams interference_;
  StringInterner names_;
  std::vector<int32_t> id_to_slot_;           // interner id -> slot, -1 if not live
  std::vector<std::unique_ptr<Task>> slots_;  // slot -> handle, null when free
  std::vector<uint32_t> free_slots_;          // LIFO
  size_t live_count_ = 0;
  uint64_t membership_version_ = 0;
  bool any_exited_ = false;
  bool order_dirty_ = true;
  std::vector<Task*> tasks_by_name_;
  std::vector<uint32_t> slots_by_name_;
  DenseConst dense_;

  // --- slot-indexed state (the tick loop's working set) -------------------
  std::vector<uint16_t> flags_;
  std::vector<HotSpec> hot_;
  std::vector<Rng> rng_;
  std::vector<double> cap_;
  std::vector<uint8_t> exited_;
  std::vector<uint64_t> cycles_;
  std::vector<uint64_t> instructions_;
  std::vector<uint64_t> l2_misses_;
  std::vector<uint64_t> l3_misses_;
  std::vector<uint64_t> mem_requests_;
  std::vector<double> cpu_seconds_;
  std::vector<double> last_usage_;
  std::vector<double> last_cpi_;
  std::vector<double> last_latency_ms_;
  std::vector<double> last_tps_;
  std::vector<int> threads_;
  // Slow-walk state. The factor caches hold exp(walk log), refreshed only
  // when the walk steps (once a simulated minute) — exp() is deterministic,
  // so the cache equals the legacy per-tick recomputation bit for bit.
  std::vector<double> demand_walk_log_;
  std::vector<double> demand_walk_factor_;
  std::vector<MicroTime> last_walk_update_;
  std::vector<double> cpi_walk_log_;
  std::vector<double> cpi_walk_factor_;
  std::vector<MicroTime> last_cpi_walk_update_;
  // Cap-reaction bookkeeping (cases 5/6).
  std::vector<uint8_t> was_capped_last_tick_;
  std::vector<int> cap_episodes_;
  std::vector<MicroTime> capped_since_;
  std::vector<MicroTime> lame_duck_until_;
};

}  // namespace cpi2

#endif  // CPI2_SIM_TASK_TABLE_H_
