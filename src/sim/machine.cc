#include "sim/machine.h"

#include <algorithm>
#include <cmath>

namespace cpi2 {

Machine::Machine(std::string name, Platform platform, uint64_t seed,
                 InterferenceParams interference)
    : name_(std::move(name)),
      platform_(std::move(platform)),
      interference_(interference),
      rng_(seed) {}

Status Machine::AddTask(const std::string& task_name, const TaskSpec& spec) {
  if (tasks_.count(task_name) > 0) {
    return InvalidArgumentError("task already on machine: " + task_name);
  }
  tasks_[task_name] = std::make_unique<Task>(task_name, spec, rng_.Fork());
  task_list_dirty_ = true;
  return Status::Ok();
}

Status Machine::RemoveTask(const std::string& task_name) {
  if (tasks_.erase(task_name) == 0) {
    return NotFoundError("no such task: " + task_name);
  }
  task_list_dirty_ = true;
  return Status::Ok();
}

Task* Machine::FindTask(const std::string& task_name) {
  const auto it = tasks_.find(task_name);
  return it != tasks_.end() ? it->second.get() : nullptr;
}

const Task* Machine::FindTask(const std::string& task_name) const {
  const auto it = tasks_.find(task_name);
  return it != tasks_.end() ? it->second.get() : nullptr;
}

const std::vector<Task*>& Machine::Tasks() {
  if (task_list_dirty_) {
    task_list_.clear();
    task_list_.reserve(tasks_.size());
    for (auto& [name, task] : tasks_) {
      task_list_.push_back(task.get());
    }
    task_list_dirty_ = false;
  }
  return task_list_;
}

std::vector<Machine::ExitedTask> Machine::DrainExited() {
  std::vector<ExitedTask> exited;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->second->exited()) {
      exited.push_back({it->first, it->second->spec()});
      it = tasks_.erase(it);
      task_list_dirty_ = true;
    } else {
      ++it;
    }
  }
  return exited;
}

void Machine::Tick(MicroTime now, MicroTime dt) {
  last_tick_time_ = now;
  const double tick_seconds = MicrosToSeconds(dt);
  if (tasks_.empty() || tick_seconds <= 0.0) {
    last_utilization_ = 0.0;
    last_batch_satisfaction_ = 1.0;
    return;
  }

  const std::vector<Task*>& tasks = Tasks();
  const size_t n = tasks.size();

  // 1. Demands, bounded by each task's hard cap.
  std::vector<double>& limit = scratch_.limit;
  std::vector<char>& latency_sensitive = scratch_.latency_sensitive;
  limit.assign(n, 0.0);
  latency_sensitive.assign(n, 0);
  double ls_demand = 0.0;
  double batch_demand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double desired = tasks[i]->DesiredCpu(now);
    limit[i] = std::min(desired, tasks[i]->cap());
    latency_sensitive[i] = tasks[i]->spec().sched_class == WorkloadClass::kLatencySensitive;
    (latency_sensitive[i] ? ls_demand : batch_demand) += limit[i];
  }

  // 2. Allocation: latency-sensitive first (scaled down only if they alone
  // exceed the machine), batch shares what remains proportionally. This is
  // the scheduling-priority part Linux *does* isolate well; caches are where
  // isolation fails, and that is modelled in step 3.
  const double capacity = static_cast<double>(platform_.cores);
  const double ls_scale = ls_demand > capacity ? capacity / ls_demand : 1.0;
  const double ls_used = std::min(ls_demand, capacity);
  const double batch_capacity = capacity - ls_used;
  const double batch_scale =
      batch_demand > batch_capacity && batch_demand > 0.0 ? batch_capacity / batch_demand : 1.0;

  std::vector<double>& alloc = scratch_.alloc;
  alloc.assign(n, 0.0);
  double used = 0.0;
  for (size_t i = 0; i < n; ++i) {
    alloc[i] = limit[i] * (latency_sensitive[i] ? ls_scale : batch_scale);
    used += alloc[i];
  }
  last_utilization_ = capacity > 0.0 ? used / capacity : 0.0;
  last_batch_satisfaction_ = batch_demand > 0.0 ? batch_scale : 1.0;

  // 3. Interference.
  std::vector<TaskLoad>& loads = scratch_.loads;
  loads.assign(n, TaskLoad{});
  for (size_t i = 0; i < n; ++i) {
    const TaskSpec& spec = tasks[i]->spec();
    loads[i] = {alloc[i], spec.cache_mb, spec.memory_intensity, spec.contention_sensitivity};
  }
  ComputeInterference(platform_, interference_, loads, &scratch_.effects);
  const std::vector<InterferenceResult>& effects = scratch_.effects;

  // 4. Accounting.
  for (size_t i = 0; i < n; ++i) {
    double cpi = tasks[i]->BaseCpiOn(platform_) * effects[i].cpi_multiplier *
                 tasks[i]->CpiNoise() * tasks[i]->CpiWalkFactor(now) *
                 tasks[i]->CpiStepFactor(now);
    // Self-inflicted CPI inflation when a task barely runs (case 3): cold
    // caches and wakeup overheads dominate at near-zero usage.
    const double inflation = tasks[i]->spec().idle_cpi_inflation;
    if (inflation > 0.0 && alloc[i] < 0.25) {
      cpi *= 1.0 + inflation * (1.0 - alloc[i] / 0.25);
    }
    tasks[i]->Account(now, tick_seconds, alloc[i], cpi, effects[i].l3_mpi, platform_);
  }
}

StatusOr<CounterSnapshot> Machine::Read(const std::string& container) {
  const Task* task = FindTask(container);
  if (task == nullptr) {
    return NotFoundError("no counters for container " + container + " on " + name_);
  }
  CounterSnapshot snapshot;
  snapshot.timestamp = last_tick_time_;
  snapshot.cycles = task->cycles();
  snapshot.instructions = task->instructions();
  snapshot.l2_misses = task->l2_misses();
  snapshot.l3_misses = task->l3_misses();
  snapshot.mem_requests = task->mem_requests();
  snapshot.cpu_seconds = task->cpu_seconds();
  return snapshot;
}

Status Machine::SetCap(const std::string& container, double cpu_sec_per_sec) {
  if (cpu_sec_per_sec <= 0.0) {
    return InvalidArgumentError("cap must be positive");
  }
  Task* task = FindTask(container);
  if (task == nullptr) {
    return NotFoundError("no such container: " + container);
  }
  task->SetCap(cpu_sec_per_sec);
  return Status::Ok();
}

Status Machine::RemoveCap(const std::string& container) {
  Task* task = FindTask(container);
  if (task == nullptr) {
    return NotFoundError("no such container: " + container);
  }
  task->RemoveCap();
  return Status::Ok();
}

std::optional<double> Machine::GetCap(const std::string& container) const {
  const Task* task = FindTask(container);
  if (task == nullptr || !task->IsCapped()) {
    return std::nullopt;
  }
  return task->cap();
}

}  // namespace cpi2
