#include "sim/machine.h"

#include <algorithm>
#include <cmath>

namespace cpi2 {

Machine::Machine(std::string name, Platform platform, uint64_t seed,
                 InterferenceParams interference)
    : name_(std::move(name)),
      platform_(std::move(platform)),
      interference_(interference),
      cycles_per_second_(platform_.CyclesPerSecond()),
      rng_(seed),
      table_(platform_, interference_) {}

Status Machine::AddTask(const std::string& task_name, const TaskSpec& spec) {
  if (table_.Add(task_name, spec, rng_.Fork()) == nullptr) {
    return InvalidArgumentError("task already on machine: " + task_name);
  }
  return Status::Ok();
}

Status Machine::RemoveTask(const std::string& task_name) {
  if (!table_.Remove(task_name)) {
    return NotFoundError("no such task: " + task_name);
  }
  return Status::Ok();
}

Task* Machine::FindTask(const std::string& task_name) { return table_.Find(task_name); }

const Task* Machine::FindTask(const std::string& task_name) const {
  return table_.Find(task_name);
}

std::vector<Machine::ExitedTask> Machine::DrainExited() {
  std::vector<ExitedTask> exited;
  if (!table_.any_exited()) {
    return exited;
  }
  for (Task* task : table_.TasksByName()) {
    if (task->exited()) {
      exited.push_back({task->name(), task->spec()});
    }
  }
  for (const ExitedTask& e : exited) {
    table_.Remove(e.name);
  }
  table_.AcknowledgeExits();
  return exited;
}

void Machine::Tick(MicroTime now, MicroTime dt) {
  last_tick_time_ = now;
  const double tick_seconds = MicrosToSeconds(dt);
  if (table_.size() == 0 || tick_seconds <= 0.0) {
    last_utilization_ = 0.0;
    last_batch_satisfaction_ = 1.0;
    return;
  }
  TickSoa(now, tick_seconds);
}

void Machine::TickSoa(MicroTime now, double tick_seconds) {
  TaskTable& t = table_;
  const std::vector<uint32_t>& order = t.SlotsByName();
  const TaskTable::DenseConst& dc = t.DenseInputs();
  const size_t n = order.size();

  std::vector<double>& limit = scratch_.limit;
  std::vector<double>& alloc = scratch_.alloc;
  limit.resize(n);
  alloc.resize(n);

  // 1. Demands, bounded by each task's hard cap. Scalar pass in name order:
  // it owns every demand-side RNG draw. Rare features (bimodal modes,
  // diurnal curves, slow walks) sit behind one flag test; the diurnal
  // factor is memoized per (amplitude, peak) — most latency-sensitive
  // filler tasks share one curve, and the factor is a pure function of the
  // curve and `now`.
  double ls_demand = 0.0;
  double batch_demand = 0.0;
  double memo_amplitude = 0.0;
  MicroTime memo_peak = 0;
  double memo_factor = 1.0;
  bool memo_valid = false;
  for (size_t k = 0; k < n; ++k) {
    const uint32_t s = order[k];
    double desired;
    if (t.exited_[s]) {
      desired = 0.0;
    } else {
      const uint16_t f = t.flags_[s];
      const TaskTable::HotSpec& hs = t.hot_[s];
      double demand = hs.base_demand;
      if (f & kTaskFlagRareDemand) {
        const TaskSpec& spec = t.slots_[s]->spec();
        if (f & kTaskFlagBimodal) {
          if (now >= spec.mode_start_time) {
            const int64_t phase = ((now - spec.mode_start_time) / spec.mode_half_period) % 2;
            demand = phase == 0 ? spec.alt_cpu_demand : spec.base_cpu_demand;
          }
        }
        if (f & kTaskFlagDiurnal) {
          const DiurnalCurve& curve = spec.diurnal;
          if (!memo_valid || curve.amplitude != memo_amplitude ||
              curve.peak_offset != memo_peak) {
            memo_amplitude = curve.amplitude;
            memo_peak = curve.peak_offset;
            memo_factor = curve.Factor(now);
            memo_valid = true;
          }
          demand *= memo_factor;
        }
        if (f & kTaskFlagDemandWalk) {
          if (t.last_walk_update_[s] < 0 || now - t.last_walk_update_[s] >= kMicrosPerMinute) {
            t.demand_walk_log_[s] = (1.0 - spec.demand_walk_revert) * t.demand_walk_log_[s] +
                                    t.rng_[s].Normal(0.0, spec.demand_walk_sigma);
            t.last_walk_update_[s] = now;
            t.demand_walk_factor_[s] = std::exp(t.demand_walk_log_[s]);
          }
          demand *= t.demand_walk_factor_[s];
        }
      }
      if (now < t.lame_duck_until_[s]) {
        demand *= 0.1;  // Lame-duck mode: offload work, keep a trickle running.
      }
      if (f & kTaskFlagDemandNoise) {
        demand *= t.rng_[s].LogNormal(hs.demand_mu, hs.demand_sigma);
      }
      desired = std::max(0.0, demand);
    }
    limit[k] = std::min(desired, t.cap_[s]);
    (dc.latency_sensitive[k] ? ls_demand : batch_demand) += limit[k];
  }

  // 2. Allocation: latency-sensitive first (scaled down only if they alone
  // exceed the machine), batch shares what remains proportionally. This is
  // the scheduling-priority part Linux *does* isolate well; caches are where
  // isolation fails, and that is modelled in step 3. Element-wise, free to
  // vectorize; the utilization sum stays in name order.
  const double capacity = static_cast<double>(platform_.cores);
  const double ls_scale = ls_demand > capacity ? capacity / ls_demand : 1.0;
  const double ls_used = std::min(ls_demand, capacity);
  const double batch_capacity = capacity - ls_used;
  const double batch_scale =
      batch_demand > batch_capacity && batch_demand > 0.0 ? batch_capacity / batch_demand : 1.0;

  for (size_t k = 0; k < n; ++k) {
    alloc[k] = limit[k] * (dc.latency_sensitive[k] ? ls_scale : batch_scale);
  }
  double used = 0.0;
  for (size_t k = 0; k < n; ++k) {
    used += alloc[k];
  }
  last_utilization_ = capacity > 0.0 ? used / capacity : 0.0;
  last_batch_satisfaction_ = batch_demand > 0.0 ? batch_scale : 1.0;

  // 3. Interference over the packed per-task constants.
  scratch_.cpi_multiplier.resize(n);
  scratch_.l3_mpi.resize(n);
  InterferenceBatchInputs inputs;
  inputs.cpu = alloc.data();
  inputs.footprint = dc.footprint.data();
  inputs.memory_intensity = dc.memory_intensity.data();
  inputs.sens_cw = dc.sens_cw.data();
  inputs.w_sens = dc.w_sens.data();
  inputs.half_mi = dc.half_mi.data();
  inputs.baseline_mpi = dc.baseline_mpi.data();
  ComputeInterferenceBatch(platform_, interference_, n, inputs,
                           scratch_.cpi_multiplier.data(), scratch_.l3_mpi.data());

  // 4. Accounting, in name order. Exited tasks are NOT skipped: the legacy
  // loop accounted them too (zero allocation, but their CPI noise/walk
  // draws still advance their RNG streams), and equivalence requires the
  // same draws. Each optional stage multiplies by exactly 1.0 when its
  // flag is clear, so skipping it never changes a bit.
  for (size_t k = 0; k < n; ++k) {
    const uint32_t s = order[k];
    const uint16_t f = t.flags_[s];
    const TaskTable::HotSpec& hs = t.hot_[s];

    double cpi = hs.base_cpi_platform;
    cpi *= scratch_.cpi_multiplier[k];
    if (f & kTaskFlagCpiNoise) {
      cpi *= t.rng_[s].LogNormal(hs.cpi_mu, hs.cpi_sigma);
    }
    if (f & kTaskFlagCpiWalk) {
      const TaskSpec& spec = t.slots_[s]->spec();
      if (t.last_cpi_walk_update_[s] < 0 ||
          now - t.last_cpi_walk_update_[s] >= kMicrosPerMinute) {
        t.cpi_walk_log_[s] = (1.0 - spec.cpi_walk_revert) * t.cpi_walk_log_[s] +
                             t.rng_[s].Normal(0.0, spec.cpi_walk_sigma);
        t.last_cpi_walk_update_[s] = now;
        t.cpi_walk_factor_[s] = std::exp(t.cpi_walk_log_[s]);
      }
      cpi *= t.cpi_walk_factor_[s];
    }
    if (f & kTaskFlagCpiStep) {
      const TaskSpec& spec = t.slots_[s]->spec();
      if (now >= spec.cpi_step_time) {
        cpi *= spec.cpi_step_factor;
      }
    }
    if ((f & kTaskFlagIdleInflation) && alloc[k] < 0.25) {
      cpi *= 1.0 + hs.idle_cpi_inflation * (1.0 - alloc[k] / 0.25);
    }

    // Inlined Task::Account over the slot arrays.
    t.last_usage_[s] = alloc[k];
    t.last_cpi_[s] = cpi;
    const double cycles_delta = alloc[k] * tick_seconds * cycles_per_second_;
    t.cycles_[s] += static_cast<uint64_t>(cycles_delta);
    const double instr_delta = cpi > 0.0 ? cycles_delta / cpi : 0.0;
    t.instructions_[s] += static_cast<uint64_t>(instr_delta);
    const double l3_delta = instr_delta * scratch_.l3_mpi[k];
    t.l3_misses_[s] += static_cast<uint64_t>(l3_delta);
    t.l2_misses_[s] += static_cast<uint64_t>(l3_delta * 4.0);
    t.mem_requests_[s] += static_cast<uint64_t>(l3_delta * 1.2);
    t.cpu_seconds_[s] += alloc[k] * tick_seconds;

    if (f & kTaskFlagLatency) {
      const double cpu_part =
          hs.one_minus_io * (hs.base_cpi_platform > 0.0 ? cpi / hs.base_cpi_platform : 1.0);
      const double io_noise =
          (f & kTaskFlagLatencyNoise) ? t.rng_[s].LogNormal(hs.lat_mu, hs.lat_sigma) : 1.0;
      const double io_part = hs.io_fraction * io_noise;
      t.last_latency_ms_[s] = hs.latency_base_scaled * (cpu_part + io_part);
    }
    if (f & kTaskFlagTps) {
      const double ips = instr_delta / tick_seconds;
      const double tps_noise =
          (f & kTaskFlagTpsNoise) ? t.rng_[s].LogNormal(hs.tps_mu, hs.tps_sigma) : 1.0;
      t.last_tps_[s] = ips / hs.instr_per_txn * tps_noise;
    }

    if (f & kTaskFlagCapReactive) {
      t.RunCapBehavior(s, now);
    }
  }
}

StatusOr<CounterSnapshot> Machine::Read(const std::string& container) {
  const std::optional<uint32_t> id = table_.names_.Find(container);
  if (!id.has_value()) {
    return NotFoundError("no counters for container " + container + " on " + name_);
  }
  return ReadByHandle(*id);
}

std::optional<uint64_t> Machine::ContainerHandle(const std::string& container) {
  const std::optional<uint32_t> id = table_.names_.Find(container);
  if (!id.has_value()) {
    return std::nullopt;
  }
  return static_cast<uint64_t>(*id);
}

StatusOr<CounterSnapshot> Machine::ReadByHandle(uint64_t handle) {
  const TaskTable& t = table_;
  if (handle >= t.id_to_slot_.size() || t.id_to_slot_[handle] < 0) {
    return NotFoundError("no counters for container id " + std::to_string(handle) + " on " +
                         name_);
  }
  const uint32_t s = static_cast<uint32_t>(t.id_to_slot_[handle]);
  CounterSnapshot snapshot;
  snapshot.timestamp = last_tick_time_;
  snapshot.cycles = t.cycles_[s];
  snapshot.instructions = t.instructions_[s];
  snapshot.l2_misses = t.l2_misses_[s];
  snapshot.l3_misses = t.l3_misses_[s];
  snapshot.mem_requests = t.mem_requests_[s];
  snapshot.cpu_seconds = t.cpu_seconds_[s];
  return snapshot;
}

Status Machine::SetCap(const std::string& container, double cpu_sec_per_sec) {
  if (cpu_sec_per_sec <= 0.0) {
    return InvalidArgumentError("cap must be positive");
  }
  Task* task = FindTask(container);
  if (task == nullptr) {
    return NotFoundError("no such container: " + container);
  }
  task->SetCap(cpu_sec_per_sec);
  return Status::Ok();
}

Status Machine::RemoveCap(const std::string& container) {
  Task* task = FindTask(container);
  if (task == nullptr) {
    return NotFoundError("no such container: " + container);
  }
  task->RemoveCap();
  return Status::Ok();
}

std::optional<double> Machine::GetCap(const std::string& container) const {
  const Task* task = FindTask(container);
  if (task == nullptr || !task->IsCapped()) {
    return std::nullopt;
  }
  return task->cap();
}

}  // namespace cpi2
