// Task model for the cluster simulator.
//
// A task is one instance of a job running on one machine inside its own
// container (cgroup). The TaskSpec is a purely data-driven description of
// its behaviour: CPU demand over time, microarchitectural character (base
// CPI, cache footprint, memory intensity, sensitivity to contention), an
// application-level performance model (latency / transactions), and its
// reaction to CPU hard-capping (tolerate / lame-duck / self-terminate,
// reproducing cases 5 and 6 of the paper).

#ifndef CPI2_SIM_TASK_H_
#define CPI2_SIM_TASK_H_

#include <cstdint>
#include <limits>
#include <string>

#include "core/types.h"
#include "sim/platform.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cpi2 {

// Reaction to CPU hard-capping (section 6.2).
enum class CapBehavior { kTolerate, kLameDuck, kSelfTerminate };

// Sinusoidal daily load modulation: factor(t) in [1-amplitude, 1+amplitude].
struct DiurnalCurve {
  double amplitude = 0.0;
  // Time of daily peak, as an offset into the day.
  MicroTime peak_offset = 14 * kMicrosPerHour;

  double Factor(MicroTime now) const;
};

struct TaskSpec {
  std::string job_name;
  WorkloadClass sched_class = WorkloadClass::kBatch;
  JobPriority priority = JobPriority::kNonProduction;

  // CPU the scheduler reserves for the task (CPU-sec/sec).
  double cpu_request = 1.0;
  // Mean CPU the task actually tries to use.
  double base_cpu_demand = 0.8;
  // Lognormal coefficient of variation on the demand, tick to tick.
  double demand_cv = 0.1;
  DiurnalCurve diurnal;

  // Bimodal demand (case 3): when alt_cpu_demand >= 0 the task alternates
  // between base and alt demand with the given half-period, starting at
  // mode_start_time (before that it stays in the base mode).
  double alt_cpu_demand = -1.0;
  MicroTime mode_half_period = 0;
  MicroTime mode_start_time = 0;

  // Slow multiplicative random walk on demand (mean-reverting, updated once
  // a minute). Models input-data phases that change throughput over tens of
  // minutes, visible in the paper's Figure 2. sigma is the per-step stddev
  // of log-demand; revert in (0, 1] pulls the walk back toward 1.
  double demand_walk_sigma = 0.0;
  double demand_walk_revert = 0.05;

  // Microarchitectural character (quoted on the reference platform).
  double base_cpi = 1.0;
  double cpi_noise_cv = 0.03;
  // Per-task-instance spread of the base CPI (different shards process
  // different data), drawn once at construction.
  double cpi_task_cv = 0.0;
  // Slow mean-reverting random walk on the base CPI (instruction-mix phase
  // changes; step once a minute). Non-production jobs drift more — the
  // paper's explanation for their poorer detection accuracy.
  double cpi_walk_sigma = 0.0;
  double cpi_walk_revert = 0.05;
  // One-off behaviour change (a new binary pushed mid-run): from
  // cpi_step_time on, base CPI is multiplied by cpi_step_factor. Negative
  // time disables. Non-production experiments do this to CPI2 all the time.
  MicroTime cpi_step_time = -1;
  double cpi_step_factor = 1.0;
  // Cache working set, MB; larger footprints pollute co-runners more.
  double cache_mb = 2.0;
  // Memory-bus pressure generated per CPU-sec of execution, in [0, 1].
  double memory_intensity = 0.2;
  // How strongly this task's CPI responds to cache/bus contention, [0, 1].
  double contention_sensitivity = 0.5;

  // Application-level model.
  // Instructions per transaction; 0 disables TPS reporting.
  double instr_per_txn = 0.0;
  // Baseline request latency at base CPI, ms; 0 disables latency reporting.
  double base_latency_ms = 0.0;
  // Fraction of latency NOT driven by local CPU (fan-out waits, I/O). A
  // web-search root node is ~0.9; a leaf ~0.05 (Figure 4).
  double latency_io_fraction = 0.05;
  // Tick-to-tick noise on the I/O part (stragglers among children make a
  // root's waits far noisier than a leaf's disk hits).
  double latency_io_noise_cv = 0.2;
  // Per-task spread of the base latency (different shards serve different
  // content): drawn once per task instance. This is what scatters the
  // per-task point clouds of Figure 4.
  double latency_task_cv = 0.1;
  // Measurement noise on reported transactions/sec (application-side
  // accounting never matches the counters exactly).
  double tps_noise_cv = 0.05;

  // Self-inflicted CPI inflation at near-idle CPU usage (case 3: "CPI
  // sometimes increases significantly if CPU usage drops to near zero").
  // Effective CPI is multiplied by 1 + inflation * max(0, 1 - usage/0.25).
  double idle_cpi_inflation = 0.0;

  // Batch jobs may explicitly opt into CPI2 protection (section 5).
  bool protection_opt_in = false;

  int base_threads = 8;
  CapBehavior cap_behavior = CapBehavior::kTolerate;
  // Lame-duck dwell time after a cap ends (case 5 shows tens of minutes).
  MicroTime lame_duck_duration = 30 * kMicrosPerMinute;
};

// Lognormal multiplicative noise with mean 1 and the given coefficient of
// variation. cv <= 0 draws nothing and returns exactly 1.
double LognormalNoise(Rng& rng, double cv);

class TaskTable;

// A live task instance. Tasks live in a TaskTable (one per Machine): the
// table owns every mutable field in slot-indexed parallel arrays — the SoA
// tick loop walks those arrays directly — and the Task object is a stable
// handle carrying the cold identity (name, spec, per-instance scale draws)
// plus accessors that read and write its slot. Construct through
// TaskTable::Add; the handle's address is stable until the task is removed.
class Task {
 public:
  const std::string& name() const { return name_; }
  const TaskSpec& spec() const { return spec_; }
  bool exited() const;

  // --- demand / capping -----------------------------------------------
  // CPU the task wants this tick, before caps and machine contention.
  double DesiredCpu(MicroTime now);

  // Hard cap in CPU-sec/sec; infinity when uncapped.
  double cap() const;
  void SetCap(double cpu_sec_per_sec);
  void RemoveCap();
  bool IsCapped() const;

  // --- per-tick results (written by Machine) ---------------------------
  // Called by the machine after allocation+interference are resolved.
  void Account(MicroTime now, double tick_seconds, double allocated_cpu, double effective_cpi,
               double l3_mpi, const Platform& platform);

  // Cumulative counters (CounterSource reads these).
  uint64_t cycles() const;
  uint64_t instructions() const;
  uint64_t l2_misses() const;
  uint64_t l3_misses() const;
  uint64_t mem_requests() const;
  double cpu_seconds() const;

  // Last-tick observables for traces and application metrics.
  double last_usage() const;
  double last_cpi() const;
  double last_latency_ms() const;
  double last_tps() const;
  int threads() const;

  // Draws the per-tick multiplicative CPI noise.
  double CpiNoise();

  // Multiplicative CPI phase factor; advances the slow walk once a minute.
  double CpiWalkFactor(MicroTime now);

  // One-off step factor (new binary pushed): 1.0 before cpi_step_time.
  double CpiStepFactor(MicroTime now) const {
    return spec_.cpi_step_time >= 0 && now >= spec_.cpi_step_time ? spec_.cpi_step_factor
                                                                  : 1.0;
  }

  // Base CPI of this task on `platform` (includes the per-instance spread).
  double BaseCpiOn(const Platform& platform) const {
    return spec_.base_cpi * cpi_scale_ * platform.cpi_scale;
  }

  // The task's slot in its TaskTable; only meaningful to the table's owner.
  uint32_t slot() const { return slot_; }

 private:
  friend class TaskTable;

  Task(TaskTable* table, uint32_t slot, std::string name, TaskSpec spec, double latency_scale,
       double cpi_scale)
      : table_(table),
        slot_(slot),
        name_(std::move(name)),
        spec_(std::move(spec)),
        latency_scale_(latency_scale),
        cpi_scale_(cpi_scale) {}

  // Cap-reaction state machine (cases 5/6), advanced from Account().
  void UpdateCapBehavior(MicroTime now);

  TaskTable* table_;
  uint32_t slot_;
  std::string name_;
  TaskSpec spec_;
  // Drawn once at admission from latency_task_cv / cpi_task_cv.
  double latency_scale_ = 1.0;
  double cpi_scale_ = 1.0;
};

}  // namespace cpi2

#endif  // CPI2_SIM_TASK_H_
