#include "sim/platform.h"

namespace cpi2 {

Platform ReferencePlatform() {
  Platform p;
  p.name = "xeon-2.6GHz";
  p.clock_ghz = 2.6;
  p.cores = 12;
  p.l3_cache_mb = 12.0;
  p.mem_bandwidth_units = 8.0;
  p.cpi_scale = 1.0;
  return p;
}

Platform OlderPlatform() {
  Platform p;
  p.name = "opteron-2.2GHz";
  p.clock_ghz = 2.2;
  p.cores = 8;
  p.l3_cache_mb = 6.0;
  p.mem_bandwidth_units = 5.0;
  p.cpi_scale = 1.25;
  return p;
}

}  // namespace cpi2
