// End-to-end wiring of CPI2 onto the cluster simulator.
//
// ClusterHarness owns a Cluster plus the full CPI2 deployment on it: one
// Agent per machine (fed by the machine's counters, capping through the
// machine's CPU controller), a cluster-level Aggregator, the spec push-back
// path, and an IncidentLog. Task arrivals/exits/migrations are synced to the
// agents every tick, exactly as a production agent tracks its cgroups.
//
// Per-machine agent work is sharded across the cluster's thread pool (see
// Cluster::Options::threads). Each machine's samples queue in the agent's
// bounded outbox during the parallel phase and are flushed into the
// aggregator — and incidents drained into the incident log — in machine
// order afterwards, so sample loss (drop_rng_), sample counts, and incident
// sequences are bit-identical for any thread count.
//
// A FaultPlane sits at every pipeline boundary (Options::faults): agent
// crash/restart, aggregator outage windows with optional checkpoint/restore,
// spec-push loss/delay/duplication, per-machine sample-loss bursts, ack
// loss, and counter glitches (via a FlakyCounterSource wrapped around each
// machine's counters). With every fault rate at zero the harness behaves —
// bit for bit — like the fault plane does not exist.
//
// This is the substrate for the integration tests, every figure harness in
// bench/, and examples/cluster_sim.

#ifndef CPI2_HARNESS_CLUSTER_HARNESS_H_
#define CPI2_HARNESS_CLUSTER_HARNESS_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cell_aggregator.h"
#include "core/cpi2.h"
#include "perf/flaky_counter_source.h"
#include "sim/cluster.h"
#include "sim/fault_plane.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace cpi2 {

// Cluster-wide degraded-mode accounting: the hardening side (what the
// agents/aggregator absorbed) next to the injection side (what the fault
// plane actually threw at them).
struct ClusterHealthReport {
  AgentHealth agents;              // summed over every agent
  FaultPlane::Stats faults;        // injection-side event counts
  int64_t caps_cleared_on_restart = 0;  // kernel caps reconciled at restart
  int64_t aggregator_checkpoints = 0;
  int64_t aggregator_restores = 0;      // crash recoveries from a checkpoint
  int64_t duplicates_dropped = 0;       // dedup absorbed a retried sample
  int64_t spec_pushes_delivered = 0;    // per-agent spec deliveries
  int64_t counter_glitches_injected = 0;
  // Tiered-path rollups (zero on the flat path). Deliberately absent from
  // flat-vs-tiered equivalence comparisons: they describe the aggregation
  // topology, not the workload.
  int64_t cells_reporting = 0;          // cells merged into the last build
  MicroTime stalest_partial_age = 0;    // worst cell's partial age at last build
  int64_t partials_dropped = 0;         // partial records the merger lost
};

class ClusterHarness {
 public:
  struct Options {
    Cluster::Options cluster;
    Cpi2Params params;
    // Legacy shim: uniform fraction of samples lost on the way to the
    // aggregator. Kept for compatibility with older experiments; the fault
    // plane's per-machine loss bursts (faults.sample_burst_*) model the
    // heavier-tailed reality. Both may be active at once.
    double sample_drop_rate = 0.0;
    // Fault-injection config. `faults.seed` is overridden with
    // cluster.seed, so one knob reseeds the whole experiment.
    FaultPlane::Options faults;
  };

  explicit ClusterHarness(Options options);

  Cluster& cluster() { return cluster_; }
  // The flat-path aggregator (the paper's design). Only meaningful when
  // params.flat_aggregation_path is set; tiered runs drive
  // hierarchical_aggregator() instead.
  Aggregator& aggregator() { return aggregator_; }
  // The tiered control plane; nullptr on the flat path.
  HierarchicalAggregator* hierarchical_aggregator() { return hier_aggregator_.get(); }
  // Path-independent spec lookup: whichever aggregation path is active.
  std::optional<CpiSpec> GetSpec(const std::string& jobname,
                                 const std::string& platforminfo) const;
  IncidentLog& incidents() { return incident_log_; }
  TraceRecorder& traces() { return traces_; }
  // The fault plane; valid after WireAgents.
  FaultPlane* fault_plane() { return fault_plane_.get(); }

  // Creates one agent per machine and hooks the pipeline together. Call
  // after machines exist (cluster().AddMachines + BuildScheduler) and
  // before the first Tick.
  void WireAgents();

  Agent* agent(const std::string& machine_name);
  // The agent managing `task_name`, or nullptr.
  Agent* AgentForTask(const std::string& task_name);

  // Runs the cluster for `warmup`, then force-builds specs from everything
  // observed and pushes them to all agents. Gives experiments a trained
  // CPI2 without simulating a full 24 h aggregation cycle.
  void PrimeSpecs(MicroTime warmup);

  void RunFor(MicroTime duration) { cluster_.RunFor(duration); }
  MicroTime now() const { return cluster_.now(); }

  // Total samples routed to the aggregator so far (post-loss, pre-dedup).
  int64_t samples_collected() const { return samples_collected_; }

  // Degraded-mode accounting across the whole deployment. Per-agent detail
  // is available via agent(name)->health().
  ClusterHealthReport Health() const;

  // Crashes `machine_name`'s agent at the next tick (a drill, independent
  // of the configured crash rate). `restart_delay` < 0 uses the configured
  // default. Call after WireAgents.
  Status InjectAgentCrash(const std::string& machine_name, MicroTime restart_delay = -1);

  // --- operator interface (section 5) ------------------------------------
  // "We provide an interface to system operators so they can hard-cap
  // suspects, and turn CPI protection on or off for an entire cluster."

  // Master switch for automatic enforcement across every agent.
  void SetEnforcementEnabled(bool enabled);

  // Hard-caps `task` wherever it currently runs (0 duration = default).
  Status OperatorCap(const std::string& task, double cpu_sec_per_sec, MicroTime duration = 0);
  Status OperatorUncap(const std::string& task);

  // Manual migration: kill the task and restart it on a different machine
  // through the scheduler (loses work since the last checkpoint, which is
  // why the paper keeps this manual).
  Status OperatorMigrate(const std::string& task);

 private:
  // One machine's lane through the parallel phase: its agent plus buffers
  // for the cross-machine effects produced while ticking it. Each channel is
  // touched by exactly one worker per tick; the buffers are drained (in
  // machine order) on the single merging thread.
  struct AgentChannel {
    // Sentinel: the agent has never synced (or just restarted) and must
    // reconcile its task registry regardless of the machine's version.
    static constexpr uint64_t kNeverSynced = ~0ull;

    Machine* machine = nullptr;
    Agent* agent = nullptr;
    std::vector<Incident> incidents;
    std::vector<std::string> departed;  // sync scratch, reused across ticks
    // Machine::membership_version() at the last registry sync; while it is
    // unchanged the per-tick reconciliation scan is skipped.
    uint64_t synced_membership = kNeverSynced;

    // --- subscription fan-out state (tiered path only) ---------------------
    // Jobs this machine currently runs, sorted unique — recomputed in
    // TickChannel whenever the membership sync runs (parallel phase, own
    // channel only) and folded into the global subscription index in the
    // serial merge phase when `subs_dirty` is set.
    std::vector<std::string> sub_jobs;
    // Jobs currently registered for this machine in subscribers_by_job_.
    std::vector<std::string> registered_jobs;
    // Last spec version delivered to this machine, per job. Cleared on
    // restart — the versioned invalidation that makes a restarted agent
    // resubscribe and catch up instead of running on a stale (or no) spec.
    std::map<std::string, uint64_t> delivered_versions;
    bool subs_dirty = false;     // sub_jobs changed; index update pending
    bool needs_catchup = false;  // deliver current specs at next serial phase
  };

  // A spec push the fault plane delayed in flight. `version` rides along on
  // the tiered path (0 and unused on the flat path).
  struct DelayedPush {
    MicroTime due = 0;
    CpiSpec spec;
    uint64_t version = 0;
  };

  // Tick listener: advance the fault plane, sync agents' task registries
  // with their machines and tick the agents (sharded), then flush outboxes /
  // drain incidents in machine order and tick the aggregator.
  void OnTick(MicroTime now);

  // The per-machine share of OnTick; runs concurrently across channels.
  void TickChannel(AgentChannel& channel, MicroTime now);

  // One delivery attempt from machine `machine_index`'s outbox. Applies, in
  // order: burst loss, the legacy uniform drop, aggregator outage
  // (retryable), then hands the sample to the aggregator; a lost ack after
  // acceptance reports kUnavailable so the agent retries (and dedup absorbs
  // the duplicate).
  DeliveryResult DeliverSample(size_t machine_index, const CpiSample& sample);

  // One delivery attempt of an encoded batch (the binary wire path). Draws
  // the per-batch corruption fault, decodes, then runs every unsettled
  // sample through DeliverSample — the same code and draw order as
  // per-sample delivery, which is what makes legacy_wire_path observably
  // inert. Stops at the first retryable sample so the agent re-sends the
  // same bytes from that offset after backoff.
  BatchDeliveryOutcome DeliverBatch(size_t machine_index, const EncodedSampleBatch& batch);

  // Fault-plane wrapper around one spec push. Draw order: lost, delayed,
  // duplicated.
  void OnSpecPush(const CpiSpec& spec);
  // Hands `spec` to every up agent on its platform (flat path: a platform
  // broadcast).
  void DeliverSpec(const CpiSpec& spec);
  // Tiered-path fault wrapper; same draw order as OnSpecPush.
  void OnSpecPushTiered(const CpiSpec& spec, uint64_t version);
  // Subscription fan-out: hands `spec` only to the up agents subscribed to
  // its job (on the matching platform) that have not seen `version` yet.
  void DeliverSpecTiered(const CpiSpec& spec, uint64_t version);
  // Serial merge phase: reconciles subscribers_by_job_ with channel i's
  // recomputed sub_jobs.
  void UpdateSubscriptions(size_t i);
  // Serial catch-up: delivers the current spec of every job channel i
  // subscribes to whose version it has not seen (new subscription, agent
  // restart, or merger restore). No fault-plane draws — this models the
  // subscriber pulling state it knows it lacks, not a push in flight.
  void CatchUpChannel(size_t i, MicroTime now);

  // Aggregation-path dispatch helpers (flat vs tiered).
  void AggregatorAddSample(size_t machine_index, const CpiSample& sample);
  void AggregatorTick(MicroTime now);
  std::string AggregatorCheckpoint() const;
  Status AggregatorRestore(const std::string& blob);

  // Models the dead agent process coming back: clears kernel caps the old
  // process left behind (startup reconciliation), then cold-starts the
  // agent.
  void RestartAgent(AgentChannel& channel, MicroTime now);

  Options options_;
  Cluster cluster_;
  Aggregator aggregator_;
  // Non-null exactly when !params.flat_aggregation_path; the flat
  // aggregator_ above then sits idle (it is cheap when unfed).
  std::unique_ptr<HierarchicalAggregator> hier_aggregator_;
  IncidentLog incident_log_;
  TraceRecorder traces_;
  // Seeded from cluster.seed so experiments reseed with one knob; the xor
  // keeps seed=0 on the historical 0x5eed stream.
  Rng drop_rng_;
  std::unique_ptr<FaultPlane> fault_plane_;
  // Per-machine counter-glitch decorators (only populated when any counter
  // fault rate is non-zero); parallel to channels_.
  std::vector<std::unique_ptr<FlakyCounterSource>> flaky_sources_;
  std::map<std::string, std::unique_ptr<Agent>> agents_;  // by machine name
  std::vector<AgentChannel> channels_;                    // machine order
  // Channel indices grouped by platform, so spec push-back only visits
  // machines the spec applies to instead of broadcasting cluster-wide.
  std::map<std::string, std::vector<size_t>> channels_by_platform_;
  // Subscription index (tiered path): channel indices subscribed to each
  // job, kept sorted so fan-out visits machines in machine order.
  std::map<std::string, std::vector<size_t>> subscribers_by_job_;
  std::deque<DelayedPush> delayed_pushes_;  // due-time order (FIFO insert)
  // Decode scratch for DeliverBatch (merge phase only): element and string
  // capacity is reused across every batch the harness receives.
  std::vector<CpiSample> batch_scratch_;
  std::string last_checkpoint_blob_;
  std::string empty_checkpoint_blob_;  // pristine state, for crashes before any checkpoint
  bool wired_ = false;
  int64_t samples_collected_ = 0;
  int64_t caps_cleared_on_restart_ = 0;
  int64_t aggregator_checkpoints_ = 0;
  int64_t aggregator_restores_ = 0;
  int64_t spec_pushes_delivered_ = 0;
};

// Converts a sim TaskSpec to the agent-facing metadata record.
TaskMeta MetaFromSpec(const std::string& task_name, const TaskSpec& spec);

}  // namespace cpi2

#endif  // CPI2_HARNESS_CLUSTER_HARNESS_H_
