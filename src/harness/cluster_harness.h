// End-to-end wiring of CPI2 onto the cluster simulator.
//
// ClusterHarness owns a Cluster plus the full CPI2 deployment on it: one
// Agent per machine (fed by the machine's counters, capping through the
// machine's CPU controller), a cluster-level Aggregator, the spec push-back
// path, and an IncidentLog. Task arrivals/exits/migrations are synced to the
// agents every tick, exactly as a production agent tracks its cgroups.
//
// Per-machine agent work is sharded across the cluster's thread pool (see
// Cluster::Options::threads). Each machine's samples and incidents are
// buffered in a per-machine channel during the parallel phase and drained
// into the aggregator / incident log in machine order afterwards, so sample
// loss (drop_rng_), sample counts, and incident sequences are bit-identical
// for any thread count.
//
// This is the substrate for the integration tests, every figure harness in
// bench/, and examples/cluster_sim.

#ifndef CPI2_HARNESS_CLUSTER_HARNESS_H_
#define CPI2_HARNESS_CLUSTER_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cpi2.h"
#include "util/rng.h"
#include "sim/cluster.h"
#include "sim/trace.h"

namespace cpi2 {

class ClusterHarness {
 public:
  struct Options {
    Cluster::Options cluster;
    Cpi2Params params;
    // Fraction of agent samples lost on the way to the aggregator (network
    // drops, collector restarts). Detection is local, so loss only slows
    // spec convergence — a robustness property the tests pin down.
    double sample_drop_rate = 0.0;
  };

  explicit ClusterHarness(Options options);

  Cluster& cluster() { return cluster_; }
  Aggregator& aggregator() { return aggregator_; }
  IncidentLog& incidents() { return incident_log_; }
  TraceRecorder& traces() { return traces_; }

  // Creates one agent per machine and hooks the pipeline together. Call
  // after machines exist (cluster().AddMachines + BuildScheduler) and
  // before the first Tick.
  void WireAgents();

  Agent* agent(const std::string& machine_name);
  // The agent managing `task_name`, or nullptr.
  Agent* AgentForTask(const std::string& task_name);

  // Runs the cluster for `warmup`, then force-builds specs from everything
  // observed and pushes them to all agents. Gives experiments a trained
  // CPI2 without simulating a full 24 h aggregation cycle.
  void PrimeSpecs(MicroTime warmup);

  void RunFor(MicroTime duration) { cluster_.RunFor(duration); }
  MicroTime now() const { return cluster_.now(); }

  // Total samples routed to the aggregator so far.
  int64_t samples_collected() const { return samples_collected_; }

  // --- operator interface (section 5) ------------------------------------
  // "We provide an interface to system operators so they can hard-cap
  // suspects, and turn CPI protection on or off for an entire cluster."

  // Master switch for automatic enforcement across every agent.
  void SetEnforcementEnabled(bool enabled);

  // Hard-caps `task` wherever it currently runs (0 duration = default).
  Status OperatorCap(const std::string& task, double cpu_sec_per_sec, MicroTime duration = 0);
  Status OperatorUncap(const std::string& task);

  // Manual migration: kill the task and restart it on a different machine
  // through the scheduler (loses work since the last checkpoint, which is
  // why the paper keeps this manual).
  Status OperatorMigrate(const std::string& task);

 private:
  // One machine's lane through the parallel phase: its agent plus buffers
  // for the cross-machine effects produced while ticking it. Each channel is
  // touched by exactly one worker per tick; the buffers are drained (in
  // machine order) on the single merging thread.
  struct AgentChannel {
    Machine* machine = nullptr;
    Agent* agent = nullptr;
    std::vector<CpiSample> samples;
    std::vector<Incident> incidents;
    std::vector<std::string> departed;  // sync scratch, reused across ticks
  };

  // Tick listener: sync agents' task registries with their machines and tick
  // the agents (sharded), then drain the channels and tick the aggregator.
  void OnTick(MicroTime now);

  // The per-machine share of OnTick; runs concurrently across channels.
  void TickChannel(AgentChannel& channel, MicroTime now);

  Options options_;
  Cluster cluster_;
  Aggregator aggregator_;
  IncidentLog incident_log_;
  TraceRecorder traces_;
  Rng drop_rng_{0x5eed};
  std::map<std::string, std::unique_ptr<Agent>> agents_;  // by machine name
  std::vector<AgentChannel> channels_;                    // machine order
  // Agents grouped by platform, so spec push-back only visits machines the
  // spec applies to instead of broadcasting to the whole cluster.
  std::map<std::string, std::vector<Agent*>> agents_by_platform_;
  bool wired_ = false;
  int64_t samples_collected_ = 0;
};

// Converts a sim TaskSpec to the agent-facing metadata record.
TaskMeta MetaFromSpec(const std::string& task_name, const TaskSpec& spec);

}  // namespace cpi2

#endif  // CPI2_HARNESS_CLUSTER_HARNESS_H_
