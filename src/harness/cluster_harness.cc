#include "harness/cluster_harness.h"

#include <algorithm>

#include "util/logging.h"

namespace cpi2 {
namespace {

// Historical drop-stream seed; xor'ed with the cluster seed so seed=0
// reproduces the stream the pre-fault-plane harness hard-coded.
constexpr uint64_t kDropSeedSalt = 0x5eed;

}  // namespace

TaskMeta MetaFromSpec(const std::string& task_name, const TaskSpec& spec) {
  TaskMeta meta;
  meta.task = task_name;
  meta.jobname = spec.job_name;
  meta.workload_class = spec.sched_class;
  meta.priority = spec.priority;
  meta.protection_opt_in = spec.protection_opt_in;
  return meta;
}

ClusterHarness::ClusterHarness(Options options)
    : options_(options),
      cluster_(options_.cluster),
      aggregator_(options.params),
      incident_log_(options.params.legacy_forensics_path),
      drop_rng_(options.cluster.seed ^ kDropSeedSalt) {
  if (!options_.params.flat_aggregation_path) {
    hier_aggregator_ = std::make_unique<HierarchicalAggregator>(options_.params);
  }
}

void ClusterHarness::WireAgents() {
  if (wired_) {
    return;
  }
  wired_ = true;
  const std::vector<Machine*>& machines = cluster_.machines();

  FaultPlane::Options fault_options = options_.faults;
  fault_options.seed = options_.cluster.seed;
  fault_plane_ = std::make_unique<FaultPlane>(fault_options, static_cast<int>(machines.size()));
  const bool flaky_counters = fault_options.counter_zero_rate > 0 ||
                              fault_options.counter_garbage_rate > 0 ||
                              fault_options.counter_stuck_rate > 0;

  channels_.resize(machines.size());
  flaky_sources_.resize(machines.size());
  for (size_t i = 0; i < machines.size(); ++i) {
    Machine* machine = machines[i];
    CounterSource* source = machine;
    if (flaky_counters) {
      FlakyCounterSource::Options flaky;
      flaky.seed = fault_plane_->CounterSeedFor(static_cast<int>(i));
      flaky.zero_rate = fault_options.counter_zero_rate;
      flaky.garbage_rate = fault_options.counter_garbage_rate;
      flaky.stuck_rate = fault_options.counter_stuck_rate;
      flaky_sources_[i] = std::make_unique<FlakyCounterSource>(machine, flaky);
      source = flaky_sources_[i].get();
    }
    Agent::Options agent_options;
    agent_options.params = options_.params;
    agent_options.machine_name = machine->name();
    agent_options.platforminfo = machine->platform().name;
    // Decorrelate the fleet's retry jitter per machine (only drawn from on
    // delivery failure, so fault-free runs never touch it).
    agent_options.jitter_seed =
        options_.cluster.seed ^ 0xa9e27 ^ (static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
    auto agent = std::make_unique<Agent>(agent_options, source, machine);
    // Callbacks fire while agents tick in parallel, so samples queue in the
    // agent's own outbox and incidents append to this machine's channel; the
    // shared sinks (drop_rng_, aggregator_, incident_log_) are fed from the
    // deterministic machine-order drain in OnTick.
    AgentChannel& channel = channels_[i];
    channel.machine = machine;
    if (options_.params.legacy_wire_path) {
      agent->SetDeliveryCallback(
          [this, i](const CpiSample& sample) { return DeliverSample(i, sample); });
    } else {
      agent->SetBatchDeliveryCallback([this, i](const EncodedSampleBatch& batch) {
        return DeliverBatch(i, batch);
      });
    }
    agent->SetIncidentCallback(
        [&channel](const Incident& incident) { channel.incidents.push_back(incident); });
    channel.agent = agent.get();
    channels_by_platform_[machine->platform().name].push_back(i);
    agents_[machine->name()] = std::move(agent);
  }
  // Spec push-back: every rebuilt spec goes through the fault plane, then to
  // the agents — the flat path broadcasts to the spec's platform, the tiered
  // path fans out to the job's subscribers. Agents still verify the platform
  // match themselves.
  if (hier_aggregator_ != nullptr) {
    hier_aggregator_->SetSpecCallback([this](const CpiSpec& spec, uint64_t version) {
      OnSpecPushTiered(spec, version);
    });
    hier_aggregator_->SetThreadPool(cluster_.pool());
  } else {
    aggregator_.SetSpecCallback([this](const CpiSpec& spec) { OnSpecPush(spec); });
  }
  // Batched sample flushes and per-shard spec builds ride the cluster's
  // pool (nullptr when threads == 1 — everything stays on this thread).
  // Both run in OnTick's serial merge phase, never inside a pool task.
  aggregator_.SetThreadPool(cluster_.pool());
  // A crash before the first checkpoint recovers to this pristine state.
  empty_checkpoint_blob_ = AggregatorCheckpoint();
  cluster_.AddTickListener([this](MicroTime now) { OnTick(now); });
  cluster_.AddTickListener([this](MicroTime now) { traces_.OnTick(now); });
}

Agent* ClusterHarness::agent(const std::string& machine_name) {
  const auto it = agents_.find(machine_name);
  return it != agents_.end() ? it->second.get() : nullptr;
}

Agent* ClusterHarness::AgentForTask(const std::string& task_name) {
  for (Machine* machine : cluster_.machines()) {
    if (machine->FindTask(task_name) != nullptr) {
      return agent(machine->name());
    }
  }
  return nullptr;
}

void ClusterHarness::TickChannel(AgentChannel& channel, MicroTime now) {
  Machine* machine = channel.machine;
  Agent* machine_agent = channel.agent;
  // Sync: register newly arrived tasks, drop departed ones. Both sides
  // iterate in name order, so sampler stagger assignment is deterministic.
  // The machine's membership version gates the scan: at steady state (no
  // arrivals/exits since the last sync) the reconciliation — once a string
  // lookup per task per tick — is skipped entirely. Agent restarts reset
  // channel.synced_membership, forcing a full re-registration.
  const uint64_t version = machine->membership_version();
  if (channel.synced_membership != version) {
    for (Task* task : machine->Tasks()) {
      if (!machine_agent->HasTask(task->name())) {
        machine_agent->AddTask(MetaFromSpec(task->name(), task->spec()), now);
      }
    }
    channel.departed.clear();
    for (const auto& [name, meta] : machine_agent->Tasks()) {
      if (machine->FindTask(name) == nullptr) {
        channel.departed.push_back(name);
      }
    }
    for (const std::string& name : channel.departed) {
      machine_agent->RemoveTask(name);
    }
    channel.synced_membership = version;

    // Tiered path: the machine's job set is its subscription set. Recompute
    // here (parallel phase, own channel only); the serial merge phase folds
    // it into the global index when subs_dirty is set.
    if (hier_aggregator_ != nullptr) {
      std::vector<std::string> jobs;
      jobs.reserve(machine_agent->Tasks().size());
      for (const auto& [name, meta] : machine_agent->Tasks()) {
        jobs.push_back(meta.jobname);
      }
      std::sort(jobs.begin(), jobs.end());
      jobs.erase(std::unique(jobs.begin(), jobs.end()), jobs.end());
      if (jobs != channel.sub_jobs) {
        channel.sub_jobs = std::move(jobs);
        channel.subs_dirty = true;
      }
    }
  }

  machine_agent->Tick(now);
}

DeliveryResult ClusterHarness::DeliverSample(size_t machine_index, const CpiSample& sample) {
  if (fault_plane_->SampleBurstActive(static_cast<int>(machine_index))) {
    return DeliveryResult::kLost;  // ToR brownout: gone, not queued anywhere
  }
  if (options_.sample_drop_rate > 0.0 && drop_rng_.Bernoulli(options_.sample_drop_rate)) {
    return DeliveryResult::kLost;  // legacy uniform loss shim
  }
  if (fault_plane_->AggregatorDown()) {
    return DeliveryResult::kUnavailable;  // agent keeps it and backs off
  }
  ++samples_collected_;
  AggregatorAddSample(machine_index, sample);
  if (fault_plane_->DrawAckLost(static_cast<int>(machine_index))) {
    // The aggregator has the sample but the agent doesn't know: it will
    // retry, and the aggregator's dedup must absorb the duplicate.
    return DeliveryResult::kUnavailable;
  }
  return DeliveryResult::kAck;
}

BatchDeliveryOutcome ClusterHarness::DeliverBatch(size_t machine_index,
                                                  const EncodedSampleBatch& batch) {
  BatchDeliveryOutcome outcome;
  // One corruption draw per delivery attempt, before any per-sample draw
  // (rate 0 draws nothing, keeping the stream identical to the legacy path).
  std::string_view bytes = batch.bytes;
  std::string corrupted;
  if (fault_plane_->DrawWireCorrupt(static_cast<int>(machine_index))) {
    corrupted = batch.bytes;
    corrupted[corrupted.size() / 2] ^= 0x40;  // one flipped bit in flight
    bytes = corrupted;
  }
  if (!DecodeSampleBatch(bytes, &batch_scratch_).ok()) {
    outcome.decode_failed = true;
    return outcome;
  }
  for (size_t s = batch.consumed; s < batch_scratch_.size(); ++s) {
    const DeliveryResult result = DeliverSample(machine_index, batch_scratch_[s]);
    if (result == DeliveryResult::kAck) {
      ++outcome.delivered;
    } else if (result == DeliveryResult::kLost) {
      ++outcome.lost;
    } else {
      outcome.retry = true;
      break;
    }
  }
  return outcome;
}

void ClusterHarness::DeliverSpec(const CpiSpec& spec) {
  const auto it = channels_by_platform_.find(spec.platforminfo);
  if (it == channels_by_platform_.end()) {
    return;
  }
  for (size_t i : it->second) {
    if (fault_plane_->AgentDown(static_cast<int>(i))) {
      continue;  // dead process: this push is gone for this machine
    }
    channels_[i].agent->UpdateSpec(spec, cluster_.now());
    ++spec_pushes_delivered_;
  }
}

void ClusterHarness::DeliverSpecTiered(const CpiSpec& spec, uint64_t version) {
  const auto it = subscribers_by_job_.find(spec.jobname);
  if (it == subscribers_by_job_.end()) {
    return;
  }
  for (size_t i : it->second) {
    AgentChannel& channel = channels_[i];
    if (channel.machine->platform().name != spec.platforminfo) {
      continue;  // the job also runs on other platforms; not this spec
    }
    if (fault_plane_->AgentDown(static_cast<int>(i))) {
      continue;  // dead process: versioned catch-up redelivers after restart
    }
    uint64_t& delivered = channel.delivered_versions[spec.jobname];
    if (delivered == version) {
      continue;  // subscriber already holds this build's spec
    }
    channel.agent->UpdateSpec(spec, cluster_.now());
    delivered = version;
    ++spec_pushes_delivered_;
  }
}

void ClusterHarness::OnSpecPushTiered(const CpiSpec& spec, uint64_t version) {
  if (fault_plane_->DrawSpecPushLost()) {
    return;
  }
  if (fault_plane_->DrawSpecPushDelayed()) {
    delayed_pushes_.push_back(
        DelayedPush{cluster_.now() + fault_plane_->options().spec_push_delay, spec, version});
    return;
  }
  DeliverSpecTiered(spec, version);
  if (fault_plane_->DrawSpecPushDuplicated()) {
    // Version bookkeeping absorbs the duplicate: every subscriber already
    // holds `version`, so the redundant fan-out touches no agent.
    DeliverSpecTiered(spec, version);
  }
}

void ClusterHarness::UpdateSubscriptions(size_t i) {
  AgentChannel& channel = channels_[i];
  // Drop registrations for jobs the machine no longer runs.
  for (const std::string& job : channel.registered_jobs) {
    if (std::binary_search(channel.sub_jobs.begin(), channel.sub_jobs.end(), job)) {
      continue;
    }
    const auto it = subscribers_by_job_.find(job);
    if (it != subscribers_by_job_.end()) {
      std::vector<size_t>& subs = it->second;
      subs.erase(std::remove(subs.begin(), subs.end(), i), subs.end());
      if (subs.empty()) {
        subscribers_by_job_.erase(it);
      }
    }
    channel.delivered_versions.erase(job);
  }
  // Register new interest; a fresh subscription needs the current spec.
  for (const std::string& job : channel.sub_jobs) {
    std::vector<size_t>& subs = subscribers_by_job_[job];
    const auto pos = std::lower_bound(subs.begin(), subs.end(), i);
    if (pos == subs.end() || *pos != i) {
      subs.insert(pos, i);
      channel.needs_catchup = true;
    }
  }
  channel.registered_jobs = channel.sub_jobs;
}

void ClusterHarness::CatchUpChannel(size_t i, MicroTime now) {
  AgentChannel& channel = channels_[i];
  for (const std::string& job : channel.registered_jobs) {
    const auto latest =
        hier_aggregator_->LatestSpec(job, channel.machine->platform().name);
    if (!latest.has_value()) {
      continue;  // nothing built for this job yet
    }
    uint64_t& delivered = channel.delivered_versions[job];
    if (delivered == latest->version) {
      continue;
    }
    channel.agent->UpdateSpec(latest->spec, now);
    delivered = latest->version;
    ++spec_pushes_delivered_;
  }
  channel.needs_catchup = false;
}

void ClusterHarness::AggregatorAddSample(size_t machine_index, const CpiSample& sample) {
  if (hier_aggregator_ != nullptr) {
    // Cell assignment is by machine index; any fixed assignment works — the
    // merged result is partition-invariant (stats/sketch.h).
    hier_aggregator_->AddSample(machine_index, sample);
  } else {
    aggregator_.AddSample(sample);
  }
}

void ClusterHarness::AggregatorTick(MicroTime now) {
  if (hier_aggregator_ != nullptr) {
    hier_aggregator_->Tick(now);
  } else {
    aggregator_.Tick(now);
  }
}

std::string ClusterHarness::AggregatorCheckpoint() const {
  return hier_aggregator_ != nullptr ? hier_aggregator_->Checkpoint()
                                     : aggregator_.Checkpoint();
}

Status ClusterHarness::AggregatorRestore(const std::string& blob) {
  return hier_aggregator_ != nullptr ? hier_aggregator_->Restore(blob)
                                     : aggregator_.Restore(blob);
}

std::optional<CpiSpec> ClusterHarness::GetSpec(const std::string& jobname,
                                               const std::string& platforminfo) const {
  return hier_aggregator_ != nullptr ? hier_aggregator_->GetSpec(jobname, platforminfo)
                                     : aggregator_.GetSpec(jobname, platforminfo);
}

void ClusterHarness::OnSpecPush(const CpiSpec& spec) {
  if (fault_plane_->DrawSpecPushLost()) {
    return;
  }
  if (fault_plane_->DrawSpecPushDelayed()) {
    delayed_pushes_.push_back(
        DelayedPush{cluster_.now() + fault_plane_->options().spec_push_delay, spec});
    return;
  }
  DeliverSpec(spec);
  if (fault_plane_->DrawSpecPushDuplicated()) {
    DeliverSpec(spec);  // idempotent at the agent: same spec, fresher stamp
  }
}

void ClusterHarness::RestartAgent(AgentChannel& channel, MicroTime now) {
  // The dead process's kernel caps outlive it. A restarting agent has no
  // record of them, so startup reconciliation lifts every cap it finds —
  // deliberately failing open: a missed cap is re-imposed by fresh
  // detection, while a stuck cap would throttle a task forever.
  Machine* machine = channel.machine;
  for (Task* task : machine->Tasks()) {
    if (machine->GetCap(task->name()).has_value() && machine->RemoveCap(task->name()).ok()) {
      ++caps_cleared_on_restart_;
    }
  }
  channel.agent->Restart(now);
  // The restarted process has an empty task registry; force a full resync
  // on its next tick even if the machine's membership has not changed.
  channel.synced_membership = AgentChannel::kNeverSynced;
  if (hier_aggregator_ != nullptr) {
    // Versioned invalidation: the new process holds no specs, so every
    // delivered version is void. The catch-up pass re-pushes current specs
    // for its subscriptions once the agent is back up.
    channel.delivered_versions.clear();
    channel.needs_catchup = true;
  }
}

void ClusterHarness::OnTick(MicroTime now) {
  // Fault phase (serial, machine order): advance every fault schedule and
  // apply the transitions that must precede agent ticking.
  fault_plane_->BeginTick(now);
  while (!delayed_pushes_.empty() && delayed_pushes_.front().due <= now) {
    const DelayedPush& push = delayed_pushes_.front();
    if (hier_aggregator_ != nullptr) {
      DeliverSpecTiered(push.spec, push.version);
    } else {
      DeliverSpec(push.spec);
    }
    delayed_pushes_.pop_front();
  }
  for (size_t i = 0; i < channels_.size(); ++i) {
    if (fault_plane_->AgentRestarting(static_cast<int>(i))) {
      RestartAgent(channels_[i], now);
    }
  }
  if (fault_plane_->AggregatorRecoveredThisTick()) {
    // The crash wiped the aggregator's memory; it comes back from the last
    // checkpoint (or pristine, if it never checkpointed).
    const std::string& blob =
        last_checkpoint_blob_.empty() ? empty_checkpoint_blob_ : last_checkpoint_blob_;
    const Status restored = AggregatorRestore(blob);
    if (restored.ok()) {
      ++aggregator_restores_;
    } else {
      CPI2_LOG(WARNING) << "aggregator restore failed: " << restored.message();
    }
  }
  if (fault_plane_->CheckpointDue()) {
    last_checkpoint_blob_ = AggregatorCheckpoint();
    ++aggregator_checkpoints_;
  }

  // Parallel phase: every channel touches only its own machine and agent. A
  // machine whose agent is down still runs its tasks — only the agent work
  // is skipped.
  ThreadPool* pool = cluster_.pool();
  if (pool != nullptr && channels_.size() > 1) {
    pool->ParallelFor(channels_.size(), [&](size_t i) {
      if (!fault_plane_->AgentDown(static_cast<int>(i))) {
        TickChannel(channels_[i], now);
      }
    });
  } else {
    for (size_t i = 0; i < channels_.size(); ++i) {
      if (!fault_plane_->AgentDown(static_cast<int>(i))) {
        TickChannel(channels_[i], now);
      }
    }
  }
  // Merge phase: flush outboxes and drain buffered incidents in machine
  // order, so drop_rng_/ack draws, sample counts, and log order match a
  // serial run.
  for (size_t i = 0; i < channels_.size(); ++i) {
    AgentChannel& channel = channels_[i];
    if (!fault_plane_->AgentDown(static_cast<int>(i))) {
      channel.agent->FlushOutbox(now);
    }
    for (const Incident& incident : channel.incidents) {
      incident_log_.Add(incident);
    }
    channel.incidents.clear();
    if (channel.subs_dirty) {
      UpdateSubscriptions(i);
      channel.subs_dirty = false;
    }
  }
  if (!fault_plane_->AggregatorDown()) {
    AggregatorTick(now);
  }
  if (hier_aggregator_ != nullptr) {
    // Catch-up after the tick (and any build it ran): a machine that just
    // subscribed or restarted leaves this phase holding the newest spec of
    // every job it runs.
    for (size_t i = 0; i < channels_.size(); ++i) {
      if (channels_[i].needs_catchup && !fault_plane_->AgentDown(static_cast<int>(i))) {
        CatchUpChannel(i, now);
      }
    }
  }
}

ClusterHealthReport ClusterHarness::Health() const {
  ClusterHealthReport report;
  for (const auto& [name, machine_agent] : agents_) {
    const AgentHealth& h = machine_agent->health();
    report.agents.restarts += h.restarts;
    report.agents.samples_enqueued += h.samples_enqueued;
    report.agents.samples_delivered += h.samples_delivered;
    report.agents.samples_lost += h.samples_lost;
    report.agents.delivery_retries += h.delivery_retries;
    report.agents.outbox_overflow_drops += h.outbox_overflow_drops;
    report.agents.counter_rejects += h.counter_rejects;
    report.agents.stale_spec_widenings += h.stale_spec_widenings;
    report.agents.stale_spec_suppressions += h.stale_spec_suppressions;
    report.agents.series_points_dropped += h.series_points_dropped;
    report.agents.wire_decode_errors += h.wire_decode_errors;
  }
  for (const auto& flaky : flaky_sources_) {
    if (flaky != nullptr) {
      report.counter_glitches_injected +=
          flaky->zeroes_injected() + flaky->garbage_injected() + flaky->stuck_injected();
    }
  }
  if (fault_plane_ != nullptr) {
    report.faults = fault_plane_->stats();
  }
  report.caps_cleared_on_restart = caps_cleared_on_restart_;
  report.aggregator_checkpoints = aggregator_checkpoints_;
  report.aggregator_restores = aggregator_restores_;
  if (hier_aggregator_ != nullptr) {
    report.duplicates_dropped = hier_aggregator_->duplicates_dropped();
    report.cells_reporting = hier_aggregator_->cells_reporting();
    report.stalest_partial_age = hier_aggregator_->stalest_partial_age();
    report.partials_dropped = hier_aggregator_->partials_dropped();
  } else {
    report.duplicates_dropped = aggregator_.duplicates_dropped();
  }
  report.spec_pushes_delivered = spec_pushes_delivered_;
  return report;
}

Status ClusterHarness::InjectAgentCrash(const std::string& machine_name,
                                        MicroTime restart_delay) {
  for (size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i].machine->name() == machine_name) {
      fault_plane_->InjectAgentCrash(static_cast<int>(i), restart_delay);
      return Status::Ok();
    }
  }
  return NotFoundError("no wired agent for machine " + machine_name);
}

void ClusterHarness::SetEnforcementEnabled(bool enabled) {
  for (auto& [name, machine_agent] : agents_) {
    machine_agent->enforcement().SetEnabled(enabled);
  }
}

Status ClusterHarness::OperatorCap(const std::string& task, double cpu_sec_per_sec,
                                   MicroTime duration) {
  Agent* machine_agent = AgentForTask(task);
  if (machine_agent == nullptr) {
    return NotFoundError("no machine runs task " + task);
  }
  return machine_agent->enforcement().ManualCap(task, cpu_sec_per_sec, duration,
                                                cluster_.now());
}

Status ClusterHarness::OperatorUncap(const std::string& task) {
  Agent* machine_agent = AgentForTask(task);
  if (machine_agent == nullptr) {
    return NotFoundError("no machine runs task " + task);
  }
  return machine_agent->enforcement().ManualUncap(task);
}

Status ClusterHarness::OperatorMigrate(const std::string& task) {
  return cluster_.scheduler().MigrateTask(task);
}

void ClusterHarness::PrimeSpecs(MicroTime warmup) {
  RunFor(warmup);
  if (hier_aggregator_ != nullptr) {
    hier_aggregator_->ForceBuild(cluster_.now());
  } else {
    aggregator_.ForceBuild(cluster_.now());
  }
}

}  // namespace cpi2
