#include "harness/cluster_harness.h"

#include "util/logging.h"

namespace cpi2 {

TaskMeta MetaFromSpec(const std::string& task_name, const TaskSpec& spec) {
  TaskMeta meta;
  meta.task = task_name;
  meta.jobname = spec.job_name;
  meta.workload_class = spec.sched_class;
  meta.priority = spec.priority;
  meta.protection_opt_in = spec.protection_opt_in;
  return meta;
}

ClusterHarness::ClusterHarness(Options options)
    : options_(options), cluster_(options.cluster), aggregator_(options.params) {}

void ClusterHarness::WireAgents() {
  if (wired_) {
    return;
  }
  wired_ = true;
  const std::vector<Machine*>& machines = cluster_.machines();
  channels_.resize(machines.size());
  for (size_t i = 0; i < machines.size(); ++i) {
    Machine* machine = machines[i];
    Agent::Options agent_options;
    agent_options.params = options_.params;
    agent_options.machine_name = machine->name();
    agent_options.platforminfo = machine->platform().name;
    auto agent = std::make_unique<Agent>(agent_options, machine, machine);
    // Callbacks fire while agents tick in parallel, so they only append to
    // this machine's channel; the shared sinks (drop_rng_, aggregator_,
    // incident_log_) are fed from the deterministic drain in OnTick.
    AgentChannel& channel = channels_[i];
    channel.machine = machine;
    agent->SetSampleCallback(
        [&channel](const CpiSample& sample) { channel.samples.push_back(sample); });
    agent->SetIncidentCallback(
        [&channel](const Incident& incident) { channel.incidents.push_back(incident); });
    channel.agent = agent.get();
    agents_by_platform_[machine->platform().name].push_back(agent.get());
    agents_[machine->name()] = std::move(agent);
  }
  // Spec push-back: every rebuilt spec goes to the agents on its platform;
  // agents still verify the platform match themselves.
  aggregator_.SetSpecCallback([this](const CpiSpec& spec) {
    const auto it = agents_by_platform_.find(spec.platforminfo);
    if (it == agents_by_platform_.end()) {
      return;
    }
    for (Agent* platform_agent : it->second) {
      platform_agent->UpdateSpec(spec);
    }
  });
  cluster_.AddTickListener([this](MicroTime now) { OnTick(now); });
  cluster_.AddTickListener([this](MicroTime now) { traces_.OnTick(now); });
}

Agent* ClusterHarness::agent(const std::string& machine_name) {
  const auto it = agents_.find(machine_name);
  return it != agents_.end() ? it->second.get() : nullptr;
}

Agent* ClusterHarness::AgentForTask(const std::string& task_name) {
  for (Machine* machine : cluster_.machines()) {
    if (machine->FindTask(task_name) != nullptr) {
      return agent(machine->name());
    }
  }
  return nullptr;
}

void ClusterHarness::TickChannel(AgentChannel& channel, MicroTime now) {
  Machine* machine = channel.machine;
  Agent* machine_agent = channel.agent;
  // Sync: register newly arrived tasks, drop departed ones. Both sides
  // iterate in name order, so sampler stagger assignment is deterministic.
  for (Task* task : machine->Tasks()) {
    if (!machine_agent->HasTask(task->name())) {
      machine_agent->AddTask(MetaFromSpec(task->name(), task->spec()), now);
    }
  }
  channel.departed.clear();
  for (const auto& [name, meta] : machine_agent->Tasks()) {
    if (machine->FindTask(name) == nullptr) {
      channel.departed.push_back(name);
    }
  }
  for (const std::string& name : channel.departed) {
    machine_agent->RemoveTask(name);
  }

  machine_agent->Tick(now);
}

void ClusterHarness::OnTick(MicroTime now) {
  // Parallel phase: every channel touches only its own machine and agent.
  ThreadPool* pool = cluster_.pool();
  if (pool != nullptr && channels_.size() > 1) {
    pool->ParallelFor(channels_.size(),
                      [&](size_t i) { TickChannel(channels_[i], now); });
  } else {
    for (AgentChannel& channel : channels_) {
      TickChannel(channel, now);
    }
  }
  // Merge phase: drain buffered cross-machine effects in machine order, so
  // drop_rng_ draws, sample counts, and log order match a serial run.
  for (AgentChannel& channel : channels_) {
    for (const CpiSample& sample : channel.samples) {
      if (options_.sample_drop_rate > 0.0 && drop_rng_.Bernoulli(options_.sample_drop_rate)) {
        continue;  // lost between the machine and the collection pipeline
      }
      ++samples_collected_;
      aggregator_.AddSample(sample);
    }
    channel.samples.clear();
    for (const Incident& incident : channel.incidents) {
      incident_log_.Add(incident);
    }
    channel.incidents.clear();
  }
  aggregator_.Tick(now);
}

void ClusterHarness::SetEnforcementEnabled(bool enabled) {
  for (auto& [name, machine_agent] : agents_) {
    machine_agent->enforcement().SetEnabled(enabled);
  }
}

Status ClusterHarness::OperatorCap(const std::string& task, double cpu_sec_per_sec,
                                   MicroTime duration) {
  Agent* machine_agent = AgentForTask(task);
  if (machine_agent == nullptr) {
    return NotFoundError("no machine runs task " + task);
  }
  return machine_agent->enforcement().ManualCap(task, cpu_sec_per_sec, duration,
                                                cluster_.now());
}

Status ClusterHarness::OperatorUncap(const std::string& task) {
  Agent* machine_agent = AgentForTask(task);
  if (machine_agent == nullptr) {
    return NotFoundError("no machine runs task " + task);
  }
  return machine_agent->enforcement().ManualUncap(task);
}

Status ClusterHarness::OperatorMigrate(const std::string& task) {
  return cluster_.scheduler().MigrateTask(task);
}

void ClusterHarness::PrimeSpecs(MicroTime warmup) {
  RunFor(warmup);
  aggregator_.ForceBuild(cluster_.now());
}

}  // namespace cpi2
