#include "harness/cluster_harness.h"

#include <set>

#include "util/logging.h"

namespace cpi2 {

TaskMeta MetaFromSpec(const std::string& task_name, const TaskSpec& spec) {
  TaskMeta meta;
  meta.task = task_name;
  meta.jobname = spec.job_name;
  meta.workload_class = spec.sched_class;
  meta.priority = spec.priority;
  meta.protection_opt_in = spec.protection_opt_in;
  return meta;
}

ClusterHarness::ClusterHarness(Options options)
    : options_(options), cluster_(options.cluster), aggregator_(options.params) {}

void ClusterHarness::WireAgents() {
  if (wired_) {
    return;
  }
  wired_ = true;
  for (Machine* machine : cluster_.machines()) {
    Agent::Options agent_options;
    agent_options.params = options_.params;
    agent_options.machine_name = machine->name();
    agent_options.platforminfo = machine->platform().name;
    auto agent = std::make_unique<Agent>(agent_options, machine, machine);
    agent->SetSampleCallback([this](const CpiSample& sample) {
      if (options_.sample_drop_rate > 0.0 && drop_rng_.Bernoulli(options_.sample_drop_rate)) {
        return;  // lost between the machine and the collection pipeline
      }
      ++samples_collected_;
      aggregator_.AddSample(sample);
    });
    agent->SetIncidentCallback(
        [this](const Incident& incident) { incident_log_.Add(incident); });
    agents_[machine->name()] = std::move(agent);
  }
  // Spec push-back: every rebuilt spec goes to every agent; agents keep only
  // specs matching their own platform.
  aggregator_.SetSpecCallback([this](const CpiSpec& spec) {
    for (auto& [name, agent] : agents_) {
      agent->UpdateSpec(spec);
    }
  });
  cluster_.AddTickListener([this](MicroTime now) { OnTick(now); });
  cluster_.AddTickListener([this](MicroTime now) { traces_.OnTick(now); });
}

Agent* ClusterHarness::agent(const std::string& machine_name) {
  const auto it = agents_.find(machine_name);
  return it != agents_.end() ? it->second.get() : nullptr;
}

Agent* ClusterHarness::AgentForTask(const std::string& task_name) {
  for (Machine* machine : cluster_.machines()) {
    if (machine->FindTask(task_name) != nullptr) {
      return agent(machine->name());
    }
  }
  return nullptr;
}

void ClusterHarness::OnTick(MicroTime now) {
  for (Machine* machine : cluster_.machines()) {
    Agent* machine_agent = agents_[machine->name()].get();
    if (machine_agent == nullptr) {
      continue;
    }
    // Sync: register newly arrived tasks, drop departed ones.
    std::set<std::string> present;
    for (Task* task : machine->Tasks()) {
      present.insert(task->name());
      if (!machine_agent->HasTask(task->name())) {
        machine_agent->AddTask(MetaFromSpec(task->name(), task->spec()), now);
      }
    }
    std::vector<std::string> departed;
    // Agent has no iteration API over tasks; track removals via sampler
    // failures instead would lag, so ask the machine: anything the agent has
    // that is no longer present gets removed lazily through RemoveTask.
    // (Agent::HasTask is the membership source of truth.)
    // We snapshot agent-held names by probing the present set's complement:
    // cheaper bookkeeping lives here in the harness.
    auto& held = held_tasks_[machine->name()];
    for (const std::string& name : held) {
      if (present.count(name) == 0) {
        machine_agent->RemoveTask(name);
        departed.push_back(name);
      }
    }
    held = std::move(present);

    machine_agent->Tick(now);
  }
  aggregator_.Tick(now);
}

void ClusterHarness::SetEnforcementEnabled(bool enabled) {
  for (auto& [name, machine_agent] : agents_) {
    machine_agent->enforcement().SetEnabled(enabled);
  }
}

Status ClusterHarness::OperatorCap(const std::string& task, double cpu_sec_per_sec,
                                   MicroTime duration) {
  Agent* machine_agent = AgentForTask(task);
  if (machine_agent == nullptr) {
    return NotFoundError("no machine runs task " + task);
  }
  return machine_agent->enforcement().ManualCap(task, cpu_sec_per_sec, duration,
                                                cluster_.now());
}

Status ClusterHarness::OperatorUncap(const std::string& task) {
  Agent* machine_agent = AgentForTask(task);
  if (machine_agent == nullptr) {
    return NotFoundError("no machine runs task " + task);
  }
  return machine_agent->enforcement().ManualUncap(task);
}

Status ClusterHarness::OperatorMigrate(const std::string& task) {
  return cluster_.scheduler().MigrateTask(task);
}

void ClusterHarness::PrimeSpecs(MicroTime warmup) {
  RunFor(warmup);
  aggregator_.ForceBuild(cluster_.now());
}

}  // namespace cpi2
