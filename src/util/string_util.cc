#include "util/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cpi2 {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string Join(const std::vector<std::string>& parts, const std::string& separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += separator;
    }
    out += parts[i];
  }
  return out;
}

std::string PadRight(const std::string& s, size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

}  // namespace cpi2
