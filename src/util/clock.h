// Clock abstraction used throughout CPI2.
//
// All timestamps are microseconds since the epoch (matching the paper's
// sample schema: "int64 timestamp; // microsec since epoch"). Production
// code uses RealClock; the simulator and tests use ManualClock so that every
// run is deterministic.

#ifndef CPI2_UTIL_CLOCK_H_
#define CPI2_UTIL_CLOCK_H_

#include <cstdint>

namespace cpi2 {

// Microseconds since the Unix epoch.
using MicroTime = int64_t;

inline constexpr int64_t kMicrosPerMilli = 1000;
inline constexpr int64_t kMicrosPerSecond = 1000 * 1000;
inline constexpr int64_t kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr int64_t kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr int64_t kMicrosPerDay = 24 * kMicrosPerHour;

// Converts seconds (possibly fractional) to MicroTime ticks.
constexpr MicroTime SecondsToMicros(double seconds) {
  return static_cast<MicroTime>(seconds * static_cast<double>(kMicrosPerSecond));
}

// Converts MicroTime ticks to fractional seconds.
constexpr double MicrosToSeconds(MicroTime micros) {
  return static_cast<double>(micros) / static_cast<double>(kMicrosPerSecond);
}

// Interface for reading the current time. Implementations must be
// thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  // Returns the current time in microseconds since the epoch.
  virtual MicroTime NowMicros() const = 0;
};

// A Clock backed by the system realtime clock.
class RealClock : public Clock {
 public:
  MicroTime NowMicros() const override;

  // Returns a process-wide shared instance.
  static RealClock* Get();
};

// A Clock that only moves when told to. Used by the simulator and by tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(MicroTime start = 0) : now_(start) {}

  MicroTime NowMicros() const override { return now_; }

  // Moves the clock forward by `delta` microseconds. Negative deltas are
  // ignored: simulated time never goes backwards.
  void Advance(MicroTime delta) {
    if (delta > 0) {
      now_ += delta;
    }
  }

  void SetTime(MicroTime now) { now_ = now; }

 private:
  MicroTime now_;
};

}  // namespace cpi2

#endif  // CPI2_UTIL_CLOCK_H_
