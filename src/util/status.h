// Minimal Status / StatusOr error-handling vocabulary.
//
// The real-host backends (perf_event, cgroupfs) can fail in ways the caller
// must handle without exceptions, matching common systems-code practice.

#ifndef CPI2_UTIL_STATUS_H_
#define CPI2_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cpi2 {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnavailable,
  kPermissionDenied,
  kFailedPrecondition,
  kInternal,
};

// Returns a short human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result with an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message" for logs.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status PermissionDeniedError(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

// Either a value or an error Status. Dereferencing a non-ok StatusOr is a
// programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cpi2

#endif  // CPI2_UTIL_STATUS_H_
