// Small string helpers shared by the table printers and logs.

#ifndef CPI2_UTIL_STRING_UTIL_H_
#define CPI2_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace cpi2 {

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Strict numeric parsing for checkpoint/record fields: the whole string must
// be one valid number (no empty field, no leading/trailing junk, no
// overflow). Returns false without touching *out on any violation — unlike
// atof/strtoll, which silently yield 0 on garbage.
bool ParseInt64(const std::string& s, int64_t* out);
bool ParseDouble(const std::string& s, double* out);

// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts, const std::string& separator);

// Fixed-width left/right padding (spaces), for plain-text tables.
std::string PadRight(const std::string& s, size_t width);
std::string PadLeft(const std::string& s, size_t width);

}  // namespace cpi2

#endif  // CPI2_UTIL_STRING_UTIL_H_
