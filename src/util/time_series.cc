#include "util/time_series.h"

namespace cpi2 {

double TimeSeries::NearestValue(MicroTime timestamp, MicroTime tolerance, bool* found) const {
  *found = false;
  if (points_.empty()) {
    return 0.0;
  }
  // The nearest point is adjacent to the insertion position. `lo` is the
  // first point at or after `timestamp`; `lo - 1` the last one before it.
  const size_t lo = LowerBound(timestamp);
  const bool have_below = lo > 0;
  const bool have_above = lo < points_.size();
  const MicroTime below_distance =
      have_below ? timestamp - points_[lo - 1].timestamp : 0;
  const MicroTime above_distance =
      have_above ? points_[lo].timestamp - timestamp : 0;
  if (have_above && (!have_below || above_distance <= below_distance)) {
    if (above_distance > tolerance) {
      return 0.0;  // the closer side is already out of tolerance
    }
    // Duplicates of the winning timestamp: the historical front-to-back scan
    // kept updating on ties, so the last duplicate's value wins.
    const size_t last = LowerBound(points_[lo].timestamp + 1) - 1;
    *found = true;
    return points_[last].value;
  }
  if (have_below && below_distance <= tolerance) {
    // `lo - 1` is already the last duplicate of its timestamp.
    *found = true;
    return points_[lo - 1].value;
  }
  return 0.0;
}

std::vector<AlignedPair> AlignSeries(const TimeSeries& a, const TimeSeries& b, MicroTime begin,
                                     MicroTime end, MicroTime tolerance) {
  std::vector<AlignedPair> out;
  for (const TimePoint& pa : View(a, begin, end)) {
    bool found = false;
    const double vb = b.NearestValue(pa.timestamp, tolerance, &found);
    if (found) {
      out.push_back({pa.timestamp, pa.value, vb});
    }
  }
  return out;
}

}  // namespace cpi2
