#include "util/time_series.h"

#include <cstdlib>

namespace cpi2 {

double TimeSeries::NearestValue(MicroTime timestamp, MicroTime tolerance, bool* found) const {
  *found = false;
  double best_value = 0.0;
  MicroTime best_distance = tolerance;
  for (const TimePoint& p : points_) {
    const MicroTime distance = std::llabs(p.timestamp - timestamp);
    if (distance <= best_distance) {
      best_distance = distance;
      best_value = p.value;
      *found = true;
    }
    if (p.timestamp > timestamp + tolerance) {
      break;
    }
  }
  return best_value;
}

std::vector<AlignedPair> AlignSeries(const TimeSeries& a, const TimeSeries& b, MicroTime begin,
                                     MicroTime end, MicroTime tolerance) {
  std::vector<AlignedPair> out;
  for (const TimePoint& pa : a.Window(begin, end)) {
    bool found = false;
    const double vb = b.NearestValue(pa.timestamp, tolerance, &found);
    if (found) {
      out.push_back({pa.timestamp, pa.value, vb});
    }
  }
  return out;
}

}  // namespace cpi2
