#include "util/clock.h"

#include <chrono>

namespace cpi2 {

MicroTime RealClock::NowMicros() const {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

RealClock* RealClock::Get() {
  static RealClock* const kInstance = new RealClock();
  return kInstance;
}

}  // namespace cpi2
