#include "util/interner.h"

#include <cassert>

namespace cpi2 {

uint32_t StringInterner::Intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::optional<uint32_t> StringInterner::Find(std::string_view name) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& StringInterner::NameOf(uint32_t id) const {
  assert(id < names_.size() && "id was not produced by this interner");
  return names_[id];
}

}  // namespace cpi2
