#include "util/rng.h"

#include <cmath>

namespace cpi2 {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = max() - max() % range;
  uint64_t value = (*this)();
  while (value >= limit) {
    value = (*this)();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Rng::StandardNormal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * StandardNormal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -std::log(u) / rate;
}

double Rng::Pareto(double scale, double alpha) {
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return scale / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

int Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

Rng Rng::Fork() { return Rng((*this)()); }

}  // namespace cpi2
