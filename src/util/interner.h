// String interning: dense uint32 ids for job/task/machine/platform names.
//
// The sample->spec->antagonist pipeline names everything with strings (the
// paper's wire records do), but the hot paths — per-sample spec accumulation,
// duplicate-sample dedup, per-task series lookup — only need identity, not
// spelling. An interner maps each distinct name to a dense uint32 once, so
// the inner loops key their maps and sets on integers: no per-sample string
// copies, no string comparisons, and boundary translation back to names only
// at serialization points (checkpoints, incident logs, spec push-out).
//
// Id-stability guarantees: ids are assigned in first-Intern order, are never
// reused, and stay valid for the interner's lifetime. They are process-local
// handles — a checkpoint/restore cycle serializes names, never ids, so a
// restored component may re-intern the same names to different ids without
// any observable difference (see DESIGN.md "Analysis data plane").

#ifndef CPI2_UTIL_INTERNER_H_
#define CPI2_UTIL_INTERNER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cpi2 {

class StringInterner {
 public:
  StringInterner() = default;

  // Returns the id for `name`, assigning the next dense id on first sight.
  uint32_t Intern(std::string_view name);

  // The id for `name` if it has been interned, without inserting.
  std::optional<uint32_t> Find(std::string_view name) const;

  // The name behind `id`. `id` must have come from this interner.
  const std::string& NameOf(uint32_t id) const;

  // Number of distinct names interned.
  size_t size() const { return names_.size(); }

 private:
  // Deque so name storage never moves: ids_ keys are views into names_.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, uint32_t> ids_;
};

// One-entry memo for Intern() call sites that see the same name many times
// in a row (the per-batch machine name on the sample path, platform
// strings). A repeat costs one string compare instead of a hash probe.
// Ids are stable for the interner's lifetime, so a memoized id never goes
// stale; use one memo per (call site, interner) pair.
class InternMemo {
 public:
  uint32_t Intern(StringInterner& interner, std::string_view name) {
    if (valid_ && name == name_) {
      return id_;
    }
    id_ = interner.Intern(name);
    name_.assign(name.data(), name.size());  // capacity retained on repeat sizes
    valid_ = true;
    return id_;
  }

 private:
  std::string name_;
  uint32_t id_ = 0;
  bool valid_ = false;
};

// Direct-mapped 64-entry memo for Intern() call sites whose names rotate
// through a small working set rather than repeating back-to-back (the task
// names inside one machine's batch, the job names on a shared machine) —
// where a one-entry InternMemo thrashes. The slot index is a three-byte
// hash (length, first, last), so a hit costs one short string compare
// instead of a full hash-and-probe of the name's every byte; a collision
// just falls through to the real interner. Same staleness-free contract as
// InternMemo: ids are stable for the interner's lifetime, one cache per
// (call site, interner) pair.
class InternCache {
 public:
  uint32_t Intern(StringInterner& interner, std::string_view name) {
    Entry& entry = entries_[Slot(name)];
    if (entry.valid && entry.name == name) {
      return entry.id;
    }
    entry.id = interner.Intern(name);
    entry.name.assign(name.data(), name.size());  // capacity retained
    entry.valid = true;
    return entry.id;
  }

 private:
  struct Entry {
    std::string name;
    uint32_t id = 0;
    bool valid = false;
  };

  static size_t Slot(std::string_view name) {
    size_t h = name.size();
    if (!name.empty()) {
      h = h * 131 + static_cast<uint8_t>(name.front());
      h = h * 131 + static_cast<uint8_t>(name.back());
    }
    return h % entries_size;
  }

  static constexpr size_t entries_size = 64;
  Entry entries_[entries_size];
};

}  // namespace cpi2

#endif  // CPI2_UTIL_INTERNER_H_
