#include "util/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace cpi2 {

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("open " + tmp_path + " for write: " + std::strerror(errno));
  }
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), file) == contents.size();
  // Flush user-space buffers and force the bytes to disk before the rename:
  // an unsynced rename can commit the name change ahead of the data.
  ok = ok && std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
  if (std::fclose(file) != 0) {
    ok = false;
  }
  if (!ok) {
    std::remove(tmp_path.c_str());
    return InternalError("write " + tmp_path + " failed: " + std::strerror(errno));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status status =
        InternalError("rename " + tmp_path + " -> " + path + ": " + std::strerror(errno));
    std::remove(tmp_path.c_str());
    return status;
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open " + path + ": " + std::strerror(errno));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) {
    return InternalError("read " + path + " failed");
  }
  return contents;
}

}  // namespace cpi2
