// Fixed-capacity circular buffer.
//
// Used for per-task sliding windows (recent CPI samples, recent outlier
// flags) where the window size is known up front and allocation in the
// steady state is unacceptable.

#ifndef CPI2_UTIL_RING_BUFFER_H_
#define CPI2_UTIL_RING_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace cpi2 {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : slots_(capacity) {
    assert(capacity > 0 && "RingBuffer capacity must be positive");
  }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }

  // Appends `value`, evicting the oldest element if full.
  void Push(T value) {
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    if (size_ == slots_.size()) {
      head_ = (head_ + 1) % slots_.size();
    } else {
      ++size_;
    }
  }

  // Element `i` positions from the oldest (0 == oldest).
  const T& operator[](size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_UTIL_RING_BUFFER_H_
