// Fixed-capacity circular buffer.
//
// Used for per-task sliding windows (recent CPI samples, recent outlier
// flags) where the window size is known up front and allocation in the
// steady state is unacceptable.

#ifndef CPI2_UTIL_RING_BUFFER_H_
#define CPI2_UTIL_RING_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cpi2 {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : slots_(capacity) {
    assert(capacity > 0 && "RingBuffer capacity must be positive");
  }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }

  // Appends `value`, evicting the oldest element if full.
  void Push(T value) {
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    if (size_ == slots_.size()) {
      head_ = (head_ + 1) % slots_.size();
    } else {
      ++size_;
    }
  }

  // Element `i` positions from the oldest (0 == oldest).
  const T& operator[](size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
};

// Growable power-of-two ring: a deque-shaped container (push at the back,
// pop at the front, random access) with contiguous-array locality. Indexing
// is a single add-and-mask, PushBack is amortized O(1) (capacity doubles,
// never shrinks), and PopFront is a head bump — no per-node allocation and
// no deque segment walks. Backs TimeSeries, where the steady state is
// "append one sample a minute, trim a few old ones, binary-search the rest".
template <typename T>
class GrowableRing {
 public:
  GrowableRing() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  // Appends `value`, doubling the backing store when full.
  void PushBack(T value) {
    if (size_ == slots_.size()) {
      Grow();
    }
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  // Removes the oldest element.
  void PopFront() {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  // Removes the oldest `n` elements in O(1).
  void PopFrontN(size_t n) {
    assert(n <= size_);
    head_ = (head_ + n) & mask_;
    size_ -= n;
  }

  // Element `i` positions from the oldest (0 == oldest).
  const T& operator[](size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }
  T& operator[](size_t i) {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 8;

  void Grow() {
    const size_t new_capacity = slots_.empty() ? kMinCapacity : slots_.size() * 2;
    std::vector<T> next(new_capacity);
    for (size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(next);
    mask_ = new_capacity - 1;
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t mask_ = 0;  // capacity - 1 once allocated (capacity is a power of two)
  size_t head_ = 0;
  size_t size_ = 0;
};

// Growable power-of-two byte ring for streaming I/O. The socket read path
// writes into it directly (WriteSpans exposes the free region as up to two
// spans for readv), the frame decoder reads from it in place (ReadSpan /
// CopyOut), and consuming the front is a head bump — no append + erase
// compaction, no per-read allocation once warm. Capacity doubles and never
// shrinks; indexing is add-and-mask.
class ByteRing {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }
  size_t free_space() const { return slots_.size() - size_; }

  // Ensures at least `min_free` writable bytes.
  void Reserve(size_t min_free) {
    if (free_space() >= min_free && !slots_.empty()) {
      return;
    }
    size_t cap = slots_.empty() ? kMinCapacity : slots_.size();
    while (cap - size_ < min_free) {
      cap *= 2;
    }
    Rebase(cap);
  }

  // Exposes the free region as up to two contiguous spans (the ring wraps at
  // most once). Returns the span count; total writable == free_space().
  // Call Reserve() first to size the region, CommitWrite(n) after filling.
  int WriteSpans(char** p0, size_t* n0, char** p1, size_t* n1) {
    if (free_space() == 0) {
      return 0;
    }
    if (size_ == 0) {
      head_ = 0;  // empty: rebase so the whole ring is one writable span
      *p0 = slots_.data();
      *n0 = slots_.size();
      return 1;
    }
    const size_t tail = (head_ + size_) & mask_;
    const size_t head = head_ & mask_;
    if (tail >= head && size_ > 0) {
      // Used region is unwrapped: free space runs tail..end, then 0..head.
      *p0 = slots_.data() + tail;
      *n0 = slots_.size() - tail;
      if (head == 0) {
        return 1;
      }
      *p1 = slots_.data();
      *n1 = head;
      return 2;
    }
    // Empty ring or wrapped used region: free space is one contiguous run.
    *p0 = slots_.data() + tail;
    *n0 = free_space();
    return 1;
  }

  // Marks `n` bytes (written into the WriteSpans region, in order) as used.
  void CommitWrite(size_t n) {
    assert(n <= free_space());
    size_ += n;
  }

  // Copy-in convenience for tests and file replay (Reserve + fill + commit).
  void Append(const char* data, size_t n) {
    Reserve(n);
    char* p0 = nullptr;
    char* p1 = nullptr;
    size_t n0 = 0, n1 = 0;
    WriteSpans(&p0, &n0, &p1, &n1);
    const size_t first = n < n0 ? n : n0;
    std::memcpy(p0, data, first);
    if (n > first) {
      std::memcpy(p1, data + first, n - first);
    }
    CommitWrite(n);
  }

  // Byte `i` positions from the oldest.
  uint8_t operator[](size_t i) const {
    assert(i < size_);
    return static_cast<uint8_t>(slots_[(head_ + i) & mask_]);
  }

  // A contiguous view of [pos, pos+len). When the range does not cross the
  // ring's wrap point this is a zero-copy pointer into the ring; otherwise
  // the bytes are linearized into `*scratch`. Either way the pointer is
  // valid until the next Reserve/Append/PopFront (or scratch reuse).
  const char* ContiguousView(size_t pos, size_t len, std::string* scratch) const {
    assert(pos + len <= size_);
    const size_t start = (head_ + pos) & mask_;
    if (start + len <= slots_.size()) {
      return slots_.data() + start;
    }
    scratch->resize(len);
    const size_t first = slots_.size() - start;
    std::memcpy(scratch->data(), slots_.data() + start, first);
    std::memcpy(scratch->data() + first, slots_.data(), len - first);
    return scratch->data();
  }

  // Removes the oldest `n` bytes in O(1).
  void PopFront(size_t n) {
    assert(n <= size_);
    head_ = (head_ + n) & mask_;
    size_ -= n;
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 4096;

  void Rebase(size_t new_capacity) {
    std::vector<char> next(new_capacity);
    const size_t start = head_ & mask_;
    const size_t first = size_ > 0 && start + size_ > slots_.size()
                             ? slots_.size() - start
                             : size_;
    if (first > 0) {
      std::memcpy(next.data(), slots_.data() + start, first);
    }
    if (size_ > first) {
      std::memcpy(next.data() + first, slots_.data(), size_ - first);
    }
    slots_ = std::move(next);
    mask_ = new_capacity - 1;
    head_ = 0;
  }

  std::vector<char> slots_;
  size_t mask_ = 0;  // capacity - 1 once allocated (capacity is a power of two)
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_UTIL_RING_BUFFER_H_
