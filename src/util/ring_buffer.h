// Fixed-capacity circular buffer.
//
// Used for per-task sliding windows (recent CPI samples, recent outlier
// flags) where the window size is known up front and allocation in the
// steady state is unacceptable.

#ifndef CPI2_UTIL_RING_BUFFER_H_
#define CPI2_UTIL_RING_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace cpi2 {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : slots_(capacity) {
    assert(capacity > 0 && "RingBuffer capacity must be positive");
  }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }

  // Appends `value`, evicting the oldest element if full.
  void Push(T value) {
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    if (size_ == slots_.size()) {
      head_ = (head_ + 1) % slots_.size();
    } else {
      ++size_;
    }
  }

  // Element `i` positions from the oldest (0 == oldest).
  const T& operator[](size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
};

// Growable power-of-two ring: a deque-shaped container (push at the back,
// pop at the front, random access) with contiguous-array locality. Indexing
// is a single add-and-mask, PushBack is amortized O(1) (capacity doubles,
// never shrinks), and PopFront is a head bump — no per-node allocation and
// no deque segment walks. Backs TimeSeries, where the steady state is
// "append one sample a minute, trim a few old ones, binary-search the rest".
template <typename T>
class GrowableRing {
 public:
  GrowableRing() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  // Appends `value`, doubling the backing store when full.
  void PushBack(T value) {
    if (size_ == slots_.size()) {
      Grow();
    }
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  // Removes the oldest element.
  void PopFront() {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  // Removes the oldest `n` elements in O(1).
  void PopFrontN(size_t n) {
    assert(n <= size_);
    head_ = (head_ + n) & mask_;
    size_ -= n;
  }

  // Element `i` positions from the oldest (0 == oldest).
  const T& operator[](size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }
  T& operator[](size_t i) {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 8;

  void Grow() {
    const size_t new_capacity = slots_.empty() ? kMinCapacity : slots_.size() * 2;
    std::vector<T> next(new_capacity);
    for (size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(next);
    mask_ = new_capacity - 1;
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t mask_ = 0;  // capacity - 1 once allocated (capacity is a power of two)
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_UTIL_RING_BUFFER_H_
