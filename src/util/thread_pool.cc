#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace cpi2 {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr exception = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(exception);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // All lanes pull indices from one counter; captures stay alive because we
  // always Wait() before returning.
  std::atomic<size_t> next{0};
  const auto drain = [&next, n, &fn] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  // The calling thread takes one lane, so hand out at most n - 1 to workers.
  const size_t helpers = std::min(static_cast<size_t>(size()), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit(drain);
  }
  try {
    drain();
  } catch (...) {
    RecordException();
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      RecordException();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::RecordException() {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_exception_ == nullptr) {
    first_exception_ = std::current_exception();
  }
}

}  // namespace cpi2
