// Deterministic, seedable random number generation.
//
// The standard library's distribution objects are implementation-defined, so
// two builds can disagree about the exact stream of variates. Every
// experiment in this repository must be reproducible bit-for-bit from its
// seed, so we implement both the engine (xoshiro256++) and the variate
// transformations ourselves.

#ifndef CPI2_UTIL_RNG_H_
#define CPI2_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace cpi2 {

// xoshiro256++ engine seeded via splitmix64. Satisfies
// UniformRandomBitGenerator so it can also feed <random> when determinism
// across platforms is not required.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  // Next raw 64 random bits.
  uint64_t operator()();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached spare for efficiency).
  double StandardNormal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Log-normal: exp(Normal(mu, sigma)) in log space.
  double LogNormal(double mu, double sigma);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  // Pareto (Lomax-style heavy tail): minimum `scale`, shape `alpha`.
  double Pareto(double scale, double alpha);

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Poisson-distributed count (Knuth's method; fine for small means).
  int Poisson(double mean);

  // Derives an independent child generator; useful for giving each task or
  // machine its own stream without correlation.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace cpi2

#endif  // CPI2_UTIL_RNG_H_
