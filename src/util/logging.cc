#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace cpi2 {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

// Serializes writes so concurrent log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* const kMutex = new std::mutex();
  return *kMutex;
}

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level, std::memory_order_relaxed); }

LogLevel MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= MinLogLevel()) {
  if (enabled_) {
    stream_ << LevelTag(level_) << ' ' << Basename(file) << ':' << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) {
    return;
  }
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fputs(text.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace cpi2
