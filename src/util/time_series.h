// Timestamped value series with window extraction and alignment.
//
// The antagonist-correlation analysis (section 4.2 of the paper) needs the
// victim's CPI samples and each suspect's CPU-usage samples over the same
// 10-minute window, aligned by timestamp. TimeSeries provides the storage
// and the alignment primitive.

#ifndef CPI2_UTIL_TIME_SERIES_H_
#define CPI2_UTIL_TIME_SERIES_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "util/clock.h"

namespace cpi2 {

struct TimePoint {
  MicroTime timestamp = 0;
  double value = 0.0;
};

// An append-only series of (timestamp, value) points ordered by timestamp.
// Old points can be trimmed to bound memory.
class TimeSeries {
 public:
  TimeSeries() = default;

  // Appends a point. Timestamps must be non-decreasing; out-of-order points
  // are dropped (network reordering is the caller's problem, and the paper's
  // one-sample-a-minute cadence makes this a non-issue in practice).
  void Append(MicroTime timestamp, double value) {
    if (!points_.empty() && timestamp < points_.back().timestamp) {
      return;
    }
    points_.push_back({timestamp, value});
  }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TimePoint& operator[](size_t i) const { return points_[i]; }
  const TimePoint& back() const { return points_.back(); }

  // Removes all points with timestamp < `cutoff`.
  void TrimBefore(MicroTime cutoff) {
    while (!points_.empty() && points_.front().timestamp < cutoff) {
      points_.pop_front();
    }
  }

  // Returns all points with begin <= timestamp < end, oldest first.
  std::vector<TimePoint> Window(MicroTime begin, MicroTime end) const {
    std::vector<TimePoint> out;
    for (const TimePoint& p : points_) {
      if (p.timestamp >= begin && p.timestamp < end) {
        out.push_back(p);
      }
    }
    return out;
  }

  // Returns the value at the point nearest to `timestamp` within
  // `tolerance`, or nullopt-like behaviour via `found`.
  double NearestValue(MicroTime timestamp, MicroTime tolerance, bool* found) const;

 private:
  std::deque<TimePoint> points_;
};

// A time-aligned pair of samples from two series.
struct AlignedPair {
  MicroTime timestamp = 0;
  double a = 0.0;
  double b = 0.0;
};

// Aligns two series over [begin, end): for each point of `a` in the window,
// finds the nearest point of `b` within `tolerance`; pairs without a match
// are skipped. The paper's samples arrive once a minute on a shared cadence,
// so `tolerance` of half the cadence pairs them exactly.
std::vector<AlignedPair> AlignSeries(const TimeSeries& a, const TimeSeries& b, MicroTime begin,
                                     MicroTime end, MicroTime tolerance);

}  // namespace cpi2

#endif  // CPI2_UTIL_TIME_SERIES_H_
