// Timestamped value series with indexed window extraction and alignment.
//
// The antagonist-correlation analysis (section 4.2 of the paper) needs the
// victim's CPI samples and each suspect's CPU-usage samples over the same
// 10-minute window, aligned by timestamp. TimeSeries provides the storage
// and the alignment primitives.
//
// Storage is a growable power-of-two ring (util/ring_buffer.h): append and
// trim are allocation-free in the steady state, and the timestamps stay
// sorted, so every lookup is a binary search instead of a front-to-back
// scan. Window extraction is an index pair (WindowView) over the ring — no
// copy — and NearestValue is O(log n). The merge-join fast path
// (core/correlation.h) builds on NearestCursor below; the legacy
// AlignSeries is kept as the reference implementation it must match
// bit-for-bit.

#ifndef CPI2_UTIL_TIME_SERIES_H_
#define CPI2_UTIL_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/clock.h"
#include "util/ring_buffer.h"

namespace cpi2 {

struct TimePoint {
  MicroTime timestamp = 0;
  double value = 0.0;
};

// An append-only series of (timestamp, value) points ordered by timestamp.
// Old points can be trimmed to bound memory.
class TimeSeries {
 public:
  TimeSeries() = default;

  // Appends a point. Timestamps must be non-decreasing; out-of-order points
  // are dropped (network reordering is the caller's problem, and the paper's
  // one-sample-a-minute cadence makes this a non-issue in practice). Returns
  // false when the point was dropped; drops are also counted so the fault
  // plane's reordering is observable (see dropped_points).
  bool Append(MicroTime timestamp, double value) {
    if (!points_.empty() && timestamp < points_.back().timestamp) {
      ++dropped_;
      return false;
    }
    points_.PushBack({timestamp, value});
    return true;
  }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TimePoint& operator[](size_t i) const { return points_[i]; }
  const TimePoint& front() const { return points_.front(); }
  const TimePoint& back() const { return points_.back(); }

  // Points dropped by Append because they arrived out of order.
  int64_t dropped_points() const { return dropped_; }

  // Index of the first point with timestamp >= `timestamp` (== size() when
  // every point is older). O(log n).
  size_t LowerBound(MicroTime timestamp) const {
    size_t lo = 0;
    size_t hi = points_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (points_[mid].timestamp < timestamp) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Removes all points with timestamp < `cutoff`. O(log n).
  void TrimBefore(MicroTime cutoff) { points_.PopFrontN(LowerBound(cutoff)); }

  // Returns the value at the point nearest to `timestamp` within
  // `tolerance`, or nullopt-like behaviour via `found`. Among equidistant
  // candidates the latest point wins (matching the historical front-to-back
  // scan, which NearestCursor and the fused correlation must reproduce
  // exactly). O(log n).
  double NearestValue(MicroTime timestamp, MicroTime tolerance, bool* found) const;

 private:
  GrowableRing<TimePoint> points_;
  int64_t dropped_ = 0;
};

// An allocation-free view of the points with begin <= timestamp < end:
// an (index, index) pair over the series' ring. Valid until the series is
// appended to or trimmed.
class WindowView {
 public:
  WindowView() = default;
  WindowView(const TimeSeries* series, size_t begin, size_t end)
      : series_(series), begin_(begin), end_(end) {}

  size_t size() const { return end_ - begin_; }
  bool empty() const { return begin_ == end_; }
  const TimePoint& operator[](size_t i) const { return (*series_)[begin_ + i]; }
  const TimePoint& front() const { return (*this)[0]; }
  const TimePoint& back() const { return (*this)[size() - 1]; }

  class Iterator {
   public:
    Iterator(const TimeSeries* series, size_t index) : series_(series), index_(index) {}
    const TimePoint& operator*() const { return (*series_)[index_]; }
    const TimePoint* operator->() const { return &(*series_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator==(const Iterator& other) const { return index_ == other.index_; }
    bool operator!=(const Iterator& other) const { return index_ != other.index_; }

   private:
    const TimeSeries* series_;
    size_t index_;
  };
  Iterator begin() const { return Iterator(series_, begin_); }
  Iterator end() const { return Iterator(series_, end_); }

 private:
  const TimeSeries* series_ = nullptr;
  size_t begin_ = 0;
  size_t end_ = 0;
};

// The [begin, end) window of `series` as an index pair; O(log n), no copy.
inline WindowView View(const TimeSeries& series, MicroTime begin, MicroTime end) {
  const size_t lo = series.LowerBound(begin);
  const size_t hi = series.LowerBound(end);
  return WindowView(&series, lo, hi < lo ? lo : hi);
}

inline MicroTime TimestampDistance(MicroTime a, MicroTime b) {
  return a < b ? b - a : a - b;
}

// The monotone nearest-match advance shared by NearestCursor and the batched
// correlation kernel (core/correlation.h). `*cursor` is the caller-held
// position (start at 0); for a sequence of non-decreasing query timestamps
// it advances to the index of the point the legacy front-to-back
// NearestValue scan would pick (minimum distance, latest point wins ties)
// and returns true when that point is within `tolerance`. One shared body so
// the per-suspect and batched alignment paths cannot drift: amortized O(1)
// per query, O(|queries| + |series|) for a whole alignment pass. `series`
// must be non-empty.
inline bool SeekNearestAdvance(const TimeSeries& series, MicroTime timestamp,
                               MicroTime tolerance, size_t* cursor) {
  const size_t size = series.size();
  // Greedy advance: each step's distance is computed once and carried into
  // the next comparison, so a whole alignment pass costs one distance per
  // (query + advance), not three.
  size_t next = *cursor;
  MicroTime current = TimestampDistance(series[next].timestamp, timestamp);
  while (next + 1 < size) {
    const MicroTime candidate = TimestampDistance(series[next + 1].timestamp, timestamp);
    if (candidate > current) {
      break;
    }
    current = candidate;
    ++next;
  }
  *cursor = next;
  return current <= tolerance;
}

// Register-resident variant of SeekNearestAdvance for tight alignment
// sweeps: carries the timestamps of series[next] and series[next + 1]
// across queries, so a query that advances the cursor by one step costs a
// single ring read (the new look-ahead) where the plain body pays three
// (re-reading both neighbors, then the reject). Every comparison is the
// comparison SeekNearestAdvance makes, on the same values, in the same
// order — the cache only memoizes reads — so both cursors land on the same
// index for every query. time_series_test pins that decision-equivalence
// on random series, and the correlation equivalence suite pins the batched
// kernel built on this cursor to the fused path built on the plain body.
// `series` must be non-empty and outlive the cursor; `start` < size();
// query timestamps must be non-decreasing.
class CachedNearestCursor {
 public:
  CachedNearestCursor(const TimeSeries& series, size_t start)
      : series_(&series),
        next_(start),
        size_(series.size()),
        ts_next_(series[start].timestamp),
        ts_ahead_(start + 1 < series.size() ? series[start + 1].timestamp : 0) {}

  // Advances to the point SeekNearestAdvance would pick for `timestamp`
  // (minimum distance, latest point wins ties) and returns true when it
  // lies within `tolerance`. The chosen index is index().
  bool Seek(MicroTime timestamp, MicroTime tolerance) {
    MicroTime current = TimestampDistance(ts_next_, timestamp);
    while (next_ + 1 < size_) {
      const MicroTime candidate = TimestampDistance(ts_ahead_, timestamp);
      if (candidate > current) {
        break;
      }
      current = candidate;
      ++next_;
      ts_next_ = ts_ahead_;
      if (next_ + 1 < size_) {
        ts_ahead_ = (*series_)[next_ + 1].timestamp;
      }
    }
    return current <= tolerance;
  }

  size_t index() const { return next_; }

 private:
  const TimeSeries* series_;
  size_t next_;
  size_t size_;
  MicroTime ts_next_;   // (*series_)[next_].timestamp
  MicroTime ts_ahead_;  // (*series_)[next_ + 1].timestamp when it exists
};

// Two-pointer nearest-match cursor for merge-join alignment: the per-series
// object wrapper around SeekNearestAdvance.
class NearestCursor {
 public:
  explicit NearestCursor(const TimeSeries& series) : series_(&series) {}

  // Positions the cursor on the nearest point to `timestamp` and stores its
  // index in `*index`. Returns true when that point is within `tolerance`.
  // Query timestamps must be non-decreasing across calls.
  bool Seek(MicroTime timestamp, MicroTime tolerance, size_t* index) {
    if (series_->empty()) {
      return false;
    }
    const bool hit = SeekNearestAdvance(*series_, timestamp, tolerance, &next_);
    *index = next_;
    return hit;
  }

 private:
  const TimeSeries* series_;
  size_t next_ = 0;
};

// A time-aligned pair of samples from two series.
struct AlignedPair {
  MicroTime timestamp = 0;
  double a = 0.0;
  double b = 0.0;
};

// Aligns two series over [begin, end): for each point of `a` in the window,
// finds the nearest point of `b` within `tolerance`; pairs without a match
// are skipped. The paper's samples arrive once a minute on a shared cadence,
// so `tolerance` of half the cadence pairs them exactly.
//
// This is the legacy reference path: it allocates the output vector and is
// O(|a| log |b|). The hot path (core/correlation.h FusedAntagonistCorrelation)
// merge-joins the same pairing in O(|a|+|b|) with zero allocations and is
// proven bit-identical by correlation_equivalence_test.
std::vector<AlignedPair> AlignSeries(const TimeSeries& a, const TimeSeries& b, MicroTime begin,
                                     MicroTime end, MicroTime tolerance);

}  // namespace cpi2

#endif  // CPI2_UTIL_TIME_SERIES_H_
