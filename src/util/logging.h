// Minimal leveled logging to stderr.
//
// Usage:
//   CPI2_LOG(INFO) << "spec updated for " << job_name;
//
// The log level can be raised globally (e.g. to silence INFO during
// benchmarks) via SetMinLogLevel().

#ifndef CPI2_UTIL_LOGGING_H_
#define CPI2_UTIL_LOGGING_H_

#include <sstream>

namespace cpi2 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Severity aliases used by the CPI2_LOG macro.
inline constexpr LogLevel LogSeverity_DEBUG = LogLevel::kDebug;
inline constexpr LogLevel LogSeverity_INFO = LogLevel::kInfo;
inline constexpr LogLevel LogSeverity_WARNING = LogLevel::kWarning;
inline constexpr LogLevel LogSeverity_ERROR = LogLevel::kError;

// Sets the minimum level that is actually emitted. Thread-safe.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

// One log statement. Accumulates the message and emits it (with a timestamp
// and level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace cpi2

#define CPI2_LOG(severity) \
  ::cpi2::LogMessage(::cpi2::LogSeverity_##severity, __FILE__, __LINE__)

#endif  // CPI2_UTIL_LOGGING_H_
