// Crash-atomic file writes.
//
// Writing a checkpoint or incident log with fopen(path, "w") has a window
// where a crash leaves a half-written file *in place of* the previous good
// one — the next restore then fails or, worse, silently loads a torn
// prefix. AtomicWriteFile closes that window the classic POSIX way: write
// everything to `<path>.tmp`, fsync it, then rename(2) over the target.
// rename is atomic on the same filesystem, so readers see either the old
// complete file or the new complete file, never a mixture.

#ifndef CPI2_UTIL_FILE_UTIL_H_
#define CPI2_UTIL_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace cpi2 {

// Atomically replaces `path` with `contents` via write-to-temp + fsync +
// rename. On any failure the temp file is removed and `path` is untouched.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

// Reads all of `path` into a string. NotFound if the file cannot be opened.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace cpi2

#endif  // CPI2_UTIL_FILE_UTIL_H_
