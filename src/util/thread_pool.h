// Persistent worker pool for the parallel tick engine.
//
// The simulator's hot loop shards independent per-machine work (Machine::Tick,
// Agent::Tick) across threads every tick, so the pool is built for many small
// batches rather than long-lived jobs: workers persist across batches, Submit
// never allocates beyond the queued closure, and ParallelFor load-balances
// through a single shared counter (machines have heterogeneous tenant counts,
// so static sharding would straggle).
//
// Determinism contract: the pool only controls *where* work runs, never the
// result. Callers that need cross-shard effects in a fixed order must buffer
// them per shard and drain after the barrier (see ClusterHarness::OnTick).

#ifndef CPI2_UTIL_THREAD_POOL_H_
#define CPI2_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cpi2 {

class ThreadPool {
 public:
  // Spawns `threads` workers; <= 0 selects std::thread::hardware_concurrency()
  // (minimum 1). Note ParallelFor also runs work on the calling thread, so a
  // pool of W workers gives W+1 lanes of parallelism there.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task for any worker. Pair with Wait() as a barrier.
  void Submit(std::function<void()> fn);

  // Blocks until every submitted task has finished. If any task threw, the
  // first exception is rethrown here (later ones are dropped) and the pool
  // stays usable.
  void Wait();

  // Runs fn(i) for every i in [0, n), dynamically load-balanced across the
  // workers plus the calling thread, and blocks until all calls return.
  // Rethrows the first exception after the batch drains. Must not be called
  // from inside a pool task (a worker waiting on its own batch deadlocks).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  void RecordException();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable done_cv_;  // Wait(): in-flight count reached zero
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_exception_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cpi2

#endif  // CPI2_UTIL_THREAD_POOL_H_
