// Hardware-counter vocabulary for CPI2.
//
// The paper derives CPI from two counters collected simultaneously in
// counting mode per cgroup: CPU_CLK_UNHALTED.REF / INSTRUCTIONS_RETIRED
// (section 3.1). Section 7.2 additionally examines L2/L3 misses per
// instruction and memory requests per cycle, so the taxonomy carries those
// too.

#ifndef CPI2_PERF_COUNTERS_H_
#define CPI2_PERF_COUNTERS_H_

#include <cstdint>

#include "util/clock.h"

namespace cpi2 {

enum class HwCounter {
  kCpuClkUnhaltedRef,
  kInstructionsRetired,
  kL2Misses,
  kL3Misses,
  kMemRequests,
};

// Cumulative counter values for one container (cgroup), as read in counting
// mode at a single instant.
struct CounterSnapshot {
  MicroTime timestamp = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
  uint64_t mem_requests = 0;
  // CPU time consumed by the container so far, in CPU-seconds.
  double cpu_seconds = 0.0;
};

// Counter deltas over one sampling window.
struct CounterDelta {
  MicroTime window_begin = 0;
  MicroTime window_end = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
  uint64_t mem_requests = 0;
  double cpu_seconds = 0.0;

  // Cycles per instruction over the window; 0 when no instructions retired.
  double Cpi() const {
    return instructions > 0
               ? static_cast<double>(cycles) / static_cast<double>(instructions)
               : 0.0;
  }

  // Average CPU usage rate over the window, in CPU-sec/sec.
  double UsageRate() const {
    const double wall = MicrosToSeconds(window_end - window_begin);
    return wall > 0.0 ? cpu_seconds / wall : 0.0;
  }

  double L2MissesPerInstruction() const {
    return instructions > 0
               ? static_cast<double>(l2_misses) / static_cast<double>(instructions)
               : 0.0;
  }

  double L3MissesPerInstruction() const {
    return instructions > 0
               ? static_cast<double>(l3_misses) / static_cast<double>(instructions)
               : 0.0;
  }

  double MemRequestsPerCycle() const {
    return cycles > 0 ? static_cast<double>(mem_requests) / static_cast<double>(cycles) : 0.0;
  }
};

// Computes the delta between two snapshots of the same container.
CounterDelta DiffSnapshots(const CounterSnapshot& begin, const CounterSnapshot& end);

}  // namespace cpi2

#endif  // CPI2_PERF_COUNTERS_H_
