#include "perf/perf_event_source.h"

#include <fcntl.h>
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cpi2 {
namespace {

int PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd, unsigned long flags) {
  return static_cast<int>(syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

perf_event_attr MakeAttr(uint64_t type, uint64_t config, bool exclude_kernel) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = static_cast<uint32_t>(type);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = exclude_kernel ? 1 : 0;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // Count the whole process tree, like per-cgroup counting.
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

Status ErrnoToStatus(int err, const std::string& what) {
  const std::string message = what + ": " + std::strerror(err);
  switch (err) {
    case EACCES:
    case EPERM:
      return PermissionDeniedError(message);
    case ENOENT:
    case ESRCH:
      return NotFoundError(message);
    case ENOSYS:
    case ENODEV:
    case EOPNOTSUPP:
      return UnavailableError(message);
    default:
      return InternalError(message);
  }
}

// One counter value read from a perf fd, scaled for multiplexing.
StatusOr<uint64_t> ReadScaled(int fd, const std::string& what) {
  struct {
    uint64_t value;
    uint64_t time_enabled;
    uint64_t time_running;
  } data{};
  const ssize_t n = read(fd, &data, sizeof(data));
  if (n != static_cast<ssize_t>(sizeof(data))) {
    return ErrnoToStatus(errno != 0 ? errno : EIO, "read " + what);
  }
  if (data.time_running == 0 || data.time_running == data.time_enabled) {
    return data.value;
  }
  // The kernel multiplexed this counter with others; scale up linearly.
  const double scale =
      static_cast<double>(data.time_enabled) / static_cast<double>(data.time_running);
  return static_cast<uint64_t>(static_cast<double>(data.value) * scale);
}

// CPU seconds consumed by a whole process from /proc/<pid>/stat
// (utime + stime, in clock ticks).
double ReadProcCpuSeconds(pid_t pid) {
  std::ifstream stat("/proc/" + std::to_string(pid) + "/stat");
  if (!stat) {
    return 0.0;
  }
  std::string line;
  std::getline(stat, line);
  // Field 2 (comm) may contain spaces; skip past the closing paren.
  const size_t close = line.rfind(')');
  if (close == std::string::npos) {
    return 0.0;
  }
  std::istringstream rest(line.substr(close + 2));
  std::string field;
  // Fields 3..13 precede utime (field 14) and stime (field 15).
  for (int i = 3; i <= 13; ++i) {
    rest >> field;
  }
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  rest >> utime >> stime;
  const long hz = sysconf(_SC_CLK_TCK);
  return hz > 0 ? static_cast<double>(utime + stime) / static_cast<double>(hz) : 0.0;
}

}  // namespace

struct PerfEventCounterSource::EventGroup {
  int cycles_fd = -1;
  int instructions_fd = -1;
  int cgroup_fd = -1;
  pid_t pid = -1;
  std::string cpuacct_path;  // for cpu_seconds, when available

  ~EventGroup() {
    if (cycles_fd >= 0) {
      close(cycles_fd);
    }
    if (instructions_fd >= 0) {
      close(instructions_fd);
    }
    if (cgroup_fd >= 0) {
      close(cgroup_fd);
    }
  }
};

PerfEventCounterSource::PerfEventCounterSource(Options options) : options_(std::move(options)) {}

PerfEventCounterSource::~PerfEventCounterSource() = default;

Status PerfEventCounterSource::Attach(const std::string& container) {
  auto group = std::make_unique<EventGroup>();
  pid_t target_pid = -1;
  unsigned long flags = 0;
  if (!options_.cgroup_root.empty()) {
    const std::string path = options_.cgroup_root + "/" + container;
    group->cgroup_fd = open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (group->cgroup_fd < 0) {
      return ErrnoToStatus(errno, "open cgroup " + path);
    }
    target_pid = group->cgroup_fd;
    flags = PERF_FLAG_PID_CGROUP;
    group->cpuacct_path = path + "/cpu.stat";
  } else {
    char* end = nullptr;
    const long pid = std::strtol(container.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || pid <= 0) {
      return InvalidArgumentError("container must be a pid without cgroup_root: " + container);
    }
    target_pid = static_cast<pid_t>(pid);
    group->pid = target_pid;
  }

  perf_event_attr cycles =
      MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_REF_CPU_CYCLES, options_.exclude_kernel);
  group->cycles_fd = PerfEventOpen(&cycles, target_pid, /*cpu=*/-1, /*group_fd=*/-1, flags);
  if (group->cycles_fd < 0 && errno == EINVAL) {
    // Older CPUs without a fixed reference-cycles counter: fall back to core
    // cycles, as perf itself does.
    cycles = MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, options_.exclude_kernel);
    group->cycles_fd = PerfEventOpen(&cycles, target_pid, -1, -1, flags);
  }
  if (group->cycles_fd < 0) {
    return ErrnoToStatus(errno, "perf_event_open(cycles) for " + container);
  }

  perf_event_attr instructions =
      MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, options_.exclude_kernel);
  group->instructions_fd =
      PerfEventOpen(&instructions, target_pid, -1, group->cycles_fd, flags);
  if (group->instructions_fd < 0) {
    return ErrnoToStatus(errno, "perf_event_open(instructions) for " + container);
  }

  groups_[container] = std::move(group);
  return Status::Ok();
}

void PerfEventCounterSource::Detach(const std::string& container) { groups_.erase(container); }

StatusOr<CounterSnapshot> PerfEventCounterSource::Read(const std::string& container) {
  const auto it = groups_.find(container);
  if (it == groups_.end()) {
    return NotFoundError("container not attached: " + container);
  }
  const EventGroup& group = *it->second;
  StatusOr<uint64_t> cycles = ReadScaled(group.cycles_fd, "cycles");
  if (!cycles.ok()) {
    return cycles.status();
  }
  StatusOr<uint64_t> instructions = ReadScaled(group.instructions_fd, "instructions");
  if (!instructions.ok()) {
    return instructions.status();
  }
  CounterSnapshot snapshot;
  snapshot.timestamp = RealClock::Get()->NowMicros();
  snapshot.cycles = *cycles;
  snapshot.instructions = *instructions;
  // cpu_seconds: cgroup v2 cpu.stat in cgroup mode, /proc/<pid>/stat in pid
  // mode.
  if (group.pid > 0) {
    snapshot.cpu_seconds = ReadProcCpuSeconds(group.pid);
  } else if (!group.cpuacct_path.empty()) {
    std::ifstream stat(group.cpuacct_path);
    std::string key;
    uint64_t value = 0;
    while (stat >> key >> value) {
      if (key == "usage_usec") {
        snapshot.cpu_seconds = static_cast<double>(value) / 1e6;
        break;
      }
    }
  }
  return snapshot;
}

bool PerfEventCounterSource::SupportedOnThisHost() {
  perf_event_attr attr = MakeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, false);
  const int fd = PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0);
  if (fd < 0) {
    return false;
  }
  close(fd);
  return true;
}

}  // namespace cpi2
