// Fault-injecting CounterSource decorator.
//
// Real performance counters glitch: an NMI or firmware update zeroes them, a
// driver bug returns garbage, a wedged PMU reports the same values forever.
// FlakyCounterSource wraps any CounterSource and injects exactly those three
// failure shapes at seeded, per-read probabilities, so the sanity filtering
// above it (Agent::RejectedBySanityFilter) can be exercised deterministically.
//
// The decorator owns its RNG; wrap one source per machine and fork the RNGs
// from the cluster seed in machine order, and every fault draw is
// bit-reproducible regardless of thread count (each machine's reads happen
// on exactly one worker per tick).

#ifndef CPI2_PERF_FLAKY_COUNTER_SOURCE_H_
#define CPI2_PERF_FLAKY_COUNTER_SOURCE_H_

#include <map>
#include <string>

#include "perf/counter_source.h"
#include "util/rng.h"

namespace cpi2 {

class FlakyCounterSource : public CounterSource {
 public:
  struct Options {
    uint64_t seed = 0;
    // Per-read probabilities of each glitch shape; the remainder of the
    // probability mass passes the read through untouched.
    double zero_rate = 0.0;     // counters reset to zero (deltas go negative)
    double garbage_rate = 0.0;  // uncorrelated garbage values
    double stuck_rate = 0.0;    // previous read repeated (zero deltas)
  };

  FlakyCounterSource(CounterSource* wrapped, const Options& options)
      : wrapped_(wrapped), options_(options), rng_(options.seed) {}

  StatusOr<CounterSnapshot> Read(const std::string& container) override;

  // Glitches injected so far, by shape (diagnostics and tests).
  int64_t zeroes_injected() const { return zeroes_injected_; }
  int64_t garbage_injected() const { return garbage_injected_; }
  int64_t stuck_injected() const { return stuck_injected_; }

 private:
  CounterSource* wrapped_;
  Options options_;
  Rng rng_;
  // Last snapshot handed out per container, replayed by the "stuck" shape.
  std::map<std::string, CounterSnapshot> last_read_;
  int64_t zeroes_injected_ = 0;
  int64_t garbage_injected_ = 0;
  int64_t stuck_injected_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_PERF_FLAKY_COUNTER_SOURCE_H_
