#include "perf/flaky_counter_source.h"

namespace cpi2 {

StatusOr<CounterSnapshot> FlakyCounterSource::Read(const std::string& container) {
  StatusOr<CounterSnapshot> real = wrapped_->Read(container);
  if (!real.ok()) {
    return real;  // Pass real failures through; we only add glitches.
  }
  CounterSnapshot snapshot = *real;

  // One draw decides the glitch shape, so the three rates partition a single
  // uniform variate and the fault stream stays one-draw-per-read (easy to
  // reason about for determinism).
  const double roll = rng_.NextDouble();
  const double zero_edge = options_.zero_rate;
  const double garbage_edge = zero_edge + options_.garbage_rate;
  const double stuck_edge = garbage_edge + options_.stuck_rate;

  if (roll < zero_edge) {
    // Counter reset: everything reads as a fresh-boot zero. The next delta
    // against an earlier snapshot goes "backwards".
    const MicroTime timestamp = snapshot.timestamp;
    snapshot = CounterSnapshot{};
    snapshot.timestamp = timestamp;
    ++zeroes_injected_;
  } else if (roll < garbage_edge) {
    // Garbage: values unrelated to the real counters, the kind a driver bug
    // or partial MSR read produces. Large and mutually inconsistent.
    snapshot.cycles = rng_();
    snapshot.instructions = rng_() % 3 == 0 ? 0 : rng_();
    snapshot.l2_misses = rng_();
    snapshot.l3_misses = rng_();
    snapshot.mem_requests = rng_();
    snapshot.cpu_seconds = rng_.Uniform(-1e6, 1e6);
    ++garbage_injected_;
  } else if (roll < stuck_edge) {
    const auto it = last_read_.find(container);
    if (it != last_read_.end()) {
      // Wedged PMU: report exactly what we reported last time.
      const MicroTime timestamp = snapshot.timestamp;
      snapshot = it->second;
      snapshot.timestamp = timestamp;
      ++stuck_injected_;
    }
  }

  last_read_[container] = snapshot;
  return snapshot;
}

}  // namespace cpi2
