// Backend-agnostic access to per-container performance counters.
//
// Two production-relevant implementations exist:
//  - PerfEventCounterSource (perf/perf_event_source.h): real Linux
//    perf_event_open counting-mode counters, one group per cgroup.
//  - Machine (sim/machine.h): the cluster simulator's machines expose the
//    same interface, computing counters from the interference model.
// FakeCounterSource below supports unit tests.

#ifndef CPI2_PERF_COUNTER_SOURCE_H_
#define CPI2_PERF_COUNTER_SOURCE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "perf/counters.h"
#include "util/status.h"

namespace cpi2 {

class CounterSource {
 public:
  virtual ~CounterSource() = default;

  // Reads the cumulative counters of `container` in counting mode. The
  // counters keep accumulating between reads; callers diff snapshots.
  virtual StatusOr<CounterSnapshot> Read(const std::string& container) = 0;

  // Optional fast path for steady-state readers (the duty-cycled sampler
  // reads every container twice a minute, forever). A source that supports
  // handles returns a value H such that ReadByHandle(H) is equivalent to
  // Read(container) for the source's whole lifetime — the handle aliases
  // the *name*, not one registration, so it stays correct across container
  // churn (re-registration under the same name resolves to the new
  // container; a removed container fails NotFound, exactly like the string
  // path). Sources that cannot promise that return nullopt and callers
  // keep using Read().
  virtual std::optional<uint64_t> ContainerHandle(const std::string& container) {
    (void)container;
    return std::nullopt;
  }
  virtual StatusOr<CounterSnapshot> ReadByHandle(uint64_t handle) {
    (void)handle;
    return NotFoundError("counter source does not support handles");
  }
};

// In-memory source for tests: snapshots are set explicitly.
class FakeCounterSource : public CounterSource {
 public:
  void SetSnapshot(const std::string& container, const CounterSnapshot& snapshot) {
    snapshots_[container] = snapshot;
  }

  void Remove(const std::string& container) { snapshots_.erase(container); }

  StatusOr<CounterSnapshot> Read(const std::string& container) override {
    const auto it = snapshots_.find(container);
    if (it == snapshots_.end()) {
      return NotFoundError("no counters for container " + container);
    }
    return it->second;
  }

 private:
  std::map<std::string, CounterSnapshot> snapshots_;
};

}  // namespace cpi2

#endif  // CPI2_PERF_COUNTER_SOURCE_H_
