// Real Linux perf_event counting-mode backend.
//
// Mirrors the paper's collection setup: hardware counters opened per cgroup
// (falling back to per-pid when cgroup mode is unavailable), read in
// counting mode rather than sampling mode to keep overhead below 0.1%.
// Reference cycles and retired instructions are opened as one event group so
// they count over exactly the same intervals, which is what makes their
// ratio a valid CPI.
//
// Every operation degrades gracefully: on kernels or containers where
// perf_event_open is unavailable (no perf support, locked-down
// perf_event_paranoid, missing cgroup v2 hierarchy), methods return
// kUnavailable / kPermissionDenied and the caller can fall back to another
// CounterSource.

#ifndef CPI2_PERF_PERF_EVENT_SOURCE_H_
#define CPI2_PERF_PERF_EVENT_SOURCE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "perf/counter_source.h"
#include "util/status.h"

namespace cpi2 {

class PerfEventCounterSource : public CounterSource {
 public:
  struct Options {
    // When non-empty, container names are resolved as cgroup-v2 paths under
    // this root and counters are opened with PERF_FLAG_PID_CGROUP.
    std::string cgroup_root;
    // Count user + kernel (false) or user only (true).
    bool exclude_kernel = false;
  };

  explicit PerfEventCounterSource(Options options);
  ~PerfEventCounterSource() override;

  PerfEventCounterSource(const PerfEventCounterSource&) = delete;
  PerfEventCounterSource& operator=(const PerfEventCounterSource&) = delete;

  // Attaches counters to a container. For cgroup mode, `container` is a
  // cgroup path relative to cgroup_root; otherwise it must parse as a pid.
  Status Attach(const std::string& container);
  void Detach(const std::string& container);

  StatusOr<CounterSnapshot> Read(const std::string& container) override;

  // True if perf_event_open works at all in this environment (probes once).
  static bool SupportedOnThisHost();

 private:
  struct EventGroup;

  Options options_;
  std::map<std::string, std::unique_ptr<EventGroup>> groups_;
};

}  // namespace cpi2

#endif  // CPI2_PERF_PERF_EVENT_SOURCE_H_
