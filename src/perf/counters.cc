#include "perf/counters.h"

namespace cpi2 {
namespace {

uint64_t MonotonicDiff(uint64_t begin, uint64_t end) { return end >= begin ? end - begin : 0; }

}  // namespace

CounterDelta DiffSnapshots(const CounterSnapshot& begin, const CounterSnapshot& end) {
  CounterDelta delta;
  delta.window_begin = begin.timestamp;
  delta.window_end = end.timestamp;
  delta.cycles = MonotonicDiff(begin.cycles, end.cycles);
  delta.instructions = MonotonicDiff(begin.instructions, end.instructions);
  delta.l2_misses = MonotonicDiff(begin.l2_misses, end.l2_misses);
  delta.l3_misses = MonotonicDiff(begin.l3_misses, end.l3_misses);
  delta.mem_requests = MonotonicDiff(begin.mem_requests, end.mem_requests);
  delta.cpu_seconds = end.cpu_seconds >= begin.cpu_seconds
                          ? end.cpu_seconds - begin.cpu_seconds
                          : 0.0;
  return delta;
}

}  // namespace cpi2
