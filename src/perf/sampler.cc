#include "perf/sampler.h"

#include <utility>

#include "util/logging.h"

namespace cpi2 {

CpiSampler::CpiSampler(CounterSource* source, const Options& options, SampleCallback callback)
    : source_(source), options_(options), callback_(std::move(callback)) {}

void CpiSampler::AddContainer(const std::string& container, MicroTime now) {
  ContainerState state;
  MicroTime offset = 0;
  if (options_.stagger_windows && options_.sample_period > options_.sample_duration) {
    const MicroTime slack = options_.sample_period - options_.sample_duration;
    offset = static_cast<MicroTime>(stagger_counter_++ * kMicrosPerSecond) % slack;
  }
  state.next_window_start = now + offset;
  containers_[container] = state;
}

void CpiSampler::RemoveContainer(const std::string& container) { containers_.erase(container); }

bool CpiSampler::HasContainer(const std::string& container) const {
  return containers_.count(container) > 0;
}

void CpiSampler::Tick(MicroTime now) {
  for (auto& [container, state] : containers_) {
    if (state.state == State::kIdle && now >= state.next_window_start) {
      StatusOr<CounterSnapshot> begin = source_->Read(container);
      if (!begin.ok()) {
        ++read_failures_;
        state.next_window_start = now + options_.sample_period;
        continue;
      }
      state.begin_snapshot = *begin;
      state.begin_snapshot.timestamp = now;
      state.window_end_due = now + options_.sample_duration;
      state.state = State::kCounting;
    } else if (state.state == State::kCounting && now >= state.window_end_due) {
      StatusOr<CounterSnapshot> end = source_->Read(container);
      state.state = State::kIdle;
      state.next_window_start = state.begin_snapshot.timestamp + options_.sample_period;
      if (state.next_window_start <= now) {
        state.next_window_start = now + options_.sample_period - options_.sample_duration;
      }
      if (!end.ok()) {
        ++read_failures_;
        continue;
      }
      CounterSnapshot end_snapshot = *end;
      end_snapshot.timestamp = now;
      const CounterDelta delta = DiffSnapshots(state.begin_snapshot, end_snapshot);
      ++samples_emitted_;
      if (callback_) {
        callback_(container, delta);
      }
    }
  }
}

}  // namespace cpi2
