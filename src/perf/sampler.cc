#include "perf/sampler.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace cpi2 {

namespace {

// lower_bound over the name-sorted container vector.
template <typename Vec>
auto FindContainer(Vec& containers, const std::string& container) {
  return std::lower_bound(
      containers.begin(), containers.end(), container,
      [](const auto& entry, const std::string& name) { return entry.first < name; });
}

}  // namespace

CpiSampler::CpiSampler(CounterSource* source, const Options& options, SampleCallback callback)
    : source_(source), options_(options), callback_(std::move(callback)) {}

void CpiSampler::AddContainer(const std::string& container, MicroTime now) {
  ContainerState state;
  MicroTime offset = 0;
  if (options_.stagger_windows && options_.sample_period > options_.sample_duration) {
    const MicroTime slack = options_.sample_period - options_.sample_duration;
    offset = static_cast<MicroTime>(stagger_counter_++ * kMicrosPerSecond) % slack;
  }
  state.next_window_start = now + offset;
  const auto it = FindContainer(containers_, container);
  if (it != containers_.end() && it->first == container) {
    it->second = state;  // re-registration resets the window, like map[]=
  } else {
    containers_.emplace(it, container, state);
  }
}

void CpiSampler::RemoveContainer(const std::string& container) {
  const auto it = FindContainer(containers_, container);
  if (it != containers_.end() && it->first == container) {
    containers_.erase(it);
  }
}

bool CpiSampler::HasContainer(const std::string& container) const {
  const auto it = FindContainer(containers_, container);
  return it != containers_.end() && it->first == container;
}

StatusOr<CounterSnapshot> CpiSampler::ReadCounters(const std::string& container,
                                                   ContainerState& state) {
  if (!state.handle_valid) {
    const std::optional<uint64_t> handle = source_->ContainerHandle(container);
    if (!handle.has_value()) {
      return source_->Read(container);  // unsupported (or name unknown yet)
    }
    state.handle = *handle;
    state.handle_valid = true;
  }
  return source_->ReadByHandle(state.handle);
}

void CpiSampler::Tick(MicroTime now) {
  for (auto& [container, state] : containers_) {
    if (state.state == State::kIdle && now >= state.next_window_start) {
      StatusOr<CounterSnapshot> begin = ReadCounters(container, state);
      if (!begin.ok()) {
        ++read_failures_;
        state.next_window_start = now + options_.sample_period;
        continue;
      }
      state.begin_snapshot = *begin;
      state.begin_snapshot.timestamp = now;
      state.window_end_due = now + options_.sample_duration;
      state.state = State::kCounting;
    } else if (state.state == State::kCounting && now >= state.window_end_due) {
      StatusOr<CounterSnapshot> end = ReadCounters(container, state);
      state.state = State::kIdle;
      state.next_window_start = state.begin_snapshot.timestamp + options_.sample_period;
      if (state.next_window_start <= now) {
        state.next_window_start = now + options_.sample_period - options_.sample_duration;
      }
      if (!end.ok()) {
        ++read_failures_;
        continue;
      }
      CounterSnapshot end_snapshot = *end;
      end_snapshot.timestamp = now;
      const CounterDelta delta = DiffSnapshots(state.begin_snapshot, end_snapshot);
      ++samples_emitted_;
      if (callback_) {
        callback_(container, delta);
      }
    }
  }
}

}  // namespace cpi2
