// Duty-cycled CPI sampler.
//
// Section 3.1: "We gather CPI data for a 10 second period once a minute; we
// picked this fraction to give other measurement tools time to use the
// counters." The sampler runs a small state machine per container: at each
// due time it snapshots the counters, waits `sample_duration`, snapshots
// again, and emits the delta. It is clock-driven (Tick) so the simulator can
// run it on virtual time and a real daemon can run it from a timer loop.

#ifndef CPI2_PERF_SAMPLER_H_
#define CPI2_PERF_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "perf/counter_source.h"
#include "perf/counters.h"
#include "util/clock.h"

namespace cpi2 {

class CpiSampler {
 public:
  struct Options {
    MicroTime sample_duration = 10 * kMicrosPerSecond;
    MicroTime sample_period = 60 * kMicrosPerSecond;
    // When true, containers start their windows at staggered offsets within
    // the period so a machine's reads do not all land on the same tick.
    bool stagger_windows = true;
  };

  // Called once per completed sampling window.
  using SampleCallback = std::function<void(const std::string& container, const CounterDelta&)>;

  CpiSampler(CounterSource* source, const Options& options, SampleCallback callback);

  // Registers a container; its first window starts at or after `now`.
  void AddContainer(const std::string& container, MicroTime now);
  void RemoveContainer(const std::string& container);
  // Drops every container and the stagger state (agent restart). A restarted
  // sampler re-registers containers from scratch, so windows re-stagger
  // exactly as on a fresh process.
  void Clear() {
    containers_.clear();
    stagger_counter_ = 0;
  }
  bool HasContainer(const std::string& container) const;
  size_t container_count() const { return containers_.size(); }

  // Advances the state machine. Call at least once per second of (real or
  // simulated) time; finer ticks only improve window-edge accuracy.
  void Tick(MicroTime now);

  // Diagnostics: completed windows and failed counter reads since creation.
  int64_t samples_emitted() const { return samples_emitted_; }
  int64_t read_failures() const { return read_failures_; }

 private:
  enum class State { kIdle, kCounting };

  struct ContainerState {
    State state = State::kIdle;
    MicroTime next_window_start = 0;
    MicroTime window_end_due = 0;
    CounterSnapshot begin_snapshot;
    // Resolved once on first read (sources promise a handle aliases the
    // name for their lifetime, so caching here is safe across churn);
    // sources without handle support leave handle_valid false forever and
    // reads stay on the string path.
    uint64_t handle = 0;
    bool handle_valid = false;
  };

  StatusOr<CounterSnapshot> ReadCounters(const std::string& container, ContainerState& state);

  CounterSource* source_;
  Options options_;
  SampleCallback callback_;
  // Sorted by container name: the per-tick scan walks one contiguous vector
  // instead of chasing map nodes, and iteration order (hence sample emission
  // order) matches the former std::map exactly.
  std::vector<std::pair<std::string, ContainerState>> containers_;
  uint64_t stagger_counter_ = 0;
  int64_t samples_emitted_ = 0;
  int64_t read_failures_ = 0;
};

}  // namespace cpi2

#endif  // CPI2_PERF_SAMPLER_H_
