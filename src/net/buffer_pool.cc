#include "net/buffer_pool.h"

#include <algorithm>

namespace cpi2 {

void SlabRef::Release() {
  if (slab_ == nullptr) {
    return;
  }
  Slab* slab = slab_;
  slab_ = nullptr;
  if (--slab->refs_ > 0) {
    return;
  }
  if (slab->pool_ != nullptr) {
    slab->pool_->Recycle(slab);
  } else {
    delete slab;  // the pool died first; the slab frees itself
  }
}

BufferPool::BufferPool(size_t slab_size) : slab_size_(slab_size) {}

BufferPool::~BufferPool() {
  for (Slab* slab : free_) {
    delete slab;
  }
  // Slabs still referenced (a connection outliving its pool would be an
  // owner bug, but the graveyard makes destruction order subtle): orphan
  // them so their last SlabRef deletes instead of touching a dead pool.
  for (Slab* slab : live_slabs_) {
    slab->pool_ = nullptr;
  }
}

SlabRef BufferPool::Acquire(size_t min_capacity) {
  Slab* slab = nullptr;
  if (min_capacity <= slab_size_) {
    if (!free_.empty()) {
      slab = free_.back();
      free_.pop_back();
      slab->used_ = 0;
      ++stats_.slabs_reused;
    } else {
      slab = new Slab(this, slab_size_);
      ++stats_.slabs_created;
    }
  } else {
    slab = new Slab(this, min_capacity);
    ++stats_.slabs_created;
    ++stats_.oversize_slabs;
  }
  live_slabs_.push_back(slab);
  return SlabRef(slab);
}

void BufferPool::Recycle(Slab* slab) {
  live_slabs_.erase(std::find(live_slabs_.begin(), live_slabs_.end(), slab));
  if (slab->capacity_ != slab_size_) {
    delete slab;  // oversize one-off: not worth pooling
    return;
  }
  slab->used_ = 0;
  free_.push_back(slab);
}

}  // namespace cpi2
