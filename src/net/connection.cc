#include "net/connection.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "wire/wire_codec.h"

namespace cpi2 {

namespace {
// iovec batch per sendmsg call. The chain rarely exceeds a handful of slabs;
// 64 keeps the stack array small while staying far above the steady state.
constexpr int kMaxIov = 64;
// Bytes of ring space guaranteed to readv per loop iteration.
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

const char* CloseReasonName(Connection::CloseReason reason) {
  switch (reason) {
    case Connection::CloseReason::kLocalClose:
      return "local-close";
    case Connection::CloseReason::kPeerClosed:
      return "peer-closed";
    case Connection::CloseReason::kError:
      return "error";
    case Connection::CloseReason::kCorruptFrame:
      return "corrupt-frame";
    case Connection::CloseReason::kBadMagic:
      return "bad-magic";
    case Connection::CloseReason::kInjectedReset:
      return "injected-reset";
  }
  return "unknown";
}

Connection::Connection(EventLoop* loop, int fd, const Options& options)
    : loop_(loop), fd_(fd), options_(options) {
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<BufferPool>(
        options_.slab_size > 0 ? options_.slab_size : BufferPool::kDefaultSlabSize);
    pool_ = owned_pool_.get();
  }
}

Connection::~Connection() {
  if (!closed_) {
    // Destructor teardown must not fire callbacks into a half-destroyed
    // owner; drop the handler first.
    close_handler_ = nullptr;
    Close(CloseReason::kLocalClose);
  }
}

Slab* Connection::EnsureTailRoom(size_t room) {
  if (send_slabs_.empty() || send_slabs_.back()->room() < room) {
    send_slabs_.push_back(pool_->Acquire(room));
  }
  return send_slabs_.back().get();
}

void Connection::Start() {
  started_ = true;
  start_time_ = MonotonicNowMicros();
  Slab* slab = EnsureTailRoom(kWireMagicSize);
  std::memcpy(slab->Extend(kWireMagicSize), kNetStreamMagic, kWireMagicSize);
  send_queue_bytes_ += kWireMagicSize;
  loop_->WatchFd(fd_, EventLoop::kReadable | EventLoop::kWritable,
                 [this](uint32_t events) { OnEvents(events); });
  if (options_.injector != nullptr && options_.injector->options().partition_period > 0) {
    ArmPartitionTimer();
  }
}

bool Connection::Partitioned() const {
  return options_.injector != nullptr &&
         options_.injector->PartitionActive(MonotonicNowMicros());
}

void Connection::ArmPartitionTimer() {
  // Poll the partition schedule at 10ms granularity: entering a window
  // freezes the interest set, leaving it restores read/write readiness.
  partition_timer_ = loop_->AddTimer(10 * kMicrosPerMilli, [this] {
    if (closed_) {
      return;
    }
    UpdateInterest();
    ArmPartitionTimer();
  });
}

void Connection::UpdateInterest() {
  if (closed_) {
    return;
  }
  if (Partitioned()) {
    loop_->SetFdEvents(fd_, 0);  // blackhole: no reads, no writes
    return;
  }
  uint32_t events = EventLoop::kReadable;
  if (send_queue_bytes_ > 0 && !stalled_) {
    events |= EventLoop::kWritable;
  }
  loop_->SetFdEvents(fd_, events);
}

bool Connection::SendFrameParts(std::string_view head, std::string_view body) {
  if (closed_ || draining_) {
    ++stats_.send_rejects;
    return false;
  }
  const size_t payload_size = head.size() + body.size();
  const size_t framed_size = FramedRecordSize(payload_size);
  // Bound against the full framed record (envelope included): the queue can
  // never exceed max_send_queue_bytes, not even by the ~6-byte envelope.
  if (send_queue_bytes_ + framed_size > options_.max_send_queue_bytes) {
    ++stats_.send_rejects;
    return false;
  }
  // One injector draw per accepted frame, before the bytes land — same
  // order and same per-frame draw count as ever, so campaign schedules are
  // unchanged run to run.
  NetFaultInjector::Action action = NetFaultInjector::Action::kNone;
  if (options_.injector != nullptr) {
    action = options_.injector->DrawFrameAction();
  }

  // Frame straight into the tail slab: length varint, payload, CRC trailer.
  Slab* slab = EnsureTailRoom(framed_size);
  const size_t record_start = slab->used();
  char* base = slab->Extend(framed_size);
  char* p = base;
  for (uint64_t v = payload_size; ; v >>= 7) {
    if (v < 0x80) {
      *p++ = static_cast<char>(v);
      break;
    }
    *p++ = static_cast<char>((v & 0x7f) | 0x80);
  }
  std::memcpy(p, head.data(), head.size());
  p += head.size();
  if (!body.empty()) {
    std::memcpy(p, body.data(), body.size());
    p += body.size();
  }
  // Chained CRC over head + body == CRC of the concatenated payload.
  uint32_t crc = Crc32(head);
  crc = Crc32(body, crc);
  for (int i = 0; i < 4; ++i) {
    *p++ = static_cast<char>((crc >> (8 * i)) & 0xff);
  }

  // The record is the slab's last extent, so the injector mutates it in
  // place: a corrupt draw flips one byte, a truncate/kill draw rewinds the
  // slab cursor to keep only a prefix on the wire.
  size_t queued_size = framed_size;
  switch (action) {
    case NetFaultInjector::Action::kNone:
      break;
    case NetFaultInjector::Action::kCorrupt: {
      // Flip one bit after the CRC was computed: the receiver's verdict
      // machinery, not ours, must catch it.
      const size_t offset = options_.injector->DrawCorruptOffset(framed_size);
      base[offset] = static_cast<char>(base[offset] ^ 0x40);
      break;
    }
    case NetFaultInjector::Action::kTruncate: {
      queued_size = options_.injector->DrawTruncateLength(framed_size);
      slab->Rewind(record_start + queued_size);
      close_after_flush_ = true;
      pending_close_reason_ = CloseReason::kInjectedReset;
      break;
    }
    case NetFaultInjector::Action::kReset:
      close_after_flush_ = true;
      pending_close_reason_ = CloseReason::kInjectedReset;
      break;
    case NetFaultInjector::Action::kKillMidFrame:
      // Half the frame, then the owner's hook (the daemons raise SIGKILL
      // here: a deterministic "agent died mid-batch").
      queued_size = framed_size / 2;
      slab->Rewind(record_start + queued_size);
      close_after_flush_ = true;
      kill_after_flush_ = true;
      pending_close_reason_ = CloseReason::kInjectedReset;
      break;
  }

  ++stats_.frames_sent;
  send_queue_bytes_ += queued_size;
  if (!stalled_ && options_.injector != nullptr) {
    const MicroTime stall = options_.injector->DrawStall();
    if (stall > 0) {
      stalled_ = true;
      stall_timer_ = loop_->AddTimer(stall, [this] {
        stalled_ = false;
        if (!closed_) {
          UpdateInterest();
        }
      });
    }
  }
  UpdateInterest();
  return true;
}

void Connection::CloseWhenDrained() {
  draining_ = true;
  if (send_queue_bytes_ == 0) {
    Close(CloseReason::kLocalClose);
  }
}

void Connection::Close(CloseReason reason) {
  if (closed_) {
    return;
  }
  closed_ = true;
  if (assembler_.HasPartialFrame()) {
    ++stats_.truncated_tails;
  }
  if (reason == CloseReason::kCorruptFrame || reason == CloseReason::kBadMagic) {
    ++stats_.corrupt_frames;
  }
  loop_->CancelTimer(partition_timer_);
  loop_->CancelTimer(stall_timer_);
  loop_->UnwatchFd(fd_);
  if (reason == CloseReason::kInjectedReset) {
    // Make the injected reset a real RST, not a polite FIN: the peer gets
    // ECONNRESET, exactly like a crashed kernel socket.
    const linger hard{1, 0};
    setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  }
  close(fd_);
  fd_ = -1;
  send_slabs_.clear();  // release slabs back to the pool
  if (close_handler_) {
    // One shot; the handler may delete us (owners defer with AddTimer(0)).
    CloseHandler handler = std::move(close_handler_);
    close_handler_ = nullptr;
    handler(reason, stats_.truncated_tails > 0);
  }
}

void Connection::OnEvents(uint32_t events) {
  if (closed_) {
    return;
  }
  if (Partitioned()) {
    // A ready event raced the partition window opening; freeze and wait.
    UpdateInterest();
    return;
  }
  // Reads drain BEFORE writes and before acting on error events: when the
  // peer dies, its last bytes (possibly a truncated tail — evidence the
  // verdict counters need) sit in our receive buffer while our next write
  // fails. Writing first would tear the connection down and abandon those
  // bytes unread.
  if (events & (EventLoop::kReadable | EventLoop::kError)) {
    OnReadable();
    if (closed_) {
      return;
    }
  }
  if (events & EventLoop::kWritable) {
    OnWritable();
    if (closed_) {
      return;
    }
  }
  if (events & EventLoop::kError) {
    Close(CloseReason::kError);
  }
}

void Connection::OnReadable() {
  while (true) {
    // readv straight into the assembler's ring: no bounce buffer, no
    // append — the frame decoder reads the same bytes in place.
    struct iovec iov[2];
    const int iovcnt = assembler_.WritableSpans(kReadChunk, iov);
    const ssize_t n = readv(fd_, iov, iovcnt);
    if (n > 0) {
      stats_.bytes_received += n;
      assembler_.CommitBytes(static_cast<size_t>(n));
      std::string_view payload;
      while (true) {
        const FrameAssembler::Result result = assembler_.Next(&payload);
        if (result == FrameAssembler::Result::kFrame) {
          ++stats_.frames_received;
          if (frame_handler_) {
            frame_handler_(payload);
          }
          if (closed_) {
            return;  // handler closed us (goaway, protocol error)
          }
          continue;
        }
        if (result == FrameAssembler::Result::kNeedMore) {
          break;
        }
        Close(result == FrameAssembler::Result::kBadMagic ? CloseReason::kBadMagic
                                                          : CloseReason::kCorruptFrame);
        return;
      }
      if (static_cast<size_t>(n) < kReadChunk) {
        return;  // drained the socket buffer
      }
      continue;
    }
    if (n == 0) {
      Close(CloseReason::kPeerClosed);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    Close(CloseReason::kError);
    return;
  }
}

void Connection::OnWritable() {
  while (send_queue_bytes_ > 0) {
    // One gathered sendmsg over the whole slab chain, resuming mid-slab at
    // front_offset_; the kernel takes as much as fits and we account the
    // partial write byte-exactly.
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    size_t skip = front_offset_;
    for (const SlabRef& slab : send_slabs_) {
      if (iovcnt == kMaxIov) {
        break;
      }
      const size_t len = slab->used() - skip;
      if (len > 0) {
        iov[iovcnt].iov_base = const_cast<char*>(slab->data() + skip);
        iov[iovcnt].iov_len = len;
        ++iovcnt;
      }
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      // EPIPE/ECONNRESET: the peer is gone, but its final bytes (possibly a
      // truncated tail) may still sit in our receive buffer — the readable
      // event for them might not even have been polled yet. Drain reads
      // before tearing down so the verdict counters see the evidence.
      OnReadable();
      if (!closed_) {
        Close(CloseReason::kError);
      }
      return;
    }
    stats_.bytes_sent += n;
    send_queue_bytes_ -= static_cast<size_t>(n);
    // Advance the flush cursor across the chain, releasing fully-flushed
    // slabs back to the pool.
    size_t remaining = static_cast<size_t>(n);
    while (!send_slabs_.empty()) {
      Slab* front = send_slabs_.front().get();
      const size_t avail = front->used() - front_offset_;
      const size_t take = std::min(avail, remaining);
      front_offset_ += take;
      remaining -= take;
      if (front_offset_ == front->used()) {
        send_slabs_.pop_front();
        front_offset_ = 0;
        continue;
      }
      break;  // kernel buffer full mid-slab
    }
    if (remaining > 0 || (send_queue_bytes_ > 0 && static_cast<size_t>(n) == 0)) {
      break;  // defensive; cannot happen with consistent accounting
    }
    if (send_queue_bytes_ > 0 && iovcnt == kMaxIov) {
      continue;  // more slabs than one iovec batch; keep flushing
    }
    if (send_queue_bytes_ > 0) {
      // Partial write: the kernel buffer is full, wait for the next
      // writable event rather than spinning on sendmsg.
      break;
    }
  }
  if (send_queue_bytes_ == 0) {
    if (kill_after_flush_ && options_.injector != nullptr) {
      kill_after_flush_ = false;
      options_.injector->FireHook(NetFaultInjector::Action::kKillMidFrame);
      // In-process users survive the hook; fall through to the teardown.
    }
    if (close_after_flush_) {
      Close(pending_close_reason_);
      return;
    }
    if (draining_) {
      Close(CloseReason::kLocalClose);
      return;
    }
  }
  UpdateInterest();
}

}  // namespace cpi2
