#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace cpi2 {

const char* CloseReasonName(Connection::CloseReason reason) {
  switch (reason) {
    case Connection::CloseReason::kLocalClose:
      return "local-close";
    case Connection::CloseReason::kPeerClosed:
      return "peer-closed";
    case Connection::CloseReason::kError:
      return "error";
    case Connection::CloseReason::kCorruptFrame:
      return "corrupt-frame";
    case Connection::CloseReason::kBadMagic:
      return "bad-magic";
    case Connection::CloseReason::kInjectedReset:
      return "injected-reset";
  }
  return "unknown";
}

Connection::Connection(EventLoop* loop, int fd, const Options& options)
    : loop_(loop), fd_(fd), options_(options) {}

Connection::~Connection() {
  if (!closed_) {
    // Destructor teardown must not fire callbacks into a half-destroyed
    // owner; drop the handler first.
    close_handler_ = nullptr;
    Close(CloseReason::kLocalClose);
  }
}

void Connection::Start() {
  started_ = true;
  start_time_ = MonotonicNowMicros();
  std::string magic;
  AppendWireMagic(&magic, kNetStreamMagic);
  send_queue_bytes_ += magic.size();
  send_queue_.push_front(std::move(magic));
  loop_->WatchFd(fd_, EventLoop::kReadable | EventLoop::kWritable,
                 [this](uint32_t events) { OnEvents(events); });
  if (options_.injector != nullptr && options_.injector->options().partition_period > 0) {
    ArmPartitionTimer();
  }
}

bool Connection::Partitioned() const {
  return options_.injector != nullptr &&
         options_.injector->PartitionActive(MonotonicNowMicros());
}

void Connection::ArmPartitionTimer() {
  // Poll the partition schedule at 10ms granularity: entering a window
  // freezes the interest set, leaving it restores read/write readiness.
  partition_timer_ = loop_->AddTimer(10 * kMicrosPerMilli, [this] {
    if (closed_) {
      return;
    }
    UpdateInterest();
    ArmPartitionTimer();
  });
}

void Connection::UpdateInterest() {
  if (closed_) {
    return;
  }
  if (Partitioned()) {
    loop_->SetFdEvents(fd_, 0);  // blackhole: no reads, no writes
    return;
  }
  uint32_t events = EventLoop::kReadable;
  if (!send_queue_.empty() && !stalled_) {
    events |= EventLoop::kWritable;
  }
  loop_->SetFdEvents(fd_, events);
}

bool Connection::SendFrame(std::string_view payload) {
  if (closed_ || draining_) {
    ++stats_.send_rejects;
    return false;
  }
  // The framed record is payload + ~6 bytes of envelope; bound against the
  // payload size so the check can run before framing.
  if (send_queue_bytes_ + payload.size() > options_.max_send_queue_bytes) {
    ++stats_.send_rejects;
    return false;
  }
  std::string record;
  AppendNetFrame(&record, payload);

  if (options_.injector != nullptr) {
    switch (options_.injector->DrawFrameAction()) {
      case NetFaultInjector::Action::kNone:
        break;
      case NetFaultInjector::Action::kCorrupt: {
        // Flip one bit after the CRC was computed: the receiver's verdict
        // machinery, not ours, must catch it.
        const size_t offset = options_.injector->DrawCorruptOffset(record.size());
        record[offset] = static_cast<char>(record[offset] ^ 0x40);
        break;
      }
      case NetFaultInjector::Action::kTruncate: {
        record.resize(options_.injector->DrawTruncateLength(record.size()));
        close_after_flush_ = true;
        pending_close_reason_ = CloseReason::kInjectedReset;
        break;
      }
      case NetFaultInjector::Action::kReset:
        close_after_flush_ = true;
        pending_close_reason_ = CloseReason::kInjectedReset;
        break;
      case NetFaultInjector::Action::kKillMidFrame:
        // Half the frame, then the owner's hook (the daemons raise SIGKILL
        // here: a deterministic "agent died mid-batch").
        record.resize(record.size() / 2);
        close_after_flush_ = true;
        kill_after_flush_ = true;
        pending_close_reason_ = CloseReason::kInjectedReset;
        break;
    }
  }

  ++stats_.frames_sent;
  send_queue_bytes_ += record.size();
  send_queue_.push_back(std::move(record));
  if (!stalled_ && options_.injector != nullptr) {
    const MicroTime stall = options_.injector->DrawStall();
    if (stall > 0) {
      stalled_ = true;
      stall_timer_ = loop_->AddTimer(stall, [this] {
        stalled_ = false;
        if (!closed_) {
          UpdateInterest();
        }
      });
    }
  }
  UpdateInterest();
  return true;
}

void Connection::CloseWhenDrained() {
  draining_ = true;
  if (send_queue_.empty()) {
    Close(CloseReason::kLocalClose);
  }
}

void Connection::Close(CloseReason reason) {
  if (closed_) {
    return;
  }
  closed_ = true;
  if (assembler_.HasPartialFrame()) {
    ++stats_.truncated_tails;
  }
  if (reason == CloseReason::kCorruptFrame || reason == CloseReason::kBadMagic) {
    ++stats_.corrupt_frames;
  }
  loop_->CancelTimer(partition_timer_);
  loop_->CancelTimer(stall_timer_);
  loop_->UnwatchFd(fd_);
  if (reason == CloseReason::kInjectedReset) {
    // Make the injected reset a real RST, not a polite FIN: the peer gets
    // ECONNRESET, exactly like a crashed kernel socket.
    const linger hard{1, 0};
    setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  }
  close(fd_);
  fd_ = -1;
  if (close_handler_) {
    // One shot; the handler may delete us (owners defer with AddTimer(0)).
    CloseHandler handler = std::move(close_handler_);
    close_handler_ = nullptr;
    handler(reason, stats_.truncated_tails > 0);
  }
}

void Connection::OnEvents(uint32_t events) {
  if (closed_) {
    return;
  }
  if (Partitioned()) {
    // A ready event raced the partition window opening; freeze and wait.
    UpdateInterest();
    return;
  }
  // Reads drain BEFORE writes and before acting on error events: when the
  // peer dies, its last bytes (possibly a truncated tail — evidence the
  // verdict counters need) sit in our receive buffer while our next write
  // fails. Writing first would tear the connection down and abandon those
  // bytes unread.
  if (events & (EventLoop::kReadable | EventLoop::kError)) {
    OnReadable();
    if (closed_) {
      return;
    }
  }
  if (events & EventLoop::kWritable) {
    OnWritable();
    if (closed_) {
      return;
    }
  }
  if (events & EventLoop::kError) {
    Close(CloseReason::kError);
  }
}

void Connection::OnReadable() {
  char buf[65536];
  while (true) {
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      stats_.bytes_received += n;
      assembler_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      std::string_view payload;
      while (true) {
        const FrameAssembler::Result result = assembler_.Next(&payload);
        if (result == FrameAssembler::Result::kFrame) {
          ++stats_.frames_received;
          if (frame_handler_) {
            frame_handler_(payload);
          }
          if (closed_) {
            return;  // handler closed us (goaway, protocol error)
          }
          continue;
        }
        if (result == FrameAssembler::Result::kNeedMore) {
          break;
        }
        Close(result == FrameAssembler::Result::kBadMagic ? CloseReason::kBadMagic
                                                          : CloseReason::kCorruptFrame);
        return;
      }
      if (static_cast<size_t>(n) < sizeof(buf)) {
        return;  // drained the socket buffer
      }
      continue;
    }
    if (n == 0) {
      Close(CloseReason::kPeerClosed);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    Close(CloseReason::kError);
    return;
  }
}

void Connection::OnWritable() {
  while (!send_queue_.empty()) {
    const std::string& front = send_queue_.front();
    const ssize_t n =
        send(fd_, front.data() + front_offset_, front.size() - front_offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      // EPIPE/ECONNRESET: the peer is gone, but its final bytes (possibly a
      // truncated tail) may still sit in our receive buffer — the readable
      // event for them might not even have been polled yet. Drain reads
      // before tearing down so the verdict counters see the evidence.
      OnReadable();
      if (!closed_) {
        Close(CloseReason::kError);
      }
      return;
    }
    stats_.bytes_sent += n;
    front_offset_ += static_cast<size_t>(n);
    if (front_offset_ < front.size()) {
      break;  // kernel buffer full mid-record
    }
    send_queue_bytes_ -= front.size();
    send_queue_.pop_front();
    front_offset_ = 0;
  }
  if (send_queue_.empty()) {
    if (kill_after_flush_ && options_.injector != nullptr) {
      kill_after_flush_ = false;
      options_.injector->FireHook(NetFaultInjector::Action::kKillMidFrame);
      // In-process users survive the hook; fall through to the teardown.
    }
    if (close_after_flush_) {
      Close(pending_close_reason_);
      return;
    }
    if (draining_) {
      Close(CloseReason::kLocalClose);
      return;
    }
  }
  UpdateInterest();
}

}  // namespace cpi2
