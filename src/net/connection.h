// One framed, nonblocking, fault-injectable stream connection.
//
// A Connection owns a connected fd and speaks CPI2NET1 on it: it emits the
// stream magic on Start(), frames every outgoing payload, and reassembles
// incoming frames through a FrameAssembler. It is deliberately dumb about
// frame *meaning* — handshake, heartbeats, acks are the owner's business
// (NetClient / NetServer) — and strict about frame *integrity*: a corrupt
// or desynced inbound stream closes the connection with a verdict, and a
// peer that disappears mid-frame is recorded as a truncated tail.
//
// Zero-copy data path: outgoing frames are written directly into pooled
// slabs (varint length, payload, CRC trailer appended at the slab cursor —
// no per-frame std::string), the slab chain flushes as one iovec batch per
// sendmsg call with partial-write resume at any byte offset, and inbound
// bytes land in the FrameAssembler's ring via readv and decode in place.
// SendFrameParts scatters a small header plus a large already-encoded body
// (a sample batch) into the slab with a chained CRC, so batch bytes are
// copied exactly once after encoding.
//
// Backpressure contract: SendFrame never buffers beyond
// Options::max_send_queue_bytes. When the queue is full it returns false
// and counts a reject; the caller's outbox (Agent's bounded sample outbox)
// is the overflow domain, not this queue. The bound is checked against the
// full framed record size (envelope included), so the queue can never
// exceed its cap by even a byte. There is no hidden unbounded buffer
// anywhere on the send path.
//
// The fault injector (when present) intercepts the write path: frames can
// be corrupted post-CRC, truncated (connection dies mid-frame), or followed
// by an abrupt reset; flushes can stall; partition windows freeze the fd's
// interest set entirely. Each accepted frame is a contiguous extent in the
// tail slab at draw time, so a corrupt draw flips a byte inside that extent
// and a truncate draw rewinds the slab cursor — byte-for-byte the same
// stream the old string-queue path produced, with the same draw order.

#ifndef CPI2_NET_CONNECTION_H_
#define CPI2_NET_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/buffer_pool.h"
#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "net/frame.h"

namespace cpi2 {

class Connection {
 public:
  enum class CloseReason {
    kLocalClose,     // owner asked (shutdown, lame-duck drain complete)
    kPeerClosed,     // clean FIN from the peer
    kError,          // read/write error (ECONNRESET and friends)
    kCorruptFrame,   // inbound CRC failure or hostile length: stream poisoned
    kBadMagic,       // peer did not start with CPI2NET1
    kInjectedReset,  // our own fault injector tore the connection down
  };

  struct Options {
    // Send-queue bound in bytes of framed records; SendFrame returns false
    // beyond it (backpressure, never unbounded buffering).
    size_t max_send_queue_bytes = 1 << 20;
    // Borrowed slab pool, shared across an owner's connections; nullptr =
    // the connection owns a private pool.
    BufferPool* pool = nullptr;
    // Slab size for the private pool when `pool` is nullptr (0 = default).
    // Tests use small slabs to force multi-slab iovec chains.
    size_t slab_size = 0;
    // Borrowed fault injector; nullptr = clean connection.
    NetFaultInjector* injector = nullptr;
  };

  struct Stats {
    int64_t frames_sent = 0;
    int64_t frames_received = 0;
    int64_t bytes_sent = 0;
    int64_t bytes_received = 0;
    int64_t send_rejects = 0;     // backpressure: SendFrame returned false
    int64_t corrupt_frames = 0;   // inbound CRC/length verdicts
    int64_t truncated_tails = 0;  // closed with a partial inbound frame
  };

  using FrameHandler = std::function<void(std::string_view payload)>;
  // `reason` plus whether the inbound stream died mid-frame.
  using CloseHandler = std::function<void(CloseReason reason, bool truncated_tail)>;

  // Takes ownership of `fd` (already connected, nonblocking).
  Connection(EventLoop* loop, int fd, const Options& options);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_frame_handler(FrameHandler handler) { frame_handler_ = std::move(handler); }
  void set_close_handler(CloseHandler handler) { close_handler_ = std::move(handler); }

  // Registers with the loop and queues the stream magic. Call once.
  void Start();

  // Frames `payload` directly into the tail slab and queues it. False = the
  // send queue is full (or the connection is closed); the frame was NOT
  // queued and the caller retries after draining — its own bounded buffer
  // absorbs the overflow.
  bool SendFrame(std::string_view payload) { return SendFrameParts(payload, {}); }

  // Scatter variant: the frame's payload is `head` followed by `body`,
  // framed as one record with a chained CRC — callers with a pre-encoded
  // body (sample batch bytes) skip the concatenation copy.
  bool SendFrameParts(std::string_view head, std::string_view body);

  // Closes now (flushes nothing further). Fires the close handler once.
  void Close(CloseReason reason);

  // Lame-duck: stop accepting new frames (SendFrame returns false), flush
  // what is queued, then Close(kLocalClose).
  void CloseWhenDrained();

  bool closed() const { return closed_; }
  size_t send_queue_bytes() const { return send_queue_bytes_; }
  const Stats& stats() const { return stats_; }
  int fd() const { return fd_; }

 private:
  void OnEvents(uint32_t events);
  void OnReadable();
  void OnWritable();
  void UpdateInterest();
  // Tail slab with at least `room` appendable bytes (acquiring a new slab
  // from the pool when the current tail is too full).
  Slab* EnsureTailRoom(size_t room);
  // True while an injector partition window blackholes this endpoint.
  bool Partitioned() const;
  void ArmPartitionTimer();

  EventLoop* loop_;
  int fd_;
  Options options_;
  FrameAssembler assembler_;
  FrameHandler frame_handler_;
  CloseHandler close_handler_;

  std::unique_ptr<BufferPool> owned_pool_;  // when Options::pool == nullptr
  BufferPool* pool_ = nullptr;
  std::deque<SlabRef> send_slabs_;  // framed records, coalesced into slabs
  size_t send_queue_bytes_ = 0;     // unflushed bytes across the chain
  size_t front_offset_ = 0;         // bytes of the front slab already written

  bool started_ = false;
  bool closed_ = false;
  bool draining_ = false;        // CloseWhenDrained engaged
  bool stalled_ = false;         // injector stall suspends writes
  CloseReason pending_close_reason_ = CloseReason::kLocalClose;
  bool close_after_flush_ = false;  // injector truncate/reset teardown
  bool kill_after_flush_ = false;   // fire the injector's kill hook post-flush
  MicroTime start_time_ = 0;        // partition phase reference
  EventLoop::TimerId partition_timer_ = 0;
  EventLoop::TimerId stall_timer_ = 0;

  Stats stats_;
};

// Human-readable close reason for logs and daemon stats.
const char* CloseReasonName(Connection::CloseReason reason);

}  // namespace cpi2

#endif  // CPI2_NET_CONNECTION_H_
