// One framed, nonblocking, fault-injectable stream connection.
//
// A Connection owns a connected fd and speaks CPI2NET1 on it: it emits the
// stream magic on Start(), frames every outgoing payload, and reassembles
// incoming frames through a FrameAssembler. It is deliberately dumb about
// frame *meaning* — handshake, heartbeats, acks are the owner's business
// (NetClient / NetServer) — and strict about frame *integrity*: a corrupt
// or desynced inbound stream closes the connection with a verdict, and a
// peer that disappears mid-frame is recorded as a truncated tail.
//
// Backpressure contract: SendFrame never buffers beyond
// Options::max_send_queue_bytes. When the queue is full it returns false
// and counts a reject; the caller's outbox (Agent's bounded sample outbox)
// is the overflow domain, not this queue. There is no hidden unbounded
// buffer anywhere on the send path.
//
// The fault injector (when present) intercepts the write path: frames can
// be corrupted post-CRC, truncated (connection dies mid-frame), or followed
// by an abrupt reset; flushes can stall; partition windows freeze the fd's
// interest set entirely. All draws are deterministic per endpoint seed.

#ifndef CPI2_NET_CONNECTION_H_
#define CPI2_NET_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "net/frame.h"

namespace cpi2 {

class Connection {
 public:
  enum class CloseReason {
    kLocalClose,     // owner asked (shutdown, lame-duck drain complete)
    kPeerClosed,     // clean FIN from the peer
    kError,          // read/write error (ECONNRESET and friends)
    kCorruptFrame,   // inbound CRC failure or hostile length: stream poisoned
    kBadMagic,       // peer did not start with CPI2NET1
    kInjectedReset,  // our own fault injector tore the connection down
  };

  struct Options {
    // Send-queue bound in bytes of framed records; SendFrame returns false
    // beyond it (backpressure, never unbounded buffering).
    size_t max_send_queue_bytes = 1 << 20;
    // Borrowed fault injector; nullptr = clean connection.
    NetFaultInjector* injector = nullptr;
  };

  struct Stats {
    int64_t frames_sent = 0;
    int64_t frames_received = 0;
    int64_t bytes_sent = 0;
    int64_t bytes_received = 0;
    int64_t send_rejects = 0;     // backpressure: SendFrame returned false
    int64_t corrupt_frames = 0;   // inbound CRC/length verdicts
    int64_t truncated_tails = 0;  // closed with a partial inbound frame
  };

  using FrameHandler = std::function<void(std::string_view payload)>;
  // `reason` plus whether the inbound stream died mid-frame.
  using CloseHandler = std::function<void(CloseReason reason, bool truncated_tail)>;

  // Takes ownership of `fd` (already connected, nonblocking).
  Connection(EventLoop* loop, int fd, const Options& options);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_frame_handler(FrameHandler handler) { frame_handler_ = std::move(handler); }
  void set_close_handler(CloseHandler handler) { close_handler_ = std::move(handler); }

  // Registers with the loop and queues the stream magic. Call once.
  void Start();

  // Frames `payload` and queues it. False = the send queue is full (or the
  // connection is closed); the frame was NOT queued and the caller retries
  // after draining — its own bounded buffer absorbs the overflow.
  bool SendFrame(std::string_view payload);

  // Closes now (flushes nothing further). Fires the close handler once.
  void Close(CloseReason reason);

  // Lame-duck: stop accepting new frames (SendFrame returns false), flush
  // what is queued, then Close(kLocalClose).
  void CloseWhenDrained();

  bool closed() const { return closed_; }
  size_t send_queue_bytes() const { return send_queue_bytes_; }
  const Stats& stats() const { return stats_; }
  int fd() const { return fd_; }

 private:
  void OnEvents(uint32_t events);
  void OnReadable();
  void OnWritable();
  void UpdateInterest();
  // True while an injector partition window blackholes this endpoint.
  bool Partitioned() const;
  void ArmPartitionTimer();

  EventLoop* loop_;
  int fd_;
  Options options_;
  FrameAssembler assembler_;
  FrameHandler frame_handler_;
  CloseHandler close_handler_;

  std::deque<std::string> send_queue_;  // framed records (magic is front-queued)
  size_t send_queue_bytes_ = 0;
  size_t front_offset_ = 0;  // bytes of the front record already written

  bool started_ = false;
  bool closed_ = false;
  bool draining_ = false;        // CloseWhenDrained engaged
  bool stalled_ = false;         // injector stall suspends writes
  CloseReason pending_close_reason_ = CloseReason::kLocalClose;
  bool close_after_flush_ = false;  // injector truncate/reset teardown
  bool kill_after_flush_ = false;   // fire the injector's kill hook post-flush
  MicroTime start_time_ = 0;        // partition phase reference
  EventLoop::TimerId partition_timer_ = 0;
  EventLoop::TimerId stall_timer_ = 0;

  Stats stats_;
};

// Human-readable close reason for logs and daemon stats.
const char* CloseReasonName(Connection::CloseReason reason);

}  // namespace cpi2

#endif  // CPI2_NET_CONNECTION_H_
