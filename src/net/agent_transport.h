// AgentTransport: bridges Agent's synchronous batch-delivery outbox onto a
// NetClient's asynchronous framed connection.
//
// The impedance mismatch: Agent::FlushOutbox calls its delivery callback and
// expects an immediate BatchDeliveryOutcome, but a socket send is only an
// attempt — the real outcome arrives later as a BatchAck frame (or never,
// if the connection dies). The bridge resolves it with a one-batch-in-flight
// protocol:
//
//   1. Flush pass A: the front batch is not in flight → frame it
//      (seq = next unique sequence number, consumed cursor, raw CPI2SMB1
//      bytes), send it, record it as in-flight, answer {retry = true}.
//      The agent arms its backoff and keeps the batch queued. (The daemon
//      configures delivery_retry_backoff = 0: pacing comes from the ack
//      round-trip, not from a timer race.)
//   2. The BatchAck for that seq arrives → stash it, immediately flush.
//   3. Flush pass B: the stashed ack settles the front batch — delivered /
//      lost / decode_failed map straight onto BatchDeliveryOutcome. If the
//      batch is fully settled the agent pops it and pass B continues with
//      the next batch at step 1: the pipeline stays full without ever
//      having two batches outstanding.
//
// Failure folding: a connection drop clears the in-flight marker without
// settling anything, so after reconnect the SAME bytes re-send from the
// same consumed cursor (a fresh seq) — the aggregator's dedup window drops
// whatever it already counted. A stale ack (seq mismatch after a reconnect)
// is counted and ignored. Send-side backpressure (connection queue full)
// also answers {retry = true}: the agent's bounded outbox is the overflow
// domain, exactly as in-process.

#ifndef CPI2_NET_AGENT_TRANSPORT_H_
#define CPI2_NET_AGENT_TRANSPORT_H_

#include <cstdint>
#include <optional>

#include "core/agent.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/frame.h"

namespace cpi2 {

class AgentTransport {
 public:
  struct Options {
    // Periodic flush cadence; acks and reconnects also trigger flushes, so
    // this is the floor on latency for newly offered samples.
    MicroTime flush_interval = 50 * kMicrosPerMilli;
  };

  struct Stats {
    int64_t batches_sent = 0;        // frames handed to the connection
    int64_t batches_acked = 0;       // acks matched to the in-flight seq
    int64_t stale_acks = 0;          // seq mismatch (reconnect raced an ack)
    int64_t send_backpressure = 0;   // connection queue full at send time
    int64_t inflight_reset = 0;      // connection died with a batch in flight
  };

  // Borrows all three; they must outlive the transport. Installs the batch
  // delivery callback on `agent` and the frame/ready/down handlers on
  // `client` — the transport owns those hook points.
  AgentTransport(EventLoop* loop, Agent* agent, NetClient* client, Options options);
  ~AgentTransport();

  // Arms the periodic flush. The client is started separately.
  void Start();
  void Stop();

  // Flushes the agent outbox now (generation bursts call this after
  // offering samples instead of waiting out flush_interval).
  void Flush();

  const Stats& stats() const { return stats_; }
  bool in_flight() const { return in_flight_; }

 private:
  BatchDeliveryOutcome OnBatchDelivery(const EncodedSampleBatch& batch);
  void OnClientFrame(std::string_view payload);
  void ArmFlushTimer();

  EventLoop* loop_;
  Agent* agent_;
  NetClient* client_;
  Options options_;

  uint64_t next_seq_ = 1;
  bool in_flight_ = false;
  uint64_t in_flight_seq_ = 0;
  std::optional<BatchAckFrame> pending_ack_;

  EventLoop::TimerId flush_timer_ = 0;
  bool stopped_ = false;
  Stats stats_;
};

}  // namespace cpi2

#endif  // CPI2_NET_AGENT_TRANSPORT_H_
