// AgentTransport: bridges Agent's synchronous batch-delivery outbox onto a
// NetClient's asynchronous framed connection.
//
// The impedance mismatch: Agent::FlushOutbox calls its delivery callback and
// expects an immediate BatchDeliveryOutcome, but a socket send is only an
// attempt — the real outcome arrives later as a BatchAck frame (or never,
// if the connection dies). The bridge resolves it with a windowed pipeline
// of up to Options::window outstanding batches:
//
//   1. A flush pass walks the outbox front-to-back. The entry at queue
//      index i mirrors window_[i]. A batch past the window's end is
//      launched: framed (seq = next unique sequence number, consumed
//      cursor, raw CPI2SMB1 bytes scattered via SendFrameParts), recorded
//      in window_, answered {in_flight = true} so the agent advances to the
//      next batch without settling anything. A window-full or disconnected
//      transport answers {retry = true} and the pass stops.
//   2. A BatchAck arrives → the matching window entry is marked settled.
//      Acks are cumulative: entries *before* the acked seq (sent earlier on
//      the same connection, acked out from under us — the aggregator acks
//      in order) are marked settled-by-implication, counted in
//      implied_acks, and settle as delivered-in-full. A seq matching no
//      window entry is a stale ack (reconnect raced it): counted, ignored.
//   3. The flush pass after an ack finds window_[0] settled → consumes it:
//      delivered / lost / decode_failed map onto BatchDeliveryOutcome
//      (clamped against what is still unsettled — overflow eviction may
//      have advanced the consumed cursor mid-flight), the agent pops the
//      batch, and the freed window slot launches the next queued batch in
//      the same pass. Settled entries form a prefix of the window, so
//      consumption is always at index 0 and the queue↔window alignment is
//      an invariant.
//
// Failure folding: a connection drop clears the whole window without
// settling anything (inflight_reset += entries), so after reconnect the
// SAME bytes re-send from the same consumed cursors with fresh seqs — the
// aggregator's dedup window drops whatever it already counted. At drain,
// batches_sent == batches_acked + implied_acks + inflight_reset: every
// launched batch either settled or was reset, which the loopback campaign
// asserts as the window-accounting balance. Send-side backpressure
// (connection queue full) also answers {retry = true}: the agent's bounded
// outbox is the overflow domain, exactly as in-process.

#ifndef CPI2_NET_AGENT_TRANSPORT_H_
#define CPI2_NET_AGENT_TRANSPORT_H_

#include <cstdint>
#include <deque>

#include "core/agent.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/frame.h"

namespace cpi2 {

class AgentTransport {
 public:
  struct Options {
    // Periodic flush cadence; acks and reconnects also trigger flushes, so
    // this is the floor on latency for newly offered samples.
    MicroTime flush_interval = 50 * kMicrosPerMilli;
    // Max batches on the wire awaiting acks. 1 = classic stop-and-wait.
    int window = 8;
  };

  struct Stats {
    int64_t batches_sent = 0;        // frames handed to the connection
    int64_t batches_acked = 0;       // consumed after settling by their own ack
    int64_t implied_acks = 0;        // consumed after a later cumulative ack settled them
    // Balance invariant whenever the window is empty (e.g. at drain):
    //   batches_sent == batches_acked + implied_acks + inflight_reset
    int64_t stale_acks = 0;          // seq matching no window entry (reconnect race)
    int64_t send_backpressure = 0;   // connection queue full at send time
    int64_t window_stalls = 0;       // flush passes stopped by a full window
    int64_t inflight_reset = 0;      // window entries cleared by a connection drop
    int64_t window_depth_peak = 0;   // max simultaneously outstanding batches
  };

  // Borrows all three; they must outlive the transport. Installs the batch
  // delivery callback on `agent` and the frame/ready/down handlers on
  // `client` — the transport owns those hook points.
  AgentTransport(EventLoop* loop, Agent* agent, NetClient* client, Options options);
  ~AgentTransport();

  // Arms the periodic flush. The client is started separately.
  void Start();
  void Stop();

  // Flushes the agent outbox now (generation bursts call this after
  // offering samples instead of waiting out flush_interval).
  void Flush();

  const Stats& stats() const { return stats_; }
  bool in_flight() const { return !window_.empty(); }
  size_t window_depth() const { return window_.size(); }

 private:
  struct InflightBatch {
    uint64_t seq = 0;
    bool settled = false;   // ack (direct or implied) received, not yet consumed
    bool implied = false;   // settled by a later cumulative ack
    BatchAckFrame ack;      // valid when settled && !implied
  };

  BatchDeliveryOutcome OnBatchDelivery(const EncodedSampleBatch& batch, size_t queue_index);
  void OnClientFrame(std::string_view payload);
  void ArmFlushTimer();

  EventLoop* loop_;
  Agent* agent_;
  NetClient* client_;
  Options options_;

  uint64_t next_seq_ = 1;
  // window_[i] mirrors outbox batch i; settled entries are a prefix.
  std::deque<InflightBatch> window_;

  EventLoop::TimerId flush_timer_ = 0;
  bool stopped_ = false;
  Stats stats_;
};

}  // namespace cpi2

#endif  // CPI2_NET_AGENT_TRANSPORT_H_
