// Deterministic fault injector for the networked data plane.
//
// Sits inside a Connection's write path (and the client's connect path) and
// makes the network misbehave on purpose, mirroring sim/fault_plane's
// philosophy at the socket layer:
//
//   - frame corruption: one byte of an outgoing frame is flipped *after*
//     the frame CRC is computed, so the receiver's CRC verdict fires (the
//     PR 5 corruption matrix, applied to a live stream),
//   - frame truncation: only a prefix of the frame reaches the wire and the
//     connection is torn down mid-frame — the receiver sees a truncated
//     tail, exactly like a torn file,
//   - connection reset: the fd is closed abruptly after a frame,
//   - partition: a window during which the endpoint neither connects nor
//     exchanges bytes (blackhole, not reset — peers see silence and must
//     time out via heartbeats),
//   - stall: outgoing flushes are delayed, modelling bufferbloat/latency.
//
// Draw order per outgoing frame: corrupt, truncate, reset. One Rng seeded
// per endpoint keeps campaigns reproducible; the multi-process loopback
// test configures injectors through daemon flags and gets the same
// schedule every run.

#ifndef CPI2_NET_FAULT_INJECTOR_H_
#define CPI2_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/clock.h"
#include "util/rng.h"

namespace cpi2 {

class NetFaultInjector {
 public:
  struct Options {
    uint64_t seed = 0xfa017;

    // Per-outgoing-frame probabilities.
    double corrupt_rate = 0.0;   // flip one payload byte post-CRC
    double truncate_rate = 0.0;  // send a prefix, then kill the connection
    double reset_rate = 0.0;     // close abruptly after the frame

    // Outgoing flush stall: with `stall_rate`, delay the flush by
    // `stall_duration` (heartbeat timers keep running, so long stalls look
    // like dead peers).
    double stall_rate = 0.0;
    MicroTime stall_duration = 50 * kMicrosPerMilli;

    // Periodic partition (monotonic clock): during
    // [phase + k*period, phase + k*period + duration) the endpoint is
    // blackholed. 0 period = never.
    MicroTime partition_period = 0;
    MicroTime partition_duration = 0;
    MicroTime partition_phase = 0;

    // After this many outgoing frames, the next frame is truncated
    // mid-payload and `on_fault` fires with kKillMidFrame — daemons wire
    // that to raise(SIGKILL), making "agent dies mid-batch" a one-flag,
    // fully deterministic scenario. <= 0 disables.
    int64_t kill_mid_frame_after = 0;
  };

  enum class Action {
    kNone,
    kCorrupt,
    kTruncate,
    kReset,
    kKillMidFrame,
  };

  struct Stats {
    int64_t frames_seen = 0;
    int64_t frames_corrupted = 0;
    int64_t frames_truncated = 0;
    int64_t resets_injected = 0;
    int64_t stalls_injected = 0;
  };

  // Invoked after the faulty bytes hit the socket, before teardown; the
  // daemon's kill hook lives here.
  using FaultHook = std::function<void(Action)>;

  explicit NetFaultInjector(const Options& options);

  bool AnyFaultsEnabled() const;

  // Draws the fate of the next outgoing frame. Exactly one draw per frame.
  Action DrawFrameAction();

  // True when the partition schedule blackholes this endpoint at `now`
  // (monotonic clock; the schedule is anchored to the injector's
  // construction time, so "partition_phase=0, period=2s" means "2s windows
  // starting when the endpoint came up").
  bool PartitionActive(MicroTime now) const;

  // Draws a stall for one flush; returns the delay (0 = none).
  MicroTime DrawStall();

  // Where to flip / where to cut, for a frame of `size` bytes. Skips the
  // first byte (the length varint's first byte would desync instead of
  // corrupt — that case is covered by truncation) and never cuts at a
  // frame boundary.
  size_t DrawCorruptOffset(size_t size);
  size_t DrawTruncateLength(size_t size);

  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  void FireHook(Action action) {
    if (fault_hook_) {
      fault_hook_(action);
    }
  }

  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }

  // Parses "key=value,key=value" fault specs from daemon flags, e.g.
  // "corrupt_rate=0.01,reset_rate=0.005,partition_period_ms=2000,
  //  partition_duration_ms=300,kill_mid_frame_after=40,seed=7".
  // Returns false (and fills *error) on an unknown key or bad number.
  static bool ParseSpec(const std::string& spec, Options* options, std::string* error);

 private:
  Options options_;
  Rng rng_;
  MicroTime epoch_;  // monotonic construction time; partition anchor
  Stats stats_;
  FaultHook fault_hook_;
};

}  // namespace cpi2

#endif  // CPI2_NET_FAULT_INJECTOR_H_
