// Nonblocking TCP / Unix-domain socket helpers for src/net.
//
// Addresses are strings:
//   "127.0.0.1:4250"   TCP (port 0 = kernel-assigned; see ListenerBoundPort)
//   "unix:/path/sock"  Unix stream socket (the listener unlinks a stale path)
//
// Every fd these helpers return is nonblocking and close-on-exec. Errors
// come back as Status; callers on the data path treat any failure as
// "connection dead" and lean on the reconnect machinery.

#ifndef CPI2_NET_SOCKET_H_
#define CPI2_NET_SOCKET_H_

#include <string>

#include "util/status.h"

namespace cpi2 {

// Opens a listening socket on `address` (backlog 128). For "host:port"
// binds TCP with SO_REUSEADDR; for "unix:/path" unlinks any stale socket
// file first.
StatusOr<int> ListenOn(const std::string& address);

// The port a TCP listener actually bound (resolves ":0"). Unix listeners
// return 0.
int ListenerBoundPort(int listen_fd);

// Accepts one pending connection; returns the connected fd, or
// kUnavailable when the accept queue is empty (EAGAIN).
StatusOr<int> AcceptOn(int listen_fd);

// Starts a nonblocking connect to `address`. The fd is usually returned
// with the connect still in flight (EINPROGRESS): wait for writability,
// then call FinishConnect.
StatusOr<int> StartConnect(const std::string& address);

// Resolves an in-flight nonblocking connect once the fd is writable.
// Ok = established; error = connect failed (caller closes the fd).
Status FinishConnect(int fd);

// For TCP fds, disables Nagle (the data plane writes whole frames and
// latency-sensitive acks). No-op for Unix sockets.
void DisableNagle(int fd);

}  // namespace cpi2

#endif  // CPI2_NET_SOCKET_H_
