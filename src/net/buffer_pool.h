// Pooled, reference-counted send slabs for the zero-copy network path.
//
// A Slab is a fixed-capacity byte arena that a Connection frames outgoing
// records into directly: varint length, payload bytes, CRC trailer are
// written at `used` and the cursor advances — no per-frame std::string, no
// second copy of a sample batch that was already encoded once. A slab chain
// (deque<SlabRef>) replaces the old deque<std::string> send queue and maps
// 1:1 onto an iovec array for writev.
//
// Lifecycle: BufferPool::Acquire hands out a SlabRef (intrusive refcount);
// when the last ref drops the slab returns to the pool's free list instead
// of the allocator, so the steady state allocates nothing. A NetClient or
// NetServer owns one pool shared by all of its connections; standalone
// connections (tests) fall back to a connection-owned pool. Oversized
// frames (> slab capacity) get a dedicated exact-size slab that is freed,
// not pooled, on release.
//
// Slabs are single-writer: only the owning connection appends, and only
// while the slab is the chain's tail. Flushed bytes are tracked by the
// connection (front offset), never by the slab, so a slab can be mid-flush
// at the front of the chain and still accept appends if it is also the tail.

#ifndef CPI2_NET_BUFFER_POOL_H_
#define CPI2_NET_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cpi2 {

class BufferPool;

// One pooled byte arena. data()[0 .. used) holds framed records.
class Slab {
 public:
  char* data() { return bytes_.get(); }
  const char* data() const { return bytes_.get(); }
  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  size_t room() const { return capacity_ - used_; }

  // Appends raw bytes; caller guarantees room.
  char* Extend(size_t n) {
    char* at = bytes_.get() + used_;
    used_ += n;
    return at;
  }
  // Rewinds the append cursor (injector truncation of the just-written
  // frame; only ever applied to the chain's tail slab).
  void Rewind(size_t new_used) { used_ = new_used; }

 private:
  friend class BufferPool;
  friend class SlabRef;

  Slab(BufferPool* pool, size_t capacity)
      : bytes_(new char[capacity]), capacity_(capacity), pool_(pool) {}

  std::unique_ptr<char[]> bytes_;
  size_t capacity_;
  size_t used_ = 0;
  int refs_ = 0;
  BufferPool* pool_;  // owner; nullptr once the pool died (slab self-frees)
};

// Intrusive refcounted handle; the last ref recycles the slab to its pool.
class SlabRef {
 public:
  SlabRef() = default;
  explicit SlabRef(Slab* slab) : slab_(slab) {
    if (slab_ != nullptr) {
      ++slab_->refs_;
    }
  }
  SlabRef(const SlabRef& other) : SlabRef(other.slab_) {}
  SlabRef(SlabRef&& other) noexcept : slab_(other.slab_) { other.slab_ = nullptr; }
  SlabRef& operator=(SlabRef other) noexcept {
    Slab* tmp = slab_;
    slab_ = other.slab_;
    other.slab_ = tmp;
    return *this;
  }
  ~SlabRef() { Release(); }

  Slab* get() const { return slab_; }
  Slab* operator->() const { return slab_; }
  explicit operator bool() const { return slab_ != nullptr; }

  void Reset() { Release(); }

 private:
  void Release();

  Slab* slab_ = nullptr;
};

// Free-list recycler for fixed-size slabs. Not thread-safe: one pool per
// event loop, like everything else in src/net.
class BufferPool {
 public:
  struct Stats {
    int64_t slabs_created = 0;   // heap allocations (misses)
    int64_t slabs_reused = 0;    // free-list hits
    int64_t oversize_slabs = 0;  // dedicated exact-size slabs (not pooled)
  };

  static constexpr size_t kDefaultSlabSize = 64 * 1024;

  explicit BufferPool(size_t slab_size = kDefaultSlabSize);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // A slab with at least `min_capacity` room. min_capacity <= slab_size()
  // draws from the free list; larger requests get a dedicated slab sized
  // exactly to the request (freed on release, never pooled).
  SlabRef Acquire(size_t min_capacity);

  size_t slab_size() const { return slab_size_; }
  size_t free_count() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  friend class SlabRef;

  void Recycle(Slab* slab);

  size_t slab_size_;
  std::vector<Slab*> free_;
  std::vector<Slab*> live_slabs_;  // referenced slabs (pool-death handoff)
  Stats stats_;
};

}  // namespace cpi2

#endif  // CPI2_NET_BUFFER_POOL_H_
