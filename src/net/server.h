// NetServer: the aggregator-side endpoint of the CPI2NET1 data plane.
//
// Accepts framed-stream connections, enforces the hello handshake (version
// + role gate, then HelloAck), tracks per-peer liveness (a peer silent past
// heartbeat_timeout is reaped), and answers heartbeats. Application frames
// (sample batches) are handed to the owner's frame handler together with a
// peer id usable for replies (acks).
//
// Failure accounting mirrors the storage side: every connection that dies
// with a partial inbound frame is a truncated-tail verdict, every CRC or
// hostile-length failure a corrupt-frame verdict — the same vocabulary the
// PR 5 incident/checkpoint loaders use for torn files, now applied to
// sockets, so the loopback fault campaign can assert on them.
//
// Lame duck: BeginLameDuck() stops accepting, sends Goaway to every peer,
// lets send queues drain (bounded by drain_timeout), then closes them. The
// daemon uses this for SIGTERM so in-flight acks are not torn off the wire.

#ifndef CPI2_NET_SERVER_H_
#define CPI2_NET_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/buffer_pool.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "net/frame.h"
#include "util/status.h"

namespace cpi2 {

class NetServer {
 public:
  struct Options {
    std::string listen_address;  // "host:port" (port 0 ok) or "unix:/path"
    std::string server_name = "cpi2-aggregatord";
    MicroTime heartbeat_timeout = 5 * kMicrosPerSecond;
    MicroTime drain_timeout = 2 * kMicrosPerSecond;  // lame-duck bound
    Connection::Options connection;  // send-queue bound + fault injector
  };

  struct Stats {
    int64_t connections_accepted = 0;
    int64_t connections_closed = 0;
    int64_t handshake_rejects = 0;   // bad hello (version/role/parse)
    int64_t corrupt_frames = 0;      // inbound stream verdicts, summed
    int64_t truncated_tails = 0;     // connections that died mid-frame
    int64_t idle_peer_reaps = 0;     // liveness timeouts
    int64_t goaways_sent = 0;
  };

  // Identifies one live peer; valid until that peer's close handler runs.
  using PeerId = uint64_t;

  struct PeerInfo {
    PeerId id = 0;
    HelloFrame hello;  // as presented in the handshake
  };

  // Application frame from a handshaken peer.
  using FrameHandler = std::function<void(const PeerInfo& peer, std::string_view payload)>;
  using PeerClosedHandler =
      std::function<void(const PeerInfo& peer, Connection::CloseReason reason,
                         bool truncated_tail)>;

  NetServer(EventLoop* loop, Options options);
  ~NetServer();

  void set_frame_handler(FrameHandler handler) { frame_handler_ = std::move(handler); }
  void set_peer_closed_handler(PeerClosedHandler handler) {
    peer_closed_handler_ = std::move(handler);
  }

  // Binds and starts accepting. Fails on an unusable address.
  Status Start();

  // The TCP port actually bound (resolves ":0"); 0 for Unix sockets.
  int bound_port() const;

  // Sends one frame to `peer`. False = unknown peer or backpressure.
  bool SendToPeer(PeerId peer, std::string_view payload);

  // Lame-duck shutdown: Goaway + drain + close everything, stop accepting.
  void BeginLameDuck();
  // Hard stop: close everything now (destructor path).
  void Stop();

  size_t peer_count() const { return peers_.size(); }
  const Stats& stats() const { return stats_; }
  bool lame_duck() const { return lame_duck_; }

 private:
  struct Peer {
    PeerId id = 0;
    std::unique_ptr<Connection> connection;
    HelloFrame hello;
    bool handshaken = false;
    MicroTime last_activity = 0;
  };

  void OnAcceptable();
  void OnPeerFrame(Peer* peer, std::string_view payload);
  void OnPeerClosed(PeerId id, Connection::CloseReason reason, bool truncated_tail);
  void ArmReapTimer();

  EventLoop* loop_;
  Options options_;
  // Slab pool shared by every peer connection; declared before the peer map
  // and graveyard so it outlives their teardown.
  BufferPool pool_;
  int listen_fd_ = -1;
  PeerId next_peer_id_ = 1;
  std::map<PeerId, Peer> peers_;
  std::vector<std::unique_ptr<Connection>> graveyard_;
  EventLoop::TimerId reap_timer_ = 0;
  EventLoop::TimerId graveyard_timer_ = 0;
  EventLoop::TimerId drain_timer_ = 0;
  bool lame_duck_ = false;
  Stats stats_;

  FrameHandler frame_handler_;
  PeerClosedHandler peer_closed_handler_;
};

}  // namespace cpi2

#endif  // CPI2_NET_SERVER_H_
