#include "net/client.h"

#include <unistd.h>

#include "net/socket.h"
#include "util/logging.h"

namespace cpi2 {

NetClient::NetClient(EventLoop* loop, Options options)
    : loop_(loop), options_(std::move(options)), jitter_rng_(options_.jitter_seed) {}

NetClient::~NetClient() { Shutdown(); }

void NetClient::Start() {
  shutdown_ = false;
  BeginConnect();
}

void NetClient::Shutdown() {
  shutdown_ = true;
  loop_->CancelTimer(reconnect_timer_);
  loop_->CancelTimer(heartbeat_timer_);
  loop_->CancelTimer(liveness_timer_);
  loop_->CancelTimer(connect_timeout_timer_);
  if (connect_fd_ >= 0) {
    loop_->UnwatchFd(connect_fd_);
    close(connect_fd_);
    connect_fd_ = -1;
  }
  if (connection_ != nullptr) {
    folded_conn_stats_ = connection_stats();
    connection_->set_close_handler(nullptr);
    connection_.reset();
  }
  graveyard_.reset();
  state_ = State::kIdle;
}

Connection::Stats NetClient::connection_stats() const {
  Connection::Stats total = folded_conn_stats_;
  if (connection_ != nullptr) {
    const Connection::Stats& live = connection_->stats();
    total.frames_sent += live.frames_sent;
    total.frames_received += live.frames_received;
    total.bytes_sent += live.bytes_sent;
    total.bytes_received += live.bytes_received;
    total.send_rejects += live.send_rejects;
    total.corrupt_frames += live.corrupt_frames;
    total.truncated_tails += live.truncated_tails;
  }
  return total;
}

void NetClient::BeginConnect() {
  if (shutdown_) {
    return;
  }
  // While an injected partition is active, connect attempts blackhole too:
  // stay in backoff and retry after the window.
  if (options_.connection.injector != nullptr &&
      options_.connection.injector->PartitionActive(MonotonicNowMicros())) {
    state_ = State::kBackoff;
    reconnect_timer_ = loop_->AddTimer(50 * kMicrosPerMilli, [this] { BeginConnect(); });
    return;
  }
  ++stats_.connect_attempts;
  state_ = State::kConnecting;
  StatusOr<int> fd = StartConnect(options_.server_address);
  if (!fd.ok()) {
    ScheduleReconnect();
    return;
  }
  connect_fd_ = fd.value();
  loop_->WatchFd(connect_fd_, EventLoop::kWritable,
                 [this](uint32_t events) { OnConnectWritable(events); });
  connect_timeout_timer_ = loop_->AddTimer(options_.connect_timeout, [this] {
    if (state_ == State::kConnecting && connect_fd_ >= 0) {
      loop_->UnwatchFd(connect_fd_);
      close(connect_fd_);
      connect_fd_ = -1;
      ScheduleReconnect();
    }
  });
}

void NetClient::ScheduleReconnect() {
  if (shutdown_) {
    return;
  }
  state_ = State::kBackoff;
  MicroTime backoff = options_.reconnect_backoff;
  for (int i = 0; i < backoff_exponent_ && backoff < options_.reconnect_backoff_max; ++i) {
    backoff *= 2;
  }
  if (backoff > options_.reconnect_backoff_max) {
    backoff = options_.reconnect_backoff_max;
  }
  if (options_.reconnect_jitter > 0.0) {
    backoff += static_cast<MicroTime>(
        jitter_rng_.Uniform(0.0, options_.reconnect_jitter * static_cast<double>(backoff)));
  }
  ++backoff_exponent_;
  reconnect_timer_ = loop_->AddTimer(backoff, [this] { BeginConnect(); });
}

void NetClient::OnConnectWritable(uint32_t events) {
  loop_->CancelTimer(connect_timeout_timer_);
  const int fd = connect_fd_;
  connect_fd_ = -1;
  loop_->UnwatchFd(fd);
  if ((events & EventLoop::kError) != 0 || !FinishConnect(fd).ok()) {
    close(fd);
    ScheduleReconnect();
    return;
  }
  OnConnectionEstablished(fd);
}

void NetClient::OnConnectionEstablished(int fd) {
  state_ = State::kHandshaking;
  Connection::Options conn_options = options_.connection;
  if (conn_options.pool == nullptr) {
    conn_options.pool = &pool_;  // slabs recycle across reconnects
  }
  connection_ = std::make_unique<Connection>(loop_, fd, conn_options);
  connection_->set_frame_handler([this](std::string_view payload) { OnFrame(payload); });
  connection_->set_close_handler([this](Connection::CloseReason reason, bool) {
    OnConnectionClosed(reason);
  });
  connection_->Start();
  last_peer_activity_ = MonotonicNowMicros();

  HelloFrame hello;
  hello.version = kNetProtocolVersion;
  hello.role = options_.role;
  hello.peer_name = options_.peer_name;
  std::string payload;
  BuildHelloPayload(hello, /*is_ack=*/false, &payload);
  connection_->SendFrame(payload);
  ArmLivenessCheck();
}

void NetClient::OnFrame(std::string_view payload) {
  last_peer_activity_ = MonotonicNowMicros();
  FrameType type;
  if (!ParseFrameType(payload, &type)) {
    ++stats_.handshake_failures;
    RecycleConnection(Connection::CloseReason::kCorruptFrame);
    return;
  }
  if (state_ == State::kHandshaking) {
    HelloFrame ack;
    bool is_ack = false;
    if (type != FrameType::kHelloAck || !ParseHelloPayload(payload, &ack, &is_ack) ||
        !is_ack || ack.version != kNetProtocolVersion) {
      ++stats_.handshake_failures;
      RecycleConnection(Connection::CloseReason::kCorruptFrame);
      return;
    }
    state_ = State::kReady;
    backoff_exponent_ = 0;  // ladder resets only on a completed handshake
    ++stats_.connects_completed;
    ArmHeartbeat();
    if (ready_handler_) {
      ready_handler_();
    }
    return;
  }
  switch (type) {
    case FrameType::kHeartbeatAck:
      return;  // activity already recorded
    case FrameType::kHeartbeat: {
      // Servers normally don't ping, but answering is harmless and keeps
      // the protocol symmetric.
      MicroTime send_time;
      bool is_ack;
      if (ParseHeartbeatPayload(payload, &send_time, &is_ack) && !is_ack &&
          connection_ != nullptr) {
        std::string ack;
        BuildHeartbeatPayload(send_time, /*is_ack=*/true, &ack);
        connection_->SendFrame(ack);
      }
      return;
    }
    case FrameType::kGoaway:
      ++stats_.goaways_received;
      RecycleConnection(Connection::CloseReason::kPeerClosed);
      return;
    default:
      if (frame_handler_) {
        frame_handler_(payload);
      }
      return;
  }
}

void NetClient::ArmHeartbeat() {
  heartbeat_timer_ = loop_->AddTimer(options_.heartbeat_interval, [this] {
    if (state_ != State::kReady || connection_ == nullptr) {
      return;
    }
    std::string payload;
    BuildHeartbeatPayload(MonotonicNowMicros(), /*is_ack=*/false, &payload);
    connection_->SendFrame(payload);
    ++stats_.heartbeats_sent;
    ArmHeartbeat();
  });
}

void NetClient::ArmLivenessCheck() {
  liveness_timer_ = loop_->AddTimer(options_.heartbeat_timeout / 2, [this] {
    if (connection_ == nullptr) {
      return;
    }
    if (MonotonicNowMicros() - last_peer_activity_ > options_.heartbeat_timeout) {
      ++stats_.heartbeat_timeouts;
      RecycleConnection(Connection::CloseReason::kError);
      return;
    }
    ArmLivenessCheck();
  });
}

void NetClient::RecycleConnection(Connection::CloseReason reason) {
  if (connection_ == nullptr) {
    return;
  }
  // Close() fires our close handler, which runs the common teardown path.
  connection_->Close(reason);
}

void NetClient::OnConnectionClosed(Connection::CloseReason reason) {
  ++stats_.disconnects;
  loop_->CancelTimer(heartbeat_timer_);
  loop_->CancelTimer(liveness_timer_);
  folded_conn_stats_ = connection_stats();
  // We may be inside the connection's own read handler: defer destruction
  // to the next loop iteration, then reconnect.
  graveyard_ = std::move(connection_);
  reap_timer_ = loop_->AddTimer(0, [this] { graveyard_.reset(); });
  const bool was_ready = state_ == State::kReady;
  state_ = State::kBackoff;
  if (down_handler_) {
    down_handler_(reason);
  }
  (void)was_ready;
  ScheduleReconnect();
}

bool NetClient::SendFrame(std::string_view payload) {
  if (state_ != State::kReady || connection_ == nullptr) {
    return false;
  }
  return connection_->SendFrame(payload);
}

bool NetClient::SendFrameParts(std::string_view head, std::string_view body) {
  if (state_ != State::kReady || connection_ == nullptr) {
    return false;
  }
  return connection_->SendFrameParts(head, body);
}

}  // namespace cpi2
