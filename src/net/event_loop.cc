#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace cpi2 {

namespace {
// Loop-infrastructure failures (epoll_create, epoll_ctl on a live fd) are
// programming errors or fd exhaustion; neither is recoverable mid-loop.
void CheckOrDie(bool ok, const char* what) {
  if (!ok) {
    CPI2_LOG(ERROR) << "event loop: " << what << " failed: " << std::strerror(errno);
    std::abort();
  }
}
}  // namespace

MicroTime MonotonicNowMicros() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<MicroTime>(ts.tv_sec) * kMicrosPerSecond + ts.tv_nsec / 1000;
}

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  CheckOrDie(epoll_fd_ >= 0, "epoll_create1");
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  CheckOrDie(wakeup_fd_ >= 0, "eventfd");
  WatchFd(wakeup_fd_, kReadable, [this](uint32_t) {
    uint64_t drain;
    while (read(wakeup_fd_, &drain, sizeof(drain)) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) {
    close(wakeup_fd_);
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

namespace {
uint32_t ToEpollMask(uint32_t events) {
  uint32_t mask = 0;
  if (events & EventLoop::kReadable) {
    mask |= EPOLLIN;
  }
  if (events & EventLoop::kWritable) {
    mask |= EPOLLOUT;
  }
  return mask;
}
}  // namespace

void EventLoop::WatchFd(int fd, uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = ToEpollMask(events);
  ev.data.fd = fd;
  const bool known = handlers_.count(fd) > 0;
  const int rc = epoll_ctl(epoll_fd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
  CheckOrDie(rc == 0, "epoll_ctl add/mod");
  handlers_[fd] = std::move(handler);
}

void EventLoop::SetFdEvents(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = ToEpollMask(events);
  ev.data.fd = fd;
  const int rc = epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  CheckOrDie(rc == 0, "epoll_ctl mod");
}

void EventLoop::UnwatchFd(int fd) {
  if (handlers_.erase(fd) > 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

EventLoop::TimerId EventLoop::AddTimer(MicroTime delay, TimerHandler handler) {
  const TimerId id = next_timer_id_++;
  const MicroTime now = MonotonicNowMicros();
  timers_.push(Timer{delay > 0 ? now + delay : now, id});
  timer_handlers_[id] = std::move(handler);
  return id;
}

void EventLoop::CancelTimer(TimerId id) { timer_handlers_.erase(id); }

void EventLoop::FireDueTimers(MicroTime now) {
  while (!timers_.empty() && timers_.top().deadline <= now) {
    const TimerId id = timers_.top().id;
    timers_.pop();
    auto it = timer_handlers_.find(id);
    if (it == timer_handlers_.end()) {
      continue;  // canceled; heap entry was a tombstone
    }
    TimerHandler handler = std::move(it->second);
    timer_handlers_.erase(it);
    handler();
  }
}

MicroTime EventLoop::NextTimerDelay(MicroTime now) const {
  // Skim canceled tombstones logically: the head may be canceled, in which
  // case we wake a touch early and FireDueTimers discards it. Cheap and
  // correct; canceled timers are rare.
  if (timers_.empty()) {
    return -1;  // sleep indefinitely
  }
  const MicroTime delay = timers_.top().deadline - now;
  return delay > 0 ? delay : 0;
}

void EventLoop::RunOnce(MicroTime max_wait) {
  MicroTime now = MonotonicNowMicros();
  MicroTime wait = NextTimerDelay(now);
  if (wait < 0 || wait > max_wait) {
    wait = max_wait;
  }
  epoll_event events[64];
  const int timeout_ms =
      wait < 0 ? -1 : static_cast<int>((wait + kMicrosPerMilli - 1) / kMicrosPerMilli);
  const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  now = MonotonicNowMicros();
  FireDueTimers(now);
  if (n < 0) {
    CheckOrDie(errno == EINTR, "epoll_wait");
    return;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    // The handler for an earlier event in this batch may have closed this
    // fd; re-look it up per event instead of caching across dispatches.
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) {
      continue;
    }
    uint32_t mask = 0;
    if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
      mask |= kReadable;
    }
    if (events[i].events & EPOLLOUT) {
      mask |= kWritable;
    }
    if (events[i].events & (EPOLLERR | EPOLLHUP)) {
      mask |= kError;
    }
    // Copy the handler: it may UnwatchFd(fd) (destroying the stored
    // std::function) while still executing.
    FdHandler handler = it->second;
    handler(mask);
  }
}

void EventLoop::Run() {
  stopped_ = false;
  while (!stopped_) {
    RunOnce(100 * kMicrosPerMilli);
  }
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // Best effort: if the pipe is full the loop is already awake.
  [[maybe_unused]] const ssize_t rc = write(wakeup_fd_, &one, sizeof(one));
}

}  // namespace cpi2
