#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace cpi2 {

namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

Status SetNonblockingCloexec(int fd) {
  if (fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK) < 0) {
    return ErrnoError("fcntl O_NONBLOCK");
  }
  if (fcntl(fd, F_SETFD, fcntl(fd, F_GETFD, 0) | FD_CLOEXEC) < 0) {
    return ErrnoError("fcntl FD_CLOEXEC");
  }
  return Status::Ok();
}

bool IsUnixAddress(const std::string& address) { return address.rfind("unix:", 0) == 0; }

// Splits "host:port" on the last ':'; fills a sockaddr_in.
Status ParseTcpAddress(const std::string& address, sockaddr_in* out) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= address.size()) {
    return InvalidArgumentError("TCP address must be host:port, got '" + address + "'");
  }
  const std::string host = address.substr(0, colon);
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
    return InvalidArgumentError("bad TCP port in '" + address + "'");
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return InvalidArgumentError("bad IPv4 host in '" + address +
                                "' (numeric addresses only; no resolver in the data plane)");
  }
  return Status::Ok();
}

Status FillUnixAddress(const std::string& address, sockaddr_un* out) {
  const std::string path = address.substr(5);  // strip "unix:"
  if (path.empty() || path.size() >= sizeof(out->sun_path)) {
    return InvalidArgumentError("unix socket path empty or too long: '" + address + "'");
  }
  std::memset(out, 0, sizeof(*out));
  out->sun_family = AF_UNIX;
  std::memcpy(out->sun_path, path.c_str(), path.size());
  return Status::Ok();
}

}  // namespace

StatusOr<int> ListenOn(const std::string& address) {
  int fd = -1;
  if (IsUnixAddress(address)) {
    sockaddr_un addr;
    if (Status s = FillUnixAddress(address, &addr); !s.ok()) {
      return s;
    }
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return ErrnoError("socket(AF_UNIX)");
    }
    unlink(addr.sun_path);  // stale socket from a killed predecessor
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      Status s = ErrnoError("bind " + address);
      close(fd);
      return s;
    }
  } else {
    sockaddr_in addr;
    if (Status s = ParseTcpAddress(address, &addr); !s.ok()) {
      return s;
    }
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return ErrnoError("socket(AF_INET)");
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      Status s = ErrnoError("bind " + address);
      close(fd);
      return s;
    }
  }
  if (Status s = SetNonblockingCloexec(fd); !s.ok()) {
    close(fd);
    return s;
  }
  if (listen(fd, 128) < 0) {
    Status s = ErrnoError("listen " + address);
    close(fd);
    return s;
  }
  return fd;
}

int ListenerBoundPort(int listen_fd) {
  sockaddr_storage addr;
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return 0;
  }
  if (addr.ss_family != AF_INET) {
    return 0;
  }
  return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
}

StatusOr<int> AcceptOn(int listen_fd) {
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return UnavailableError("accept queue empty");
    }
    return ErrnoError("accept");
  }
  if (Status s = SetNonblockingCloexec(fd); !s.ok()) {
    close(fd);
    return s;
  }
  DisableNagle(fd);
  return fd;
}

StatusOr<int> StartConnect(const std::string& address) {
  int fd = -1;
  sockaddr_storage storage;
  socklen_t addr_len = 0;
  if (IsUnixAddress(address)) {
    sockaddr_un addr;
    if (Status s = FillUnixAddress(address, &addr); !s.ok()) {
      return s;
    }
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return ErrnoError("socket(AF_UNIX)");
    }
    std::memcpy(&storage, &addr, sizeof(addr));
    addr_len = sizeof(addr);
  } else {
    sockaddr_in addr;
    if (Status s = ParseTcpAddress(address, &addr); !s.ok()) {
      return s;
    }
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return ErrnoError("socket(AF_INET)");
    }
    std::memcpy(&storage, &addr, sizeof(addr));
    addr_len = sizeof(addr);
  }
  if (Status s = SetNonblockingCloexec(fd); !s.ok()) {
    close(fd);
    return s;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&storage), addr_len) < 0 &&
      errno != EINPROGRESS) {
    Status s = ErrnoError("connect " + address);
    close(fd);
    return s;
  }
  DisableNagle(fd);
  return fd;
}

Status FinishConnect(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return ErrnoError("getsockopt SO_ERROR");
  }
  if (err != 0) {
    return UnavailableError(std::string("connect failed: ") + std::strerror(err));
  }
  return Status::Ok();
}

void DisableNagle(int fd) {
  const int one = 1;
  // Fails harmlessly (ENOTSUP/EOPNOTSUPP) on Unix sockets.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace cpi2
