#include "net/agent_transport.h"

#include <algorithm>

namespace cpi2 {

AgentTransport::AgentTransport(EventLoop* loop, Agent* agent, NetClient* client,
                               Options options)
    : loop_(loop), agent_(agent), client_(client), options_(options) {
  if (options_.window < 1) {
    options_.window = 1;
  }
  agent_->SetWindowedBatchDeliveryCallback(
      [this](const EncodedSampleBatch& batch, size_t queue_index) {
        return OnBatchDelivery(batch, queue_index);
      });
  client_->set_frame_handler([this](std::string_view payload) { OnClientFrame(payload); });
  client_->set_ready_handler([this] { Flush(); });
  client_->set_down_handler([this](Connection::CloseReason) {
    // Every windowed batch (settled or not — a settled-but-unconsumed ack
    // is re-earned after reconnect) is unresolved: forget the seqs so the
    // next flush re-sends the same bytes from the same consumed cursors.
    // The aggregator's dedup absorbs whatever it already counted.
    stats_.inflight_reset += static_cast<int64_t>(window_.size());
    window_.clear();
  });
}

AgentTransport::~AgentTransport() { Stop(); }

void AgentTransport::Start() {
  stopped_ = false;
  ArmFlushTimer();
}

void AgentTransport::Stop() {
  stopped_ = true;
  loop_->CancelTimer(flush_timer_);
}

void AgentTransport::ArmFlushTimer() {
  flush_timer_ = loop_->AddTimer(options_.flush_interval, [this] {
    if (stopped_) {
      return;
    }
    Flush();
    ArmFlushTimer();
  });
}

void AgentTransport::Flush() { agent_->FlushOutbox(MonotonicNowMicros()); }

BatchDeliveryOutcome AgentTransport::OnBatchDelivery(const EncodedSampleBatch& batch,
                                                     size_t queue_index) {
  BatchDeliveryOutcome outcome;
  if (queue_index < window_.size()) {
    // This batch is on the wire. Settled entries form a prefix of the
    // window (acks are cumulative), so a settled entry is only ever
    // consumed at index 0 — which keeps window_[i] mirroring outbox batch
    // i as both sides pop their fronts together.
    InflightBatch& entry = window_[queue_index];
    if (!entry.settled) {
      outcome.in_flight = true;
      return outcome;
    }
    const size_t remaining = batch.sample_count - batch.consumed;
    if (entry.implied) {
      // A later ack on the same connection implies the aggregator processed
      // this earlier seq in full (it acks in order).
      outcome.delivered = static_cast<int>(remaining);
    } else {
      // Clamp against what is still unsettled — overflow eviction may have
      // advanced the consumed cursor while the batch was on the wire, and
      // those samples were already accounted as overflow drops.
      outcome.delivered = static_cast<int>(
          std::min<uint64_t>(entry.ack.delivered, static_cast<uint64_t>(remaining)));
      outcome.lost = static_cast<int>(
          std::min<uint64_t>(entry.ack.lost, static_cast<uint64_t>(remaining) -
                                                 static_cast<uint64_t>(outcome.delivered)));
      outcome.decode_failed = entry.ack.decode_failed;
    }
    const size_t settled = static_cast<size_t>(outcome.delivered) +
                           static_cast<size_t>(outcome.lost);
    outcome.retry = !outcome.decode_failed && settled < remaining;
    // Counted at consume time so every sent batch lands in exactly one
    // bucket — batches_acked, implied_acks, or inflight_reset — and
    // batches_sent equals their sum whenever the window is empty (the
    // loopback campaign's balance assertion).
    if (entry.implied) {
      ++stats_.implied_acks;
    } else {
      ++stats_.batches_acked;
    }
    window_.erase(window_.begin() + static_cast<long>(queue_index));
    if (outcome.retry) {
      // Partially settled (cannot happen with our aggregator, which always
      // processes a whole batch, but the wire allows it): the batch stays
      // queued for re-send while later window entries now mirror the wrong
      // queue positions — resynchronize by resetting the window; the
      // re-sends are absorbed by dedup.
      stats_.inflight_reset += static_cast<int64_t>(window_.size());
      window_.clear();
    }
    return outcome;
  }

  // Past the window's tail: this batch has not been sent on this
  // connection. Launch it if a slot and the connection allow.
  if (!client_->ready()) {
    outcome.retry = true;
    return outcome;
  }
  if (window_.size() >= static_cast<size_t>(options_.window)) {
    ++stats_.window_stalls;
    outcome.retry = true;
    return outcome;
  }
  char header[kSampleBatchHeaderMax];
  const size_t header_size =
      BuildSampleBatchHeader(next_seq_, static_cast<uint64_t>(batch.consumed), header);
  if (!client_->SendFrameParts(std::string_view(header, header_size), batch.bytes)) {
    ++stats_.send_backpressure;
    outcome.retry = true;
    return outcome;
  }
  InflightBatch entry;
  entry.seq = next_seq_++;
  window_.push_back(entry);
  ++stats_.batches_sent;
  stats_.window_depth_peak =
      std::max(stats_.window_depth_peak, static_cast<int64_t>(window_.size()));
  outcome.in_flight = true;  // outcome unknown until the ack lands
  return outcome;
}

void AgentTransport::OnClientFrame(std::string_view payload) {
  FrameType type;
  BatchAckFrame ack;
  if (!ParseFrameType(payload, &type) || type != FrameType::kBatchAck ||
      !ParseBatchAckPayload(payload, &ack)) {
    return;  // not for us; ignore rather than poison the connection
  }
  size_t match = window_.size();
  for (size_t i = 0; i < window_.size(); ++i) {
    if (!window_[i].settled && window_[i].seq == ack.seq) {
      match = i;
      break;
    }
  }
  if (match == window_.size()) {
    ++stats_.stale_acks;
    return;
  }
  // Cumulative settle: everything sent before the acked seq on this
  // connection was processed first (the aggregator acks in order); if any
  // of those acks went missing, this one vouches for them.
  for (size_t i = 0; i < match; ++i) {
    if (!window_[i].settled) {
      window_[i].settled = true;
      window_[i].implied = true;
    }
  }
  window_[match].settled = true;
  window_[match].ack = ack;
  // Settle immediately: the next flush pass consumes the settled prefix
  // and, if the outbox has more, launches replacement batches in the same
  // pass.
  Flush();
}

}  // namespace cpi2
