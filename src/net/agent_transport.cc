#include "net/agent_transport.h"

#include <algorithm>

namespace cpi2 {

AgentTransport::AgentTransport(EventLoop* loop, Agent* agent, NetClient* client,
                               Options options)
    : loop_(loop), agent_(agent), client_(client), options_(options) {
  agent_->SetBatchDeliveryCallback(
      [this](const EncodedSampleBatch& batch) { return OnBatchDelivery(batch); });
  client_->set_frame_handler([this](std::string_view payload) { OnClientFrame(payload); });
  client_->set_ready_handler([this] { Flush(); });
  client_->set_down_handler([this](Connection::CloseReason) {
    // The in-flight batch (if any) is unsettled: forget the seq so the next
    // flush after reconnect re-sends the same bytes from the same cursor.
    if (in_flight_) {
      ++stats_.inflight_reset;
      in_flight_ = false;
    }
    pending_ack_.reset();
  });
}

AgentTransport::~AgentTransport() { Stop(); }

void AgentTransport::Start() {
  stopped_ = false;
  ArmFlushTimer();
}

void AgentTransport::Stop() {
  stopped_ = true;
  loop_->CancelTimer(flush_timer_);
}

void AgentTransport::ArmFlushTimer() {
  flush_timer_ = loop_->AddTimer(options_.flush_interval, [this] {
    if (stopped_) {
      return;
    }
    Flush();
    ArmFlushTimer();
  });
}

void AgentTransport::Flush() { agent_->FlushOutbox(MonotonicNowMicros()); }

BatchDeliveryOutcome AgentTransport::OnBatchDelivery(const EncodedSampleBatch& batch) {
  BatchDeliveryOutcome outcome;
  if (pending_ack_.has_value()) {
    // Pass B: the in-flight batch's ack settles it. Clamp against what is
    // still unsettled — overflow eviction may have advanced the consumed
    // cursor while the batch was on the wire, and those samples were
    // already accounted as overflow drops.
    const BatchAckFrame ack = *pending_ack_;
    pending_ack_.reset();
    in_flight_ = false;
    const size_t remaining = batch.sample_count - batch.consumed;
    outcome.delivered = static_cast<int>(
        std::min<uint64_t>(ack.delivered, static_cast<uint64_t>(remaining)));
    outcome.lost = static_cast<int>(std::min<uint64_t>(
        ack.lost, static_cast<uint64_t>(remaining) - static_cast<uint64_t>(outcome.delivered)));
    outcome.decode_failed = ack.decode_failed;
    const size_t settled = static_cast<size_t>(outcome.delivered) +
                           static_cast<size_t>(outcome.lost);
    outcome.retry = !ack.decode_failed && settled < remaining;
    return outcome;
  }
  if (in_flight_) {
    outcome.retry = true;  // awaiting the ack; keep the batch queued
    return outcome;
  }
  if (!client_->ready()) {
    outcome.retry = true;
    return outcome;
  }
  std::string payload;
  BuildSampleBatchPayload(next_seq_, static_cast<uint64_t>(batch.consumed), batch.bytes,
                          &payload);
  if (!client_->SendFrame(payload)) {
    ++stats_.send_backpressure;
    outcome.retry = true;
    return outcome;
  }
  in_flight_ = true;
  in_flight_seq_ = next_seq_++;
  ++stats_.batches_sent;
  outcome.retry = true;  // outcome unknown until the ack lands
  return outcome;
}

void AgentTransport::OnClientFrame(std::string_view payload) {
  FrameType type;
  BatchAckFrame ack;
  if (!ParseFrameType(payload, &type) || type != FrameType::kBatchAck ||
      !ParseBatchAckPayload(payload, &ack)) {
    return;  // not for us; ignore rather than poison the connection
  }
  if (!in_flight_ || ack.seq != in_flight_seq_) {
    ++stats_.stale_acks;
    return;
  }
  ++stats_.batches_acked;
  pending_ack_ = ack;
  // Settle immediately: the next flush pass consumes the ack and, if the
  // outbox has more, launches the next batch in the same pass.
  Flush();
}

}  // namespace cpi2
