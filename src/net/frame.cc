#include "net/frame.h"

#include <cstring>

#include "wire/wire_codec.h"

namespace cpi2 {

void BuildHelloPayload(const HelloFrame& hello, bool is_ack, std::string* out) {
  WireWriter writer(out);
  writer.PutByte(static_cast<uint8_t>(is_ack ? FrameType::kHelloAck : FrameType::kHello));
  writer.PutVarint(hello.version);
  writer.PutByte(static_cast<uint8_t>(hello.role));
  writer.PutString(hello.peer_name);
  writer.PutVarint(hello.feature_flags);
}

void BuildSampleBatchPayload(uint64_t seq, uint64_t consumed, std::string_view batch_bytes,
                             std::string* out) {
  WireWriter writer(out);
  writer.PutByte(static_cast<uint8_t>(FrameType::kSampleBatch));
  writer.PutVarint(seq);
  writer.PutVarint(consumed);
  out->append(batch_bytes.data(), batch_bytes.size());
}

size_t BuildSampleBatchHeader(uint64_t seq, uint64_t consumed,
                              char out[kSampleBatchHeaderMax]) {
  char* p = out;
  *p++ = static_cast<char>(FrameType::kSampleBatch);
  for (uint64_t v : {seq, consumed}) {
    while (v >= 0x80) {
      *p++ = static_cast<char>((v & 0x7f) | 0x80);
      v >>= 7;
    }
    *p++ = static_cast<char>(v);
  }
  return static_cast<size_t>(p - out);
}

void BuildBatchAckPayload(const BatchAckFrame& ack, std::string* out) {
  WireWriter writer(out);
  writer.PutByte(static_cast<uint8_t>(FrameType::kBatchAck));
  writer.PutVarint(ack.seq);
  writer.PutVarint(ack.delivered);
  writer.PutVarint(ack.lost);
  writer.PutByte(ack.decode_failed ? 1 : 0);
}

void BuildHeartbeatPayload(MicroTime send_time, bool is_ack, std::string* out) {
  WireWriter writer(out);
  writer.PutByte(
      static_cast<uint8_t>(is_ack ? FrameType::kHeartbeatAck : FrameType::kHeartbeat));
  writer.PutZigzag(send_time);
}

void BuildGoawayPayload(std::string_view reason, std::string* out) {
  WireWriter writer(out);
  writer.PutByte(static_cast<uint8_t>(FrameType::kGoaway));
  writer.PutString(reason);
}

bool ParseFrameType(std::string_view payload, FrameType* type) {
  if (payload.empty()) {
    return false;
  }
  switch (payload[0]) {
    case 'H':
    case 'h':
    case 'S':
    case 'a':
    case 'p':
    case 'q':
    case 'G':
      *type = static_cast<FrameType>(payload[0]);
      return true;
    default:
      return false;
  }
}

bool ParseHelloPayload(std::string_view payload, HelloFrame* hello, bool* is_ack) {
  WireReader reader(payload);
  const uint8_t tag = reader.GetByte();
  if (tag != static_cast<uint8_t>(FrameType::kHello) &&
      tag != static_cast<uint8_t>(FrameType::kHelloAck)) {
    return false;
  }
  *is_ack = tag == static_cast<uint8_t>(FrameType::kHelloAck);
  hello->version = static_cast<uint32_t>(reader.GetVarint());
  const uint8_t role = reader.GetByte();
  if (role != static_cast<uint8_t>(PeerRole::kAgent) &&
      role != static_cast<uint8_t>(PeerRole::kAggregator) &&
      role != static_cast<uint8_t>(PeerRole::kControl)) {
    return false;
  }
  hello->role = static_cast<PeerRole>(role);
  hello->peer_name = std::string(reader.GetString());
  hello->feature_flags = reader.GetVarint();
  return !reader.failed() && reader.remaining() == 0;
}

bool ParseSampleBatchPayload(std::string_view payload, uint64_t* seq, uint64_t* consumed,
                             std::string_view* batch_bytes) {
  WireReader reader(payload);
  if (reader.GetByte() != static_cast<uint8_t>(FrameType::kSampleBatch)) {
    return false;
  }
  *seq = reader.GetVarint();
  *consumed = reader.GetVarint();
  if (reader.failed()) {
    return false;
  }
  *batch_bytes = reader.GetSpan(reader.remaining());
  return true;
}

bool ParseBatchAckPayload(std::string_view payload, BatchAckFrame* ack) {
  WireReader reader(payload);
  if (reader.GetByte() != static_cast<uint8_t>(FrameType::kBatchAck)) {
    return false;
  }
  ack->seq = reader.GetVarint();
  ack->delivered = static_cast<uint32_t>(reader.GetVarint());
  ack->lost = static_cast<uint32_t>(reader.GetVarint());
  ack->decode_failed = reader.GetByte() != 0;
  return !reader.failed() && reader.remaining() == 0;
}

bool ParseHeartbeatPayload(std::string_view payload, MicroTime* send_time, bool* is_ack) {
  WireReader reader(payload);
  const uint8_t tag = reader.GetByte();
  if (tag != static_cast<uint8_t>(FrameType::kHeartbeat) &&
      tag != static_cast<uint8_t>(FrameType::kHeartbeatAck)) {
    return false;
  }
  *is_ack = tag == static_cast<uint8_t>(FrameType::kHeartbeatAck);
  *send_time = reader.GetZigzag();
  return !reader.failed() && reader.remaining() == 0;
}

bool ParseGoawayPayload(std::string_view payload, std::string_view* reason) {
  WireReader reader(payload);
  if (reader.GetByte() != static_cast<uint8_t>(FrameType::kGoaway)) {
    return false;
  }
  *reason = reader.GetString();
  return !reader.failed() && reader.remaining() == 0;
}

void FrameAssembler::Feed(std::string_view data) {
  ring_.Append(data.data(), data.size());
}

int FrameAssembler::WritableSpans(size_t min_free, struct iovec out[2]) {
  ring_.Reserve(min_free);
  char* p0 = nullptr;
  char* p1 = nullptr;
  size_t n0 = 0, n1 = 0;
  const int spans = ring_.WriteSpans(&p0, &n0, &p1, &n1);
  if (spans >= 1) {
    out[0].iov_base = p0;
    out[0].iov_len = n0;
  }
  if (spans >= 2) {
    out[1].iov_base = p1;
    out[1].iov_len = n1;
  }
  return spans;
}

void FrameAssembler::CommitBytes(size_t n) { ring_.CommitWrite(n); }

bool FrameAssembler::HasPartialFrame() const {
  if (poisoned_) {
    return false;  // the poison verdict, not truncation, describes this stream
  }
  // pending_pop_ bytes belong to the last returned frame (consumed, popped
  // lazily); anything beyond them is an unfinished frame — and a few bytes
  // of magic count as partial too.
  return ring_.size() > pending_pop_;
}

void FrameAssembler::Reset() {
  ring_.Clear();
  pending_pop_ = 0;
  stream_offset_ = 0;
  saw_magic_ = false;
  poisoned_ = false;
}

FrameAssembler::Result FrameAssembler::Next(std::string_view* payload) {
  if (poisoned_) {
    return poison_verdict_;
  }
  // The previous call's frame is popped now — never earlier — so its
  // payload view stayed valid until this call.
  if (pending_pop_ > 0) {
    ring_.PopFront(pending_pop_);
    pending_pop_ = 0;
  }
  if (!saw_magic_) {
    if (ring_.size() < kWireMagicSize) {
      return Result::kNeedMore;
    }
    for (size_t i = 0; i < kWireMagicSize; ++i) {
      if (ring_[i] != static_cast<uint8_t>(kNetStreamMagic[i])) {
        poisoned_ = true;
        poison_verdict_ = Result::kBadMagic;
        return Result::kBadMagic;
      }
    }
    ring_.PopFront(kWireMagicSize);
    stream_offset_ += kWireMagicSize;
    saw_magic_ = true;
  }
  // Decode the length varint by hand so an incomplete varint is kNeedMore
  // (more bytes coming), not a failure.
  uint64_t length = 0;
  int shift = 0;
  size_t cursor = 0;
  while (true) {
    if (cursor >= ring_.size()) {
      return Result::kNeedMore;
    }
    const uint8_t byte = ring_[cursor++];
    length |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      break;
    }
    shift += 7;
    if (shift > 63) {
      poisoned_ = true;
      return Result::kCorrupt;  // malformed varint: stream desynced
    }
  }
  if (length == 0 || length > kMaxFramePayload) {
    // A zero-length frame is never emitted (every payload has a tag byte);
    // an oversized length is hostile or a flipped length byte. Either way
    // the record boundary is untrustworthy from here on.
    poisoned_ = true;
    return Result::kCorrupt;
  }
  if (ring_.size() - cursor < length + 4) {
    return Result::kNeedMore;
  }
  // In-place view when the payload doesn't straddle the ring's wrap point;
  // linearized into scratch_ otherwise. Valid until the next call pops it.
  const char* payload_data = ring_.ContiguousView(cursor, length, &scratch_);
  const std::string_view frame_payload(payload_data, length);
  uint32_t stored_crc = 0;
  for (size_t i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(ring_[cursor + length + i]) << (8 * i);
  }
  if (Crc32(frame_payload) != stored_crc) {
    // stream_offset_ still points at this frame's length byte: the offset
    // reported for the corrupt frame.
    poisoned_ = true;
    return Result::kCorrupt;
  }
  pending_pop_ = cursor + length + 4;
  stream_offset_ += pending_pop_;
  *payload = frame_payload;
  return Result::kFrame;
}

}  // namespace cpi2
