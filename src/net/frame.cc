#include "net/frame.h"

#include <cstring>

#include "wire/wire_codec.h"

namespace cpi2 {

void BuildHelloPayload(const HelloFrame& hello, bool is_ack, std::string* out) {
  WireWriter writer(out);
  writer.PutByte(static_cast<uint8_t>(is_ack ? FrameType::kHelloAck : FrameType::kHello));
  writer.PutVarint(hello.version);
  writer.PutByte(static_cast<uint8_t>(hello.role));
  writer.PutString(hello.peer_name);
  writer.PutVarint(hello.feature_flags);
}

void BuildSampleBatchPayload(uint64_t seq, uint64_t consumed, std::string_view batch_bytes,
                             std::string* out) {
  WireWriter writer(out);
  writer.PutByte(static_cast<uint8_t>(FrameType::kSampleBatch));
  writer.PutVarint(seq);
  writer.PutVarint(consumed);
  out->append(batch_bytes.data(), batch_bytes.size());
}

void BuildBatchAckPayload(const BatchAckFrame& ack, std::string* out) {
  WireWriter writer(out);
  writer.PutByte(static_cast<uint8_t>(FrameType::kBatchAck));
  writer.PutVarint(ack.seq);
  writer.PutVarint(ack.delivered);
  writer.PutVarint(ack.lost);
  writer.PutByte(ack.decode_failed ? 1 : 0);
}

void BuildHeartbeatPayload(MicroTime send_time, bool is_ack, std::string* out) {
  WireWriter writer(out);
  writer.PutByte(
      static_cast<uint8_t>(is_ack ? FrameType::kHeartbeatAck : FrameType::kHeartbeat));
  writer.PutZigzag(send_time);
}

void BuildGoawayPayload(std::string_view reason, std::string* out) {
  WireWriter writer(out);
  writer.PutByte(static_cast<uint8_t>(FrameType::kGoaway));
  writer.PutString(reason);
}

bool ParseFrameType(std::string_view payload, FrameType* type) {
  if (payload.empty()) {
    return false;
  }
  switch (payload[0]) {
    case 'H':
    case 'h':
    case 'S':
    case 'a':
    case 'p':
    case 'q':
    case 'G':
      *type = static_cast<FrameType>(payload[0]);
      return true;
    default:
      return false;
  }
}

bool ParseHelloPayload(std::string_view payload, HelloFrame* hello, bool* is_ack) {
  WireReader reader(payload);
  const uint8_t tag = reader.GetByte();
  if (tag != static_cast<uint8_t>(FrameType::kHello) &&
      tag != static_cast<uint8_t>(FrameType::kHelloAck)) {
    return false;
  }
  *is_ack = tag == static_cast<uint8_t>(FrameType::kHelloAck);
  hello->version = static_cast<uint32_t>(reader.GetVarint());
  const uint8_t role = reader.GetByte();
  if (role != static_cast<uint8_t>(PeerRole::kAgent) &&
      role != static_cast<uint8_t>(PeerRole::kAggregator) &&
      role != static_cast<uint8_t>(PeerRole::kControl)) {
    return false;
  }
  hello->role = static_cast<PeerRole>(role);
  hello->peer_name = std::string(reader.GetString());
  hello->feature_flags = reader.GetVarint();
  return !reader.failed() && reader.remaining() == 0;
}

bool ParseSampleBatchPayload(std::string_view payload, uint64_t* seq, uint64_t* consumed,
                             std::string_view* batch_bytes) {
  WireReader reader(payload);
  if (reader.GetByte() != static_cast<uint8_t>(FrameType::kSampleBatch)) {
    return false;
  }
  *seq = reader.GetVarint();
  *consumed = reader.GetVarint();
  if (reader.failed()) {
    return false;
  }
  *batch_bytes = reader.GetSpan(reader.remaining());
  return true;
}

bool ParseBatchAckPayload(std::string_view payload, BatchAckFrame* ack) {
  WireReader reader(payload);
  if (reader.GetByte() != static_cast<uint8_t>(FrameType::kBatchAck)) {
    return false;
  }
  ack->seq = reader.GetVarint();
  ack->delivered = static_cast<uint32_t>(reader.GetVarint());
  ack->lost = static_cast<uint32_t>(reader.GetVarint());
  ack->decode_failed = reader.GetByte() != 0;
  return !reader.failed() && reader.remaining() == 0;
}

bool ParseHeartbeatPayload(std::string_view payload, MicroTime* send_time, bool* is_ack) {
  WireReader reader(payload);
  const uint8_t tag = reader.GetByte();
  if (tag != static_cast<uint8_t>(FrameType::kHeartbeat) &&
      tag != static_cast<uint8_t>(FrameType::kHeartbeatAck)) {
    return false;
  }
  *is_ack = tag == static_cast<uint8_t>(FrameType::kHeartbeatAck);
  *send_time = reader.GetZigzag();
  return !reader.failed() && reader.remaining() == 0;
}

bool ParseGoawayPayload(std::string_view payload, std::string_view* reason) {
  WireReader reader(payload);
  if (reader.GetByte() != static_cast<uint8_t>(FrameType::kGoaway)) {
    return false;
  }
  *reason = reader.GetString();
  return !reader.failed() && reader.remaining() == 0;
}

void FrameAssembler::Feed(std::string_view data) {
  buffer_.append(data.data(), data.size());
}

bool FrameAssembler::HasPartialFrame() const {
  if (poisoned_) {
    return false;  // the poison verdict, not truncation, describes this stream
  }
  if (!saw_magic_) {
    return pos_ < buffer_.size();  // a few bytes of magic count as partial
  }
  return pos_ < buffer_.size();
}

void FrameAssembler::Reset() {
  buffer_.clear();
  pos_ = 0;
  stream_offset_ = 0;
  saw_magic_ = false;
  poisoned_ = false;
}

void FrameAssembler::Compact() {
  // Shift out the consumed prefix once it dominates the buffer, so a
  // long-lived connection doesn't grow its read buffer without bound.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

FrameAssembler::Result FrameAssembler::Next(std::string_view* payload) {
  if (poisoned_) {
    return poison_verdict_;
  }
  // Compact before parsing (never after): the returned payload view must
  // stay valid until the caller's next call.
  Compact();
  if (!saw_magic_) {
    if (buffer_.size() - pos_ < kWireMagicSize) {
      return Result::kNeedMore;
    }
    if (std::memcmp(buffer_.data() + pos_, kNetStreamMagic, kWireMagicSize) != 0) {
      poisoned_ = true;
      poison_verdict_ = Result::kBadMagic;
      return Result::kBadMagic;
    }
    pos_ += kWireMagicSize;
    stream_offset_ += kWireMagicSize;
    saw_magic_ = true;
  }
  // Decode the length varint by hand so an incomplete varint is kNeedMore
  // (more bytes coming), not a failure.
  uint64_t length = 0;
  int shift = 0;
  size_t cursor = pos_;
  while (true) {
    if (cursor >= buffer_.size()) {
      return Result::kNeedMore;
    }
    const uint8_t byte = static_cast<uint8_t>(buffer_[cursor++]);
    length |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      break;
    }
    shift += 7;
    if (shift > 63) {
      poisoned_ = true;
      return Result::kCorrupt;  // malformed varint: stream desynced
    }
  }
  if (length == 0 || length > kMaxFramePayload) {
    // A zero-length frame is never emitted (every payload has a tag byte);
    // an oversized length is hostile or a flipped length byte. Either way
    // the record boundary is untrustworthy from here on.
    poisoned_ = true;
    return Result::kCorrupt;
  }
  if (buffer_.size() - cursor < length + 4) {
    return Result::kNeedMore;
  }
  const std::string_view frame_payload(buffer_.data() + cursor, length);
  cursor += length;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buffer_.data() + cursor, 4);
  if constexpr (std::endian::native != std::endian::little) {
    stored_crc = __builtin_bswap32(stored_crc);
  }
  cursor += 4;
  if (Crc32(frame_payload) != stored_crc) {
    // stream_offset_ still points at this frame's length byte: the offset
    // reported for the corrupt frame.
    poisoned_ = true;
    return Result::kCorrupt;
  }
  stream_offset_ += cursor - pos_;
  pos_ = cursor;
  *payload = frame_payload;
  return Result::kFrame;
}

}  // namespace cpi2
