// NetClient: the agent-side endpoint of the CPI2NET1 data plane.
//
// Owns at most one Connection to the configured server address and runs the
// failure-first connection lifecycle:
//
//   kBackoff --connect timer--> kConnecting --writable--> kHandshaking
//        ^                          |  connect error           |
//        |                          v                          v  HelloAck
//        +----------- any failure or close ceremony <------ kReady
//
// Reconnect: capped exponential backoff with per-connection uniform jitter
// (a fleet of agents must not stampede a recovering aggregator — the same
// argument as the outbox's retry jitter, applied to SYNs). The backoff
// ladder resets only after a *completed handshake*, so a server that
// accepts and immediately dies does not reset the ladder.
//
// Liveness: heartbeats every heartbeat_interval once ready; a peer silent
// for heartbeat_timeout is declared dead and the connection is recycled
// through backoff. A Goaway from the server (lame duck) closes politely
// and re-enters backoff, so the client drains back in when the server
// returns.

#ifndef CPI2_NET_CLIENT_H_
#define CPI2_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/buffer_pool.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "net/frame.h"

namespace cpi2 {

class NetClient {
 public:
  struct Options {
    std::string server_address;      // "host:port" or "unix:/path"
    std::string peer_name;           // carried in the hello (machine name)
    PeerRole role = PeerRole::kAgent;
    MicroTime reconnect_backoff = 100 * kMicrosPerMilli;
    MicroTime reconnect_backoff_max = 10 * kMicrosPerSecond;
    double reconnect_jitter = 0.25;  // fraction of the backoff, uniform
    MicroTime heartbeat_interval = kMicrosPerSecond;
    MicroTime heartbeat_timeout = 5 * kMicrosPerSecond;
    MicroTime connect_timeout = 2 * kMicrosPerSecond;
    uint64_t jitter_seed = 0x5eed5;
    Connection::Options connection;  // send-queue bound + fault injector
  };

  struct Stats {
    int64_t connect_attempts = 0;
    int64_t connects_completed = 0;  // handshakes finished (kReady entries)
    int64_t disconnects = 0;
    int64_t handshake_failures = 0;  // bad/odd HelloAck or wrong first frame
    int64_t heartbeats_sent = 0;
    int64_t heartbeat_timeouts = 0;
    int64_t goaways_received = 0;
  };

  enum class State { kIdle, kBackoff, kConnecting, kHandshaking, kReady };

  using ReadyHandler = std::function<void()>;
  using FrameHandler = std::function<void(std::string_view payload)>;
  using DownHandler = std::function<void(Connection::CloseReason reason)>;

  NetClient(EventLoop* loop, Options options);
  ~NetClient();

  // Fires on entering kReady (after every successful handshake).
  void set_ready_handler(ReadyHandler handler) { ready_handler_ = std::move(handler); }
  // Non-control frames received while ready (batch acks for the agent).
  void set_frame_handler(FrameHandler handler) { frame_handler_ = std::move(handler); }
  // Fires on every transition out of kReady/kConnecting/kHandshaking.
  void set_down_handler(DownHandler handler) { down_handler_ = std::move(handler); }

  // Starts the connect loop (first attempt immediately).
  void Start();
  // Stops reconnecting and closes any live connection. After Shutdown the
  // client is inert; used for daemon teardown.
  void Shutdown();

  // Sends one frame if ready and the send queue has room. False = not
  // connected or backpressured; caller's outbox keeps the data.
  bool SendFrame(std::string_view payload);
  // Scatter variant: payload = head + body, framed with a chained CRC so a
  // pre-encoded body (sample batch bytes) is copied once, into the slab.
  bool SendFrameParts(std::string_view head, std::string_view body);

  State state() const { return state_; }
  bool ready() const { return state_ == State::kReady; }
  const Stats& stats() const { return stats_; }
  // Aggregated over every connection this client has owned (a recycled
  // connection's counts are folded in at teardown).
  Connection::Stats connection_stats() const;
  size_t send_queue_bytes() const {
    return connection_ != nullptr ? connection_->send_queue_bytes() : 0;
  }

 private:
  void BeginConnect();
  void ScheduleReconnect();
  void OnConnectWritable(uint32_t events);
  void OnConnectionEstablished(int fd);
  void OnFrame(std::string_view payload);
  void OnConnectionClosed(Connection::CloseReason reason);
  void ArmHeartbeat();
  void ArmLivenessCheck();
  void RecycleConnection(Connection::CloseReason reason);

  EventLoop* loop_;
  Options options_;
  // Slab pool shared by this client's connections across reconnects;
  // declared before the connections so it outlives their teardown.
  BufferPool pool_;
  Rng jitter_rng_;
  State state_ = State::kIdle;
  int connect_fd_ = -1;  // in-flight nonblocking connect (pre-Connection)
  std::unique_ptr<Connection> connection_;
  std::unique_ptr<Connection> graveyard_;  // closed connection pending reap
  int backoff_exponent_ = 0;
  MicroTime last_peer_activity_ = 0;
  EventLoop::TimerId reconnect_timer_ = 0;
  EventLoop::TimerId heartbeat_timer_ = 0;
  EventLoop::TimerId liveness_timer_ = 0;
  EventLoop::TimerId connect_timeout_timer_ = 0;
  EventLoop::TimerId reap_timer_ = 0;
  bool shutdown_ = false;

  ReadyHandler ready_handler_;
  FrameHandler frame_handler_;
  DownHandler down_handler_;
  Stats stats_;
  Connection::Stats folded_conn_stats_;
};

}  // namespace cpi2

#endif  // CPI2_NET_CLIENT_H_
