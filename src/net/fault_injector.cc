#include "net/fault_injector.h"

#include <cstdlib>
#include <vector>

#include "net/event_loop.h"

namespace cpi2 {

NetFaultInjector::NetFaultInjector(const Options& options)
    : options_(options), rng_(options.seed), epoch_(MonotonicNowMicros()) {}

bool NetFaultInjector::AnyFaultsEnabled() const {
  return options_.corrupt_rate > 0.0 || options_.truncate_rate > 0.0 ||
         options_.reset_rate > 0.0 || options_.stall_rate > 0.0 ||
         options_.partition_period > 0 || options_.kill_mid_frame_after > 0;
}

NetFaultInjector::Action NetFaultInjector::DrawFrameAction() {
  const int64_t frame = ++stats_.frames_seen;
  if (options_.kill_mid_frame_after > 0 && frame == options_.kill_mid_frame_after + 1) {
    ++stats_.frames_truncated;
    return Action::kKillMidFrame;
  }
  if (options_.corrupt_rate > 0.0 && rng_.NextDouble() < options_.corrupt_rate) {
    ++stats_.frames_corrupted;
    return Action::kCorrupt;
  }
  if (options_.truncate_rate > 0.0 && rng_.NextDouble() < options_.truncate_rate) {
    ++stats_.frames_truncated;
    return Action::kTruncate;
  }
  if (options_.reset_rate > 0.0 && rng_.NextDouble() < options_.reset_rate) {
    ++stats_.resets_injected;
    return Action::kReset;
  }
  return Action::kNone;
}

bool NetFaultInjector::PartitionActive(MicroTime now) const {
  if (options_.partition_period <= 0 || options_.partition_duration <= 0) {
    return false;
  }
  const MicroTime since_phase = now - epoch_ - options_.partition_phase;
  if (since_phase < 0) {
    return false;
  }
  return since_phase % options_.partition_period < options_.partition_duration;
}

MicroTime NetFaultInjector::DrawStall() {
  if (options_.stall_rate <= 0.0 || rng_.NextDouble() >= options_.stall_rate) {
    return 0;
  }
  ++stats_.stalls_injected;
  return options_.stall_duration;
}

size_t NetFaultInjector::DrawCorruptOffset(size_t size) {
  if (size <= 1) {
    return 0;
  }
  return static_cast<size_t>(rng_.UniformInt(1, static_cast<int64_t>(size) - 1));
}

size_t NetFaultInjector::DrawTruncateLength(size_t size) {
  if (size <= 1) {
    return 0;
  }
  return static_cast<size_t>(rng_.UniformInt(1, static_cast<int64_t>(size) - 1));
}

namespace {
// Splits on `sep` without pulling in string_util (this file is leaf-level).
std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (end > start) {
      parts.push_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return parts;
}
}  // namespace

bool NetFaultInjector::ParseSpec(const std::string& spec, Options* options,
                                 std::string* error) {
  for (const std::string& pair : SplitOn(spec, ',')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      *error = "fault spec entry missing '=': " + pair;
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    char* end = nullptr;
    const double num = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      *error = "bad number in fault spec: " + pair;
      return false;
    }
    if (key == "seed") {
      options->seed = static_cast<uint64_t>(num);
    } else if (key == "corrupt_rate") {
      options->corrupt_rate = num;
    } else if (key == "truncate_rate") {
      options->truncate_rate = num;
    } else if (key == "reset_rate") {
      options->reset_rate = num;
    } else if (key == "stall_rate") {
      options->stall_rate = num;
    } else if (key == "stall_ms") {
      options->stall_duration = static_cast<MicroTime>(num) * kMicrosPerMilli;
    } else if (key == "partition_period_ms") {
      options->partition_period = static_cast<MicroTime>(num) * kMicrosPerMilli;
    } else if (key == "partition_duration_ms") {
      options->partition_duration = static_cast<MicroTime>(num) * kMicrosPerMilli;
    } else if (key == "partition_phase_ms") {
      options->partition_phase = static_cast<MicroTime>(num) * kMicrosPerMilli;
    } else if (key == "kill_mid_frame_after") {
      options->kill_mid_frame_after = static_cast<int64_t>(num);
    } else {
      *error = "unknown fault spec key: " + key;
      return false;
    }
  }
  return true;
}

}  // namespace cpi2
