// CPI2NET1: the framed stream protocol between cpi2-agentd and
// cpi2-aggregatord.
//
// Each direction of a connection is a byte stream:
//
//   magic[8] = "CPI2NET1"            stream preamble, sent once at connect
//   repeated framed record:          exactly wire/framing's record layout
//     varint payload_length          (bounded by kMaxFramePayload)
//     payload[payload_length]        first byte is a FrameType tag
//     crc32(payload)  fixed32
//
// Reusing the storage-framing record layout means a captured socket stream
// is triaged by the same tooling as a file: wiredump walks it with
// ReadFramedRecord and reports the byte offset of any corrupt or truncated
// frame.
//
// Frame vocabulary (first payload byte):
//   'H' Hello         version, role, peer name, feature flags — first frame
//                     a client sends; the server rejects anything else.
//   'h' HelloAck      server's version/name/flags back; completes handshake.
//   'S' SampleBatch   seq, consumed, then raw CPI2SMB1 bytes. The inner
//                     batch keeps its own magic + CRC, so the PR 5 sample
//                     codec (and its corruption verdicts) ride unchanged.
//   'a' BatchAck      seq, delivered, lost, flags (bit0 = decode_failed).
//   'p' Heartbeat     sender's monotonic send time (zigzag).
//   'q' HeartbeatAck  echo of the heartbeat's send time.
//   'G' Goaway        reason string: lame-duck notice, peer should drain
//                     and reconnect elsewhere/later.
//
// Corruption policy on a live connection: a frame whose CRC fails (or whose
// declared length is hostile) poisons the stream — a flipped length byte
// desyncs everything after it — so the receiver counts the verdict and
// drops the connection; the sender's outbox + reconnect re-deliver, and the
// aggregator's dedup absorbs any replay. A connection that dies with a
// partial frame buffered is a "truncated tail" verdict, exactly as a torn
// file is.

#ifndef CPI2_NET_FRAME_H_
#define CPI2_NET_FRAME_H_

#include <sys/uio.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "util/clock.h"
#include "util/ring_buffer.h"
#include "wire/framing.h"

namespace cpi2 {

inline constexpr char kNetStreamMagic[] = "CPI2NET1";
inline constexpr uint32_t kNetProtocolVersion = 1;
// Upper bound on a frame payload: a sample batch tops out well under this,
// and a hostile/corrupt length varint must not make a receiver buffer GBs.
inline constexpr uint64_t kMaxFramePayload = 4u << 20;

enum class FrameType : uint8_t {
  kHello = 'H',
  kHelloAck = 'h',
  kSampleBatch = 'S',
  kBatchAck = 'a',
  kHeartbeat = 'p',
  kHeartbeatAck = 'q',
  kGoaway = 'G',
};

// Peer roles carried in the hello. The aggregator only speaks to agents
// (and the loopback test's control probes).
enum class PeerRole : uint8_t {
  kAgent = 'A',
  kAggregator = 'G',
  kControl = 'C',
};

struct HelloFrame {
  uint32_t version = kNetProtocolVersion;
  PeerRole role = PeerRole::kAgent;
  std::string peer_name;   // machine name for agents, service name otherwise
  uint64_t feature_flags = 0;  // reserved; must decode and echo unknown bits
};

struct BatchAckFrame {
  uint64_t seq = 0;
  uint32_t delivered = 0;
  uint32_t lost = 0;
  bool decode_failed = false;
};

// --- payload builders (payload only; framing is AppendNetFrame) -----------
void BuildHelloPayload(const HelloFrame& hello, bool is_ack, std::string* out);
void BuildSampleBatchPayload(uint64_t seq, uint64_t consumed, std::string_view batch_bytes,
                             std::string* out);
void BuildBatchAckPayload(const BatchAckFrame& ack, std::string* out);
void BuildHeartbeatPayload(MicroTime send_time, bool is_ack, std::string* out);
void BuildGoawayPayload(std::string_view reason, std::string* out);

// Appends one framed record (length + payload + CRC) to `out` — the bytes
// that actually hit the socket.
inline void AppendNetFrame(std::string* out, std::string_view payload) {
  AppendFramedRecord(out, payload);
}

// Exact wire size of a framed record carrying `payload_size` payload bytes
// (length varint + payload + fixed32 CRC) — what the send queue's
// backpressure bound charges per frame.
inline size_t FramedRecordSize(size_t payload_size) {
  size_t varint_bytes = 1;
  for (uint64_t v = payload_size; v >= 0x80; v >>= 7) {
    ++varint_bytes;
  }
  return varint_bytes + payload_size + 4;
}

// Builds the SampleBatch payload *header* (tag + seq + consumed varints)
// into a caller-owned stack buffer; the raw CPI2SMB1 batch bytes follow as
// the scatter body of Connection::SendFrameParts. Returns the header size.
inline constexpr size_t kSampleBatchHeaderMax = 1 + 10 + 10;
size_t BuildSampleBatchHeader(uint64_t seq, uint64_t consumed,
                              char out[kSampleBatchHeaderMax]);

// --- payload parsers ------------------------------------------------------
// Each returns false on a malformed payload (wrong tag, short buffer,
// trailing garbage). The connection treats false exactly like a CRC failure.
bool ParseFrameType(std::string_view payload, FrameType* type);
bool ParseHelloPayload(std::string_view payload, HelloFrame* hello, bool* is_ack);
bool ParseSampleBatchPayload(std::string_view payload, uint64_t* seq, uint64_t* consumed,
                             std::string_view* batch_bytes);
bool ParseBatchAckPayload(std::string_view payload, BatchAckFrame* ack);
bool ParseHeartbeatPayload(std::string_view payload, MicroTime* send_time, bool* is_ack);
bool ParseGoawayPayload(std::string_view payload, std::string_view* reason);

// Incremental decoder for one direction of a CPI2NET1 stream, backed by a
// power-of-two ByteRing. The socket read path deposits bytes directly into
// the ring (WritableSpans + CommitBytes feed readv; Feed() is the copy-in
// path for tests and capture replay); Next() yields complete CRC-verified
// payloads decoded in place — a payload is a zero-copy view into the ring
// unless the frame straddles the wrap point, in which case it is linearized
// into a reused scratch buffer. Consuming a frame is a head bump, never an
// append + erase compaction.
class FrameAssembler {
 public:
  enum class Result {
    kFrame,     // *payload views a verified frame (valid until next call)
    kNeedMore,  // no complete frame buffered yet
    kCorrupt,   // CRC failure or hostile length: the stream is poisoned
    kBadMagic,  // stream did not start with CPI2NET1
  };

  // Appends raw socket bytes to the ring (copy-in path).
  void Feed(std::string_view data);

  // Zero-copy ingest: exposes >= min_free writable bytes of the ring as up
  // to two iovecs for readv. Returns the iovec count. Commit what the
  // kernel actually wrote with CommitBytes.
  int WritableSpans(size_t min_free, struct iovec out[2]);
  void CommitBytes(size_t n);

  // Extracts the next frame. After kCorrupt or kBadMagic the assembler
  // latches: every further call returns the same verdict (callers must
  // drop the connection).
  Result Next(std::string_view* payload);

  // Bytes consumed from the stream so far (offset of the *next* frame);
  // after kCorrupt this is the offset of the damaged frame — the number
  // wiredump prints for a captured stream.
  size_t stream_offset() const { return stream_offset_; }

  // True when the buffer holds a partial frame: a connection closing in
  // this state is a truncated-tail verdict.
  bool HasPartialFrame() const;

  void Reset();

 private:
  ByteRing ring_;
  size_t pending_pop_ = 0;    // bytes of the last returned frame, popped lazily
                              // so the payload view stays valid until the next call
  size_t stream_offset_ = 0;  // consumed bytes across the whole stream
  std::string scratch_;       // linearization target for wrap-straddling frames
  bool saw_magic_ = false;
  bool poisoned_ = false;
  Result poison_verdict_ = Result::kCorrupt;
};

}  // namespace cpi2

#endif  // CPI2_NET_FRAME_H_
