// Single-threaded epoll event loop for the networked data plane.
//
// One EventLoop drives one daemon (cpi2-agentd / cpi2-aggregatord) or one
// in-process test fixture. Everything — fd readiness, timers, deferred
// callbacks — runs on the thread that calls Run(), so none of the net code
// needs a lock: the concurrency model is "one loop, many fds", the same
// discipline the harness uses for its serial merge phase.
//
// fd handlers are level-triggered. A handler may close and deregister its
// own fd (the loop tolerates handlers mutating the registration table
// mid-dispatch), which is what connection teardown paths do.
//
// Timers live in a min-heap keyed on a CLOCK_MONOTONIC deadline; epoll_wait
// timeouts are derived from the heap head, so an idle loop sleeps in the
// kernel. Wakeup() (the only thread-safe entry point, via eventfd) lets
// signal handlers and other threads nudge a sleeping loop.

#ifndef CPI2_NET_EVENT_LOOP_H_
#define CPI2_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/clock.h"

namespace cpi2 {

// Monotonic microseconds (CLOCK_MONOTONIC): immune to wall-clock steps, the
// timebase for every deadline in src/net.
MicroTime MonotonicNowMicros();

class EventLoop {
 public:
  // Readiness bitmask handed to fd handlers.
  enum : uint32_t {
    kReadable = 1u << 0,
    kWritable = 1u << 1,
    kError = 1u << 2,  // EPOLLERR/EPOLLHUP: the fd is dead or half-dead
  };

  using FdHandler = std::function<void(uint32_t events)>;
  using TimerHandler = std::function<void()>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` with the interest set described by `events`
  // (kReadable/kWritable). Replaces any previous registration of `fd`.
  void WatchFd(int fd, uint32_t events, FdHandler handler);
  // Changes the interest set of an already-watched fd (handler unchanged).
  void SetFdEvents(int fd, uint32_t events);
  // Deregisters `fd`. Safe to call from inside the fd's own handler, and on
  // fds that were never watched (teardown paths don't track registration).
  void UnwatchFd(int fd);

  // One-shot timer firing `delay` micros from now. Returns an id usable
  // with CancelTimer. delay <= 0 fires on the next loop iteration.
  TimerId AddTimer(MicroTime delay, TimerHandler handler);
  void CancelTimer(TimerId id);

  // Runs until Stop(). Dispatch order per iteration: due timers, then fd
  // readiness.
  void Run();
  // Runs one poll + dispatch cycle, sleeping at most `max_wait` micros
  // (clamped further by the next timer deadline). For tests.
  void RunOnce(MicroTime max_wait);
  // Makes Run() return after the current iteration. Callable from handlers.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  // Thread-safe (and async-signal-safe) nudge: wakes a loop sleeping in
  // epoll_wait. Used by signal handlers to make Stop() take effect promptly.
  void Wakeup();

 private:
  struct Timer {
    MicroTime deadline;
    TimerId id;
    bool operator>(const Timer& other) const {
      return deadline != other.deadline ? deadline > other.deadline : id > other.id;
    }
  };

  void FireDueTimers(MicroTime now);
  MicroTime NextTimerDelay(MicroTime now) const;

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd; read side drained by the loop itself
  bool stopped_ = false;
  std::unordered_map<int, FdHandler> handlers_;
  // Canceled timers stay in the heap (hole punching a binary heap is not
  // worth it at our timer counts); the handler map is the source of truth.
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_map<TimerId, TimerHandler> timer_handlers_;
  TimerId next_timer_id_ = 1;
};

}  // namespace cpi2

#endif  // CPI2_NET_EVENT_LOOP_H_
