#include "net/server.h"

#include <unistd.h>

#include "net/socket.h"
#include "util/logging.h"

namespace cpi2 {

NetServer::NetServer(EventLoop* loop, Options options)
    : loop_(loop), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  StatusOr<int> fd = ListenOn(options_.listen_address);
  if (!fd.ok()) {
    return fd.status();
  }
  listen_fd_ = fd.value();
  loop_->WatchFd(listen_fd_, EventLoop::kReadable, [this](uint32_t) { OnAcceptable(); });
  ArmReapTimer();
  return Status::Ok();
}

int NetServer::bound_port() const {
  return listen_fd_ >= 0 ? ListenerBoundPort(listen_fd_) : 0;
}

void NetServer::OnAcceptable() {
  // Drain the accept queue: level-triggered epoll would re-fire, but one
  // pass per wakeup keeps accept storms from starving the data path less.
  while (true) {
    StatusOr<int> fd = AcceptOn(listen_fd_);
    if (!fd.ok()) {
      return;  // EAGAIN or transient error; epoll re-arms us
    }
    if (lame_duck_) {
      close(fd.value());
      continue;
    }
    DisableNagle(fd.value());
    ++stats_.connections_accepted;
    const PeerId id = next_peer_id_++;
    Peer& peer = peers_[id];
    peer.id = id;
    peer.last_activity = MonotonicNowMicros();
    Connection::Options conn_options = options_.connection;
    if (conn_options.pool == nullptr) {
      conn_options.pool = &pool_;  // slabs recycle across all peers
    }
    peer.connection = std::make_unique<Connection>(loop_, fd.value(), conn_options);
    Peer* peer_ptr = &peer;
    peer.connection->set_frame_handler(
        [this, peer_ptr](std::string_view payload) { OnPeerFrame(peer_ptr, payload); });
    peer.connection->set_close_handler(
        [this, id](Connection::CloseReason reason, bool truncated_tail) {
          OnPeerClosed(id, reason, truncated_tail);
        });
    peer.connection->Start();
  }
}

void NetServer::OnPeerFrame(Peer* peer, std::string_view payload) {
  peer->last_activity = MonotonicNowMicros();
  FrameType type;
  if (!ParseFrameType(payload, &type)) {
    peer->connection->Close(Connection::CloseReason::kCorruptFrame);
    return;
  }
  if (!peer->handshaken) {
    // The handshake gate: the first frame must be a well-formed Hello with
    // our protocol version. Anything else is a reject, and the close reason
    // tells the operator why.
    HelloFrame hello;
    bool is_ack = false;
    if (type != FrameType::kHello || !ParseHelloPayload(payload, &hello, &is_ack) ||
        is_ack || hello.version != kNetProtocolVersion) {
      ++stats_.handshake_rejects;
      CPI2_LOG(WARNING) << "net-server: rejecting handshake from peer " << peer->id;
      peer->connection->Close(Connection::CloseReason::kCorruptFrame);
      return;
    }
    peer->hello = hello;
    peer->handshaken = true;
    HelloFrame ack;
    ack.version = kNetProtocolVersion;
    ack.role = PeerRole::kAggregator;
    ack.peer_name = options_.server_name;
    ack.feature_flags = hello.feature_flags;  // echo unknown bits back
    std::string reply;
    BuildHelloPayload(ack, /*is_ack=*/true, &reply);
    peer->connection->SendFrame(reply);
    return;
  }
  switch (type) {
    case FrameType::kHeartbeat: {
      MicroTime send_time;
      bool is_ack;
      if (ParseHeartbeatPayload(payload, &send_time, &is_ack) && !is_ack) {
        std::string ack;
        BuildHeartbeatPayload(send_time, /*is_ack=*/true, &ack);
        peer->connection->SendFrame(ack);
      }
      return;
    }
    case FrameType::kHeartbeatAck:
      return;  // activity already recorded
    case FrameType::kHello:
    case FrameType::kHelloAck:
      // A second hello is a protocol error.
      peer->connection->Close(Connection::CloseReason::kCorruptFrame);
      return;
    default: {
      if (frame_handler_) {
        PeerInfo info;
        info.id = peer->id;
        info.hello = peer->hello;
        frame_handler_(info, payload);
      }
      return;
    }
  }
}

void NetServer::OnPeerClosed(PeerId id, Connection::CloseReason reason, bool truncated_tail) {
  auto it = peers_.find(id);
  if (it == peers_.end()) {
    return;
  }
  ++stats_.connections_closed;
  const Connection::Stats& conn = it->second.connection->stats();
  stats_.corrupt_frames += conn.corrupt_frames;
  stats_.truncated_tails += conn.truncated_tails;
  if (peer_closed_handler_) {
    PeerInfo info;
    info.id = id;
    info.hello = it->second.hello;
    peer_closed_handler_(info, reason, truncated_tail);
  }
  // We may be inside this connection's own read handler: move it to the
  // graveyard and reap on the next loop turn.
  graveyard_.push_back(std::move(it->second.connection));
  peers_.erase(it);
  loop_->CancelTimer(graveyard_timer_);
  graveyard_timer_ = loop_->AddTimer(0, [this] { graveyard_.clear(); });
}

void NetServer::ArmReapTimer() {
  // Liveness sweep at half the timeout: a peer silent past
  // heartbeat_timeout (no frames, not even heartbeats) is presumed dead.
  reap_timer_ = loop_->AddTimer(options_.heartbeat_timeout / 2, [this] {
    const MicroTime now = MonotonicNowMicros();
    std::vector<PeerId> dead;
    for (const auto& [id, peer] : peers_) {
      if (now - peer.last_activity > options_.heartbeat_timeout) {
        dead.push_back(id);
      }
    }
    for (PeerId id : dead) {
      auto it = peers_.find(id);
      if (it != peers_.end()) {
        ++stats_.idle_peer_reaps;
        CPI2_LOG(WARNING) << "net-server: reaping idle peer " << id << " ("
                          << it->second.hello.peer_name << ")";
        it->second.connection->Close(Connection::CloseReason::kError);
      }
    }
    ArmReapTimer();
  });
}

bool NetServer::SendToPeer(PeerId peer, std::string_view payload) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.connection == nullptr) {
    return false;
  }
  return it->second.connection->SendFrame(payload);
}

void NetServer::BeginLameDuck() {
  if (lame_duck_) {
    return;
  }
  lame_duck_ = true;
  std::string goaway;
  BuildGoawayPayload("lame-duck", &goaway);
  for (auto& [id, peer] : peers_) {
    (void)id;
    if (peer.connection->SendFrame(goaway)) {
      ++stats_.goaways_sent;
    }
    peer.connection->CloseWhenDrained();
  }
  // Bound the drain: anything still connected after drain_timeout is cut.
  drain_timer_ = loop_->AddTimer(options_.drain_timeout, [this] {
    std::vector<PeerId> remaining;
    remaining.reserve(peers_.size());
    for (const auto& [id, peer] : peers_) {
      (void)peer;
      remaining.push_back(id);
    }
    for (PeerId id : remaining) {
      auto it = peers_.find(id);
      if (it != peers_.end()) {
        it->second.connection->Close(Connection::CloseReason::kLocalClose);
      }
    }
  });
}

void NetServer::Stop() {
  loop_->CancelTimer(reap_timer_);
  loop_->CancelTimer(graveyard_timer_);
  loop_->CancelTimer(drain_timer_);
  // Detach close handlers first: Stop() runs from the destructor too, and
  // handler callbacks into a half-dead server would be use-after-free bait.
  for (auto& [id, peer] : peers_) {
    (void)id;
    peer.connection->set_close_handler(nullptr);
    const Connection::Stats& conn = peer.connection->stats();
    stats_.corrupt_frames += conn.corrupt_frames;
    stats_.truncated_tails += conn.truncated_tails;
    ++stats_.connections_closed;
  }
  peers_.clear();
  graveyard_.clear();
  if (listen_fd_ >= 0) {
    loop_->UnwatchFd(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace cpi2
