#!/usr/bin/env python3
"""Perf floor gate: fresh BENCH_*.json vs the committed baselines.

Each tracked benchmark has one HEADLINE metric (below). A full bench run
writes BENCH_<name>.json into the build directory; this script compares
every fresh file it finds against the committed copy at the repo root and
fails (exit 1) when the headline metric regressed by more than the
tolerance (default 10%). Benches that were not re-run are skipped — smoke
runs (ctest -L perf) write no JSON, so a plain `make check-perf` only
gates benches someone actually measured.

Floor-update workflow (when a regression is intentional, or after an
optimization raises the floor):

  1. Quiesce the machine and run the full bench from the build dir:
       ./bench/bench_rpc            # writes ./BENCH_rpc.json
  2. Eyeball the fresh JSON, then promote it to the new floor:
       cp BENCH_rpc.json ../BENCH_rpc.json
  3. Commit the repo-root copy with a note on what moved and why.

The committed file IS the floor — there is no separate thresholds file to
drift out of sync.
"""

import argparse
import json
import os
import sys

# bench name -> (path to headline metric, human label). Paths walk dict
# keys and list indices; every metric is higher-is-better. fault_resilience
# is exactness-shaped (no throughput headline) and is deliberately absent.
HEADLINES = {
    "rpc": (["samples_per_sec"], "samples/s"),
    "tick_engine": (["ticks_per_sec_t1"], "ticks/s (1 thread)"),
    "control_plane": (["sharded_samples_per_sec"], "sharded samples/s"),
    "wire_format": (["sizes", -1, "binary_decode_per_sec"], "binary decode/s (largest)"),
    "antagonist_scale": (["cells", -1, "fast_per_sec"], "suspect windows/s (largest)"),
    "cluster_scale": (["scales", -1, "tiered_specs_per_sec"], "tiered specs/s (largest)"),
    "forensics_query": (["sizes", -1, "fast_select_by_job_per_sec"], "select-by-job/s (largest)"),
    "identification_storm": (["cells", -1, "batched_per_sec"], "batched idents/s (largest)"),
}


def dig(blob, path):
    for step in path:
        try:
            blob = blob[step]
        except (KeyError, IndexError, TypeError):
            return None
    return blob if isinstance(blob, (int, float)) and not isinstance(blob, bool) else None


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_bench: cannot read {path}: {err}", file=sys.stderr)
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        help="repo root holding the committed BENCH_*.json floors")
    parser.add_argument("--build", default=".",
                        help="build dir holding freshly emitted BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args()

    fresh_files = sorted(
        f for f in os.listdir(args.build)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not fresh_files:
        print("check_bench: no fresh BENCH_*.json in build dir — nothing to compare "
              "(full bench runs write them; smoke runs do not)")
        return 0

    failures = []
    for name in fresh_files:
        bench = name[len("BENCH_"):-len(".json")]
        fresh = load(os.path.join(args.build, name))
        if fresh is None:
            failures.append(f"{bench}: fresh file unreadable")
            continue
        if bench not in HEADLINES:
            print(f"  {bench:24} (no headline metric tracked; skipped)")
            continue
        path, label = HEADLINES[bench]
        committed_path = os.path.join(args.repo, name)
        committed = load(committed_path) if os.path.exists(committed_path) else None
        if committed is None:
            print(f"  {bench:24} (no committed floor at {committed_path}; "
                  f"commit the fresh file to create one)")
            continue
        new = dig(fresh, path)
        old = dig(committed, path)
        if new is None or old is None:
            failures.append(f"{bench}: headline metric {'.'.join(map(str, path))} "
                            f"missing ({'fresh' if new is None else 'committed'} side)")
            continue
        floor = old * (1.0 - args.tolerance)
        delta = new / old - 1.0 if old else float("inf")
        verdict = "OK" if new >= floor else "REGRESSED"
        print(f"  {bench:24} {label}: {new:,.0f} vs floor {old:,.0f} "
              f"({delta:+.1%}) [{verdict}]")
        if new < floor:
            failures.append(
                f"{bench}: {label} {new:,.0f} is below {floor:,.0f} "
                f"(committed {old:,.0f} - {args.tolerance:.0%}); if intentional, "
                f"update the floor: cp {os.path.join(args.build, name)} {committed_path}")

    if failures:
        print("\ncheck_bench: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_bench: all compared benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
