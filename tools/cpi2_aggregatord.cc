// cpi2-aggregatord: the cluster-side daemon of the networked data plane.
//
// Listens for CPI2NET1 connections from cpi2-agentd processes, decodes each
// SampleBatch frame (skipping the already-settled `consumed` prefix), runs
// every sample through the REAL core Aggregator — whose dedup window is
// what makes retried and regenerated agent streams idempotent — and acks
// the batch back to the sender.
//
// Exactness across its own SIGKILL comes from write-ahead state saving:
// with --state=PATH, every batch is (process → persist → ack). The persisted
// file carries the daemon's acceptance counters AND the aggregator's binary
// checkpoint (dedup watermark + window contents) in ONE atomic write, so
// counters and dedup state can never diverge: a kill before the save loses
// the batch (the agent re-sends it), a kill after the save but before the
// ack re-delivers it (the restored dedup window drops every sample). Either
// way the unique-sample totals are exact after restart.
//
// State file layout: one JSON line (the counters), '\n', then the raw
// CPAGCKP3 aggregator checkpoint blob.
//
// Flags:
//   --listen=ADDR          "host:port" (port 0 = pick) or "unix:/path"
//   --stats=PATH           JSON stats file, atomically rewritten
//   --stats-ms=MS          stats rewrite cadence (default 50)
//   --state=PATH           write-ahead counters+checkpoint file (see above)
//   --dedup-window-us=N    aggregator dedup window (default: effectively
//                          unbounded, for the synthetic campaign)
//   --heartbeat-timeout-ms=MS  idle-peer reap limit (default 3000)
//   --drain-ms=MS          lame-duck drain bound on SIGTERM (default 500)
//   --faults=SPEC          NetFaultInjector spec applied to *outgoing*
//                          frames (acks) — lets campaigns damage the
//                          reverse path too
//   --stale-ack-flood=N    adversarial mode: after every real ack, send N
//                          extra BatchAck frames with sequence numbers no
//                          agent ever used. The agent's windowed transport
//                          must count and ignore every one (stale_acks)
//                          without perturbing delivery totals

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/aggregator.h"
#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "net/server.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "wire/sample_codec.h"

namespace cpi2 {
namespace {

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int sig) { g_signal = sig; }

struct Flags {
  std::string listen;
  std::string stats_path;
  int64_t stats_ms = 50;
  std::string state_path;
  int64_t dedup_window_us = int64_t{1} << 60;
  int64_t heartbeat_timeout_ms = 3000;
  int64_t drain_ms = 500;
  std::string faults;
  int64_t stale_ack_flood = 0;
};

bool ParseFlag(const std::string& arg, const std::string& name, std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseFlag(const std::string& arg, const std::string& name, int64_t* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) {
    return false;
  }
  *out = std::strtoll(text.c_str(), nullptr, 10);
  return true;
}

// Acceptance bookkeeping that must survive a SIGKILL in lockstep with the
// aggregator's dedup state (they persist in one atomic write).
struct Counters {
  int64_t batches_processed = 0;
  int64_t samples_seen = 0;      // decoded samples offered to AddSample
  int64_t samples_accepted = 0;  // survived dedup (the exactness invariant)
  int64_t decode_failures = 0;
  std::map<std::string, int64_t> per_machine;  // accepted, by sample.machine

  std::string ToJsonLine() const {
    std::ostringstream json;
    json << "{\"batches_processed\": " << batches_processed
         << ", \"samples_seen\": " << samples_seen
         << ", \"samples_accepted\": " << samples_accepted
         << ", \"decode_failures\": " << decode_failures << ", \"per_machine\": {";
    bool first = true;
    for (const auto& [machine, count] : per_machine) {
      json << (first ? "" : ", ") << "\"" << machine << "\": " << count;
      first = false;
    }
    json << "}}";
    return json.str();
  }

  // Parses the exact shape ToJsonLine emits (this is a state file we wrote,
  // not foreign input; a parse failure means a torn/foreign file and the
  // caller starts fresh).
  bool FromJsonLine(const std::string& line);
};

bool ScanInt(const std::string& line, const std::string& key, size_t* pos, int64_t* out) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = line.find(needle, *pos);
  if (at == std::string::npos) {
    return false;
  }
  *pos = at + needle.size();
  char* end = nullptr;
  *out = std::strtoll(line.c_str() + *pos, &end, 10);
  return end != line.c_str() + *pos;
}

bool Counters::FromJsonLine(const std::string& line) {
  size_t pos = 0;
  if (!ScanInt(line, "batches_processed", &pos, &batches_processed) ||
      !ScanInt(line, "samples_seen", &pos, &samples_seen) ||
      !ScanInt(line, "samples_accepted", &pos, &samples_accepted) ||
      !ScanInt(line, "decode_failures", &pos, &decode_failures)) {
    return false;
  }
  const size_t map_at = line.find("\"per_machine\": {", pos);
  if (map_at == std::string::npos) {
    return false;
  }
  size_t cursor = map_at + std::string("\"per_machine\": {").size();
  while (true) {
    const size_t quote = line.find('"', cursor);
    const size_t brace = line.find('}', cursor);
    if (quote == std::string::npos || (brace != std::string::npos && brace < quote)) {
      break;  // end of map
    }
    const size_t quote_end = line.find('"', quote + 1);
    if (quote_end == std::string::npos) {
      return false;
    }
    const std::string machine = line.substr(quote + 1, quote_end - quote - 1);
    size_t value_pos = quote_end;
    int64_t count = 0;
    const size_t colon = line.find(": ", quote_end);
    if (colon == std::string::npos) {
      return false;
    }
    value_pos = colon + 2;
    char* end = nullptr;
    count = std::strtoll(line.c_str() + value_pos, &end, 10);
    if (end == line.c_str() + value_pos) {
      return false;
    }
    per_machine[machine] = count;
    cursor = static_cast<size_t>(end - line.c_str());
  }
  return true;
}

int Run(const Flags& flags) {
  Cpi2Params params;
  params.sample_dedup_window = flags.dedup_window_us;
  Aggregator aggregator(params);
  Counters counters;

  // Restore the write-ahead state if a previous incarnation left one.
  if (!flags.state_path.empty()) {
    StatusOr<std::string> blob = ReadFileToString(flags.state_path);
    if (blob.ok()) {
      const std::string& contents = blob.value();
      const size_t newline = contents.find('\n');
      if (newline == std::string::npos || !counters.FromJsonLine(contents.substr(0, newline))) {
        CPI2_LOG(ERROR) << "cpi2-aggregatord: unreadable counters in " << flags.state_path;
        return 2;
      }
      const Status restored = aggregator.Restore(contents.substr(newline + 1));
      if (!restored.ok()) {
        CPI2_LOG(ERROR) << "cpi2-aggregatord: checkpoint restore failed: "
                        << restored.message();
        return 2;
      }
      CPI2_LOG(INFO) << "cpi2-aggregatord: restored " << counters.samples_accepted
                     << " accepted samples from " << flags.state_path;
    }
  }

  EventLoop loop;

  NetFaultInjector::Options fault_options;
  std::unique_ptr<NetFaultInjector> injector;
  if (!flags.faults.empty()) {
    std::string error;
    if (!NetFaultInjector::ParseSpec(flags.faults, &fault_options, &error)) {
      CPI2_LOG(ERROR) << "cpi2-aggregatord: " << error;
      return 2;
    }
    injector = std::make_unique<NetFaultInjector>(fault_options);
    if (fault_options.kill_mid_frame_after > 0) {
      injector->set_fault_hook([](NetFaultInjector::Action action) {
        if (action == NetFaultInjector::Action::kKillMidFrame) {
          std::raise(SIGKILL);
        }
      });
    }
  }

  NetServer::Options server_options;
  server_options.listen_address = flags.listen;
  server_options.heartbeat_timeout = flags.heartbeat_timeout_ms * kMicrosPerMilli;
  server_options.drain_timeout = flags.drain_ms * kMicrosPerMilli;
  server_options.connection.injector = injector.get();
  NetServer server(&loop, server_options);

  int64_t stale_acks_sent = 0;

  const auto save_state = [&]() -> bool {
    if (flags.state_path.empty()) {
      return true;
    }
    std::string contents = counters.ToJsonLine();
    contents.push_back('\n');
    contents += aggregator.Checkpoint();
    const Status status = AtomicWriteFile(flags.state_path, contents);
    if (!status.ok()) {
      CPI2_LOG(ERROR) << "cpi2-aggregatord: state save failed: " << status.message();
      return false;
    }
    return true;
  };

  server.set_frame_handler([&](const NetServer::PeerInfo& peer, std::string_view payload) {
    FrameType type;
    if (!ParseFrameType(payload, &type) || type != FrameType::kSampleBatch) {
      return;  // future frame types: ignore, don't poison
    }
    uint64_t seq = 0;
    uint64_t consumed = 0;
    std::string_view batch_bytes;
    if (!ParseSampleBatchPayload(payload, &seq, &consumed, &batch_bytes)) {
      // Malformed envelope despite a valid CRC: protocol error.
      return;
    }
    BatchAckFrame ack;
    ack.seq = seq;
    std::vector<CpiSample> samples;
    const Status decoded = DecodeSampleBatch(batch_bytes, &samples);
    if (!decoded.ok()) {
      // The inner CPI2SMB1 codec rejected the bytes (its own CRC/shape
      // checks). Retrying identical bytes cannot help: tell the agent.
      ++counters.decode_failures;
      ack.decode_failed = true;
    } else {
      for (size_t i = consumed; i < samples.size(); ++i) {
        const int64_t dups_before = aggregator.duplicates_dropped();
        aggregator.AddSample(samples[i]);
        ++counters.samples_seen;
        if (aggregator.duplicates_dropped() == dups_before) {
          ++counters.samples_accepted;
          ++counters.per_machine[samples[i].machine];
        }
        ++ack.delivered;
      }
      ++counters.batches_processed;
    }
    // Write-ahead: the ack must never outrun the persisted state.
    if (!save_state()) {
      return;  // no ack; the agent re-sends and we try again
    }
    std::string reply;
    BuildBatchAckPayload(ack, &reply);
    server.SendToPeer(peer.id, reply);
    // Adversarial flood: acks for sequences far beyond anything in flight.
    // Sequence numbers start at 1 and count batches, so offsetting by 2^40
    // can never collide with a live window entry.
    for (int64_t i = 0; i < flags.stale_ack_flood; ++i) {
      BatchAckFrame stale;
      stale.seq = seq + (uint64_t{1} << 40) + static_cast<uint64_t>(i);
      stale.delivered = 1;
      reply.clear();  // the builder appends; each flood frame stands alone
      BuildBatchAckPayload(stale, &reply);
      if (server.SendToPeer(peer.id, reply)) {
        ++stale_acks_sent;
      }
    }
  });

  const Status started = server.Start();
  if (!started.ok()) {
    CPI2_LOG(ERROR) << "cpi2-aggregatord: listen failed: " << started.message();
    return 1;
  }
  CPI2_LOG(INFO) << "cpi2-aggregatord: listening on " << flags.listen
                 << (server.bound_port() > 0
                         ? " (port " + std::to_string(server.bound_port()) + ")"
                         : "");

  const auto write_stats = [&] {
    if (flags.stats_path.empty()) {
      return;
    }
    const NetServer::Stats& ss = server.stats();
    std::ostringstream json;
    json << "{\n"
         << "  \"port\": " << server.bound_port() << ",\n"
         << "  \"batches_processed\": " << counters.batches_processed << ",\n"
         << "  \"samples_seen\": " << counters.samples_seen << ",\n"
         << "  \"samples_accepted\": " << counters.samples_accepted << ",\n"
         << "  \"duplicates_dropped\": " << aggregator.duplicates_dropped() << ",\n"
         << "  \"decode_failures\": " << counters.decode_failures << ",\n"
         << "  \"connections_accepted\": " << ss.connections_accepted << ",\n"
         << "  \"connections_closed\": " << ss.connections_closed << ",\n"
         << "  \"handshake_rejects\": " << ss.handshake_rejects << ",\n"
         << "  \"corrupt_frames\": " << ss.corrupt_frames << ",\n"
         << "  \"truncated_tails\": " << ss.truncated_tails << ",\n"
         << "  \"idle_peer_reaps\": " << ss.idle_peer_reaps << ",\n"
         << "  \"goaways_sent\": " << ss.goaways_sent << ",\n"
         << "  \"stale_acks_sent\": " << stale_acks_sent << ",\n"
         << "  \"peers\": " << server.peer_count() << ",\n"
         << "  \"lame_duck\": " << (server.lame_duck() ? "true" : "false") << ",\n"
         << "  \"per_machine\": {";
    bool first = true;
    for (const auto& [machine, count] : counters.per_machine) {
      json << (first ? "" : ", ") << "\"" << machine << "\": " << count;
      first = false;
    }
    json << "}\n}\n";
    const Status status = AtomicWriteFile(flags.stats_path, json.str());
    if (!status.ok()) {
      CPI2_LOG(WARNING) << "cpi2-aggregatord: stats write failed: " << status.message();
    }
  };

  bool draining = false;
  std::function<void()> housekeeping = [&] {
    if (g_signal == SIGINT) {
      loop.Stop();
      return;
    }
    if (g_signal == SIGTERM && !draining) {
      // Lame duck: tell every agent to go away, drain the acks in flight,
      // then leave. Agents hold their outboxes and reconnect to the next
      // incarnation.
      draining = true;
      server.BeginLameDuck();
      loop.AddTimer((flags.drain_ms + 100) * kMicrosPerMilli, [&loop = loop] { loop.Stop(); });
    }
    write_stats();
    loop.AddTimer(flags.stats_ms * kMicrosPerMilli, housekeeping);
  };
  loop.AddTimer(flags.stats_ms * kMicrosPerMilli, housekeeping);
  write_stats();  // surface the bound port before the first client connects

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  loop.Run();

  server.Stop();
  write_stats();
  return 0;
}

}  // namespace
}  // namespace cpi2

int main(int argc, char** argv) {
  cpi2::Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (cpi2::ParseFlag(arg, "listen", &flags.listen) ||
        cpi2::ParseFlag(arg, "stats", &flags.stats_path) ||
        cpi2::ParseFlag(arg, "stats-ms", &flags.stats_ms) ||
        cpi2::ParseFlag(arg, "state", &flags.state_path) ||
        cpi2::ParseFlag(arg, "dedup-window-us", &flags.dedup_window_us) ||
        cpi2::ParseFlag(arg, "heartbeat-timeout-ms", &flags.heartbeat_timeout_ms) ||
        cpi2::ParseFlag(arg, "drain-ms", &flags.drain_ms) ||
        cpi2::ParseFlag(arg, "faults", &flags.faults) ||
        cpi2::ParseFlag(arg, "stale-ack-flood", &flags.stale_ack_flood)) {
      continue;
    }
    std::fprintf(stderr, "cpi2-aggregatord: unknown flag %s\n", arg.c_str());
    return 2;
  }
  if (flags.listen.empty()) {
    std::fprintf(stderr, "cpi2-aggregatord: --listen is required\n");
    return 2;
  }
  return cpi2::Run(flags);
}
