// cpi2-agentd: the agent-side daemon of the networked data plane.
//
// Generates a deterministic synthetic sample stream (a pure function of the
// machine name and sample index), feeds it through the REAL core Agent's
// bounded outbox (overflow eviction, batch sealing, retry), and ships the
// sealed CPI2SMB1 batches to cpi2-aggregatord over a CPI2NET1 connection
// with reconnect + backpressure via AgentTransport.
//
// Determinism is the crash-recovery story: a SIGKILLed agentd restarted
// with the same flags regenerates the exact same samples from index 0, so
// everything the aggregator already counted is re-sent and dropped by its
// dedup window — end-to-end totals stay exact with zero agent-side
// persistence. (The real deployment persists the outbox instead; the
// synthetic generator gives the loopback fault campaign a closed form for
// "what should the aggregator hold".)
//
// Progress is exported as a JSON stats file, atomically rewritten — the
// loopback test's only observation channel.
//
// Flags:
//   --server=ADDR        aggregator address ("host:port" or "unix:/path")
//   --machine=NAME       machine name (sample stream identity)
//   --samples=N          synthetic samples to generate (default 1000)
//   --burst=N            samples offered per 10ms generation tick (def. 50)
//   --jobs=N             distinct synthetic jobnames (default 4)
//   --outbox=N           agent outbox capacity in samples (default 4096)
//   --batch=N            samples per wire batch (default 64)
//   --window=N           max batches in flight awaiting acks (default 8;
//                        1 = classic stop-and-wait)
//   --stats=PATH         JSON stats file, rewritten every --stats-ms
//   --stats-ms=MS        stats rewrite cadence (default 50)
//   --faults=SPEC        NetFaultInjector spec (see fault_injector.h); a
//                        kill_mid_frame_after entry makes this process
//                        raise(SIGKILL) mid-frame — deterministically
//   --heartbeat-ms=MS    heartbeat interval (default 500)
//   --heartbeat-timeout-ms=MS  peer-silence limit (default 3000)
//   --reconnect-ms=MS    initial reconnect backoff (default 100)
//   --oneshot            exit 0 once every sample is settled (drained)

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>

#include "core/agent.h"
#include "net/agent_transport.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/fault_injector.h"
#include "util/file_util.h"
#include "util/logging.h"

namespace cpi2 {
namespace {

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int sig) { g_signal = sig; }

struct Flags {
  std::string server;
  std::string machine = "agentd-1";
  int64_t samples = 1000;
  int64_t burst = 50;
  int64_t jobs = 4;
  int64_t outbox = 4096;
  int64_t batch = 64;
  int64_t window = 8;
  std::string stats_path;
  int64_t stats_ms = 50;
  std::string faults;
  int64_t heartbeat_ms = 500;
  int64_t heartbeat_timeout_ms = 3000;
  int64_t reconnect_ms = 100;
  bool oneshot = false;
};

bool ParseFlag(const std::string& arg, const std::string& name, std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseFlag(const std::string& arg, const std::string& name, int64_t* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) {
    return false;
  }
  *out = std::strtoll(text.c_str(), nullptr, 10);
  return true;
}

// The deterministic stream: sample `i` of `machine` is always these bytes.
// Timestamps are distinct per index, so (timestamp, machine, task) — the
// aggregator's dedup key — is unique across the stream, and a regenerated
// stream collides exactly with what was already delivered.
CpiSample MakeSample(const std::string& machine, int64_t i, int64_t jobs) {
  CpiSample sample;
  sample.jobname = "job-" + std::to_string(i % jobs);
  sample.platforminfo = "synthetic-cpu";
  sample.timestamp = (i + 1) * kMicrosPerSecond;
  sample.task = machine + "-task-" + std::to_string(i % 8);
  sample.machine = machine;
  sample.cpu_usage = 0.25 + 0.001 * static_cast<double>(i % 500);
  sample.cpi = 1.0 + 0.01 * static_cast<double>((i * 7) % 97);
  sample.l3_miss_per_instruction = 0.001 * static_cast<double>(i % 11);
  return sample;
}

int Run(const Flags& flags) {
  Cpi2Params params;
  params.sample_outbox_capacity = static_cast<int>(flags.outbox);
  params.wire_batch_max_samples = static_cast<int>(flags.batch);
  params.wire_batch_max_age = 0;  // force-seal at every flush
  // Pacing comes from the ack round-trip and the flush timer, not from the
  // in-process retry ladder (which would fight the event loop's clock).
  params.delivery_retry_backoff = 0;
  params.delivery_retry_backoff_max = 0;
  params.delivery_retry_jitter = 0.0;

  Agent::Options agent_options;
  agent_options.params = params;
  agent_options.machine_name = flags.machine;
  agent_options.platforminfo = "synthetic-cpu";
  Agent agent(agent_options, /*source=*/nullptr, /*controller=*/nullptr);

  EventLoop loop;

  NetFaultInjector::Options fault_options;
  std::unique_ptr<NetFaultInjector> injector;
  if (!flags.faults.empty()) {
    std::string error;
    if (!NetFaultInjector::ParseSpec(flags.faults, &fault_options, &error)) {
      CPI2_LOG(ERROR) << "cpi2-agentd: " << error;
      return 2;
    }
    injector = std::make_unique<NetFaultInjector>(fault_options);
    if (fault_options.kill_mid_frame_after > 0) {
      injector->set_fault_hook([](NetFaultInjector::Action action) {
        if (action == NetFaultInjector::Action::kKillMidFrame) {
          std::raise(SIGKILL);  // die exactly as a crashed agent does
        }
      });
    }
  }

  NetClient::Options client_options;
  client_options.server_address = flags.server;
  client_options.peer_name = flags.machine;
  client_options.role = PeerRole::kAgent;
  client_options.reconnect_backoff = flags.reconnect_ms * kMicrosPerMilli;
  client_options.heartbeat_interval = flags.heartbeat_ms * kMicrosPerMilli;
  client_options.heartbeat_timeout = flags.heartbeat_timeout_ms * kMicrosPerMilli;
  client_options.connection.injector = injector.get();
  NetClient client(&loop, client_options);

  AgentTransport::Options transport_options;
  transport_options.window = static_cast<int>(flags.window);
  AgentTransport transport(&loop, &agent, &client, transport_options);

  client.Start();
  transport.Start();

  int64_t generated = 0;
  bool drained = false;

  // Generation tick: offer a burst, then flush so full batches hit the wire
  // without waiting out the transport's idle timer.
  std::function<void()> generate = [&] {
    if (g_signal != 0) {
      return;
    }
    for (int64_t i = 0; i < flags.burst && generated < flags.samples; ++i) {
      agent.OfferSample(MakeSample(flags.machine, generated, flags.jobs));
      ++generated;
    }
    transport.Flush();
    loop.AddTimer(10 * kMicrosPerMilli, generate);
  };
  loop.AddTimer(0, generate);

  const auto write_stats = [&] {
    if (flags.stats_path.empty()) {
      return;
    }
    const AgentHealth& health = agent.health();
    const NetClient::Stats& cs = client.stats();
    const Connection::Stats conn = client.connection_stats();
    const AgentTransport::Stats& ts = transport.stats();
    std::ostringstream json;
    json << "{\n"
         << "  \"machine\": \"" << flags.machine << "\",\n"
         << "  \"generated\": " << generated << ",\n"
         << "  \"samples_enqueued\": " << health.samples_enqueued << ",\n"
         << "  \"samples_delivered\": " << health.samples_delivered << ",\n"
         << "  \"samples_lost\": " << health.samples_lost << ",\n"
         << "  \"delivery_retries\": " << health.delivery_retries << ",\n"
         << "  \"outbox_overflow_drops\": " << health.outbox_overflow_drops << ",\n"
         << "  \"outbox\": " << agent.outbox_size() << ",\n"
         << "  \"batches_sent\": " << ts.batches_sent << ",\n"
         << "  \"batches_acked\": " << ts.batches_acked << ",\n"
         << "  \"implied_acks\": " << ts.implied_acks << ",\n"
         << "  \"stale_acks\": " << ts.stale_acks << ",\n"
         << "  \"send_backpressure\": " << ts.send_backpressure << ",\n"
         << "  \"window_stalls\": " << ts.window_stalls << ",\n"
         << "  \"inflight_reset\": " << ts.inflight_reset << ",\n"
         << "  \"window\": " << flags.window << ",\n"
         << "  \"window_depth\": " << transport.window_depth() << ",\n"
         << "  \"window_depth_peak\": " << ts.window_depth_peak << ",\n"
         << "  \"connect_attempts\": " << cs.connect_attempts << ",\n"
         << "  \"connects_completed\": " << cs.connects_completed << ",\n"
         << "  \"disconnects\": " << cs.disconnects << ",\n"
         << "  \"heartbeats_sent\": " << cs.heartbeats_sent << ",\n"
         << "  \"heartbeat_timeouts\": " << cs.heartbeat_timeouts << ",\n"
         << "  \"goaways_received\": " << cs.goaways_received << ",\n"
         << "  \"send_rejects\": " << conn.send_rejects << ",\n"
         << "  \"frames_sent\": " << conn.frames_sent << ",\n"
         << "  \"drained\": " << (drained ? "true" : "false") << "\n"
         << "}\n";
    const Status status = AtomicWriteFile(flags.stats_path, json.str());
    if (!status.ok()) {
      CPI2_LOG(WARNING) << "cpi2-agentd: stats write failed: " << status.message();
    }
  };

  std::function<void()> housekeeping = [&] {
    if (g_signal != 0) {
      loop.Stop();
      return;
    }
    if (!drained && generated >= flags.samples && agent.outbox_size() == 0 &&
        !transport.in_flight()) {
      drained = true;
      CPI2_LOG(INFO) << "cpi2-agentd: drained (" << generated << " samples settled)";
    }
    write_stats();
    if (drained && flags.oneshot) {
      loop.Stop();
      return;
    }
    loop.AddTimer(flags.stats_ms * kMicrosPerMilli, housekeeping);
  };
  loop.AddTimer(flags.stats_ms * kMicrosPerMilli, housekeeping);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  loop.Run();

  transport.Stop();
  client.Shutdown();
  write_stats();
  return 0;
}

}  // namespace
}  // namespace cpi2

int main(int argc, char** argv) {
  cpi2::Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--oneshot") {
      flags.oneshot = true;
      continue;
    }
    if (cpi2::ParseFlag(arg, "server", &flags.server) ||
        cpi2::ParseFlag(arg, "machine", &flags.machine) ||
        cpi2::ParseFlag(arg, "samples", &flags.samples) ||
        cpi2::ParseFlag(arg, "burst", &flags.burst) ||
        cpi2::ParseFlag(arg, "jobs", &flags.jobs) ||
        cpi2::ParseFlag(arg, "outbox", &flags.outbox) ||
        cpi2::ParseFlag(arg, "batch", &flags.batch) ||
        cpi2::ParseFlag(arg, "window", &flags.window) ||
        cpi2::ParseFlag(arg, "stats", &flags.stats_path) ||
        cpi2::ParseFlag(arg, "stats-ms", &flags.stats_ms) ||
        cpi2::ParseFlag(arg, "faults", &flags.faults) ||
        cpi2::ParseFlag(arg, "heartbeat-ms", &flags.heartbeat_ms) ||
        cpi2::ParseFlag(arg, "heartbeat-timeout-ms", &flags.heartbeat_timeout_ms) ||
        cpi2::ParseFlag(arg, "reconnect-ms", &flags.reconnect_ms)) {
      continue;
    }
    std::fprintf(stderr, "cpi2-agentd: unknown flag %s\n", arg.c_str());
    return 2;
  }
  if (flags.server.empty()) {
    std::fprintf(stderr, "cpi2-agentd: --server is required\n");
    return 2;
  }
  return cpi2::Run(flags);
}
