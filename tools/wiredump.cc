// wiredump: pretty-prints any CPI2 binary wire/storage artifact.
//
// Sniffs the 8-byte magic and renders the file for humans:
//   CPI2SMB1  sample batch      -> one row per sample
//   CPI2INC2  incident log v2   -> one row per incident + skip report
//   CPAGCKP3  aggregator ckpt   -> the equivalent v2 text checkpoint
// Text-era files (cpi2-incidents-v1, cpi2-aggregator-ckpt-v*,
// cpi2-samples-v1) are already human-readable and are echoed through.
//
// Usage: wiredump <file> [file...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/aggregator.h"
#include "core/incident.h"
#include "core/params.h"
#include "util/file_util.h"
#include "util/status.h"
#include "wire/framing.h"
#include "wire/incident_codec.h"
#include "wire/sample_codec.h"

namespace {

using namespace cpi2;  // NOLINT: tool brevity

int DumpSampleBatch(const std::string& contents) {
  std::vector<CpiSample> samples;
  const Status status = DecodeSampleBatch(contents, &samples);
  if (!status.ok()) {
    std::fprintf(stderr, "undecodable sample batch: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("sample batch: %zu samples, %zu bytes (%.1f bytes/sample)\n",
              samples.size(), contents.size(),
              samples.empty() ? 0.0
                              : static_cast<double>(contents.size()) /
                                    static_cast<double>(samples.size()));
  std::printf("%-14s %-24s %-20s %-14s %8s %8s %10s\n", "timestamp", "task", "job",
              "machine", "cpu", "cpi", "l3miss/i");
  for (const CpiSample& sample : samples) {
    std::printf("%-14lld %-24s %-20s %-14s %8.4f %8.4f %10.6f\n",
                static_cast<long long>(sample.timestamp), sample.task.c_str(),
                sample.jobname.c_str(), sample.machine.c_str(), sample.cpu_usage,
                sample.cpi, sample.l3_miss_per_instruction);
  }
  return 0;
}

int DumpIncidentFile(const std::string& contents) {
  std::vector<Incident> incidents;
  IncidentDecodeStats stats;
  const Status status = DecodeIncidentFile(contents, &incidents, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "undecodable incident file: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("incident file: %zu incidents, %zu bytes", incidents.size(),
              contents.size());
  if (stats.records_skipped > 0) {
    std::printf(", %lld records lost to damage",
                static_cast<long long>(stats.records_skipped));
  }
  std::printf("\n");
  for (const std::string& reason : stats.skip_reasons) {
    std::printf("  !! %s\n", reason.c_str());
  }
  for (const Incident& incident : incidents) {
    std::printf("t=%-14lld %-12s victim=%s cpi=%.3f thr=%.3f action=%d target=%s\n",
                static_cast<long long>(incident.timestamp), incident.machine.c_str(),
                incident.victim_task.c_str(), incident.victim_cpi,
                incident.cpi_threshold, static_cast<int>(incident.action),
                incident.action_target.c_str());
    for (const Suspect& suspect : incident.suspects) {
      std::printf("    suspect %-24s %-16s corr=%.3f\n", suspect.task.c_str(),
                  suspect.jobname.c_str(), suspect.correlation);
    }
  }
  return 0;
}

int DumpCheckpoint(const std::string& contents) {
  // Round the binary checkpoint through an aggregator configured for the
  // text encoding: the v2 text checkpoint of the restored state is the
  // human-readable rendering, bit-identical in content by construction.
  Cpi2Params params;
  params.legacy_wire_path = true;
  Aggregator aggregator(params);
  const Status status = aggregator.Restore(contents);
  if (!status.ok()) {
    std::fprintf(stderr, "undecodable checkpoint: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("aggregator checkpoint (binary v3, %zu bytes) as text:\n%s",
              contents.size(), aggregator.Checkpoint().c_str());
  return 0;
}

int DumpFile(const char* path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, contents.status().ToString().c_str());
    return 1;
  }
  std::printf("== %s ==\n", path);
  if (HasWireMagic(*contents, kSampleBatchMagic)) {
    return DumpSampleBatch(*contents);
  }
  if (HasWireMagic(*contents, kIncidentFileMagic)) {
    return DumpIncidentFile(*contents);
  }
  if (contents->rfind("CPAGCKP3", 0) == 0) {
    return DumpCheckpoint(*contents);
  }
  if (contents->rfind("cpi2-", 0) == 0) {
    // A text-era artifact: already human-readable.
    std::fwrite(contents->data(), 1, contents->size(), stdout);
    return 0;
  }
  std::fprintf(stderr, "%s: unrecognized format (no known magic)\n", path);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file> [file...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc |= DumpFile(argv[i]);
  }
  return rc;
}
