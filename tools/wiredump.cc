// wiredump: pretty-prints any CPI2 binary wire/storage artifact.
//
// Sniffs the 8-byte magic and renders the file for humans:
//   CPI2SMB1  sample batch      -> one row per sample
//   CPI2INC2  incident log v2   -> one row per incident + skip report
//   CPAGCKP3  aggregator ckpt   -> the equivalent v2 text checkpoint
//   CPI2NET1  captured socket stream -> one line per frame, with the BYTE
//             OFFSET of any corrupt or truncated frame (triage for tcpdump
//             captures of the agentd->aggregatord data plane)
//   CPI2SKT1  partial-spec frame (cell -> global tier) -> one row per
//             job x platform partial with the sketch's derived moments
// Text-era files (cpi2-incidents-v1, cpi2-aggregator-ckpt-v*,
// cpi2-samples-v1) are already human-readable and are echoed through.
//
// Usage: wiredump [--summary] <file> [file...]
//        wiredump -            (read one artifact from stdin)
//
// --summary suppresses per-record output: CPI2NET1 streams get a per-type
// frame/byte table plus corrupt/truncated tallies and total samples carried
// (triage for multi-megabyte captures of the pipelined path); the other
// formats print just their headline counts.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/aggregator.h"
#include "core/incident.h"
#include "core/params.h"
#include "net/frame.h"
#include "util/file_util.h"
#include "util/status.h"
#include "wire/framing.h"
#include "wire/incident_codec.h"
#include "wire/sample_codec.h"
#include "wire/sketch_codec.h"

namespace {

using namespace cpi2;  // NOLINT: tool brevity

bool g_summary = false;

int DumpSampleBatch(const std::string& contents) {
  std::vector<CpiSample> samples;
  const Status status = DecodeSampleBatch(contents, &samples);
  if (!status.ok()) {
    std::fprintf(stderr, "undecodable sample batch: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("sample batch: %zu samples, %zu bytes (%.1f bytes/sample)\n",
              samples.size(), contents.size(),
              samples.empty() ? 0.0
                              : static_cast<double>(contents.size()) /
                                    static_cast<double>(samples.size()));
  if (g_summary) {
    return 0;
  }
  std::printf("%-14s %-24s %-20s %-14s %8s %8s %10s\n", "timestamp", "task", "job",
              "machine", "cpu", "cpi", "l3miss/i");
  for (const CpiSample& sample : samples) {
    std::printf("%-14lld %-24s %-20s %-14s %8.4f %8.4f %10.6f\n",
                static_cast<long long>(sample.timestamp), sample.task.c_str(),
                sample.jobname.c_str(), sample.machine.c_str(), sample.cpu_usage,
                sample.cpi, sample.l3_miss_per_instruction);
  }
  return 0;
}

int DumpIncidentFile(const std::string& contents) {
  std::vector<Incident> incidents;
  IncidentDecodeStats stats;
  const Status status = DecodeIncidentFile(contents, &incidents, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "undecodable incident file: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("incident file: %zu incidents, %zu bytes", incidents.size(),
              contents.size());
  if (stats.records_skipped > 0) {
    std::printf(", %lld records lost to damage",
                static_cast<long long>(stats.records_skipped));
  }
  std::printf("\n");
  for (const std::string& reason : stats.skip_reasons) {
    std::printf("  !! %s\n", reason.c_str());
  }
  if (g_summary) {
    return 0;
  }
  for (const Incident& incident : incidents) {
    std::printf("t=%-14lld %-12s victim=%s cpi=%.3f thr=%.3f action=%d target=%s\n",
                static_cast<long long>(incident.timestamp), incident.machine.c_str(),
                incident.victim_task.c_str(), incident.victim_cpi,
                incident.cpi_threshold, static_cast<int>(incident.action),
                incident.action_target.c_str());
    for (const Suspect& suspect : incident.suspects) {
      std::printf("    suspect %-24s %-16s corr=%.3f\n", suspect.task.c_str(),
                  suspect.jobname.c_str(), suspect.correlation);
    }
  }
  return 0;
}

int DumpCheckpoint(const std::string& contents) {
  // Round the binary checkpoint through an aggregator configured for the
  // text encoding: the v2 text checkpoint of the restored state is the
  // human-readable rendering, bit-identical in content by construction.
  Cpi2Params params;
  params.legacy_wire_path = true;
  Aggregator aggregator(params);
  const Status status = aggregator.Restore(contents);
  if (!status.ok()) {
    std::fprintf(stderr, "undecodable checkpoint: %s\n", status.ToString().c_str());
    return 1;
  }
  if (g_summary) {
    std::printf("aggregator checkpoint (binary v3, %zu bytes): restores cleanly\n",
                contents.size());
    return 0;
  }
  std::printf("aggregator checkpoint (binary v3, %zu bytes) as text:\n%s",
              contents.size(), aggregator.Checkpoint().c_str());
  return 0;
}

int DumpSketchFrame(const std::string& contents) {
  SketchFrame frame;
  SketchFrameDecodeStats stats;
  const Status status = DecodeSketchFrame(contents, &frame, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "undecodable sketch frame: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("sketch frame: cell=%u seq=%llu, %zu partials, %zu bytes",
              frame.cell_id, static_cast<unsigned long long>(frame.sequence),
              frame.partials.size(), contents.size());
  if (stats.records_skipped > 0) {
    std::printf(", %lld partials lost to damage",
                static_cast<long long>(stats.records_skipped));
  }
  std::printf("\n");
  if (g_summary) {
    return stats.records_skipped > 0 ? 1 : 0;
  }
  std::printf("%-24s %-20s %10s %6s %8s %8s %8s %8s %8s\n", "job", "platform",
              "samples", "tasks", "cpi_mean", "cpi_sd", "usage", "~p50", "~p99");
  for (const SketchPartial& partial : frame.partials) {
    const auto name = [&frame](uint32_t index) -> const char* {
      return index < frame.names.size() ? frame.names[index].c_str() : "<bad-index>";
    };
    const CpiSketch& sketch = partial.sketch;
    std::printf("%-24s %-20s %10llu %6zu %8.4f %8.4f %8.4f %8.4f %8.4f\n",
                name(partial.job), name(partial.platform),
                static_cast<unsigned long long>(sketch.count()),
                partial.task_samples.size(), sketch.cpi_mean(),
                std::sqrt(sketch.cpi_variance()), sketch.usage_mean(),
                sketch.ApproxQuantile(0.5), sketch.ApproxQuantile(0.99));
    if (sketch.underflow() > 0 || sketch.overflow() > 0) {
      std::printf("    histogram out of range: %llu underflow, %llu overflow\n",
                  static_cast<unsigned long long>(sketch.underflow()),
                  static_cast<unsigned long long>(sketch.overflow()));
    }
  }
  return stats.records_skipped > 0 ? 1 : 0;
}

// Renders one CPI2NET1 frame payload as a single line.
void PrintNetFrame(size_t offset, std::string_view payload) {
  FrameType type;
  if (!ParseFrameType(payload, &type)) {
    std::printf("%08zu  ?? unknown tag 0x%02x (%zu bytes)\n", offset,
                static_cast<unsigned>(static_cast<unsigned char>(payload.empty() ? 0 : payload[0])),
                payload.size());
    return;
  }
  switch (type) {
    case FrameType::kHello:
    case FrameType::kHelloAck: {
      HelloFrame hello;
      bool is_ack = false;
      if (ParseHelloPayload(payload, &hello, &is_ack)) {
        std::printf("%08zu  %-10s v%u role=%c peer=%s flags=0x%llx\n", offset,
                    is_ack ? "hello-ack" : "hello", hello.version,
                    static_cast<char>(hello.role), hello.peer_name.c_str(),
                    static_cast<unsigned long long>(hello.feature_flags));
      } else {
        std::printf("%08zu  hello (malformed payload, %zu bytes)\n", offset, payload.size());
      }
      return;
    }
    case FrameType::kSampleBatch: {
      uint64_t seq = 0;
      uint64_t consumed = 0;
      std::string_view raw;
      if (ParseSampleBatchPayload(payload, &seq, &consumed, &raw)) {
        std::vector<CpiSample> samples;
        const bool decodes = DecodeSampleBatch(raw, &samples).ok();
        std::printf("%08zu  batch      seq=%llu consumed=%llu samples=%zu inner=%zuB%s\n",
                    offset, static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(consumed), samples.size(), raw.size(),
                    decodes ? "" : " [INNER BATCH UNDECODABLE]");
      } else {
        std::printf("%08zu  batch (malformed payload, %zu bytes)\n", offset, payload.size());
      }
      return;
    }
    case FrameType::kBatchAck: {
      BatchAckFrame ack;
      if (ParseBatchAckPayload(payload, &ack)) {
        std::printf("%08zu  batch-ack  seq=%llu delivered=%u lost=%u%s\n", offset,
                    static_cast<unsigned long long>(ack.seq), ack.delivered, ack.lost,
                    ack.decode_failed ? " DECODE-FAILED" : "");
      } else {
        std::printf("%08zu  batch-ack (malformed payload)\n", offset);
      }
      return;
    }
    case FrameType::kHeartbeat:
    case FrameType::kHeartbeatAck: {
      MicroTime send_time = 0;
      bool is_ack = false;
      if (ParseHeartbeatPayload(payload, &send_time, &is_ack)) {
        std::printf("%08zu  %-10s t=%lld\n", offset, is_ack ? "pong" : "ping",
                    static_cast<long long>(send_time));
      } else {
        std::printf("%08zu  heartbeat (malformed payload)\n", offset);
      }
      return;
    }
    case FrameType::kGoaway: {
      std::string_view reason;
      if (ParseGoawayPayload(payload, &reason)) {
        std::printf("%08zu  goaway     \"%.*s\"\n", offset, static_cast<int>(reason.size()),
                    reason.data());
      } else {
        std::printf("%08zu  goaway (malformed payload)\n", offset);
      }
      return;
    }
  }
}

// Per-frame-type rollup for --summary: one row per type, wire bytes
// measured as consumed stream offset (varint length + payload + CRC).
struct NetStreamSummary {
  struct Tally {
    size_t frames = 0;
    size_t bytes = 0;
  };
  static constexpr size_t kTypes = 9;  // 8 known labels + unknown
  Tally by_type[kTypes];
  size_t batches = 0;
  size_t samples_carried = 0;
  size_t inner_undecodable = 0;

  static size_t Slot(std::string_view payload) {
    FrameType type;
    if (!ParseFrameType(payload, &type)) {
      return kTypes - 1;
    }
    switch (type) {
      case FrameType::kHello: return 0;
      case FrameType::kHelloAck: return 1;
      case FrameType::kSampleBatch: return 2;
      case FrameType::kBatchAck: return 3;
      case FrameType::kHeartbeat: return 4;
      case FrameType::kHeartbeatAck: return 5;
      case FrameType::kGoaway: return 6;
    }
    return 7;  // valid tag the switch doesn't know (future type)
  }

  void Add(std::string_view payload, size_t wire_bytes) {
    const size_t slot = Slot(payload);
    ++by_type[slot].frames;
    by_type[slot].bytes += wire_bytes;
    if (slot == 2) {
      ++batches;
      uint64_t seq = 0;
      uint64_t consumed = 0;
      std::string_view raw;
      std::vector<CpiSample> samples;
      if (ParseSampleBatchPayload(payload, &seq, &consumed, &raw) &&
          DecodeSampleBatch(raw, &samples).ok()) {
        samples_carried += samples.size();
      } else {
        ++inner_undecodable;
      }
    }
  }

  void Print() const {
    static const char* kLabels[kTypes] = {"hello",     "hello-ack", "batch",
                                          "batch-ack", "ping",      "pong",
                                          "goaway",    "future",    "unknown"};
    std::printf("%-12s %10s %14s\n", "type", "frames", "bytes");
    for (size_t i = 0; i < kTypes; ++i) {
      if (by_type[i].frames == 0) {
        continue;
      }
      std::printf("%-12s %10zu %14zu\n", kLabels[i], by_type[i].frames,
                  by_type[i].bytes);
    }
    std::printf("batches carried %zu samples", samples_carried);
    if (inner_undecodable > 0) {
      std::printf(" (%zu inner batches undecodable)", inner_undecodable);
    }
    std::printf("\n");
  }
};

// Walks one direction of a captured CPI2NET1 socket stream with the same
// FrameAssembler a live connection uses, so the verdicts (and their byte
// offsets) are exactly what the receiving daemon would have counted.
int DumpNetStream(const std::string& contents) {
  std::printf("CPI2NET1 stream: %zu bytes\n", contents.size());
  FrameAssembler assembler;
  assembler.Feed(contents);
  NetStreamSummary summary;
  size_t frames = 0;
  int rc = 0;
  while (true) {
    // The assembler consumes the 8-byte magic lazily inside the first
    // Next(), so the first frame's length byte is at kWireMagicSize even
    // though stream_offset() still reads 0 before the call.
    const size_t offset = std::max(assembler.stream_offset(), kWireMagicSize);
    std::string_view payload;
    const FrameAssembler::Result result = assembler.Next(&payload);
    if (result == FrameAssembler::Result::kFrame) {
      ++frames;
      if (g_summary) {
        summary.Add(payload, assembler.stream_offset() - offset);
      } else {
        PrintNetFrame(offset, payload);
      }
      continue;
    }
    if (result == FrameAssembler::Result::kNeedMore) {
      if (assembler.HasPartialFrame()) {
        std::printf("%08zu  !! TRUNCATED TAIL: stream ends mid-frame (%zu bytes dangling)\n",
                    assembler.stream_offset(), contents.size() - assembler.stream_offset());
        rc = 1;
      }
      break;
    }
    if (result == FrameAssembler::Result::kBadMagic) {
      std::fprintf(stderr, "stream does not start with CPI2NET1\n");
      return 1;
    }
    std::printf("%08zu  !! CORRUPT FRAME: CRC failure or hostile length at this offset; "
                "everything after is unreadable\n",
                assembler.stream_offset());
    rc = 1;
    break;
  }
  if (g_summary) {
    summary.Print();
  }
  std::printf("%zu frames decoded\n", frames);
  return rc;
}

int DumpContents(const std::string& contents);

int DumpFile(const char* path) {
  if (std::string_view(path) == "-") {
    std::string contents;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
      contents.append(buf, n);
    }
    std::printf("== (stdin) ==\n");
    return DumpContents(contents);
  }
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, contents.status().ToString().c_str());
    return 1;
  }
  std::printf("== %s ==\n", path);
  return DumpContents(*contents);
}

int DumpContents(const std::string& contents) {
  if (HasWireMagic(contents, kSampleBatchMagic)) {
    return DumpSampleBatch(contents);
  }
  if (HasWireMagic(contents, kIncidentFileMagic)) {
    return DumpIncidentFile(contents);
  }
  if (HasWireMagic(contents, kNetStreamMagic)) {
    return DumpNetStream(contents);
  }
  if (HasWireMagic(contents, kSketchFrameMagic)) {
    return DumpSketchFrame(contents);
  }
  if (contents.rfind("CPAGCKP3", 0) == 0) {
    return DumpCheckpoint(contents);
  }
  if (contents.rfind("cpi2-", 0) == 0) {
    // A text-era artifact: already human-readable.
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return 0;
  }
  std::fprintf(stderr, "unrecognized format (no known magic)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags first regardless of position, so `wiredump cap --summary` and
  // `wiredump --summary cap` behave the same.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--summary") {
      g_summary = true;
    }
  }
  int rc = 0;
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--summary") {
      continue;
    }
    ++files;
    rc |= DumpFile(argv[i]);
  }
  if (files == 0) {
    std::fprintf(stderr, "usage: %s [--summary] <file|-> [file...]\n", argv[0]);
    return 2;
  }
  return rc;
}
