#include "core/placement_advisor.h"

#include <gtest/gtest.h>

namespace cpi2 {
namespace {

Incident MakeIncident(MicroTime t, const std::string& victim, const std::string& antagonist,
                      double correlation) {
  Incident incident;
  incident.timestamp = t;
  incident.victim_job = victim;
  Suspect suspect;
  suspect.jobname = antagonist;
  suspect.task = antagonist + ".0";
  suspect.correlation = correlation;
  incident.suspects.push_back(suspect);
  return incident;
}

TEST(PlacementAdvisorTest, RepeatOffenderIsAdvised) {
  IncidentLog log;
  for (int i = 0; i < 3; ++i) {
    log.Add(MakeIncident(i * kMicrosPerMinute, "search", "thrasher", 0.5));
  }
  PlacementAdvisor advisor(PlacementAdvisor::Options{});
  const auto advice = advisor.Advise(log, kMicrosPerHour);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].victim_job, "search");
  EXPECT_EQ(advice[0].antagonist_job, "thrasher");
  EXPECT_EQ(advice[0].incidents, 3);
  EXPECT_DOUBLE_EQ(advice[0].max_correlation, 0.5);
}

TEST(PlacementAdvisorTest, TooFewIncidentsIsNotAdvised) {
  IncidentLog log;
  log.Add(MakeIncident(0, "search", "thrasher", 0.9));
  log.Add(MakeIncident(kMicrosPerMinute, "search", "thrasher", 0.9));
  PlacementAdvisor advisor(PlacementAdvisor::Options{});
  EXPECT_TRUE(advisor.Advise(log, kMicrosPerHour).empty());
}

TEST(PlacementAdvisorTest, LowCorrelationIncidentsDoNotCount) {
  IncidentLog log;
  for (int i = 0; i < 5; ++i) {
    log.Add(MakeIncident(i * kMicrosPerMinute, "search", "bystander", 0.2));
  }
  PlacementAdvisor advisor(PlacementAdvisor::Options{});
  EXPECT_TRUE(advisor.Advise(log, kMicrosPerHour).empty());
}

TEST(PlacementAdvisorTest, WindowExcludesStaleIncidents) {
  IncidentLog log;
  // Three old incidents, one fresh: below the repeat bar inside the window.
  for (int i = 0; i < 3; ++i) {
    log.Add(MakeIncident(i * kMicrosPerMinute, "search", "thrasher", 0.5));
  }
  log.Add(MakeIncident(48 * kMicrosPerHour, "search", "thrasher", 0.5));
  PlacementAdvisor::Options options;
  options.window = kMicrosPerHour;
  PlacementAdvisor advisor(options);
  EXPECT_TRUE(advisor.Advise(log, 48 * kMicrosPerHour + kMicrosPerMinute).empty());
}

TEST(PlacementAdvisorTest, RanksByIncidentCount) {
  IncidentLog log;
  for (int i = 0; i < 5; ++i) {
    log.Add(MakeIncident(i * kMicrosPerMinute, "search", "worst", 0.4));
  }
  for (int i = 0; i < 3; ++i) {
    log.Add(MakeIncident(i * kMicrosPerMinute, "search", "bad", 0.8));
  }
  for (int i = 0; i < 3; ++i) {
    log.Add(MakeIncident(i * kMicrosPerMinute, "ads", "worst", 0.6));
  }
  PlacementAdvisor advisor(PlacementAdvisor::Options{});
  const auto advice = advisor.Advise(log, kMicrosPerHour);
  ASSERT_EQ(advice.size(), 3u);
  EXPECT_EQ(advice[0].antagonist_job, "worst");
  EXPECT_EQ(advice[0].victim_job, "search");
  EXPECT_EQ(advice[0].incidents, 5);
  // Pairs are per victim: (search, bad) and (ads, worst) both have 3.
}

}  // namespace
}  // namespace cpi2
