#include "core/spec_store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/spec_builder.h"

namespace cpi2 {
namespace {

class SpecStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cpi2_spec_store_" + std::to_string(getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "specs.tsv").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static CpiSpec MakeSpec(const std::string& job, const std::string& platform, double mean) {
    CpiSpec spec;
    spec.jobname = job;
    spec.platforminfo = platform;
    spec.num_samples = 12345;
    spec.cpu_usage_mean = 0.625;
    spec.cpi_mean = mean;
    spec.cpi_stddev = mean / 10.0;
    return spec;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(SpecStoreTest, RoundTrip) {
  const std::vector<CpiSpec> specs = {MakeSpec("websearch", "xeon", 1.8),
                                      MakeSpec("websearch", "opteron", 2.25),
                                      MakeSpec("ads", "xeon", 0.95)};
  ASSERT_TRUE(SaveSpecs(path_, specs).ok());
  const auto loaded = LoadSpecs(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].jobname, "websearch");
  EXPECT_EQ((*loaded)[1].platforminfo, "opteron");
  EXPECT_EQ((*loaded)[0].num_samples, 12345);
  EXPECT_DOUBLE_EQ((*loaded)[2].cpi_mean, 0.95);
  EXPECT_DOUBLE_EQ((*loaded)[2].cpi_stddev, 0.095);
  EXPECT_DOUBLE_EQ((*loaded)[0].cpu_usage_mean, 0.625);
}

TEST_F(SpecStoreTest, EmptyListRoundTrips) {
  ASSERT_TRUE(SaveSpecs(path_, {}).ok());
  const auto loaded = LoadSpecs(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(SpecStoreTest, MissingFileIsNotFound) {
  const auto loaded = LoadSpecs(path_ + ".nope");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SpecStoreTest, WrongHeaderRejected) {
  std::ofstream(path_) << "some-other-format-v7\njob\tplat\t1\t0\t1\t0\n";
  const auto loaded = LoadSpecs(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SpecStoreTest, TruncatedRecordRejected) {
  std::ofstream(path_) << "cpi2-specs-v1\njob\txeon\t100\n";
  const auto loaded = LoadSpecs(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SpecStoreTest, GarbageNumberRejected) {
  std::ofstream(path_) << "cpi2-specs-v1\njob\txeon\tmany\t0.5\t1.8\t0.1\n";
  EXPECT_FALSE(LoadSpecs(path_).ok());
  std::ofstream(path_) << "cpi2-specs-v1\njob\txeon\t100\t0.5\tfast\t0.1\n";
  EXPECT_FALSE(LoadSpecs(path_).ok());
}

TEST_F(SpecStoreTest, CommentsAndBlankLinesIgnored) {
  std::ofstream(path_) << "cpi2-specs-v1\n# comment\n\njob\txeon\t100\t0.5\t1.8\t0.1\n";
  const auto loaded = LoadSpecs(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST_F(SpecStoreTest, RejectsTabInJobName) {
  EXPECT_FALSE(SaveSpecs(path_, {MakeSpec("evil\tjob", "xeon", 1.0)}).ok());
}

TEST_F(SpecStoreTest, SeedsSpecBuilderAcrossRestart) {
  // The paper's use case: a restarted aggregator warm-starts from disk.
  ASSERT_TRUE(SaveSpecs(path_, {MakeSpec("nightly", "xeon", 1.8)}).ok());
  const auto loaded = LoadSpecs(path_);
  ASSERT_TRUE(loaded.ok());

  Cpi2Params params;
  SpecBuilder builder(params);
  for (const CpiSpec& spec : *loaded) {
    builder.SeedHistory(spec);
  }
  const auto spec = builder.GetSpec("nightly", "xeon");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->cpi_mean, 1.8);
}

}  // namespace
}  // namespace cpi2
