#include "core/incident_log_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace cpi2 {
namespace {

class IncidentLogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cpi2_incidents_" + std::to_string(getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "incidents.tsv").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Incident MakeIncident(MicroTime t) {
    Incident incident;
    incident.timestamp = t;
    incident.machine = "m0042";
    incident.victim_task = "websearch.7";
    incident.victim_job = "websearch";
    incident.platforminfo = "xeon-2.6GHz";
    incident.victim_class = WorkloadClass::kLatencySensitive;
    incident.victim_cpi = 5.0;
    incident.cpi_threshold = 2.12;
    incident.spec_mean = 1.8;
    incident.spec_stddev = 0.16;
    incident.action = IncidentAction::kHardCap;
    incident.action_target = "video.0";
    incident.cap_level = 0.01;
    incident.note = "correlation 0.46 >= 0.35";
    Suspect a;
    a.task = "video.0";
    a.jobname = "video";
    a.workload_class = WorkloadClass::kBatch;
    a.priority = JobPriority::kBestEffort;
    a.correlation = 0.46;
    Suspect b;
    b.task = "bigtable.3";
    b.jobname = "bigtable";
    b.workload_class = WorkloadClass::kLatencySensitive;
    b.priority = JobPriority::kProduction;
    b.correlation = 0.39;
    incident.suspects = {a, b};
    return incident;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(IncidentLogIoTest, RoundTripPreservesEverything) {
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  log.Add(MakeIncident(2 * kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log).ok());

  const auto loaded = LoadIncidents(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  const Incident& incident = loaded->incidents()[0];
  EXPECT_EQ(incident.timestamp, kMicrosPerMinute);
  EXPECT_EQ(incident.machine, "m0042");
  EXPECT_EQ(incident.victim_job, "websearch");
  EXPECT_EQ(incident.victim_class, WorkloadClass::kLatencySensitive);
  EXPECT_DOUBLE_EQ(incident.victim_cpi, 5.0);
  EXPECT_DOUBLE_EQ(incident.spec_stddev, 0.16);
  EXPECT_EQ(incident.action, IncidentAction::kHardCap);
  EXPECT_EQ(incident.action_target, "video.0");
  EXPECT_EQ(incident.note, "correlation 0.46 >= 0.35");
  ASSERT_EQ(incident.suspects.size(), 2u);
  EXPECT_EQ(incident.suspects[0].task, "video.0");
  EXPECT_EQ(incident.suspects[0].priority, JobPriority::kBestEffort);
  EXPECT_DOUBLE_EQ(incident.suspects[1].correlation, 0.39);
}

TEST_F(IncidentLogIoTest, QueriesWorkOnReloadedLog) {
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  log.Add(MakeIncident(2 * kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log).ok());
  const auto loaded = LoadIncidents(path_);
  ASSERT_TRUE(loaded.ok());
  const auto top = loaded->TopAntagonists("websearch", 0, 0, 5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].jobname, "video");
  EXPECT_EQ(top[0].incidents, 2);
  EXPECT_EQ(top[0].times_capped, 2);
}

TEST_F(IncidentLogIoTest, IncidentWithNoSuspectsRoundTrips) {
  IncidentLog log;
  Incident incident = MakeIncident(0);
  incident.suspects.clear();
  incident.action = IncidentAction::kNone;
  incident.action_target.clear();
  log.Add(incident);
  ASSERT_TRUE(SaveIncidents(path_, log).ok());
  const auto loaded = LoadIncidents(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_TRUE(loaded->incidents()[0].suspects.empty());
}

TEST_F(IncidentLogIoTest, MissingFileIsNotFound) {
  const auto loaded = LoadIncidents(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(IncidentLogIoTest, WrongHeaderRejected) {
  std::ofstream(path_) << "not-an-incident-file\n";
  EXPECT_FALSE(LoadIncidents(path_).ok());
}

TEST_F(IncidentLogIoTest, TruncatedRowSkippedWithCount) {
  // A torn line (crash mid-append) must not discard the intact incidents
  // around it: it is skipped, and the skip is counted for the caller.
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  log.Add(MakeIncident(2 * kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log, IncidentFileFormat::kText).ok());
  {
    std::ofstream file(path_, std::ios::app);
    file << "123\tm0\tonly-three-fields\n";  // torn tail line
  }
  int64_t skipped = -1;
  const auto loaded = LoadIncidents(path_, &skipped);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(skipped, 1);
}

TEST_F(IncidentLogIoTest, SkippedLineIsIdentifiedByNumber) {
  // The load stats name the exact line so an operator can inspect the
  // damage: "<path>:<line>: <reason>".
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log, IncidentFileFormat::kText).ok());
  {
    std::ofstream file(path_, std::ios::app);
    file << "torn\n";
  }
  IncidentLoadStats stats;
  const auto loaded = LoadIncidentsWithStats(path_, &stats);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(stats.skipped.size(), 1u);
  // Header is line 1, the incident line 2, the torn line 3.
  EXPECT_NE(stats.skipped[0].find(path_ + ":3:"), std::string::npos)
      << stats.skipped[0];
}

TEST_F(IncidentLogIoTest, CorruptSuspectColumnSkippedWithCount) {
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log, IncidentFileFormat::kText).ok());
  // Corrupt the suspects column of a copy of the valid row: right field
  // count, malformed suspect record.
  {
    std::ofstream file(path_, std::ios::app);
    file << "5\tm1\tt\tj\tp\t0\t1\t2\t1\t0.1\t0\tx\t0.5\tnote\tbroken-suspect\n";
  }
  int64_t skipped = -1;
  const auto loaded = LoadIncidents(path_, &skipped);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(skipped, 1);
}

TEST_F(IncidentLogIoTest, CleanFileReportsZeroSkips) {
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log).ok());
  int64_t skipped = -1;
  ASSERT_TRUE(LoadIncidents(path_, &skipped).ok());
  EXPECT_EQ(skipped, 0);
}

TEST_F(IncidentLogIoTest, SeparatorInNameRejectedAtSave) {
  IncidentLog log;
  Incident incident = MakeIncident(0);
  incident.victim_job = "evil;job";
  log.Add(incident);
  EXPECT_FALSE(SaveIncidents(path_, log, IncidentFileFormat::kText).ok());
}

TEST_F(IncidentLogIoTest, RejectedTextSaveLeavesPreviousArchiveIntact) {
  // Crash-atomicity corollary: a save that fails (here at encode time) must
  // not clobber the previous archive.
  IncidentLog good;
  good.Add(MakeIncident(kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, good, IncidentFileFormat::kText).ok());
  IncidentLog bad;
  Incident incident = MakeIncident(0);
  incident.victim_job = "evil;job";
  bad.Add(incident);
  ASSERT_FALSE(SaveIncidents(path_, bad, IncidentFileFormat::kText).ok());
  const auto loaded = LoadIncidents(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->incidents()[0].victim_job, "websearch");
}

TEST_F(IncidentLogIoTest, NoteWithTabsIsSanitized) {
  IncidentLog log;
  Incident incident = MakeIncident(0);
  incident.note = "line one\tline\ntwo";
  log.Add(incident);
  ASSERT_TRUE(SaveIncidents(path_, log, IncidentFileFormat::kText).ok());
  const auto loaded = LoadIncidents(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->incidents()[0].note, "line one line two");
}

// --- binary (default) format -----------------------------------------------

TEST_F(IncidentLogIoTest, BinaryAcceptsSeparatorNamesAndTabbedNotes) {
  // The binary encoding has no in-band separators, so names and notes the
  // text format rejects or sanitizes round-trip untouched.
  IncidentLog log;
  Incident incident = MakeIncident(0);
  incident.victim_job = "evil;job";
  incident.note = "line one\tline\ntwo";
  incident.suspects[0].task = "odd,task;name";
  log.Add(incident);
  ASSERT_TRUE(SaveIncidents(path_, log).ok());
  const auto loaded = LoadIncidents(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->incidents()[0].victim_job, "evil;job");
  EXPECT_EQ(loaded->incidents()[0].note, "line one\tline\ntwo");
  EXPECT_EQ(loaded->incidents()[0].suspects[0].task, "odd,task;name");
}

TEST_F(IncidentLogIoTest, BinaryTornTailSkippedWithIdentity) {
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  log.Add(MakeIncident(2 * kMicrosPerMinute));
  log.Add(MakeIncident(3 * kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log).ok());
  // Tear off the last 10 bytes, as a crash mid-write would.
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size - 10);
  IncidentLoadStats stats;
  const auto loaded = LoadIncidentsWithStats(path_, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(stats.records_skipped, 1);
  ASSERT_EQ(stats.skipped.size(), 1u);
  EXPECT_NE(stats.skipped[0].find("truncated"), std::string::npos)
      << stats.skipped[0];
}

TEST_F(IncidentLogIoTest, SaveLeavesNoTempFileBehind) {
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log).ok());
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(IncidentLogIoTest, StaleTempFromKilledSaveIsHarmless) {
  // Simulate a writer killed mid-save: a partial .tmp exists next to a good
  // archive. The archive must load untouched, and the next save must
  // overwrite the stale temp cleanly.
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log).ok());
  std::ofstream(path_ + ".tmp") << "CPI2INC2 partial garbage";
  const auto loaded = LoadIncidents(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  log.Add(MakeIncident(2 * kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log).ok());
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
  const auto reloaded = LoadIncidents(path_);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), 2u);
}

TEST_F(IncidentLogIoTest, TextArchiveStillLoadsUnderBinaryDefault) {
  // Auto-detection: an archive written in the v1 text era keeps loading
  // after the default switched to binary.
  IncidentLog log;
  log.Add(MakeIncident(kMicrosPerMinute));
  ASSERT_TRUE(SaveIncidents(path_, log, IncidentFileFormat::kText).ok());
  const auto loaded = LoadIncidents(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->incidents()[0].machine, "m0042");
}

}  // namespace
}  // namespace cpi2
