#include "core/antagonist_identifier.h"

#include <gtest/gtest.h>

namespace cpi2 {
namespace {

constexpr MicroTime kMinute = kMicrosPerMinute;

// Victim CPI: healthy for 5 minutes, then in pain for 5 minutes.
TimeSeries PainfulVictim() {
  TimeSeries series;
  for (int i = 0; i < 10; ++i) {
    series.Append(i * kMinute, i < 5 ? 1.0 : 4.0);
  }
  return series;
}

// Usage series that is active only during [from, to) minutes.
TimeSeries ActiveDuring(int from, int to, double level = 2.0) {
  TimeSeries series;
  for (int i = 0; i < 10; ++i) {
    series.Append(i * kMinute, (i >= from && i < to) ? level : 0.0);
  }
  return series;
}

TEST(AntagonistIdentifierTest, RanksCoincidentSuspectFirst) {
  AntagonistIdentifier identifier(Cpi2Params{});
  const TimeSeries victim = PainfulVictim();
  const TimeSeries guilty = ActiveDuring(5, 10);
  const TimeSeries innocent = ActiveDuring(0, 5);
  const TimeSeries constant = ActiveDuring(0, 10);

  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"guilty.0", "guilty", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &guilty});
  inputs.push_back({"innocent.0", "innocent", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &innocent});
  inputs.push_back({"constant.0", "constant", WorkloadClass::kLatencySensitive,
                    JobPriority::kProduction, &constant});

  const auto ranked = identifier.Analyze(victim, /*cpi_threshold=*/2.0, inputs,
                                         /*now=*/10 * kMinute);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].task, "guilty.0");
  EXPECT_GT(ranked[0].correlation, 0.35);
  EXPECT_EQ(ranked[2].task, "innocent.0");
  EXPECT_LT(ranked[2].correlation, 0.0);
  // Ordering is descending.
  EXPECT_GE(ranked[0].correlation, ranked[1].correlation);
  EXPECT_GE(ranked[1].correlation, ranked[2].correlation);
  // Metadata is carried through.
  EXPECT_EQ(ranked[0].jobname, "guilty");
  EXPECT_EQ(ranked[0].priority, JobPriority::kBestEffort);
}

TEST(AntagonistIdentifierTest, RateLimitsToOnePerInterval) {
  AntagonistIdentifier identifier(Cpi2Params{});
  EXPECT_TRUE(identifier.Allowed(0));
  const TimeSeries victim = PainfulVictim();
  (void)identifier.Analyze(victim, 2.0, {}, 10 * kMinute);
  EXPECT_FALSE(identifier.Allowed(10 * kMinute));
  EXPECT_FALSE(identifier.Allowed(10 * kMinute + kMicrosPerSecond / 2));
  EXPECT_TRUE(identifier.Allowed(10 * kMinute + kMicrosPerSecond));
  EXPECT_EQ(identifier.analyses_run(), 1);
}

TEST(AntagonistIdentifierTest, NullUsageSeriesIsSkipped) {
  AntagonistIdentifier identifier(Cpi2Params{});
  const TimeSeries victim = PainfulVictim();
  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"ghost.0", "ghost", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, nullptr});
  EXPECT_TRUE(identifier.Analyze(victim, 2.0, inputs, 10 * kMinute).empty());
}

TEST(AntagonistIdentifierTest, SuspectOutsideWindowIsSkipped) {
  // A suspect with samples only before the correlation window contributes
  // no aligned pairs and is dropped rather than scored.
  Cpi2Params params;
  params.correlation_window = 3 * kMinute;
  AntagonistIdentifier identifier(params);
  const TimeSeries victim = PainfulVictim();
  TimeSeries stale;
  stale.Append(0, 1.0);
  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"stale.0", "stale", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &stale});
  EXPECT_TRUE(identifier.Analyze(victim, 2.0, inputs, 10 * kMinute).empty());
}

TEST(AntagonistIdentifierTest, EqualCorrelationsBreakTiesByTaskId) {
  // Two suspects with identical usage series score identically; the ranking
  // must fall back to ascending task id regardless of input order, so the
  // capping decision is reproducible.
  AntagonistIdentifier identifier(Cpi2Params{});
  const TimeSeries victim = PainfulVictim();
  const TimeSeries usage_a = ActiveDuring(5, 10);
  const TimeSeries usage_b = ActiveDuring(5, 10);

  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"zeta.0", "zeta", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &usage_a});
  inputs.push_back({"alpha.0", "alpha", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &usage_b});

  auto ranked = identifier.Analyze(victim, 2.0, inputs, 10 * kMinute);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].correlation, ranked[1].correlation);
  EXPECT_EQ(ranked[0].task, "alpha.0");
  EXPECT_EQ(ranked[1].task, "zeta.0");

  // Reversed input order produces the same ranking.
  std::swap(inputs[0], inputs[1]);
  AntagonistIdentifier reversed(Cpi2Params{});
  ranked = reversed.Analyze(victim, 2.0, inputs, 10 * kMinute);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].task, "alpha.0");
  EXPECT_EQ(ranked[1].task, "zeta.0");
}

TEST(AntagonistIdentifierTest, WindowRestrictsSamples) {
  // With a 5-minute window ending at minute 10, only the painful half of
  // the victim series is seen: a constant suspect now looks guilty.
  Cpi2Params params;
  params.correlation_window = 5 * kMinute;
  AntagonistIdentifier identifier(params);
  const TimeSeries victim = PainfulVictim();
  const TimeSeries constant = ActiveDuring(0, 10);
  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"constant.0", "constant", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &constant});
  const auto ranked = identifier.Analyze(victim, 2.0, inputs, 10 * kMinute);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_GT(ranked[0].correlation, 0.4);
}

// --- batched engine ---------------------------------------------------------

// Builds a name-sorted suspect table over parallel name/usage arrays. The
// arrays must outlive the rows (the rows intern pointers into them), so the
// caller owns them; names must already be in ascending order.
std::vector<AntagonistIdentifier::SuspectRow> MakeRows(
    const std::vector<std::string>& names, const std::vector<std::string>& jobs,
    const std::vector<const TimeSeries*>& usages) {
  std::vector<AntagonistIdentifier::SuspectRow> rows;
  for (size_t i = 0; i < names.size(); ++i) {
    AntagonistIdentifier::SuspectRow row;
    row.task = &names[i];
    row.jobname = &jobs[i];
    row.workload_class = WorkloadClass::kBatch;
    row.priority = JobPriority::kBestEffort;
    row.usage = usages[i];
    rows.push_back(row);
  }
  return rows;
}

TEST(AntagonistIdentifierTest, AnalyzeBatchedMatchesAnalyze) {
  // The batched engine over an interned table returns the same tasks in the
  // same order with bit-identical correlations as per-suspect Analyze.
  const TimeSeries victim = PainfulVictim();
  const TimeSeries guilty = ActiveDuring(5, 10);
  const TimeSeries innocent = ActiveDuring(0, 5);
  const TimeSeries constant = ActiveDuring(0, 10);

  const std::vector<std::string> names = {"constant.0", "guilty.0", "innocent.0"};
  const std::vector<std::string> jobs = {"constant", "guilty", "innocent"};
  const auto rows = MakeRows(names, jobs, {&constant, &guilty, &innocent});

  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  for (const auto& row : rows) {
    inputs.push_back({*row.task, *row.jobname, row.workload_class, row.priority, row.usage});
  }

  AntagonistIdentifier batched(Cpi2Params{});
  AntagonistIdentifier per_suspect(Cpi2Params{});
  std::vector<AntagonistIdentifier::RankedRef> ranked;
  batched.AnalyzeBatched(victim, 2.0, rows, AntagonistIdentifier::kNoSkip, 10 * kMinute,
                         &ranked);
  const auto reference = per_suspect.Analyze(victim, 2.0, inputs, 10 * kMinute);
  ASSERT_EQ(ranked.size(), reference.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(*rows[ranked[i].row].task, reference[i].task) << "rank " << i;
    EXPECT_EQ(ranked[i].correlation, reference[i].correlation) << "rank " << i;
  }
  EXPECT_EQ(batched.analyses_run(), 1);
}

TEST(AntagonistIdentifierTest, AnalyzeBatchedSkipsTheSkipRow) {
  // skip_row excludes the victim's own row; the remaining ranking is what a
  // table without that row would produce.
  const TimeSeries victim = PainfulVictim();
  const TimeSeries guilty = ActiveDuring(5, 10);
  const TimeSeries self = ActiveDuring(0, 10);

  const std::vector<std::string> names = {"guilty.0", "victim.0"};
  const std::vector<std::string> jobs = {"guilty", "victim"};
  const auto rows = MakeRows(names, jobs, {&guilty, &self});

  AntagonistIdentifier identifier(Cpi2Params{});
  std::vector<AntagonistIdentifier::RankedRef> ranked;
  identifier.AnalyzeBatched(victim, 2.0, rows, /*skip_row=*/1, 10 * kMinute, &ranked);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(*rows[ranked[0].row].task, "guilty.0");

  // kNoSkip scores the victim row like any other suspect.
  identifier.AnalyzeBatched(victim, 2.0, rows, AntagonistIdentifier::kNoSkip,
                            10 * kMinute, &ranked);
  EXPECT_EQ(ranked.size(), 2u);
}

TEST(AntagonistIdentifierTest, AnalyzeBatchedBreaksTiesByRowOrder) {
  // Identical scores rank by ascending row index == ascending task id (the
  // table is name-sorted), mirroring Analyze's string tie-break.
  const TimeSeries victim = PainfulVictim();
  const TimeSeries usage_a = ActiveDuring(5, 10);
  const TimeSeries usage_b = ActiveDuring(5, 10);

  const std::vector<std::string> names = {"alpha.0", "zeta.0"};
  const std::vector<std::string> jobs = {"alpha", "zeta"};
  const auto rows = MakeRows(names, jobs, {&usage_a, &usage_b});

  AntagonistIdentifier identifier(Cpi2Params{});
  std::vector<AntagonistIdentifier::RankedRef> ranked;
  identifier.AnalyzeBatched(victim, 2.0, rows, AntagonistIdentifier::kNoSkip,
                            10 * kMinute, &ranked);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].correlation, ranked[1].correlation);
  EXPECT_EQ(*rows[ranked[0].row].task, "alpha.0");
  EXPECT_EQ(*rows[ranked[1].row].task, "zeta.0");
}

TEST(AntagonistIdentifierTest, AnalyzeBatchedReusesScratchAcrossVictims) {
  // Storm shape: several victims scored back-to-back against the same table
  // and identifier. Later calls (reused scratch) must match a fresh
  // identifier's first call bit-for-bit.
  const TimeSeries guilty = ActiveDuring(5, 10);
  const TimeSeries innocent = ActiveDuring(0, 5);
  const std::vector<std::string> names = {"guilty.0", "innocent.0"};
  const std::vector<std::string> jobs = {"guilty", "innocent"};
  const auto rows = MakeRows(names, jobs, {&guilty, &innocent});

  Cpi2Params params;
  params.analysis_interval = 0;  // storms ignore the 1/sec limiter
  AntagonistIdentifier storm(params);
  std::vector<AntagonistIdentifier::RankedRef> ranked;
  std::vector<TimeSeries> victims;
  for (int v = 0; v < 4; ++v) {
    TimeSeries series;
    for (int i = 0; i < 10; ++i) {
      series.Append(i * kMinute, i < 5 ? 1.0 + 0.1 * v : 4.0 + 0.3 * v);
    }
    victims.push_back(std::move(series));
  }
  for (const TimeSeries& victim : victims) {
    storm.AnalyzeBatched(victim, 2.0, rows, AntagonistIdentifier::kNoSkip, 10 * kMinute,
                         &ranked);
    AntagonistIdentifier fresh(params);
    std::vector<AntagonistIdentifier::RankedRef> expected;
    fresh.AnalyzeBatched(victim, 2.0, rows, AntagonistIdentifier::kNoSkip, 10 * kMinute,
                         &expected);
    ASSERT_EQ(ranked.size(), expected.size());
    for (size_t i = 0; i < ranked.size(); ++i) {
      EXPECT_EQ(ranked[i].row, expected[i].row);
      EXPECT_EQ(ranked[i].correlation, expected[i].correlation);
    }
  }
  EXPECT_EQ(storm.analyses_run(), 4);
}

TEST(AntagonistIdentifierTest, AnalyzeBatchedSkipsNullAndNoOverlapRows) {
  const TimeSeries victim = PainfulVictim();
  TimeSeries stale;
  stale.Append(0, 1.0);
  const TimeSeries guilty = ActiveDuring(5, 10);

  Cpi2Params params;
  params.correlation_window = 3 * kMinute;  // stale falls outside
  const std::vector<std::string> names = {"ghost.0", "guilty.0", "stale.0"};
  const std::vector<std::string> jobs = {"ghost", "guilty", "stale"};
  const auto rows = MakeRows(names, jobs, {nullptr, &guilty, &stale});

  AntagonistIdentifier identifier(params);
  std::vector<AntagonistIdentifier::RankedRef> ranked;
  identifier.AnalyzeBatched(victim, 2.0, rows, AntagonistIdentifier::kNoSkip,
                            10 * kMinute, &ranked);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(*rows[ranked[0].row].task, "guilty.0");
}

}  // namespace
}  // namespace cpi2
