#include "core/antagonist_identifier.h"

#include <gtest/gtest.h>

namespace cpi2 {
namespace {

constexpr MicroTime kMinute = kMicrosPerMinute;

// Victim CPI: healthy for 5 minutes, then in pain for 5 minutes.
TimeSeries PainfulVictim() {
  TimeSeries series;
  for (int i = 0; i < 10; ++i) {
    series.Append(i * kMinute, i < 5 ? 1.0 : 4.0);
  }
  return series;
}

// Usage series that is active only during [from, to) minutes.
TimeSeries ActiveDuring(int from, int to, double level = 2.0) {
  TimeSeries series;
  for (int i = 0; i < 10; ++i) {
    series.Append(i * kMinute, (i >= from && i < to) ? level : 0.0);
  }
  return series;
}

TEST(AntagonistIdentifierTest, RanksCoincidentSuspectFirst) {
  AntagonistIdentifier identifier(Cpi2Params{});
  const TimeSeries victim = PainfulVictim();
  const TimeSeries guilty = ActiveDuring(5, 10);
  const TimeSeries innocent = ActiveDuring(0, 5);
  const TimeSeries constant = ActiveDuring(0, 10);

  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"guilty.0", "guilty", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &guilty});
  inputs.push_back({"innocent.0", "innocent", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &innocent});
  inputs.push_back({"constant.0", "constant", WorkloadClass::kLatencySensitive,
                    JobPriority::kProduction, &constant});

  const auto ranked = identifier.Analyze(victim, /*cpi_threshold=*/2.0, inputs,
                                         /*now=*/10 * kMinute);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].task, "guilty.0");
  EXPECT_GT(ranked[0].correlation, 0.35);
  EXPECT_EQ(ranked[2].task, "innocent.0");
  EXPECT_LT(ranked[2].correlation, 0.0);
  // Ordering is descending.
  EXPECT_GE(ranked[0].correlation, ranked[1].correlation);
  EXPECT_GE(ranked[1].correlation, ranked[2].correlation);
  // Metadata is carried through.
  EXPECT_EQ(ranked[0].jobname, "guilty");
  EXPECT_EQ(ranked[0].priority, JobPriority::kBestEffort);
}

TEST(AntagonistIdentifierTest, RateLimitsToOnePerInterval) {
  AntagonistIdentifier identifier(Cpi2Params{});
  EXPECT_TRUE(identifier.Allowed(0));
  const TimeSeries victim = PainfulVictim();
  (void)identifier.Analyze(victim, 2.0, {}, 10 * kMinute);
  EXPECT_FALSE(identifier.Allowed(10 * kMinute));
  EXPECT_FALSE(identifier.Allowed(10 * kMinute + kMicrosPerSecond / 2));
  EXPECT_TRUE(identifier.Allowed(10 * kMinute + kMicrosPerSecond));
  EXPECT_EQ(identifier.analyses_run(), 1);
}

TEST(AntagonistIdentifierTest, NullUsageSeriesIsSkipped) {
  AntagonistIdentifier identifier(Cpi2Params{});
  const TimeSeries victim = PainfulVictim();
  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"ghost.0", "ghost", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, nullptr});
  EXPECT_TRUE(identifier.Analyze(victim, 2.0, inputs, 10 * kMinute).empty());
}

TEST(AntagonistIdentifierTest, SuspectOutsideWindowIsSkipped) {
  // A suspect with samples only before the correlation window contributes
  // no aligned pairs and is dropped rather than scored.
  Cpi2Params params;
  params.correlation_window = 3 * kMinute;
  AntagonistIdentifier identifier(params);
  const TimeSeries victim = PainfulVictim();
  TimeSeries stale;
  stale.Append(0, 1.0);
  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"stale.0", "stale", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &stale});
  EXPECT_TRUE(identifier.Analyze(victim, 2.0, inputs, 10 * kMinute).empty());
}

TEST(AntagonistIdentifierTest, EqualCorrelationsBreakTiesByTaskId) {
  // Two suspects with identical usage series score identically; the ranking
  // must fall back to ascending task id regardless of input order, so the
  // capping decision is reproducible.
  AntagonistIdentifier identifier(Cpi2Params{});
  const TimeSeries victim = PainfulVictim();
  const TimeSeries usage_a = ActiveDuring(5, 10);
  const TimeSeries usage_b = ActiveDuring(5, 10);

  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"zeta.0", "zeta", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &usage_a});
  inputs.push_back({"alpha.0", "alpha", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &usage_b});

  auto ranked = identifier.Analyze(victim, 2.0, inputs, 10 * kMinute);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].correlation, ranked[1].correlation);
  EXPECT_EQ(ranked[0].task, "alpha.0");
  EXPECT_EQ(ranked[1].task, "zeta.0");

  // Reversed input order produces the same ranking.
  std::swap(inputs[0], inputs[1]);
  AntagonistIdentifier reversed(Cpi2Params{});
  ranked = reversed.Analyze(victim, 2.0, inputs, 10 * kMinute);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].task, "alpha.0");
  EXPECT_EQ(ranked[1].task, "zeta.0");
}

TEST(AntagonistIdentifierTest, WindowRestrictsSamples) {
  // With a 5-minute window ending at minute 10, only the painful half of
  // the victim series is seen: a constant suspect now looks guilty.
  Cpi2Params params;
  params.correlation_window = 5 * kMinute;
  AntagonistIdentifier identifier(params);
  const TimeSeries victim = PainfulVictim();
  const TimeSeries constant = ActiveDuring(0, 10);
  std::vector<AntagonistIdentifier::SuspectInput> inputs;
  inputs.push_back({"constant.0", "constant", WorkloadClass::kBatch,
                    JobPriority::kBestEffort, &constant});
  const auto ranked = identifier.Analyze(victim, 2.0, inputs, 10 * kMinute);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_GT(ranked[0].correlation, 0.4);
}

}  // namespace
}  // namespace cpi2
