// Enforcement escalation: persistent offenders get migration requests.

#include <gtest/gtest.h>

#include "core/enforcement.h"

namespace cpi2 {
namespace {

Suspect BatchSuspect(const std::string& task, double correlation) {
  Suspect suspect;
  suspect.task = task;
  suspect.jobname = "thrasher";
  suspect.workload_class = WorkloadClass::kBatch;
  suspect.priority = JobPriority::kBestEffort;
  suspect.correlation = correlation;
  return suspect;
}

TEST(EscalationTest, MigrationRequestedAfterRepeatedStuckIncidents) {
  FakeCpuController controller;
  Cpi2Params params;
  params.recaps_before_migration = 3;
  EnforcementPolicy policy(params, &controller);
  std::vector<std::string> migrations;
  policy.SetMigrationCallback([&migrations](const std::string& task) {
    migrations.push_back(task);
  });

  // First incident caps the suspect.
  ASSERT_EQ(policy
                .OnIncident(WorkloadClass::kLatencySensitive, {BatchSuspect("bad.0", 0.5)},
                            /*now=*/0)
                .action,
            IncidentAction::kHardCap);
  // Three more incidents while it is still capped: the third escalates.
  for (int i = 1; i <= 3; ++i) {
    const auto decision = policy.OnIncident(WorkloadClass::kLatencySensitive,
                                            {BatchSuspect("bad.0", 0.5)},
                                            i * kMicrosPerMinute);
    EXPECT_EQ(decision.action, IncidentAction::kAlreadyCapped);
    if (i < 3) {
      EXPECT_TRUE(migrations.empty()) << "escalated too early at incident " << i;
    }
  }
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0], "bad.0");
  EXPECT_EQ(policy.migrations_requested(), 1);
}

TEST(EscalationTest, CounterResetsAfterMigration) {
  FakeCpuController controller;
  Cpi2Params params;
  params.recaps_before_migration = 2;
  EnforcementPolicy policy(params, &controller);
  int migrations = 0;
  policy.SetMigrationCallback([&migrations](const std::string&) { ++migrations; });

  (void)policy.OnIncident(WorkloadClass::kLatencySensitive, {BatchSuspect("bad.0", 0.5)}, 0);
  for (int i = 1; i <= 4; ++i) {
    (void)policy.OnIncident(WorkloadClass::kLatencySensitive, {BatchSuspect("bad.0", 0.5)},
                            i * kMicrosPerMinute);
  }
  // 4 stuck incidents with threshold 2 -> exactly 2 escalations.
  EXPECT_EQ(migrations, 2);
}

TEST(EscalationTest, NoCallbackMeansNoEscalation) {
  FakeCpuController controller;
  Cpi2Params params;
  params.recaps_before_migration = 1;
  EnforcementPolicy policy(params, &controller);
  (void)policy.OnIncident(WorkloadClass::kLatencySensitive, {BatchSuspect("bad.0", 0.5)}, 0);
  const auto decision = policy.OnIncident(WorkloadClass::kLatencySensitive,
                                          {BatchSuspect("bad.0", 0.5)}, kMicrosPerMinute);
  EXPECT_EQ(decision.action, IncidentAction::kAlreadyCapped);
  EXPECT_EQ(policy.migrations_requested(), 0);
}

}  // namespace
}  // namespace cpi2
