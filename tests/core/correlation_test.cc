// Tests for the paper's antagonist-correlation formula (section 4.2).

#include "core/correlation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cpi2 {
namespace {

std::vector<AlignedPair> MakePairs(const std::vector<double>& cpi,
                                   const std::vector<double>& usage) {
  std::vector<AlignedPair> pairs;
  for (size_t i = 0; i < cpi.size(); ++i) {
    pairs.push_back({static_cast<MicroTime>(i) * kMicrosPerMinute, cpi[i], usage[i]});
  }
  return pairs;
}

TEST(AntagonistCorrelationTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(AntagonistCorrelation({}, 2.0), 0.0);
}

TEST(AntagonistCorrelationTest, IdleSuspectIsZero) {
  const auto pairs = MakePairs({3.0, 3.0, 3.0}, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(AntagonistCorrelation(pairs, 2.0), 0.0);
}

TEST(AntagonistCorrelationTest, NonPositiveThresholdIsZero) {
  const auto pairs = MakePairs({3.0}, {1.0});
  EXPECT_DOUBLE_EQ(AntagonistCorrelation(pairs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(AntagonistCorrelation(pairs, -1.0), 0.0);
}

TEST(AntagonistCorrelationTest, GuiltySuspectScoresPositive) {
  // Suspect runs exactly when the victim hurts.
  const auto pairs = MakePairs({1.0, 1.0, 4.0, 4.0, 1.0}, {0.0, 0.0, 3.0, 3.0, 0.0});
  const double corr = AntagonistCorrelation(pairs, 2.0);
  // All usage falls on c=4 > thr=2: corr = 1 - 2/4 = 0.5.
  EXPECT_NEAR(corr, 0.5, 1e-12);
}

TEST(AntagonistCorrelationTest, InnocentSuspectScoresNegative) {
  // Suspect runs only while the victim is healthy.
  const auto pairs = MakePairs({1.0, 1.0, 4.0, 4.0}, {2.0, 2.0, 0.0, 0.0});
  const double corr = AntagonistCorrelation(pairs, 2.0);
  // All usage falls on c=1 < thr=2: corr = 1/2 - 1 = -0.5.
  EXPECT_NEAR(corr, -0.5, 1e-12);
}

TEST(AntagonistCorrelationTest, ConstantUsageOnMixedCpiCancels) {
  // Symmetric pain/health with constant usage roughly cancels out.
  const auto pairs = MakePairs({4.0, 1.0, 4.0, 1.0}, {1.0, 1.0, 1.0, 1.0});
  const double corr = AntagonistCorrelation(pairs, 2.0);
  // 2 * 0.25*(1 - 0.5) + 2 * 0.25*(0.5 - 1) = 0.25 - 0.25 = 0.
  EXPECT_NEAR(corr, 0.0, 1e-12);
}

TEST(AntagonistCorrelationTest, SamplesAtThresholdContributeNothing) {
  const auto pairs = MakePairs({2.0, 2.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(AntagonistCorrelation(pairs, 2.0), 0.0);
}

TEST(AntagonistCorrelationTest, ScaleInvariantInUsage) {
  // Normalization makes the score independent of the suspect's absolute CPU.
  const auto small = MakePairs({1.0, 4.0, 4.0}, {0.1, 0.5, 0.4});
  const auto big = MakePairs({1.0, 4.0, 4.0}, {1.0, 5.0, 4.0});
  EXPECT_NEAR(AntagonistCorrelation(small, 2.0), AntagonistCorrelation(big, 2.0), 1e-12);
}

TEST(AntagonistCorrelationTest, ExtremePainApproachesOne) {
  // Victim CPI far above threshold whenever the suspect runs: corr -> 1.
  const auto pairs = MakePairs({1000.0, 1000.0}, {1.0, 1.0});
  EXPECT_GT(AntagonistCorrelation(pairs, 2.0), 0.99);
}

TEST(AntagonistCorrelationTest, ExtremeHealthApproachesMinusOne) {
  // Victim CPI near zero whenever the suspect runs: corr -> -1.
  const auto pairs = MakePairs({0.001, 0.001}, {1.0, 1.0});
  EXPECT_LT(AntagonistCorrelation(pairs, 2.0), -0.99);
}

// Property sweep: the score is always in [-1, 1] for random inputs.
class CorrelationBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorrelationBoundsTest, WithinBounds) {
  Rng rng(GetParam());
  std::vector<AlignedPair> pairs;
  const int n = static_cast<int>(rng.UniformInt(1, 50));
  for (int i = 0; i < n; ++i) {
    pairs.push_back({static_cast<MicroTime>(i) * kMicrosPerMinute,
                     rng.Pareto(0.1, 0.8),            // wild CPI values
                     rng.Uniform(0.0, 10.0)});        // arbitrary usage
  }
  const double threshold = rng.Uniform(0.1, 5.0);
  const double corr = AntagonistCorrelation(pairs, threshold);
  EXPECT_GE(corr, -1.0 - 1e-12);
  EXPECT_LE(corr, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationBoundsTest, ::testing::Range<uint64_t>(1, 26));

TEST(AntagonistCorrelationTest, ZeroCpiSamplesAreSkipped) {
  // c == 0 would divide by zero in the healthy branch; such samples carry no
  // information and must contribute nothing.
  const auto pairs = MakePairs({0.0, 4.0}, {1.0, 1.0});
  EXPECT_NEAR(AntagonistCorrelation(pairs, 2.0), 0.25, 1e-12);
}

}  // namespace
}  // namespace cpi2
