#include "core/enforcement.h"

#include <gtest/gtest.h>

namespace cpi2 {
namespace {

Suspect MakeSuspect(const std::string& task, double correlation,
                    WorkloadClass workload_class = WorkloadClass::kBatch,
                    JobPriority priority = JobPriority::kBestEffort) {
  Suspect suspect;
  suspect.task = task;
  suspect.jobname = task.substr(0, task.find('.'));
  suspect.workload_class = workload_class;
  suspect.priority = priority;
  suspect.correlation = correlation;
  return suspect;
}

TEST(EnforcementTest, CapsBestEffortBatchSuspectHard) {
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  const auto decision = policy.OnIncident(WorkloadClass::kLatencySensitive,
                                          {MakeSuspect("mr.0", 0.5)}, /*now=*/0);
  EXPECT_EQ(decision.action, IncidentAction::kHardCap);
  EXPECT_EQ(decision.target, "mr.0");
  EXPECT_DOUBLE_EQ(decision.cap_level, 0.01) << "best-effort gets the harshest cap";
  ASSERT_TRUE(controller.GetCap("mr.0").has_value());
  EXPECT_DOUBLE_EQ(*controller.GetCap("mr.0"), 0.01);
  EXPECT_TRUE(policy.IsCapped("mr.0"));
}

TEST(EnforcementTest, NonBestEffortBatchGetsMilderCap) {
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  const auto decision = policy.OnIncident(
      WorkloadClass::kLatencySensitive,
      {MakeSuspect("sim.0", 0.5, WorkloadClass::kBatch, JobPriority::kNonProduction)}, 0);
  EXPECT_EQ(decision.action, IncidentAction::kHardCap);
  EXPECT_DOUBLE_EQ(decision.cap_level, 0.1);
}

TEST(EnforcementTest, BelowThresholdTakesNoAction) {
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  const auto decision = policy.OnIncident(WorkloadClass::kLatencySensitive,
                                          {MakeSuspect("mr.0", 0.34)}, 0);
  EXPECT_EQ(decision.action, IncidentAction::kNone);
  EXPECT_FALSE(controller.GetCap("mr.0").has_value());
}

TEST(EnforcementTest, NeverCapsLatencySensitiveSuspects) {
  // Case 4: eight of nine suspects were latency-sensitive; only the
  // scientific simulation (batch) was eligible.
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  std::vector<Suspect> suspects = {
      MakeSuspect("prod-service.0", 0.66, WorkloadClass::kLatencySensitive,
                  JobPriority::kProduction),
      MakeSuspect("compilation.0", 0.63, WorkloadClass::kLatencySensitive,
                  JobPriority::kProduction),
      MakeSuspect("scientific-sim.0", 0.36, WorkloadClass::kBatch,
                  JobPriority::kNonProduction),
  };
  const auto decision = policy.OnIncident(WorkloadClass::kLatencySensitive, suspects, 0);
  EXPECT_EQ(decision.action, IncidentAction::kHardCap);
  EXPECT_EQ(decision.target, "scientific-sim.0");
  EXPECT_FALSE(controller.GetCap("prod-service.0").has_value());
}

TEST(EnforcementTest, BatchVictimsAreNotProtected) {
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  const auto decision =
      policy.OnIncident(WorkloadClass::kBatch, {MakeSuspect("mr.0", 0.9)}, 0);
  EXPECT_EQ(decision.action, IncidentAction::kNone);
}

TEST(EnforcementTest, OptedInBatchVictimIsProtected) {
  // Section 5: a victim is eligible "because it is latency-sensitive, or
  // because it is explicitly marked as eligible".
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  const auto refused =
      policy.OnIncident(WorkloadClass::kBatch, /*victim_opt_in=*/false,
                        {MakeSuspect("mr.0", 0.9)}, 0);
  EXPECT_EQ(refused.action, IncidentAction::kNone);
  const auto protected_decision =
      policy.OnIncident(WorkloadClass::kBatch, /*victim_opt_in=*/true,
                        {MakeSuspect("mr.0", 0.9)}, 0);
  EXPECT_EQ(protected_decision.action, IncidentAction::kHardCap);
}

TEST(EnforcementTest, DisabledPolicyDoesNothing) {
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  policy.SetEnabled(false);
  const auto decision = policy.OnIncident(WorkloadClass::kLatencySensitive,
                                          {MakeSuspect("mr.0", 0.9)}, 0);
  EXPECT_EQ(decision.action, IncidentAction::kNone);
  EXPECT_EQ(controller.set_calls(), 0);
  policy.SetEnabled(true);
  EXPECT_EQ(policy.OnIncident(WorkloadClass::kLatencySensitive,
                              {MakeSuspect("mr.0", 0.9)}, 0)
                .action,
            IncidentAction::kHardCap);
}

TEST(EnforcementTest, AlreadyCappedSuspectSuggestsMigration) {
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  (void)policy.OnIncident(WorkloadClass::kLatencySensitive, {MakeSuspect("mr.0", 0.5)}, 0);
  const auto repeat = policy.OnIncident(WorkloadClass::kLatencySensitive,
                                        {MakeSuspect("mr.0", 0.5)}, kMicrosPerMinute);
  EXPECT_EQ(repeat.action, IncidentAction::kAlreadyCapped);
  EXPECT_EQ(policy.caps_applied(), 1);
}

TEST(EnforcementTest, CapsExpireAfterDuration) {
  FakeCpuController controller;
  Cpi2Params params;
  EnforcementPolicy policy(params, &controller);
  (void)policy.OnIncident(WorkloadClass::kLatencySensitive, {MakeSuspect("mr.0", 0.5)}, 0);
  policy.Tick(params.cap_duration - 1);
  EXPECT_TRUE(policy.IsCapped("mr.0"));
  policy.Tick(params.cap_duration);
  EXPECT_FALSE(policy.IsCapped("mr.0"));
  EXPECT_FALSE(controller.GetCap("mr.0").has_value());
  EXPECT_EQ(controller.remove_calls(), 1);
}

TEST(EnforcementTest, ManualCapAndUncap) {
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  ASSERT_TRUE(policy.ManualCap("task.0", 0.05, /*duration=*/kMicrosPerMinute, /*now=*/0).ok());
  EXPECT_TRUE(policy.IsCapped("task.0"));
  EXPECT_DOUBLE_EQ(*controller.GetCap("task.0"), 0.05);
  ASSERT_TRUE(policy.ManualUncap("task.0").ok());
  EXPECT_FALSE(policy.IsCapped("task.0"));
}

TEST(EnforcementTest, ManualCapDefaultDuration) {
  FakeCpuController controller;
  Cpi2Params params;
  EnforcementPolicy policy(params, &controller);
  ASSERT_TRUE(policy.ManualCap("task.0", 0.05, /*duration=*/0, /*now=*/0).ok());
  policy.Tick(params.cap_duration);
  EXPECT_FALSE(policy.IsCapped("task.0")) << "duration 0 uses the default cap duration";
}

TEST(EnforcementTest, ControllerFailureIsReported) {
  // A controller wired to a machine where the task no longer exists.
  class FailingController : public CpuController {
   public:
    Status SetCap(const std::string&, double) override {
      return NotFoundError("task gone");
    }
    Status RemoveCap(const std::string&) override { return NotFoundError("task gone"); }
    std::optional<double> GetCap(const std::string&) const override { return std::nullopt; }
  };
  FailingController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  const auto decision = policy.OnIncident(WorkloadClass::kLatencySensitive,
                                          {MakeSuspect("gone.0", 0.5)}, 0);
  EXPECT_EQ(decision.action, IncidentAction::kNone);
  EXPECT_FALSE(policy.IsCapped("gone.0"));
  EXPECT_NE(decision.reason.find("cap failed"), std::string::npos);
}

TEST(EnforcementTest, ForgetTaskDropsCapState) {
  FakeCpuController controller;
  EnforcementPolicy policy(Cpi2Params{}, &controller);
  (void)policy.OnIncident(WorkloadClass::kLatencySensitive, {MakeSuspect("mr.0", 0.5)}, 0);
  policy.ForgetTask("mr.0");
  EXPECT_FALSE(policy.IsCapped("mr.0"));
  EXPECT_EQ(policy.active_cap_count(), 0u);
}

}  // namespace
}  // namespace cpi2
